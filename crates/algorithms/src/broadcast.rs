//! `t`-bounded information gathering: after `t` rounds every node knows the
//! IDs of all nodes in its ball `B_{G,t}(v)`.
//!
//! This is the purest example of a `t`-round LOCAL algorithm (its output is
//! literally the `t`-ball), which makes it the canonical workload for the
//! `t`-local broadcast experiments: the direct execution floods `G` every
//! round, the message-reduced execution floods a spanner.

use freelunch_graph::NodeId;
use freelunch_runtime::transport::CodecError;
use freelunch_runtime::{Context, Envelope, NodeProgram};
use std::collections::BTreeSet;

/// The per-node program: repeatedly broadcast everything newly learned.
#[derive(Debug)]
pub struct BallGathering {
    horizon: u32,
    known: BTreeSet<u32>,
    fresh: Vec<u32>,
}

impl BallGathering {
    /// Creates the program for `node` with gathering horizon `t`.
    pub fn new(node: NodeId, horizon: u32) -> Self {
        BallGathering {
            horizon,
            known: BTreeSet::from([node.raw()]),
            fresh: vec![node.raw()],
        }
    }

    /// The IDs gathered so far (the node's view of its ball).
    pub fn known_ids(&self) -> Vec<u32> {
        self.known.iter().copied().collect()
    }
}

impl NodeProgram for BallGathering {
    type Message = Vec<u32>;

    fn init(&mut self, ctx: &mut Context<'_, Vec<u32>>) {
        if self.horizon > 0 {
            ctx.broadcast(self.fresh.clone());
        }
        self.fresh.clear();
    }

    fn round(&mut self, ctx: &mut Context<'_, Vec<u32>>, inbox: &[Envelope<Vec<u32>>]) {
        for envelope in inbox {
            for &id in &envelope.payload {
                if self.known.insert(id) {
                    self.fresh.push(id);
                }
            }
        }
        if ctx.round() < self.horizon && !self.fresh.is_empty() {
            ctx.broadcast(self.fresh.clone());
        }
        self.fresh.clear();
        if ctx.round() >= self.horizon {
            ctx.halt();
        }
    }

    /// Each gathered ID costs 4 bytes — exactly the `Vec<u32>` wire
    /// encoding (4 little-endian bytes per element) and the 4-byte token
    /// convention of the emulated broadcast paths. The default sizing would
    /// charge `size_of::<Vec<u32>>()` (the header), independent of the
    /// bundle length.
    fn payload_bytes(message: &Vec<u32>) -> u64 {
        4 * message.len() as u64
    }

    /// Checkpoint encoding: horizon, then the known set (already sorted —
    /// it is a `BTreeSet`) and the fresh list, each with a `u32` count
    /// prefix (all little-endian).
    fn save_state(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.horizon.to_le_bytes());
        buf.extend_from_slice(&(self.known.len() as u32).to_le_bytes());
        for &id in &self.known {
            buf.extend_from_slice(&id.to_le_bytes());
        }
        buf.extend_from_slice(&(self.fresh.len() as u32).to_le_bytes());
        for &id in &self.fresh {
            buf.extend_from_slice(&id.to_le_bytes());
        }
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let u32_at = |i: usize| -> Result<u32, CodecError> {
            if i + 4 > bytes.len() {
                return Err(CodecError::Truncated {
                    needed: i + 4,
                    got: bytes.len(),
                });
            }
            Ok(u32::from_le_bytes([
                bytes[i],
                bytes[i + 1],
                bytes[i + 2],
                bytes[i + 3],
            ]))
        };
        let horizon = u32_at(0)?;
        let known_count = u32_at(4)? as usize;
        let mut known = BTreeSet::new();
        let mut cursor = 8;
        for _ in 0..known_count {
            known.insert(u32_at(cursor)?);
            cursor += 4;
        }
        let fresh_count = u32_at(cursor)? as usize;
        cursor += 4;
        let mut fresh = Vec::with_capacity(fresh_count);
        for _ in 0..fresh_count {
            fresh.push(u32_at(cursor)?);
            cursor += 4;
        }
        if cursor != bytes.len() {
            return Err(CodecError::Oversized {
                expected: cursor,
                got: bytes.len(),
            });
        }
        self.horizon = horizon;
        self.known = known;
        self.fresh = fresh;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{connected_erdos_renyi, cycle_graph, GeneratorConfig};
    use freelunch_graph::traversal::ball;
    use freelunch_graph::MultiGraph;
    use freelunch_runtime::{Network, NetworkConfig};

    fn run_gathering(graph: &MultiGraph, t: u32) -> Vec<Vec<u32>> {
        let run = |shards: usize| {
            let config = NetworkConfig::with_seed(0).sharded(shards);
            let mut network =
                Network::new(graph, config, |node, _| BallGathering::new(node, t)).unwrap();
            network.run_rounds(t).unwrap();
            network
                .programs()
                .iter()
                .map(BallGathering::known_ids)
                .collect::<Vec<_>>()
        };
        let sequential = run(1);
        // Every gathering test doubles as a sharded-engine equivalence check.
        assert_eq!(sequential, run(2));
        sequential
    }

    #[test]
    fn gathers_exactly_the_t_ball() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(60, 3), 0.08).unwrap();
        for t in [0u32, 1, 2, 3] {
            let views = run_gathering(&graph, t);
            for v in graph.nodes() {
                let expected: Vec<u32> = ball(&graph, v, t)
                    .unwrap()
                    .into_iter()
                    .map(NodeId::raw)
                    .collect();
                assert_eq!(views[v.index()], expected, "node {v}, t={t}");
            }
        }
    }

    #[test]
    fn cycle_ball_sizes_are_correct() {
        let graph = cycle_graph(&GeneratorConfig::new(12, 0)).unwrap();
        let views = run_gathering(&graph, 2);
        assert!(views.iter().all(|view| view.len() == 5));
    }

    #[test]
    fn horizon_zero_knows_only_itself() {
        let graph = cycle_graph(&GeneratorConfig::new(5, 0)).unwrap();
        let views = run_gathering(&graph, 0);
        for (v, view) in views.iter().enumerate() {
            assert_eq!(view, &vec![v as u32]);
        }
    }
}
