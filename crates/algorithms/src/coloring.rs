//! Randomized `(Δ+1)`-coloring — another classic `O(log n)`-round LOCAL
//! algorithm used as a simulation target.
//!
//! Each phase, every uncolored node proposes a color drawn uniformly from
//! its remaining palette and keeps it if no uncolored neighbor proposed the
//! same color; colored neighbors' colors are removed from the palette.

use freelunch_runtime::transport::{check_size_and_padding, pad_to_size, CodecError, WireCodec};
use freelunch_runtime::{Context, Envelope, NodeProgram};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Messages exchanged by the coloring algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColoringMessage {
    /// Tentative color proposed this phase.
    Proposal(u32),
    /// Final color adopted by the sender.
    Final(u32),
}

/// Wire encoding: a tag byte (0 = `Proposal`, 1 = `Final`) plus the color
/// as 4 little-endian bytes, zero-padded to `size_of::<ColoringMessage>()`
/// so the encoded length equals the program's default `payload_bytes`.
impl WireCodec for ColoringMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        let (tag, color) = match self {
            ColoringMessage::Proposal(color) => (0, color),
            ColoringMessage::Final(color) => (1, color),
        };
        buf.push(tag);
        buf.extend_from_slice(&color.to_le_bytes());
        pad_to_size(buf, start, std::mem::size_of::<ColoringMessage>());
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        check_size_and_padding(bytes, 5, std::mem::size_of::<ColoringMessage>())?;
        let color = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
        match bytes[0] {
            0 => Ok(ColoringMessage::Proposal(color)),
            1 => Ok(ColoringMessage::Final(color)),
            tag => Err(CodecError::InvalidTag { tag }),
        }
    }
}

/// The per-node program.
#[derive(Debug)]
pub struct RandomizedColoring {
    palette_size: u32,
    forbidden: HashSet<u32>,
    proposal: Option<u32>,
    color: Option<u32>,
    conflict: bool,
}

impl RandomizedColoring {
    /// Creates the program for a node with the given degree (the palette is
    /// `{0, …, degree}`, i.e. `Δ_v + 1` colors, which always suffices).
    pub fn new(degree: usize) -> Self {
        RandomizedColoring {
            palette_size: degree as u32 + 1,
            forbidden: HashSet::new(),
            proposal: None,
            color: None,
            conflict: false,
        }
    }

    /// The node's final color (meaningful once the execution has halted).
    pub fn color(&self) -> Option<u32> {
        self.color
    }

    fn draw_proposal(&self, rng: &mut impl Rng) -> u32 {
        loop {
            let candidate = rng.gen_range(0..self.palette_size);
            if !self.forbidden.contains(&candidate) {
                return candidate;
            }
        }
    }
}

impl NodeProgram for RandomizedColoring {
    type Message = ColoringMessage;

    fn round(
        &mut self,
        ctx: &mut Context<'_, ColoringMessage>,
        inbox: &[Envelope<ColoringMessage>],
    ) {
        for envelope in inbox {
            match envelope.payload {
                ColoringMessage::Proposal(c) => {
                    if self.proposal == Some(c) {
                        self.conflict = true;
                    }
                }
                ColoringMessage::Final(c) => {
                    self.forbidden.insert(c);
                    if self.proposal == Some(c) {
                        self.conflict = true;
                    }
                }
            }
        }

        if self.color.is_some() {
            ctx.halt();
            return;
        }

        if ctx.round() % 2 == 1 {
            // Propose.
            self.conflict = false;
            let proposal = self.draw_proposal(ctx.rng());
            self.proposal = Some(proposal);
            ctx.broadcast(ColoringMessage::Proposal(proposal));
        } else {
            // Resolve.
            if !self.conflict {
                let color = self
                    .proposal
                    .expect("a proposal was made in the previous round");
                self.color = Some(color);
                ctx.broadcast(ColoringMessage::Final(color));
                ctx.halt();
            }
        }
    }

    /// Checkpoint encoding: palette size, conflict flag, proposal and color
    /// as flagged `u32`s, then the forbidden set *sorted* with a `u32`
    /// count prefix — the set iterates in hash order, so sorting is what
    /// keeps the blob deterministic (all little-endian).
    fn save_state(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.palette_size.to_le_bytes());
        buf.push(u8::from(self.conflict));
        for option in [self.proposal, self.color] {
            match option {
                None => {
                    buf.push(0);
                    buf.extend_from_slice(&0u32.to_le_bytes());
                }
                Some(value) => {
                    buf.push(1);
                    buf.extend_from_slice(&value.to_le_bytes());
                }
            }
        }
        let mut forbidden: Vec<u32> = self.forbidden.iter().copied().collect();
        forbidden.sort_unstable();
        buf.extend_from_slice(&(forbidden.len() as u32).to_le_bytes());
        for color in forbidden {
            buf.extend_from_slice(&color.to_le_bytes());
        }
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        const FIXED: usize = 4 + 1 + 5 + 5 + 4;
        if bytes.len() < FIXED {
            return Err(CodecError::Truncated {
                needed: FIXED,
                got: bytes.len(),
            });
        }
        let u32_at =
            |i: usize| u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
        let palette_size = u32_at(0);
        let conflict = match bytes[4] {
            0 => false,
            1 => true,
            tag => return Err(CodecError::InvalidTag { tag }),
        };
        let flagged = |flag_at: usize| -> Result<Option<u32>, CodecError> {
            let value = u32_at(flag_at + 1);
            match bytes[flag_at] {
                0 if value != 0 => Err(CodecError::InvalidPadding),
                0 => Ok(None),
                1 => Ok(Some(value)),
                tag => Err(CodecError::InvalidTag { tag }),
            }
        };
        let proposal = flagged(5)?;
        let color = flagged(10)?;
        let count = u32_at(15) as usize;
        let expected = FIXED + count * 4;
        if bytes.len() < expected {
            return Err(CodecError::Truncated {
                needed: expected,
                got: bytes.len(),
            });
        }
        if bytes.len() > expected {
            return Err(CodecError::Oversized {
                expected,
                got: bytes.len(),
            });
        }
        self.palette_size = palette_size;
        self.conflict = conflict;
        self.proposal = proposal;
        self.color = color;
        self.forbidden = bytes[FIXED..]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(())
    }
}

/// Verifies that the assignment is a proper coloring with at most
/// `max_degree + 1` colors.
pub fn is_proper_coloring(graph: &freelunch_graph::MultiGraph, colors: &[Option<u32>]) -> bool {
    if colors.iter().any(Option::is_none) {
        return false;
    }
    for edge in graph.edges() {
        if colors[edge.u.index()] == colors[edge.v.index()] {
            return false;
        }
    }
    colors
        .iter()
        .flatten()
        .all(|&c| (c as usize) <= graph.max_degree())
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{complete_graph, connected_erdos_renyi, GeneratorConfig};
    use freelunch_graph::MultiGraph;
    use freelunch_runtime::{Network, NetworkConfig};

    fn run_coloring(graph: &MultiGraph, seed: u64) -> (Vec<Option<u32>>, u64) {
        let run = |shards: usize| {
            let config = NetworkConfig::with_seed(seed).sharded(shards);
            let mut network = Network::new(graph, config, |_, knowledge| {
                RandomizedColoring::new(knowledge.degree())
            })
            .unwrap();
            network.run_until_halt(400).unwrap();
            (
                network
                    .programs()
                    .iter()
                    .map(RandomizedColoring::color)
                    .collect::<Vec<_>>(),
                network.cost().rounds,
            )
        };
        let sequential = run(1);
        // Every coloring test doubles as a sharded-engine equivalence check.
        assert_eq!(sequential, run(2));
        sequential
    }

    #[test]
    fn colors_random_graphs_properly() {
        for seed in 0..4u64 {
            let graph = connected_erdos_renyi(&GeneratorConfig::new(70, seed), 0.1).unwrap();
            let (colors, _) = run_coloring(&graph, seed);
            assert!(is_proper_coloring(&graph, &colors), "seed {seed}");
        }
    }

    #[test]
    fn complete_graph_uses_all_colors() {
        let graph = complete_graph(&GeneratorConfig::new(20, 0)).unwrap();
        let (colors, _) = run_coloring(&graph, 7);
        assert!(is_proper_coloring(&graph, &colors));
        let distinct: HashSet<u32> = colors.iter().flatten().copied().collect();
        assert_eq!(distinct.len(), 20);
    }

    #[test]
    fn terminates_in_logarithmically_many_rounds() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(100, 5), 0.05).unwrap();
        let (colors, rounds) = run_coloring(&graph, 5);
        assert!(is_proper_coloring(&graph, &colors));
        assert!(rounds < 80, "took {rounds} rounds");
    }

    #[test]
    fn validator_detects_conflicts_and_missing_colors() {
        let graph = complete_graph(&GeneratorConfig::new(3, 0)).unwrap();
        assert!(!is_proper_coloring(&graph, &[Some(0), Some(0), Some(1)]));
        assert!(!is_proper_coloring(&graph, &[Some(0), None, Some(1)]));
        assert!(is_proper_coloring(&graph, &[Some(0), Some(2), Some(1)]));
    }
}
