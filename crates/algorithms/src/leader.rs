//! `t`-local leader election: every node elects the largest node ID within
//! its ball `B_{G,t}(v)`.
//!
//! A strictly `t`-round LOCAL task whose output differs from node to node,
//! used to exercise the ball-sufficiency verification of the simulation
//! machinery (unlike global leader election, it is solvable in `t` rounds).

use freelunch_graph::NodeId;
use freelunch_runtime::{Context, Envelope, NodeProgram};

/// The per-node program: iterated maximum.
#[derive(Debug)]
pub struct LocalLeaderElection {
    horizon: u32,
    leader: u32,
}

impl LocalLeaderElection {
    /// Creates the program for `node` with horizon `t`.
    pub fn new(node: NodeId, horizon: u32) -> Self {
        LocalLeaderElection {
            horizon,
            leader: node.raw(),
        }
    }

    /// The elected leader (the largest ID heard so far).
    pub fn leader(&self) -> u32 {
        self.leader
    }
}

impl NodeProgram for LocalLeaderElection {
    type Message = u32;

    fn init(&mut self, ctx: &mut Context<'_, u32>) {
        if self.horizon > 0 {
            ctx.broadcast(self.leader);
        }
    }

    fn round(&mut self, ctx: &mut Context<'_, u32>, inbox: &[Envelope<u32>]) {
        let before = self.leader;
        for envelope in inbox {
            self.leader = self.leader.max(envelope.payload);
        }
        if ctx.round() < self.horizon && self.leader > before {
            ctx.broadcast(self.leader);
        }
        if ctx.round() >= self.horizon {
            ctx.halt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{connected_erdos_renyi, path_graph, GeneratorConfig};
    use freelunch_graph::traversal::ball;
    use freelunch_graph::MultiGraph;
    use freelunch_runtime::{Network, NetworkConfig};

    fn run_election(graph: &MultiGraph, t: u32) -> Vec<u32> {
        let run = |shards: usize| {
            let config = NetworkConfig::with_seed(0).sharded(shards);
            let mut network =
                Network::new(graph, config, |node, _| LocalLeaderElection::new(node, t)).unwrap();
            network.run_rounds(t).unwrap();
            network
                .programs()
                .iter()
                .map(LocalLeaderElection::leader)
                .collect::<Vec<_>>()
        };
        let sequential = run(1);
        // Every election test doubles as a sharded-engine equivalence check.
        assert_eq!(sequential, run(2));
        sequential
    }

    #[test]
    fn elects_the_ball_maximum() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(50, 7), 0.1).unwrap();
        for t in [1u32, 2, 4] {
            let leaders = run_election(&graph, t);
            for v in graph.nodes() {
                let expected = ball(&graph, v, t)
                    .unwrap()
                    .into_iter()
                    .map(NodeId::raw)
                    .max()
                    .unwrap();
                assert_eq!(leaders[v.index()], expected, "node {v}, t={t}");
            }
        }
    }

    #[test]
    fn on_a_path_information_travels_exactly_t_hops() {
        let graph = path_graph(&GeneratorConfig::new(10, 0)).unwrap();
        let leaders = run_election(&graph, 3);
        // Node 0 can only see up to node 3.
        assert_eq!(leaders[0], 3);
        // Node 9 is its own leader.
        assert_eq!(leaders[9], 9);
        // Node 6 sees node 9.
        assert_eq!(leaders[6], 9);
    }

    #[test]
    fn messages_stop_once_nothing_new_is_learned() {
        let graph = path_graph(&GeneratorConfig::new(6, 0)).unwrap();
        let mut network = Network::new(&graph, NetworkConfig::with_seed(0), |node, _| {
            LocalLeaderElection::new(node, 100)
        })
        .unwrap();
        network.run_rounds(20).unwrap();
        // Once every node knows the global maximum (after diameter rounds),
        // no further messages are sent even though the horizon is 100.
        let per_round = &network.metrics().messages_per_round;
        assert!(per_round[10..].iter().all(|&m| m == 0));
    }
}
