//! # freelunch-algorithms
//!
//! Example LOCAL algorithms used as the algorithm `A` of the paper's
//! message-reduction question ("given a `t`-round LOCAL algorithm, simulate
//! it with `o(m)` messages"):
//!
//! * [`mis`] — Luby's randomized maximal independent set;
//! * [`coloring`] — randomized `(Δ+1)`-coloring;
//! * [`broadcast`] — `t`-bounded ball gathering (the canonical `t`-round
//!   task);
//! * [`leader`] — `t`-local leader election (ball maximum);
//! * [`matching`] — randomized maximal matching.
//!
//! Every algorithm is a [`NodeProgram`](freelunch_runtime::NodeProgram)
//! executed by the synchronous runtime, and each module ships a validator
//! (`is_maximal_independent_set`, `is_proper_coloring`, …) used by the
//! end-to-end "free lunch" experiments to confirm that message-reduced
//! executions preserve output correctness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod broadcast;
pub mod coloring;
pub mod leader;
pub mod matching;
pub mod mis;

pub use broadcast::BallGathering;
pub use coloring::{is_proper_coloring, ColoringMessage, RandomizedColoring};
pub use leader::LocalLeaderElection;
pub use matching::{is_maximal_matching, MatchingMessage, MaximalMatching};
pub use mis::{is_maximal_independent_set, LubyMis, MisMessage, MisState};
