//! Randomized maximal matching — a fourth LOCAL simulation target whose
//! output lives on edges rather than nodes.
//!
//! Each phase, every unmatched node picks one incident edge towards an
//! unmatched neighbor uniformly at random and proposes over it; an edge
//! whose two endpoints propose to each other (or a proposal accepted by the
//! receiver) becomes matched. Retired nodes announce themselves so their
//! neighbors stop proposing to them.

use freelunch_graph::EdgeId;
use freelunch_runtime::transport::{check_size_and_padding, pad_to_size, CodecError, WireCodec};
use freelunch_runtime::{Context, Envelope, NodeProgram};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Messages of the matching protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchingMessage {
    /// Proposal to match over the edge the message travels on.
    Propose,
    /// Acceptance of a proposal received in the previous round.
    Accept,
    /// The sender is matched; stop proposing to it.
    Retired,
}

/// Wire encoding: a single tag byte (0 = `Propose`, 1 = `Accept`,
/// 2 = `Retired`), padded to `size_of::<MatchingMessage>()` so the encoded
/// length equals the program's default `payload_bytes`.
impl WireCodec for MatchingMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.push(match self {
            MatchingMessage::Propose => 0,
            MatchingMessage::Accept => 1,
            MatchingMessage::Retired => 2,
        });
        pad_to_size(buf, start, std::mem::size_of::<MatchingMessage>());
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        check_size_and_padding(bytes, 1, std::mem::size_of::<MatchingMessage>())?;
        match bytes[0] {
            0 => Ok(MatchingMessage::Propose),
            1 => Ok(MatchingMessage::Accept),
            2 => Ok(MatchingMessage::Retired),
            tag => Err(CodecError::InvalidTag { tag }),
        }
    }
}

/// The per-node program.
///
/// Phases are two rounds long. In the propose round every unmatched node
/// becomes a *proposer* with probability 1/2 and sends a proposal over one
/// random live edge; in the accept round every unmatched *non-proposer*
/// accepts (at most) one received proposal, which finalises the match on
/// both sides — proposers never accept, so a proposal cannot be accepted by
/// a node that simultaneously matched elsewhere.
#[derive(Debug)]
pub struct MaximalMatching {
    matched_over: Option<EdgeId>,
    retired_sent: bool,
    dead_edges: HashSet<EdgeId>,
    is_proposer: bool,
    proposed_over: Option<EdgeId>,
}

impl MaximalMatching {
    /// Creates the per-node program.
    pub fn new() -> Self {
        MaximalMatching {
            matched_over: None,
            retired_sent: false,
            dead_edges: HashSet::new(),
            is_proposer: false,
            proposed_over: None,
        }
    }

    /// The edge this node is matched over, if any.
    pub fn matched_over(&self) -> Option<EdgeId> {
        self.matched_over
    }

    fn live_edges(&self, ctx: &Context<'_, MatchingMessage>) -> Vec<EdgeId> {
        ctx.ports()
            .iter()
            .filter_map(|p| p.edge_id)
            .filter(|e| !self.dead_edges.contains(e) && Some(*e) != self.matched_over)
            .collect()
    }

    fn retire(&mut self, ctx: &mut Context<'_, MatchingMessage>) {
        if !self.retired_sent {
            for edge in self.live_edges(ctx) {
                ctx.send(edge, MatchingMessage::Retired);
            }
            self.retired_sent = true;
        }
        ctx.halt();
    }
}

impl Default for MaximalMatching {
    fn default() -> Self {
        MaximalMatching::new()
    }
}

impl NodeProgram for MaximalMatching {
    type Message = MatchingMessage;

    fn round(
        &mut self,
        ctx: &mut Context<'_, MatchingMessage>,
        inbox: &[Envelope<MatchingMessage>],
    ) {
        // Process incoming traffic.
        let mut proposals: Vec<EdgeId> = Vec::new();
        for envelope in inbox {
            match envelope.payload {
                MatchingMessage::Propose => proposals.push(envelope.edge),
                MatchingMessage::Accept => {
                    if self.matched_over.is_none()
                        && self.is_proposer
                        && Some(envelope.edge) == self.proposed_over
                    {
                        self.matched_over = Some(envelope.edge);
                    }
                }
                MatchingMessage::Retired => {
                    self.dead_edges.insert(envelope.edge);
                }
            }
        }

        if ctx.round() % 2 == 1 {
            // Propose round. A matched node (finalised by an Accept that just
            // arrived, or earlier) retires instead of proposing.
            if self.matched_over.is_some() {
                self.retire(ctx);
                return;
            }
            let live = self.live_edges(ctx);
            if live.is_empty() {
                ctx.halt();
                return;
            }
            self.is_proposer = ctx.rng().gen_bool(0.5);
            self.proposed_over = None;
            if self.is_proposer {
                let pick = live[ctx.rng().gen_range(0..live.len())];
                self.proposed_over = Some(pick);
                ctx.send(pick, MatchingMessage::Propose);
            }
        } else {
            // Accept round: only unmatched non-proposers accept.
            if self.matched_over.is_none() && !self.is_proposer {
                if let Some(&edge) = proposals.first() {
                    self.matched_over = Some(edge);
                    ctx.send(edge, MatchingMessage::Accept);
                }
            }
        }
    }
}

/// Verifies that the per-node matched edges form a maximal matching: matched
/// edges agree on both endpoints, no node is matched twice, and no edge has
/// two unmatched endpoints.
pub fn is_maximal_matching(
    graph: &freelunch_graph::MultiGraph,
    matched: &[Option<EdgeId>],
) -> bool {
    for (v, m) in matched.iter().enumerate() {
        if let Some(edge) = m {
            let Ok((a, b)) = graph.endpoints(*edge) else {
                return false;
            };
            let other = if a.index() == v { b } else { a };
            if matched[other.index()] != Some(*edge) {
                return false;
            }
        }
    }
    for edge in graph.edges() {
        if matched[edge.u.index()].is_none() && matched[edge.v.index()].is_none() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{complete_graph, connected_erdos_renyi, GeneratorConfig};
    use freelunch_graph::MultiGraph;
    use freelunch_runtime::{Network, NetworkConfig};

    fn run_matching(graph: &MultiGraph, seed: u64) -> Vec<Option<EdgeId>> {
        let run = |shards: usize| {
            let config = NetworkConfig::with_seed(seed).sharded(shards);
            let mut network = Network::new(graph, config, |_, _| MaximalMatching::new()).unwrap();
            network.run_until_halt(500).unwrap();
            network
                .programs()
                .iter()
                .map(MaximalMatching::matched_over)
                .collect::<Vec<_>>()
        };
        let sequential = run(1);
        // Every matching test doubles as a sharded-engine equivalence check.
        assert_eq!(sequential, run(2));
        sequential
    }

    #[test]
    fn produces_a_maximal_matching_on_random_graphs() {
        for seed in 0..4u64 {
            let graph = connected_erdos_renyi(&GeneratorConfig::new(60, seed), 0.1).unwrap();
            let matched = run_matching(&graph, seed);
            assert!(is_maximal_matching(&graph, &matched), "seed {seed}");
        }
    }

    #[test]
    fn complete_graph_matches_almost_everyone() {
        let graph = complete_graph(&GeneratorConfig::new(21, 0)).unwrap();
        let matched = run_matching(&graph, 5);
        assert!(is_maximal_matching(&graph, &matched));
        let unmatched = matched.iter().filter(|m| m.is_none()).count();
        // An odd clique leaves exactly one node unmatched.
        assert_eq!(unmatched, 1);
    }

    #[test]
    fn validator_detects_inconsistencies() {
        let graph = complete_graph(&GeneratorConfig::new(3, 0)).unwrap();
        // Node 0 claims edge 0 (0-1) but node 1 does not.
        assert!(!is_maximal_matching(
            &graph,
            &[Some(EdgeId::new(0)), None, None]
        ));
        // Edge (1,2) has both endpoints unmatched.
        assert!(!is_maximal_matching(&graph, &[None, None, None]));
        // A proper maximal matching.
        assert!(is_maximal_matching(
            &graph,
            &[Some(EdgeId::new(0)), Some(EdgeId::new(0)), None]
        ));
    }
}
