//! Luby's randomized maximal independent set (MIS) — a classic `O(log n)`
//! round LOCAL algorithm used as a simulation target for the
//! message-reduction schemes.
//!
//! In each phase every undecided node draws a random priority and broadcasts
//! it; a node joins the MIS if its priority beats all undecided neighbors,
//! and a node with a neighbor in the MIS leaves the graph. One phase takes
//! two communication rounds here (priority exchange, then membership
//! announcement).

use freelunch_runtime::transport::{check_size_and_padding, pad_to_size, CodecError, WireCodec};
use freelunch_runtime::{Context, Envelope, NodeProgram};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Decision state of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MisState {
    /// Still competing.
    Undecided,
    /// Joined the independent set.
    InSet,
    /// A neighbor joined the set; this node is permanently out.
    OutOfSet,
}

/// Messages exchanged by the algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MisMessage {
    /// Random priority drawn for the current phase.
    Priority(u64),
    /// Announcement that the sender joined the MIS.
    Joined,
    /// Announcement that the sender is out (its edges can be ignored from
    /// now on).
    Retired,
}

/// Wire encoding: a tag byte (0 = `Priority`, 1 = `Joined`, 2 = `Retired`),
/// the priority as 8 little-endian bytes when present, zero-padded to
/// `size_of::<MisMessage>()` so the encoded length equals the program's
/// default `payload_bytes`.
impl WireCodec for MisMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        match self {
            MisMessage::Priority(priority) => {
                buf.push(0);
                buf.extend_from_slice(&priority.to_le_bytes());
            }
            MisMessage::Joined => buf.push(1),
            MisMessage::Retired => buf.push(2),
        }
        pad_to_size(buf, start, std::mem::size_of::<MisMessage>());
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        const SIZE: usize = std::mem::size_of::<MisMessage>();
        match bytes.first() {
            Some(0) => {
                check_size_and_padding(bytes, 9, SIZE)?;
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&bytes[1..9]);
                Ok(MisMessage::Priority(u64::from_le_bytes(raw)))
            }
            Some(1) => {
                check_size_and_padding(bytes, 1, SIZE)?;
                Ok(MisMessage::Joined)
            }
            Some(2) => {
                check_size_and_padding(bytes, 1, SIZE)?;
                Ok(MisMessage::Retired)
            }
            Some(&tag) => Err(CodecError::InvalidTag { tag }),
            None => Err(CodecError::Truncated {
                needed: SIZE,
                got: 0,
            }),
        }
    }
}

/// Luby's MIS as a node program.
#[derive(Debug)]
pub struct LubyMis {
    state: MisState,
    /// Ports whose neighbor is still undecided.
    active_ports: Vec<usize>,
    my_priority: u64,
    /// Highest priority heard from an active neighbor in the current phase.
    best_neighbor_priority: Option<u64>,
}

impl LubyMis {
    /// Creates the per-node program.
    pub fn new(degree: usize) -> Self {
        LubyMis {
            state: MisState::Undecided,
            active_ports: (0..degree).collect(),
            my_priority: 0,
            best_neighbor_priority: None,
        }
    }

    /// The node's decision (meaningful once the execution has halted).
    pub fn state(&self) -> MisState {
        self.state
    }
}

impl NodeProgram for LubyMis {
    type Message = MisMessage;

    fn round(&mut self, ctx: &mut Context<'_, MisMessage>, inbox: &[Envelope<MisMessage>]) {
        // Membership / retirement notifications are processed first: they can
        // settle this node or shrink its active neighborhood.
        let mut neighbor_joined = false;
        for envelope in inbox {
            match envelope.payload {
                MisMessage::Joined => neighbor_joined = true,
                MisMessage::Retired => {
                    // The sender's port is unknown; retire lazily by priority
                    // silence (it will simply stop sending priorities).
                }
                MisMessage::Priority(p) => {
                    self.best_neighbor_priority =
                        Some(self.best_neighbor_priority.map_or(p, |b| b.max(p)));
                }
            }
        }

        if self.state != MisState::Undecided {
            ctx.halt();
            return;
        }
        if neighbor_joined {
            self.state = MisState::OutOfSet;
            for port in self.active_ports.clone() {
                ctx.send_port(port, MisMessage::Retired);
            }
            ctx.halt();
            return;
        }

        // Phases are two rounds long: odd rounds exchange priorities, even
        // rounds resolve them.
        if ctx.round() % 2 == 1 {
            self.my_priority = ctx.rng().gen();
            self.best_neighbor_priority = None;
            if self.active_ports.is_empty() {
                // No undecided neighbors left: join immediately.
                self.state = MisState::InSet;
                ctx.halt();
                return;
            }
            for port in self.active_ports.clone() {
                ctx.send_port(port, MisMessage::Priority(self.my_priority));
            }
        } else if ctx.round() > 1 {
            let wins = match self.best_neighbor_priority {
                Some(best) => self.my_priority > best,
                None => true,
            };
            if wins {
                self.state = MisState::InSet;
                for port in self.active_ports.clone() {
                    ctx.send_port(port, MisMessage::Joined);
                }
                ctx.halt();
            }
        }
    }

    /// Checkpoint encoding: decision tag, current priority, the best
    /// neighbor priority as a flagged `u64`, then the active-port list with
    /// a `u32` count prefix (all little-endian).
    fn save_state(&self, buf: &mut Vec<u8>) {
        buf.push(match self.state {
            MisState::Undecided => 0,
            MisState::InSet => 1,
            MisState::OutOfSet => 2,
        });
        buf.extend_from_slice(&self.my_priority.to_le_bytes());
        match self.best_neighbor_priority {
            None => {
                buf.push(0);
                buf.extend_from_slice(&0u64.to_le_bytes());
            }
            Some(best) => {
                buf.push(1);
                buf.extend_from_slice(&best.to_le_bytes());
            }
        }
        buf.extend_from_slice(&(self.active_ports.len() as u32).to_le_bytes());
        for &port in &self.active_ports {
            buf.extend_from_slice(&(port as u32).to_le_bytes());
        }
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        const FIXED: usize = 1 + 8 + 1 + 8 + 4;
        if bytes.len() < FIXED {
            return Err(CodecError::Truncated {
                needed: FIXED,
                got: bytes.len(),
            });
        }
        let state = match bytes[0] {
            0 => MisState::Undecided,
            1 => MisState::InSet,
            2 => MisState::OutOfSet,
            tag => return Err(CodecError::InvalidTag { tag }),
        };
        let mut raw8 = [0u8; 8];
        raw8.copy_from_slice(&bytes[1..9]);
        let my_priority = u64::from_le_bytes(raw8);
        raw8.copy_from_slice(&bytes[10..18]);
        let best = u64::from_le_bytes(raw8);
        let best_neighbor_priority = match bytes[9] {
            0 if best != 0 => return Err(CodecError::InvalidPadding),
            0 => None,
            1 => Some(best),
            tag => return Err(CodecError::InvalidTag { tag }),
        };
        let mut raw4 = [0u8; 4];
        raw4.copy_from_slice(&bytes[18..22]);
        let count = u32::from_le_bytes(raw4) as usize;
        let expected = FIXED + count * 4;
        if bytes.len() < expected {
            return Err(CodecError::Truncated {
                needed: expected,
                got: bytes.len(),
            });
        }
        if bytes.len() > expected {
            return Err(CodecError::Oversized {
                expected,
                got: bytes.len(),
            });
        }
        self.state = state;
        self.my_priority = my_priority;
        self.best_neighbor_priority = best_neighbor_priority;
        self.active_ports = bytes[FIXED..]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]) as usize)
            .collect();
        Ok(())
    }
}

/// Verifies that the per-node states form a maximal independent set of the
/// graph: no two adjacent nodes are in the set, and every out-of-set node has
/// a neighbor in the set.
pub fn is_maximal_independent_set(
    graph: &freelunch_graph::MultiGraph,
    states: &[MisState],
) -> bool {
    for edge in graph.edges() {
        if states[edge.u.index()] == MisState::InSet && states[edge.v.index()] == MisState::InSet {
            return false;
        }
    }
    for v in graph.nodes() {
        match states[v.index()] {
            MisState::InSet => {}
            _ => {
                let covered = graph
                    .incident_edges(v)
                    .iter()
                    .any(|ie| states[ie.neighbor.index()] == MisState::InSet);
                if !covered {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{
        complete_graph, connected_erdos_renyi, cycle_graph, GeneratorConfig,
    };
    use freelunch_graph::MultiGraph;
    use freelunch_runtime::{Network, NetworkConfig};

    fn run_mis(graph: &MultiGraph, seed: u64) -> (Vec<MisState>, u64) {
        let run = |shards: usize| {
            let config = NetworkConfig::with_seed(seed).sharded(shards);
            let mut network = Network::new(graph, config, |_, knowledge| {
                LubyMis::new(knowledge.degree())
            })
            .unwrap();
            network.run_until_halt(200).unwrap();
            let rounds = network.cost().rounds;
            (
                network
                    .programs()
                    .iter()
                    .map(LubyMis::state)
                    .collect::<Vec<_>>(),
                rounds,
            )
        };
        let sequential = run(1);
        // Every MIS test doubles as a sharded-engine equivalence check.
        assert_eq!(sequential, run(2));
        sequential
    }

    #[test]
    fn produces_a_maximal_independent_set_on_random_graphs() {
        for seed in 0..5u64 {
            let graph = connected_erdos_renyi(&GeneratorConfig::new(80, seed), 0.1).unwrap();
            let (states, _) = run_mis(&graph, seed);
            assert!(is_maximal_independent_set(&graph, &states), "seed {seed}");
        }
    }

    #[test]
    fn complete_graph_selects_exactly_one_node() {
        let graph = complete_graph(&GeneratorConfig::new(40, 0)).unwrap();
        let (states, _) = run_mis(&graph, 3);
        assert_eq!(states.iter().filter(|s| **s == MisState::InSet).count(), 1);
        assert!(is_maximal_independent_set(&graph, &states));
    }

    #[test]
    fn cycle_terminates_quickly() {
        let graph = cycle_graph(&GeneratorConfig::new(50, 0)).unwrap();
        let (states, rounds) = run_mis(&graph, 1);
        assert!(is_maximal_independent_set(&graph, &states));
        // Luby terminates in O(log n) phases whp; allow a generous margin.
        assert!(rounds < 60, "took {rounds} rounds");
    }

    #[test]
    fn isolated_nodes_join_the_set() {
        let graph = MultiGraph::new(5);
        let (states, _) = run_mis(&graph, 0);
        assert!(states.iter().all(|s| *s == MisState::InSet));
    }

    #[test]
    fn validator_detects_broken_sets() {
        let graph = cycle_graph(&GeneratorConfig::new(4, 0)).unwrap();
        // Adjacent members.
        assert!(!is_maximal_independent_set(
            &graph,
            &[
                MisState::InSet,
                MisState::InSet,
                MisState::OutOfSet,
                MisState::OutOfSet
            ]
        ));
        // Uncovered node.
        assert!(!is_maximal_independent_set(
            &graph,
            &[
                MisState::OutOfSet,
                MisState::OutOfSet,
                MisState::OutOfSet,
                MisState::OutOfSet
            ]
        ));
        // A valid configuration.
        assert!(is_maximal_independent_set(
            &graph,
            &[
                MisState::InSet,
                MisState::OutOfSet,
                MisState::InSet,
                MisState::OutOfSet
            ]
        ));
    }
}
