//! The Baswana–Sen `(2k−1)`-spanner construction \[5\] — the clustering-based
//! algorithm `Sampler` is "inspired by" (Section 1.3) and the natural
//! baseline for it.
//!
//! This is the unweighted specialisation: `k−1` clustering phases in which
//! surviving clusters are sampled with probability `n^{-1/k}`, non-sampled
//! nodes either join an adjacent sampled cluster (adding the connecting edge)
//! or connect to every adjacent cluster, followed by a final
//! cluster-joining phase. The expected spanner size is `O(k·n^{1+1/k})` and
//! the stretch is `2k−1`.
//!
//! The distributed cost is the point of comparison with `Sampler`: in every
//! phase each node exchanges its cluster identifier with **all** of its
//! neighbors, so the message complexity is `Θ(k·m)` — the `Ω(m)` barrier the
//! paper's algorithm removes.
//!
//! Each phase's cluster-identifier wave is metered through the
//! workspace-wide [`MessageLedger`]: every
//! still-alive edge carries one 4-byte identifier in each direction per
//! wave. Ledger round slots count these communication waves;
//! [`CostReport::rounds`] stays the authoritative round complexity of the
//! protocol (it also charges the silent coordination rounds). See
//! `docs/METRICS.md` for the contract.

use crate::error::{BaselineError, BaselineResult};
use freelunch_core::planner::{GraphStats, SpannerProfile};
use freelunch_core::spanner_api::{SpannerAlgorithm, SpannerResult};
use freelunch_core::CoreResult;
use freelunch_graph::{EdgeId, MultiGraph, NodeId};
use freelunch_runtime::{edge_slot_count, CostReport, MessageLedger};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Wire size charged per cluster-identifier message (a `u32` center ID).
const CLUSTER_ID_BYTES: u64 = 4;

/// The Baswana–Sen construction with stretch parameter `k` (stretch `2k−1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaswanaSen {
    /// Stretch parameter `k ≥ 1`; the spanner has stretch `2k−1` and
    /// expected size `O(k·n^{1+1/k})`.
    pub k: u32,
}

impl BaswanaSen {
    /// Creates the algorithm for stretch parameter `k`.
    ///
    /// # Errors
    ///
    /// Returns an error if `k` is zero or larger than 20.
    pub fn new(k: u32) -> BaselineResult<Self> {
        if k == 0 || k > 20 {
            return Err(BaselineError::invalid_parameter(format!(
                "k must be in 1..=20, got {k}"
            )));
        }
        Ok(BaswanaSen { k })
    }

    /// The stretch guarantee `2k − 1`.
    pub fn stretch(&self) -> u32 {
        2 * self.k - 1
    }

    /// Rebuild-from-scratch comparator for the dynamic-graph experiments:
    /// the rounds and messages a full re-run of the construction on the
    /// current (post-churn) graph would cost. This is the `Θ(k·m)` bill an
    /// incremental repair
    /// ([`IncrementalSpanner`](freelunch_core::maintain::IncrementalSpanner))
    /// avoids paying on every event; `exp_churn` reports the two side by
    /// side (see `docs/CHURN.md`).
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty.
    pub fn rebuild_cost(&self, graph: &MultiGraph, seed: u64) -> BaselineResult<CostReport> {
        Ok(self.run(graph, seed)?.cost)
    }

    /// Runs the construction.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty.
    pub fn run(&self, graph: &MultiGraph, seed: u64) -> BaselineResult<BaswanaSenOutcome> {
        if graph.node_count() == 0 {
            return Err(BaselineError::invalid_parameter(
                "the input graph has no nodes",
            ));
        }
        let n = graph.node_count();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sample_probability = (n as f64).powf(-1.0 / f64::from(self.k)).clamp(0.0, 1.0);

        // cluster_of[v] = the cluster (identified by its center node) v
        // currently belongs to, or None if v has dropped out of the
        // clustering.
        let mut cluster_of: Vec<Option<NodeId>> = graph.nodes().map(Some).collect();
        // Edges still alive (not yet discarded).
        let mut alive: BTreeSet<EdgeId> = graph.edge_ids().collect();
        let mut spanner: BTreeSet<EdgeId> = BTreeSet::new();
        // One ledger round slot per communication wave; `alive` iterates in
        // ascending edge order, so the accumulation is canonical.
        let mut ledger = MessageLedger::new(edge_slot_count(graph.edge_ids()));
        let mut rounds: u64 = 0;

        for _phase in 1..self.k {
            // Every alive edge carries the cluster identifiers of both
            // endpoints in both directions: Θ(m) messages per phase.
            ledger.start_round();
            for &edge in &alive {
                ledger.record_edge(edge, CLUSTER_ID_BYTES);
                ledger.record_edge(edge, CLUSTER_ID_BYTES);
            }
            rounds += 3; // sample + announce + join, as in the distributed version.

            // Sample clusters.
            let mut sampled: HashMap<NodeId, bool> = HashMap::new();
            for center in cluster_of.iter().flatten() {
                sampled
                    .entry(*center)
                    .or_insert_with(|| rng.gen_bool(sample_probability));
            }

            let mut next_cluster_of = cluster_of.clone();
            for v in graph.nodes() {
                let Some(current) = cluster_of[v.index()] else {
                    continue;
                };
                if *sampled.get(&current).unwrap_or(&false) {
                    continue; // Nodes of sampled clusters carry on unchanged.
                }
                // Group v's alive incident edges by the neighbor's cluster.
                let mut by_cluster: HashMap<NodeId, EdgeId> = HashMap::new();
                let mut sampled_neighbor: Option<(NodeId, EdgeId)> = None;
                for ie in graph.incident_edges(v) {
                    if !alive.contains(&ie.edge) {
                        continue;
                    }
                    let Some(neighbor_cluster) = cluster_of[ie.neighbor.index()] else {
                        continue;
                    };
                    by_cluster.entry(neighbor_cluster).or_insert(ie.edge);
                    if sampled_neighbor.is_none()
                        && *sampled.get(&neighbor_cluster).unwrap_or(&false)
                    {
                        sampled_neighbor = Some((neighbor_cluster, ie.edge));
                    }
                }
                match sampled_neighbor {
                    Some((cluster, edge)) => {
                        // Join the sampled cluster; keep other edges alive for
                        // later phases, discard the intra-cluster ones.
                        spanner.insert(edge);
                        next_cluster_of[v.index()] = Some(cluster);
                        for ie in graph.incident_edges(v) {
                            if cluster_of[ie.neighbor.index()] == Some(cluster) {
                                alive.remove(&ie.edge);
                            }
                        }
                    }
                    None => {
                        // Not adjacent to any sampled cluster: connect to every
                        // adjacent cluster once and drop out.
                        for (cluster, edge) in &by_cluster {
                            spanner.insert(*edge);
                            for ie in graph.incident_edges(v) {
                                if cluster_of[ie.neighbor.index()] == Some(*cluster) {
                                    alive.remove(&ie.edge);
                                }
                            }
                        }
                        next_cluster_of[v.index()] = None;
                    }
                }
            }
            cluster_of = next_cluster_of;
        }

        // Final phase: every node connects once to every adjacent surviving
        // cluster.
        ledger.start_round();
        for &edge in &alive {
            ledger.record_edge(edge, CLUSTER_ID_BYTES);
            ledger.record_edge(edge, CLUSTER_ID_BYTES);
        }
        rounds += 2;
        for v in graph.nodes() {
            let mut by_cluster: HashMap<NodeId, EdgeId> = HashMap::new();
            for ie in graph.incident_edges(v) {
                if !alive.contains(&ie.edge) {
                    continue;
                }
                if let Some(cluster) = cluster_of[ie.neighbor.index()] {
                    if cluster_of[v.index()] == Some(cluster) {
                        continue;
                    }
                    by_cluster.entry(cluster).or_insert(ie.edge);
                }
            }
            for edge in by_cluster.values() {
                spanner.insert(*edge);
            }
        }

        Ok(BaswanaSenOutcome {
            spanner: spanner.into_iter().collect(),
            cost: CostReport {
                rounds,
                messages: ledger.total_messages(),
            },
            stretch: self.stretch(),
            ledger,
        })
    }
}

/// Result of a Baswana–Sen run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaswanaSenOutcome {
    /// The spanner edge set.
    pub spanner: Vec<EdgeId>,
    /// Rounds and messages of the distributed execution model (`Θ(k·m)`
    /// messages).
    pub cost: CostReport,
    /// The stretch guarantee `2k−1`.
    pub stretch: u32,
    /// Per-edge / per-wave message accounting (round slots count
    /// communication waves, one per phase; see the module docs).
    pub ledger: MessageLedger,
}

impl SpannerAlgorithm for BaswanaSen {
    fn name(&self) -> String {
        format!("baswana-sen(k={})", self.k)
    }

    fn construct(&self, graph: &MultiGraph, seed: u64) -> CoreResult<SpannerResult> {
        let outcome = self
            .run(graph, seed)
            .map_err(|e| freelunch_core::CoreError::invalid_parameter(e.to_string()))?;
        Ok(SpannerResult {
            algorithm: self.name(),
            edges: outcome.spanner,
            multiplicative_stretch: outcome.stretch,
            additive_stretch: 0,
            cost: outcome.cost,
        })
    }

    /// Cost-model hook for the adaptive planner: the textbook expected size
    /// `|S| ≈ min(m, k · n^{1+1/k})` and construction messages ≈ one
    /// cluster-identifier exchange per incidence per phase, `2·m·k`.
    fn predicted_profile(&self, stats: &GraphStats) -> Option<SpannerProfile> {
        let n = stats.nodes as f64;
        let m = stats.edges as f64;
        let k = f64::from(self.k);
        Some(SpannerProfile {
            edges: m.min(k * n.powf(1.0 + 1.0 / k)),
            construction_messages: 2.0 * m * k,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{complete_graph, connected_erdos_renyi, GeneratorConfig};
    use freelunch_graph::spanner_check::verify_edge_stretch;

    #[test]
    fn parameter_validation() {
        assert!(BaswanaSen::new(0).is_err());
        assert!(BaswanaSen::new(21).is_err());
        assert_eq!(BaswanaSen::new(3).unwrap().stretch(), 5);
    }

    #[test]
    fn stretch_bound_holds_on_random_graphs() {
        for k in 1..=3u32 {
            let graph =
                connected_erdos_renyi(&GeneratorConfig::new(120, u64::from(k)), 0.15).unwrap();
            let algorithm = BaswanaSen::new(k).unwrap();
            let outcome = algorithm.run(&graph, 7).unwrap();
            let report = verify_edge_stretch(&graph, outcome.spanner.iter().copied()).unwrap();
            assert!(
                report.satisfies(algorithm.stretch()),
                "k={k}: stretch {} > {}",
                report.max_stretch,
                algorithm.stretch()
            );
        }
    }

    #[test]
    fn k1_keeps_every_adjacent_pair() {
        // k = 1 means stretch 1: the spanner must contain an edge for every
        // adjacent pair.
        let graph = connected_erdos_renyi(&GeneratorConfig::new(60, 3), 0.2).unwrap();
        let outcome = BaswanaSen::new(1).unwrap().run(&graph, 1).unwrap();
        let report = verify_edge_stretch(&graph, outcome.spanner.iter().copied()).unwrap();
        assert_eq!(report.max_stretch, 1);
    }

    #[test]
    fn dense_graphs_are_sparsified_but_messages_scale_with_m() {
        let graph = complete_graph(&GeneratorConfig::new(200, 0)).unwrap();
        let algorithm = BaswanaSen::new(3).unwrap();
        let outcome = algorithm.run(&graph, 5).unwrap();
        assert!(outcome.spanner.len() < graph.edge_count() / 3);
        // The message count is Ω(m): at least one message per edge.
        assert!(outcome.cost.messages >= graph.edge_count() as u64);
        let report = verify_edge_stretch(&graph, outcome.spanner.iter().copied()).unwrap();
        assert!(report.satisfies(algorithm.stretch()));
    }

    #[test]
    fn implements_the_spanner_algorithm_trait() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(80, 2), 0.2).unwrap();
        let algorithm = BaswanaSen::new(2).unwrap();
        let result = algorithm.construct(&graph, 3).unwrap();
        assert_eq!(result.multiplicative_stretch, 3);
        assert!(result.algorithm.contains("baswana-sen"));
        assert!(!result.edges.is_empty());
    }

    #[test]
    fn ledger_waves_match_cost_and_shrink_with_alive_edges() {
        let graph = complete_graph(&GeneratorConfig::new(60, 0)).unwrap();
        let algorithm = BaswanaSen::new(3).unwrap();
        let outcome = algorithm.run(&graph, 5).unwrap();
        let ledger = &outcome.ledger;
        assert_eq!(ledger.total_messages(), outcome.cost.messages);
        // One wave per phase: k−1 clustering phases + the final joining one.
        assert_eq!(ledger.rounds(), u64::from(algorithm.k));
        // Wave 1 touches every edge twice (all edges start alive), and later
        // waves only touch surviving edges.
        assert_eq!(
            ledger.messages_per_round()[1],
            2 * graph.edge_count() as u64
        );
        assert!(ledger.messages_per_round()[2] <= ledger.messages_per_round()[1]);
        // Each wave puts exactly 2 cluster-ID messages of 4 bytes on an edge.
        assert_eq!(ledger.max_congestion(), 2);
        assert_eq!(ledger.total_bytes(), 4 * ledger.total_messages());
    }

    #[test]
    fn deterministic_per_seed() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(90, 4), 0.2).unwrap();
        let algorithm = BaswanaSen::new(2).unwrap();
        assert_eq!(
            algorithm.run(&graph, 11).unwrap().spanner,
            algorithm.run(&graph, 11).unwrap().spanner
        );
    }

    #[test]
    fn rebuild_cost_matches_a_full_run_and_scales_with_m() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(80, 6), 0.2).unwrap();
        let algorithm = BaswanaSen::new(2).unwrap();
        let cost = algorithm.rebuild_cost(&graph, 9).unwrap();
        assert_eq!(cost, algorithm.run(&graph, 9).unwrap().cost);
        // A rebuild always pays the Ω(m) cluster-identifier waves.
        assert!(cost.messages >= graph.edge_count() as u64);
        assert!(algorithm.rebuild_cost(&MultiGraph::new(0), 0).is_err());
    }

    #[test]
    fn empty_graph_rejected() {
        assert!(BaswanaSen::new(2)
            .unwrap()
            .run(&MultiGraph::new(0), 0)
            .is_err());
    }
}
