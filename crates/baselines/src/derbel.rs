//! A Derbel-et-al-style clustering spanner — the "off-the-shelf" second
//! stage of the paper's two-stage message-reduction scheme (Lemma 12).
//!
//! The paper plugs in the algorithm of Derbel, Gavoille, Peleg and Viennot
//! \[11\], which builds a `(3, O(3^κ))`-spanner with `Õ(3^κ·n^{1+1/O(κ)})`
//! edges in `O(3^κ)` rounds. Only three facts about it matter for the
//! scheme: (a) it is a LOCAL algorithm with a small round complexity `r`,
//! (b) it sends `Ω(m)` messages when run directly (which is why it is
//! *simulated* over the `Sampler` spanner instead), and (c) its output is a
//! sparse low-stretch spanner one can flood on.
//!
//! This module implements a radius-`ρ` clustering spanner with exactly that
//! profile (documented substitution, see DESIGN.md): centers are sampled so
//! that every node is within `ρ` hops of a center whp, every node adds its
//! BFS-tree path to the nearest center, nodes with no nearby center add all
//! their incident edges, and one edge is kept between every pair of adjacent
//! clusters. The result is a constant-stretch (`4ρ+1` for adjacent pairs) spanner built in
//! `O(ρ)` rounds with `Θ(ρ·m)` messages.
//!
//! The direct distributed execution is metered through the workspace-wide
//! [`MessageLedger`]: in each of its
//! `ρ + 2` rounds every edge carries one 4-byte cluster/BFS token in each
//! direction — the `Θ(ρ·m)` bill the two-stage scheme avoids by simulating
//! this construction over the `Sampler` spanner instead. See
//! `docs/METRICS.md` for the contract.

use crate::error::{BaselineError, BaselineResult};
use freelunch_core::planner::{GraphStats, SpannerProfile};
use freelunch_core::spanner_api::{SpannerAlgorithm, SpannerResult};
use freelunch_core::CoreResult;
use freelunch_graph::traversal::bfs;
use freelunch_graph::{EdgeId, MultiGraph, NodeId};
use freelunch_runtime::{edge_slot_count, CostReport, MessageLedger};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Wire size charged per cluster/BFS token message (a `u32` identifier).
const TOKEN_BYTES: u64 = 4;

/// Radius-`ρ` clustering spanner standing in for the Derbel et al. second
/// stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpanner {
    /// Clustering radius `ρ ≥ 1`.
    pub radius: u32,
    /// Center-sampling probability; pass `None` to use the coverage-oriented
    /// default `min(1, 4·ln n / n^{1/(ρ+1)})`… in practice the default keeps
    /// the number of centers around `n^{ρ/(ρ+1)}·log n`.
    pub center_probability: Option<f64>,
}

impl ClusterSpanner {
    /// Creates the algorithm with the default center probability.
    ///
    /// # Errors
    ///
    /// Returns an error if `radius` is zero or larger than 10.
    pub fn new(radius: u32) -> BaselineResult<Self> {
        if radius == 0 || radius > 10 {
            return Err(BaselineError::invalid_parameter(format!(
                "radius must be in 1..=10, got {radius}"
            )));
        }
        Ok(ClusterSpanner {
            radius,
            center_probability: None,
        })
    }

    /// Stretch guarantee for adjacent pairs: `4ρ + 1` (cluster trees have
    /// depth `ρ`, so crossing cluster `a` → cluster `b` costs at most
    /// `2ρ + 1 + 2ρ` hops).
    pub fn stretch(&self) -> u32 {
        4 * self.radius + 1
    }

    fn probability(&self, n: usize) -> f64 {
        match self.center_probability {
            Some(p) => p.clamp(0.0, 1.0),
            None => {
                let n = n.max(2) as f64;
                (4.0 * n.ln() / n.powf(1.0 / f64::from(self.radius + 1))).clamp(0.0, 1.0)
            }
        }
    }

    /// Runs the construction.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty.
    pub fn run(&self, graph: &MultiGraph, seed: u64) -> BaselineResult<ClusterSpannerOutcome> {
        let n = graph.node_count();
        if n == 0 {
            return Err(BaselineError::invalid_parameter(
                "the input graph has no nodes",
            ));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let p = self.probability(n);
        let centers: Vec<NodeId> = graph.nodes().filter(|_| rng.gen_bool(p)).collect();

        let mut spanner: BTreeSet<EdgeId> = BTreeSet::new();
        // Multi-source BFS (run as independent BFS trees, nearest center wins)
        // assigning every node within `radius` of some center to a cluster.
        let mut cluster_of: Vec<Option<NodeId>> = vec![None; n];
        let mut best_dist: Vec<u32> = vec![u32::MAX; n];
        let mut parent_edge: Vec<Option<EdgeId>> = vec![None; n];
        for &center in &centers {
            let tree = bfs(graph, center, Some(self.radius))?;
            for v in graph.nodes() {
                if let Some(d) = tree.distance(v) {
                    if d < best_dist[v.index()] {
                        best_dist[v.index()] = d;
                        cluster_of[v.index()] = Some(center);
                        parent_edge[v.index()] = tree.parent_edge[v.index()];
                    }
                }
            }
        }
        // Add every clustered node's parent edge (the union of these is a
        // forest of BFS trees of depth ≤ radius).
        for v in graph.nodes() {
            if cluster_of[v.index()].is_some() {
                if let Some(edge) = parent_edge[v.index()] {
                    spanner.insert(edge);
                }
            }
        }
        // Nodes with no nearby center keep all their incident edges (with the
        // default probability this is a low-probability event and such nodes
        // have small expected degree contribution).
        let mut uncovered = 0usize;
        for v in graph.nodes() {
            if cluster_of[v.index()].is_none() {
                uncovered += 1;
                for ie in graph.incident_edges(v) {
                    spanner.insert(ie.edge);
                }
            }
        }
        // One edge between every pair of adjacent clusters.
        let mut between: HashMap<(NodeId, NodeId), EdgeId> = HashMap::new();
        for edge in graph.edges() {
            if let (Some(a), Some(b)) = (cluster_of[edge.u.index()], cluster_of[edge.v.index()]) {
                if a != b {
                    let key = if a < b { (a, b) } else { (b, a) };
                    between.entry(key).or_insert(edge.id);
                }
            }
        }
        spanner.extend(between.values().copied());

        // Meter the direct distributed execution: in each of the ρ + 2
        // rounds every edge carries one 4-byte token in each direction
        // (edges iterate in ascending ID order — canonical accumulation).
        let mut ledger = MessageLedger::new(edge_slot_count(graph.edge_ids()));
        for _round in 0..self.radius + 2 {
            ledger.start_round();
            for edge in graph.edge_ids() {
                ledger.record_edge(edge, TOKEN_BYTES);
                ledger.record_edge(edge, TOKEN_BYTES);
            }
        }
        let cost = CostReport {
            rounds: u64::from(self.radius) + 2,
            messages: ledger.total_messages(),
        };
        Ok(ClusterSpannerOutcome {
            spanner: spanner.into_iter().collect(),
            centers: centers.len(),
            uncovered_nodes: uncovered,
            cost,
            stretch: self.stretch(),
            ledger,
        })
    }
}

/// Result of a [`ClusterSpanner`] run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpannerOutcome {
    /// The spanner edge set.
    pub spanner: Vec<EdgeId>,
    /// Number of sampled centers.
    pub centers: usize,
    /// Nodes not covered by any center (they kept all their edges).
    pub uncovered_nodes: usize,
    /// Rounds and messages of the direct distributed execution (`Θ(ρ·m)`
    /// messages — this is what the two-stage scheme avoids paying).
    pub cost: CostReport,
    /// Stretch guarantee `4ρ + 1`.
    pub stretch: u32,
    /// Per-edge / per-round message accounting of the direct execution —
    /// the same meter every other path reports through.
    pub ledger: MessageLedger,
}

impl SpannerAlgorithm for ClusterSpanner {
    fn name(&self) -> String {
        format!("cluster-spanner(radius={})", self.radius)
    }

    fn construct(&self, graph: &MultiGraph, seed: u64) -> CoreResult<SpannerResult> {
        let outcome = self
            .run(graph, seed)
            .map_err(|e| freelunch_core::CoreError::invalid_parameter(e.to_string()))?;
        Ok(SpannerResult {
            algorithm: self.name(),
            edges: outcome.spanner,
            multiplicative_stretch: outcome.stretch,
            additive_stretch: 0,
            cost: outcome.cost,
        })
    }

    /// Cost-model hook for the adaptive planner: a radius-`ρ` clustering
    /// spanner keeps the cluster trees plus surviving crossing edges,
    /// `|S| ≈ min(m, 1.27 · n^{1+1/(ρ+1)})` — the scale calibrated at
    /// ρ = 1 against the recorded `BENCH_message_ledger.json` two-stage rows
    /// (see `docs/PLANNER.md`); construction messages ≈ one token per
    /// incidence per BFS wave, `2·m·(ρ+1)`.
    fn predicted_profile(&self, stats: &GraphStats) -> Option<SpannerProfile> {
        let n = stats.nodes as f64;
        let m = stats.edges as f64;
        let rho = f64::from(self.radius);
        Some(SpannerProfile {
            edges: m.min(1.27 * n.powf(1.0 + 1.0 / (rho + 1.0))),
            construction_messages: 2.0 * m * (rho + 1.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{complete_graph, connected_erdos_renyi, GeneratorConfig};
    use freelunch_graph::spanner_check::verify_edge_stretch;

    #[test]
    fn parameter_validation() {
        assert!(ClusterSpanner::new(0).is_err());
        assert!(ClusterSpanner::new(11).is_err());
        assert_eq!(ClusterSpanner::new(2).unwrap().stretch(), 9);
    }

    #[test]
    fn stretch_bound_holds() {
        for radius in 1..=3u32 {
            let graph =
                connected_erdos_renyi(&GeneratorConfig::new(120, u64::from(radius)), 0.15).unwrap();
            let algorithm = ClusterSpanner::new(radius).unwrap();
            let outcome = algorithm.run(&graph, 9).unwrap();
            let report = verify_edge_stretch(&graph, outcome.spanner.iter().copied()).unwrap();
            assert!(
                report.satisfies(algorithm.stretch()),
                "radius={radius}: stretch {}",
                report.max_stretch
            );
        }
    }

    #[test]
    fn dense_graphs_are_sparsified() {
        // On a complete graph every node is within one hop of any center, so
        // a small explicit center probability keeps the spanner tiny (the
        // conservative default probability targets worst-case coverage and is
        // intentionally higher).
        let graph = complete_graph(&GeneratorConfig::new(200, 0)).unwrap();
        let algorithm = ClusterSpanner {
            radius: 1,
            center_probability: Some(0.1),
        };
        let outcome = algorithm.run(&graph, 3).unwrap();
        assert!(outcome.spanner.len() < graph.edge_count() / 2);
        assert!(outcome.centers > 0);
        assert_eq!(outcome.uncovered_nodes, 0);
        assert!(outcome.cost.messages >= graph.edge_count() as u64);
    }

    #[test]
    fn explicit_probability_one_covers_every_node() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(50, 1), 0.2).unwrap();
        let algorithm = ClusterSpanner {
            radius: 2,
            center_probability: Some(1.0),
        };
        let outcome = algorithm.run(&graph, 1).unwrap();
        assert_eq!(outcome.uncovered_nodes, 0);
        assert_eq!(outcome.centers, graph.node_count());
    }

    #[test]
    fn ledger_charges_every_edge_every_round() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(50, 4), 0.2).unwrap();
        let algorithm = ClusterSpanner::new(2).unwrap();
        let outcome = algorithm.run(&graph, 3).unwrap();
        let ledger = &outcome.ledger;
        assert_eq!(ledger.total_messages(), outcome.cost.messages);
        assert_eq!(ledger.rounds(), outcome.cost.rounds);
        // Every edge carries 2 messages in every round: uniform per-edge
        // totals and congestion exactly 2.
        let per_edge = 2 * (u64::from(algorithm.radius) + 2);
        assert!(ledger.messages_per_edge().iter().all(|&c| c == per_edge));
        assert_eq!(ledger.max_congestion(), 2);
        assert_eq!(ledger.total_bytes(), 4 * ledger.total_messages());
    }

    #[test]
    fn trait_round_complexity_is_small() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(60, 2), 0.2).unwrap();
        let result = ClusterSpanner::new(2)
            .unwrap()
            .construct(&graph, 5)
            .unwrap();
        assert_eq!(result.cost.rounds, 4);
        assert_eq!(result.multiplicative_stretch, 9);
    }
}
