//! Error type of the baselines crate.

use std::error::Error;
use std::fmt;

/// Errors raised by the baseline algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BaselineError {
    /// A parameter violates the algorithm's requirements.
    InvalidParameter {
        /// Description of the violated requirement.
        reason: String,
    },
    /// An error surfaced from the graph substrate.
    Graph(freelunch_graph::GraphError),
    /// An error surfaced from the core crate.
    Core(freelunch_core::CoreError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            BaselineError::Graph(err) => write!(f, "graph error: {err}"),
            BaselineError::Core(err) => write!(f, "core error: {err}"),
        }
    }
}

impl Error for BaselineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BaselineError::Graph(err) => Some(err),
            BaselineError::Core(err) => Some(err),
            BaselineError::InvalidParameter { .. } => None,
        }
    }
}

impl From<freelunch_graph::GraphError> for BaselineError {
    fn from(err: freelunch_graph::GraphError) -> Self {
        BaselineError::Graph(err)
    }
}

impl From<freelunch_core::CoreError> for BaselineError {
    fn from(err: freelunch_core::CoreError) -> Self {
        BaselineError::Core(err)
    }
}

impl BaselineError {
    /// Convenience constructor for [`BaselineError::InvalidParameter`].
    pub fn invalid_parameter(reason: impl Into<String>) -> Self {
        BaselineError::InvalidParameter {
            reason: reason.into(),
        }
    }
}

/// Result alias used by the baselines crate.
pub type BaselineResult<T> = Result<T, BaselineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let err = BaselineError::invalid_parameter("k must be positive");
        assert!(err.to_string().contains("k must be positive"));
        let graph: BaselineError = freelunch_graph::GraphError::invalid_parameter("x").into();
        assert!(graph.source().is_some());
        let core: BaselineError = freelunch_core::CoreError::invalid_parameter("y").into();
        assert!(core.source().is_some());
    }
}
