//! The status-quo baseline: direct flooding on the communication graph.
//!
//! Running a `t`-round LOCAL algorithm directly — or solving the `t`-local
//! broadcast by flooding on `G` itself — costs `Θ(t·m)` messages in the
//! worst case. This is the `Ω(|E|)` term the paper's schemes eliminate; the
//! baseline here measures it exactly (it only forwards *new* tokens, so the
//! measured count is a lower bound on what any naive per-round flooding
//! would send).
//!
//! The run is metered through the workspace-wide
//! [`MessageLedger`] (via the shared
//! flooding engine of `freelunch-core`), so its per-edge, per-round and
//! byte-level numbers are directly comparable with the schemes' — see
//! `docs/METRICS.md` for the contract.

use crate::error::{BaselineError, BaselineResult};
use freelunch_core::planner::GraphStats;
use freelunch_core::reduction::tlocal::{flood_on_subgraph_with_faults, BroadcastOutcome};
use freelunch_graph::MultiGraph;
use freelunch_runtime::{FaultPlan, MessageLedger};
use serde::{Deserialize, Serialize};

/// Cost-model hook for the adaptive planner: the predicted message cost of
/// flooding directly on `G` for `t` rounds, `2·t·m`. Exact for `t ≤ 2` on
/// connected graphs (round 1 floods every token over every edge; after it
/// every node has learned something, so round 2 is fully active) and an
/// upper bound beyond — the same law the planner's
/// [`SchemePlanner::predict_direct`](freelunch_core::planner::SchemePlanner::predict_direct)
/// uses, exposed here so baseline-side tables can price themselves.
pub fn predicted_direct_messages(stats: &GraphStats, t: u32) -> f64 {
    2.0 * f64::from(t) * stats.edges as f64
}

/// Summary of a direct-flooding run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloodingOutcome {
    /// The underlying flooding result (cost, coverage, token counts).
    pub broadcast: BroadcastOutcome,
    /// The worst-case message bound of naive flooding: `2·t·|E|`.
    pub naive_bound: u64,
}

impl FloodingOutcome {
    /// The per-edge / per-round message ledger of the flood — the same meter
    /// the schemes report through.
    pub fn ledger(&self) -> &MessageLedger {
        &self.broadcast.ledger
    }
}

/// Solves the `t`-local broadcast by flooding directly on `G` for `t`
/// rounds, using every edge of the graph.
///
/// # Errors
///
/// Returns an error if the graph is empty.
pub fn direct_flooding(graph: &MultiGraph, t: u32) -> BaselineResult<FloodingOutcome> {
    direct_flooding_with_faults(graph, t, &FaultPlan::none())
}

/// [`direct_flooding`] subjected to a deterministic
/// [`FaultPlan`] — the same plan type and
/// fault-accounting convention as the runtime engine and the reduction
/// schemes, so scheme-vs-baseline robustness comparisons are apples to
/// apples. The empty plan reproduces [`direct_flooding`] exactly.
///
/// # Errors
///
/// Returns an error if the graph is empty or the plan's probabilities are
/// invalid.
pub fn direct_flooding_with_faults(
    graph: &MultiGraph,
    t: u32,
    faults: &FaultPlan,
) -> BaselineResult<FloodingOutcome> {
    if graph.node_count() == 0 {
        return Err(BaselineError::invalid_parameter(
            "the input graph has no nodes",
        ));
    }
    let broadcast = flood_on_subgraph_with_faults(graph, graph.edge_ids(), t, faults)?;
    Ok(FloodingOutcome {
        naive_bound: 2 * u64::from(t) * graph.edge_count() as u64,
        broadcast,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{complete_graph, connected_erdos_renyi, GeneratorConfig};

    #[test]
    fn direct_flooding_covers_balls_and_costs_theta_tm() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(70, 4), 0.3).unwrap();
        let t = 2;
        let outcome = direct_flooding(&graph, t).unwrap();
        assert_eq!(outcome.broadcast.coverage_violations(&graph, t).unwrap(), 0);
        assert_eq!(outcome.broadcast.cost.rounds, u64::from(t));
        // In the first round every node forwards its own token over every
        // edge, so at least 2m messages are sent.
        assert!(outcome.broadcast.cost.messages >= 2 * graph.edge_count() as u64);
        assert!(outcome.broadcast.cost.messages <= outcome.naive_bound);
    }

    #[test]
    fn dense_graphs_pay_for_every_edge() {
        let graph = complete_graph(&GeneratorConfig::new(100, 0)).unwrap();
        let outcome = direct_flooding(&graph, 1).unwrap();
        assert_eq!(
            outcome.broadcast.cost.messages,
            2 * graph.edge_count() as u64
        );
    }

    #[test]
    fn empty_graph_rejected() {
        assert!(direct_flooding(&MultiGraph::new(0), 1).is_err());
    }

    #[test]
    fn cost_model_hook_is_exact_at_small_t() {
        use freelunch_core::planner::StatsConfig;
        let graph = connected_erdos_renyi(&GeneratorConfig::new(80, 6), 0.15).unwrap();
        let stats = GraphStats::sample(&graph.freeze(), &StatsConfig::default()).unwrap();
        for t in [1u32, 2] {
            let outcome = direct_flooding(&graph, t).unwrap();
            assert_eq!(
                predicted_direct_messages(&stats, t),
                outcome.broadcast.cost.messages as f64,
                "t = {t}"
            );
        }
        // Beyond t = 2 the law is an upper bound (the flood quiesces).
        let outcome = direct_flooding(&graph, 6).unwrap();
        assert!(predicted_direct_messages(&stats, 6) >= outcome.broadcast.cost.messages as f64);
    }

    #[test]
    fn faulty_flooding_shares_the_fault_accounting_convention() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(50, 2), 0.2).unwrap();
        let clean = direct_flooding(&graph, 2).unwrap();
        let empty = direct_flooding_with_faults(&graph, 2, &FaultPlan::none()).unwrap();
        assert_eq!(clean, empty);
        let plan = FaultPlan::new(17).with_drop_probability(0.5);
        let faulty = direct_flooding_with_faults(&graph, 2, &plan).unwrap();
        assert_eq!(
            faulty,
            direct_flooding_with_faults(&graph, 2, &plan).unwrap()
        );
        let totals = faulty.ledger().fault_totals();
        assert!(totals.dropped > 0);
        assert_eq!(totals.dropped, totals.dropped_random);
        assert!(faulty.broadcast.cost.messages < clean.broadcast.cost.messages);
    }
}
