//! Gossip-based message reduction (Censor-Hillel et al. \[8\], Haeupler
//! \[22\]) — the prior state of the art the paper improves on.
//!
//! These schemes simulate a `t`-round LOCAL algorithm by spreading every
//! node's information with a random-phone-call style gossip process: in each
//! gossip round every node exchanges its (bundled) knowledge with one random
//! neighbor, so only `Θ(n)` messages fly per round, but the number of rounds
//! needed grows to `O(t·log n + log² n)` — the `log^{Ω(1)} n` round blow-up
//! highlighted in the paper's introduction.
//!
//! The implementation below runs an actual push–pull process (one random
//! incident edge per node per round, both directions) and keeps going until
//! the `t`-local broadcast specification is met, so the measured round count
//! reflects the real behaviour of the process on the given topology rather
//! than the worst-case formula.
//!
//! Traffic is metered through the workspace-wide
//! [`MessageLedger`]: each push–pull
//! exchange charges two messages on the chosen edge, each sized as the full
//! knowledge bitset the endpoints swap (`⌈n/64⌉ × 8` bytes — gossip bundles
//! are big, which the byte view makes visible). See `docs/METRICS.md`.

use crate::error::{BaselineError, BaselineResult};
use freelunch_graph::traversal::ball;
use freelunch_graph::MultiGraph;
use freelunch_runtime::{
    edge_slot_count, CostReport, FaultCause, FaultPlan, MessageFate, MessageLedger,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Push–pull gossip realization of the `t`-local broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GossipBroadcast {
    /// Hard cap on the number of gossip rounds (safety net; the process
    /// normally completes much earlier).
    pub max_rounds: u32,
}

impl Default for GossipBroadcast {
    fn default() -> Self {
        GossipBroadcast {
            max_rounds: 100_000,
        }
    }
}

/// Result of a gossip broadcast run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GossipOutcome {
    /// Rounds and messages spent until the `t`-local broadcast specification
    /// was met.
    pub cost: CostReport,
    /// `true` if the specification was met within the round cap.
    pub completed: bool,
    /// The paper's round-complexity formula for gossip-based schemes:
    /// `t·log₂ n + log₂² n`.
    pub round_formula: f64,
    /// Per-edge / per-round message and byte accounting — the same meter
    /// every other execution path reports through. `ledger.summary()`
    /// always equals [`GossipOutcome::cost`].
    pub ledger: MessageLedger,
}

impl GossipBroadcast {
    /// Runs push–pull gossip until every node of every ball `B_{G,t}(v)`
    /// holds `v`'s token (or the round cap is reached).
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty or `t` leaves nothing to do on
    /// a disconnected node.
    pub fn run(&self, graph: &MultiGraph, t: u32, seed: u64) -> BaselineResult<GossipOutcome> {
        self.run_with_faults(graph, t, seed, &FaultPlan::none())
    }

    /// [`GossipBroadcast::run`] subjected to a deterministic
    /// [`FaultPlan`] — the same plan type (and ledger fault column) as the
    /// runtime engine and the schemes.
    ///
    /// Fault semantics of the push–pull process: a node crashed at round `r`
    /// neither initiates exchanges nor answers them from round `r` on (its
    /// partner's push is dropped as a crash drop and no pull comes back); an
    /// exchange over a cut link loses both directions; each surviving
    /// direction is independently dropped/duplicated through the keyed
    /// ChaCha stream. The `t`-local broadcast specification is evaluated
    /// over the *surviving* nodes only: pairs whose holder or source ever
    /// crashes are excluded from the completion target (tokens of crashed
    /// sources may be unreachable, and callers should bound
    /// [`GossipBroadcast::max_rounds`] when disconnection is possible).
    /// Delivery perturbation is a no-op — an exchange merges full bitsets,
    /// so arrival order cannot matter.
    ///
    /// The empty plan reproduces [`GossipBroadcast::run`] exactly.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty or the plan's probabilities
    /// are invalid.
    pub fn run_with_faults(
        &self,
        graph: &MultiGraph,
        t: u32,
        seed: u64,
        faults: &FaultPlan,
    ) -> BaselineResult<GossipOutcome> {
        let n = graph.node_count();
        if n == 0 {
            return Err(BaselineError::invalid_parameter(
                "the input graph has no nodes",
            ));
        }
        faults
            .validate()
            .map_err(BaselineError::invalid_parameter)?;
        let faulty = faults.affects_messages();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        // Target knowledge: holder -> set of sources it must eventually hold.
        // Stored as a bitset per node; missing[v] counts how many required
        // tokens v still lacks. Pairs involving a node that ever crashes are
        // excluded — the specification is evaluated on the survivors.
        let words = n.div_ceil(64);
        let mut required = vec![0u64; n * words];
        let mut known = vec![0u64; n * words];
        let mut missing_total: u64 = 0;
        // One frozen view serves all n single-source ball queries.
        let frozen = graph.freeze();
        for source in graph.nodes() {
            if faulty && faults.crash_round(source).is_some() {
                continue;
            }
            for holder in ball(&frozen, source, t)? {
                if faulty && faults.crash_round(holder).is_some() {
                    continue;
                }
                let idx = holder.index() * words + source.index() / 64;
                let mask = 1u64 << (source.index() % 64);
                if required[idx] & mask == 0 {
                    required[idx] |= mask;
                    missing_total += 1;
                }
            }
        }
        // Every node trivially knows its own token.
        for v in 0..n {
            let idx = v * words + v / 64;
            let mask = 1u64 << (v % 64);
            known[idx] |= mask;
            if required[idx] & mask != 0 {
                missing_total -= 1;
            }
        }

        // The full-knowledge bitset each endpoint ships in an exchange.
        let exchange_bytes = 8 * words as u64;
        let mut ledger = MessageLedger::new(edge_slot_count(graph.edge_ids()));
        let mut rounds = 0u64;
        while missing_total > 0 && rounds < u64::from(self.max_rounds) {
            rounds += 1;
            let round = u32::try_from(rounds).unwrap_or(u32::MAX);
            ledger.start_round();
            // Each node picks one random incident edge and exchanges full
            // knowledge with the neighbor (push-pull: 2 messages per node
            // with at least one incident edge). Nodes are scanned in
            // ascending order, so the ledger accumulation is canonical.
            // Delivered directions are collected as `(src, dst)` transfers
            // and applied after the scan, exactly as the clean process does.
            let mut transfers: Vec<(usize, usize)> = Vec::with_capacity(2 * n);
            for v in graph.nodes() {
                if faulty && faults.crashed_at(v, round) {
                    continue;
                }
                let incident = graph.incident_edges(v);
                if incident.is_empty() {
                    continue;
                }
                let pick = incident[rng.gen_range(0..incident.len())];
                let partner = pick.neighbor;
                if faulty && faults.link_cut_at(pick.edge, round) {
                    // The exchange dies on the cut link: push and pull both.
                    ledger.record_dropped(FaultCause::LinkCut);
                    ledger.record_dropped(FaultCause::LinkCut);
                    continue;
                }
                if faulty && faults.crashed_at(partner, round) {
                    // The push reaches a dead node; no pull comes back (the
                    // never-sent pull is not a message, so only one drop).
                    ledger.record_dropped(FaultCause::Crash);
                    continue;
                }
                // Push v → partner (msg_index 0), pull partner → v
                // (msg_index 1, keyed to the *pull sender* so it cannot
                // collide with an exchange the partner itself initiates).
                for (src, dst, msg_index) in [(v, partner, 0u32), (partner, v, 1u32)] {
                    let fate = if faulty {
                        faults.message_fate(round, pick.edge, src, msg_index)
                    } else {
                        MessageFate::Deliver
                    };
                    match fate {
                        MessageFate::Drop => ledger.record_dropped(FaultCause::Random),
                        MessageFate::Duplicate => {
                            ledger.record_duplicated();
                            ledger.record_edge(pick.edge, exchange_bytes);
                            ledger.record_edge(pick.edge, exchange_bytes);
                            transfers.push((src.index(), dst.index()));
                        }
                        MessageFate::Deliver => {
                            ledger.record_edge(pick.edge, exchange_bytes);
                            transfers.push((src.index(), dst.index()));
                        }
                    }
                }
            }
            for (src, dst) in transfers {
                for w in 0..words {
                    let shipped = known[src * words + w];
                    let idx = dst * words + w;
                    let newly = shipped & !known[idx];
                    if newly != 0 {
                        known[idx] |= newly;
                        missing_total -= (newly & required[idx]).count_ones() as u64;
                    }
                }
            }
        }

        let nf = (n.max(2)) as f64;
        Ok(GossipOutcome {
            cost: CostReport {
                rounds,
                messages: ledger.total_messages(),
            },
            completed: missing_total == 0,
            round_formula: f64::from(t) * nf.log2() + nf.log2().powi(2),
            ledger,
        })
    }
}

/// Convenience constructor: a gossip broadcast with the default round cap.
pub fn gossip_broadcast(graph: &MultiGraph, t: u32, seed: u64) -> BaselineResult<GossipOutcome> {
    GossipBroadcast::default().run(graph, t, seed)
}

/// Convenience constructor: a fault-injected gossip broadcast with the given
/// round cap (callers should keep the cap tight — faults can make the
/// surviving-node specification unreachable, in which case the process runs
/// until the cap and reports `completed: false`).
pub fn gossip_broadcast_with_faults(
    graph: &MultiGraph,
    t: u32,
    seed: u64,
    faults: &FaultPlan,
    max_rounds: u32,
) -> BaselineResult<GossipOutcome> {
    GossipBroadcast { max_rounds }.run_with_faults(graph, t, seed, faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{complete_graph, connected_erdos_renyi, GeneratorConfig};

    #[test]
    fn gossip_completes_and_uses_few_messages_per_round() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(80, 3), 0.2).unwrap();
        let outcome = gossip_broadcast(&graph, 2, 7).unwrap();
        assert!(outcome.completed);
        assert!(outcome.cost.rounds > 0);
        // Push–pull sends at most 2n messages per round.
        assert!(outcome.cost.messages <= 2 * graph.node_count() as u64 * outcome.cost.rounds);
    }

    #[test]
    fn gossip_needs_more_rounds_than_locality() {
        // The round blow-up compared to t is the weakness the paper fixes.
        let graph = complete_graph(&GeneratorConfig::new(128, 0)).unwrap();
        let t = 1;
        let outcome = gossip_broadcast(&graph, t, 3).unwrap();
        assert!(outcome.completed);
        assert!(
            outcome.cost.rounds > u64::from(t),
            "gossip finished in {} rounds, faster than the locality {t}",
            outcome.cost.rounds
        );
        assert!(outcome.round_formula > f64::from(t));
    }

    #[test]
    fn round_cap_is_respected() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(60, 1), 0.1).unwrap();
        let gossip = GossipBroadcast { max_rounds: 1 };
        let outcome = gossip.run(&graph, 3, 1).unwrap();
        assert!(!outcome.completed);
        assert_eq!(outcome.cost.rounds, 1);
    }

    #[test]
    fn ledger_agrees_with_cost_and_charges_bitset_bytes() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(70, 5), 0.2).unwrap();
        let outcome = gossip_broadcast(&graph, 2, 11).unwrap();
        let ledger = &outcome.ledger;
        assert_eq!(ledger.summary(), outcome.cost);
        assert_eq!(
            ledger.messages_per_edge().iter().sum::<u64>(),
            outcome.cost.messages
        );
        // Every message carries the full ⌈n/64⌉-word bitset.
        let words = graph.node_count().div_ceil(64) as u64;
        assert_eq!(ledger.total_bytes(), outcome.cost.messages * 8 * words);
        // A push–pull exchange puts 2 messages on one edge, and an edge can
        // be picked by both endpoints: congestion is between 2 and 4.
        assert!(ledger.max_congestion() >= 2 && ledger.max_congestion() <= 4);
        // Slot 0 (initialization) is silent for the emulated process.
        assert_eq!(ledger.messages_per_round()[0], 0);
    }

    #[test]
    fn empty_fault_plan_reproduces_the_clean_gossip() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(60, 3), 0.2).unwrap();
        let clean = gossip_broadcast(&graph, 2, 7).unwrap();
        let empty = GossipBroadcast::default()
            .run_with_faults(&graph, 2, 7, &FaultPlan::none())
            .unwrap();
        assert_eq!(clean, empty);
    }

    #[test]
    fn faulty_gossip_replays_and_attributes_drops() {
        use freelunch_graph::NodeId;
        let graph = connected_erdos_renyi(&GeneratorConfig::new(60, 3), 0.2).unwrap();
        let plan = FaultPlan::new(23)
            .with_drop_probability(0.3)
            .with_crash(NodeId::new(5), 0);
        let run = || gossip_broadcast_with_faults(&graph, 2, 7, &plan, 500).unwrap();
        let outcome = run();
        assert_eq!(outcome, run());
        let totals = outcome.ledger.fault_totals();
        assert!(totals.dropped_random > 0);
        // The crashed node's partners lose their pushes into it.
        assert!(totals.dropped_crash > 0);
        // Bytes still track delivered messages exactly.
        let words = graph.node_count().div_ceil(64) as u64;
        assert_eq!(
            outcome.ledger.total_bytes(),
            outcome.cost.messages * 8 * words
        );
    }

    #[test]
    fn fully_cut_star_cannot_complete_and_respects_the_cap() {
        use freelunch_graph::{EdgeId, NodeId};
        // Star of 4: cutting every edge from round 1 makes progress
        // impossible; the run must stop at the cap, incomplete.
        let mut graph = MultiGraph::new(4);
        for v in 1..4u32 {
            graph.add_edge(NodeId::new(0), NodeId::new(v)).unwrap();
        }
        let mut plan = FaultPlan::new(1);
        for e in 0..3u64 {
            plan = plan.with_link_cut(EdgeId::new(e), 1);
        }
        let outcome = gossip_broadcast_with_faults(&graph, 1, 3, &plan, 10).unwrap();
        assert!(!outcome.completed);
        assert_eq!(outcome.cost.rounds, 10);
        assert_eq!(outcome.cost.messages, 0);
        let totals = outcome.ledger.fault_totals();
        // Every attempted exchange died on a cut link (2 drops each).
        assert_eq!(totals.dropped, totals.dropped_link_cut);
        assert_eq!(totals.dropped, 2 * 4 * 10);
    }

    #[test]
    fn empty_graph_rejected_and_determinism() {
        assert!(gossip_broadcast(&MultiGraph::new(0), 1, 0).is_err());
        let graph = connected_erdos_renyi(&GeneratorConfig::new(40, 2), 0.3).unwrap();
        let a = gossip_broadcast(&graph, 2, 9).unwrap();
        let b = gossip_broadcast(&graph, 2, 9).unwrap();
        assert_eq!(a, b);
    }
}
