//! Gossip-based message reduction (Censor-Hillel et al. \[8\], Haeupler
//! \[22\]) — the prior state of the art the paper improves on.
//!
//! These schemes simulate a `t`-round LOCAL algorithm by spreading every
//! node's information with a random-phone-call style gossip process: in each
//! gossip round every node exchanges its (bundled) knowledge with one random
//! neighbor, so only `Θ(n)` messages fly per round, but the number of rounds
//! needed grows to `O(t·log n + log² n)` — the `log^{Ω(1)} n` round blow-up
//! highlighted in the paper's introduction.
//!
//! The implementation below runs an actual push–pull process (one random
//! incident edge per node per round, both directions) and keeps going until
//! the `t`-local broadcast specification is met, so the measured round count
//! reflects the real behaviour of the process on the given topology rather
//! than the worst-case formula.
//!
//! Traffic is metered through the workspace-wide
//! [`MessageLedger`]: each push–pull
//! exchange charges two messages on the chosen edge, each sized as the full
//! knowledge bitset the endpoints swap (`⌈n/64⌉ × 8` bytes — gossip bundles
//! are big, which the byte view makes visible). See `docs/METRICS.md`.

use crate::error::{BaselineError, BaselineResult};
use freelunch_graph::traversal::ball;
use freelunch_graph::MultiGraph;
use freelunch_runtime::{edge_slot_count, CostReport, MessageLedger};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Push–pull gossip realization of the `t`-local broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GossipBroadcast {
    /// Hard cap on the number of gossip rounds (safety net; the process
    /// normally completes much earlier).
    pub max_rounds: u32,
}

impl Default for GossipBroadcast {
    fn default() -> Self {
        GossipBroadcast {
            max_rounds: 100_000,
        }
    }
}

/// Result of a gossip broadcast run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GossipOutcome {
    /// Rounds and messages spent until the `t`-local broadcast specification
    /// was met.
    pub cost: CostReport,
    /// `true` if the specification was met within the round cap.
    pub completed: bool,
    /// The paper's round-complexity formula for gossip-based schemes:
    /// `t·log₂ n + log₂² n`.
    pub round_formula: f64,
    /// Per-edge / per-round message and byte accounting — the same meter
    /// every other execution path reports through. `ledger.summary()`
    /// always equals [`GossipOutcome::cost`].
    pub ledger: MessageLedger,
}

impl GossipBroadcast {
    /// Runs push–pull gossip until every node of every ball `B_{G,t}(v)`
    /// holds `v`'s token (or the round cap is reached).
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty or `t` leaves nothing to do on
    /// a disconnected node.
    pub fn run(&self, graph: &MultiGraph, t: u32, seed: u64) -> BaselineResult<GossipOutcome> {
        let n = graph.node_count();
        if n == 0 {
            return Err(BaselineError::invalid_parameter(
                "the input graph has no nodes",
            ));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        // Target knowledge: holder -> set of sources it must eventually hold.
        // Stored as a bitset per node; missing[v] counts how many required
        // tokens v still lacks.
        let words = n.div_ceil(64);
        let mut required = vec![0u64; n * words];
        let mut known = vec![0u64; n * words];
        let mut missing_total: u64 = 0;
        // One frozen view serves all n single-source ball queries.
        let frozen = graph.freeze();
        for source in graph.nodes() {
            for holder in ball(&frozen, source, t)? {
                let idx = holder.index() * words + source.index() / 64;
                let mask = 1u64 << (source.index() % 64);
                if required[idx] & mask == 0 {
                    required[idx] |= mask;
                    missing_total += 1;
                }
            }
        }
        // Every node trivially knows its own token.
        for v in 0..n {
            let idx = v * words + v / 64;
            let mask = 1u64 << (v % 64);
            known[idx] |= mask;
            if required[idx] & mask != 0 {
                missing_total -= 1;
            }
        }

        // The full-knowledge bitset each endpoint ships in an exchange.
        let exchange_bytes = 8 * words as u64;
        let mut ledger = MessageLedger::new(edge_slot_count(graph.edge_ids()));
        let mut rounds = 0u64;
        while missing_total > 0 && rounds < u64::from(self.max_rounds) {
            rounds += 1;
            ledger.start_round();
            // Each node picks one random incident edge and exchanges full
            // knowledge with the neighbor (push-pull: 2 messages per node
            // with at least one incident edge). Nodes are scanned in
            // ascending order, so the ledger accumulation is canonical.
            let mut exchanges: Vec<(usize, usize)> = Vec::with_capacity(n);
            for v in graph.nodes() {
                let incident = graph.incident_edges(v);
                if incident.is_empty() {
                    continue;
                }
                let pick = incident[rng.gen_range(0..incident.len())];
                exchanges.push((v.index(), pick.neighbor.index()));
                ledger.record_edge(pick.edge, exchange_bytes);
                ledger.record_edge(pick.edge, exchange_bytes);
            }
            for (a, b) in exchanges {
                for w in 0..words {
                    let union = known[a * words + w] | known[b * words + w];
                    for (holder, other) in [(a, b), (b, a)] {
                        let _ = other;
                        let idx = holder * words + w;
                        let newly = union & !known[idx];
                        if newly != 0 {
                            known[idx] = union;
                            missing_total -= (newly & required[idx]).count_ones() as u64;
                        }
                    }
                }
            }
        }

        let nf = (n.max(2)) as f64;
        Ok(GossipOutcome {
            cost: CostReport {
                rounds,
                messages: ledger.total_messages(),
            },
            completed: missing_total == 0,
            round_formula: f64::from(t) * nf.log2() + nf.log2().powi(2),
            ledger,
        })
    }
}

/// Convenience constructor: a gossip broadcast with the default round cap.
pub fn gossip_broadcast(graph: &MultiGraph, t: u32, seed: u64) -> BaselineResult<GossipOutcome> {
    GossipBroadcast::default().run(graph, t, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{complete_graph, connected_erdos_renyi, GeneratorConfig};

    #[test]
    fn gossip_completes_and_uses_few_messages_per_round() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(80, 3), 0.2).unwrap();
        let outcome = gossip_broadcast(&graph, 2, 7).unwrap();
        assert!(outcome.completed);
        assert!(outcome.cost.rounds > 0);
        // Push–pull sends at most 2n messages per round.
        assert!(outcome.cost.messages <= 2 * graph.node_count() as u64 * outcome.cost.rounds);
    }

    #[test]
    fn gossip_needs_more_rounds_than_locality() {
        // The round blow-up compared to t is the weakness the paper fixes.
        let graph = complete_graph(&GeneratorConfig::new(128, 0)).unwrap();
        let t = 1;
        let outcome = gossip_broadcast(&graph, t, 3).unwrap();
        assert!(outcome.completed);
        assert!(
            outcome.cost.rounds > u64::from(t),
            "gossip finished in {} rounds, faster than the locality {t}",
            outcome.cost.rounds
        );
        assert!(outcome.round_formula > f64::from(t));
    }

    #[test]
    fn round_cap_is_respected() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(60, 1), 0.1).unwrap();
        let gossip = GossipBroadcast { max_rounds: 1 };
        let outcome = gossip.run(&graph, 3, 1).unwrap();
        assert!(!outcome.completed);
        assert_eq!(outcome.cost.rounds, 1);
    }

    #[test]
    fn ledger_agrees_with_cost_and_charges_bitset_bytes() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(70, 5), 0.2).unwrap();
        let outcome = gossip_broadcast(&graph, 2, 11).unwrap();
        let ledger = &outcome.ledger;
        assert_eq!(ledger.summary(), outcome.cost);
        assert_eq!(
            ledger.messages_per_edge().iter().sum::<u64>(),
            outcome.cost.messages
        );
        // Every message carries the full ⌈n/64⌉-word bitset.
        let words = graph.node_count().div_ceil(64) as u64;
        assert_eq!(ledger.total_bytes(), outcome.cost.messages * 8 * words);
        // A push–pull exchange puts 2 messages on one edge, and an edge can
        // be picked by both endpoints: congestion is between 2 and 4.
        assert!(ledger.max_congestion() >= 2 && ledger.max_congestion() <= 4);
        // Slot 0 (initialization) is silent for the emulated process.
        assert_eq!(ledger.messages_per_round()[0], 0);
    }

    #[test]
    fn empty_graph_rejected_and_determinism() {
        assert!(gossip_broadcast(&MultiGraph::new(0), 1, 0).is_err());
        let graph = connected_erdos_renyi(&GeneratorConfig::new(40, 2), 0.3).unwrap();
        let a = gossip_broadcast(&graph, 2, 9).unwrap();
        let b = gossip_broadcast(&graph, 2, 9).unwrap();
        assert_eq!(a, b);
    }
}
