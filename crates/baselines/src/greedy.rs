//! The classical greedy `α`-spanner (Althöfer et al.): a centralized quality
//! reference for the size/stretch trade-off.
//!
//! Edges are scanned once; an edge `(u, v)` joins the spanner iff the
//! current spanner does not already contain a `u`–`v` path of length at most
//! `α`. For `α = 2k−1` the result has `O(n^{1+1/k})` edges — essentially the
//! best size achievable for that stretch — so it marks the quality target
//! the distributed constructions are compared against.
//!
//! As a *distributed* procedure this algorithm is hopeless: it needs the
//! whole edge list in one place. Its cost is modelled as collecting the
//! topology at one node (`Θ(m)` messages, diameter-ish rounds), which is
//! also the honest lower bound for any such centralized approach.

use crate::error::{BaselineError, BaselineResult};
use freelunch_core::spanner_api::{SpannerAlgorithm, SpannerResult};
use freelunch_core::CoreResult;
use freelunch_graph::traversal::shortest_path_len;
use freelunch_graph::{EdgeId, MultiGraph};
use freelunch_runtime::CostReport;
use serde::{Deserialize, Serialize};

/// The greedy spanner with stretch bound `alpha`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GreedySpanner {
    /// Maximum allowed stretch for adjacent pairs.
    pub alpha: u32,
}

impl GreedySpanner {
    /// Creates the algorithm.
    ///
    /// # Errors
    ///
    /// Returns an error if `alpha` is zero.
    pub fn new(alpha: u32) -> BaselineResult<Self> {
        if alpha == 0 {
            return Err(BaselineError::invalid_parameter("alpha must be at least 1"));
        }
        Ok(GreedySpanner { alpha })
    }

    /// Runs the greedy construction, returning the spanner edges.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty.
    pub fn run(&self, graph: &MultiGraph) -> BaselineResult<Vec<EdgeId>> {
        if graph.node_count() == 0 {
            return Err(BaselineError::invalid_parameter(
                "the input graph has no nodes",
            ));
        }
        let mut spanner = MultiGraph::new(graph.node_count());
        let mut edges = Vec::new();
        for edge in graph.edges() {
            let reachable =
                shortest_path_len(&spanner, edge.u, edge.v, Some(self.alpha))?.is_some();
            if !reachable {
                spanner.add_edge_with_id(edge.id, edge.u, edge.v)?;
                edges.push(edge.id);
            }
        }
        Ok(edges)
    }
}

impl SpannerAlgorithm for GreedySpanner {
    fn name(&self) -> String {
        format!("greedy(alpha={})", self.alpha)
    }

    fn construct(&self, graph: &MultiGraph, _seed: u64) -> CoreResult<SpannerResult> {
        let edges = self
            .run(graph)
            .map_err(|e| freelunch_core::CoreError::invalid_parameter(e.to_string()))?;
        // Cost model: collect the topology at one node (one message per edge
        // forwarded along a BFS tree of depth ≤ n) and broadcast the result.
        let cost = CostReport {
            rounds: graph.node_count() as u64,
            messages: 2 * graph.edge_count() as u64,
        };
        Ok(SpannerResult {
            algorithm: self.name(),
            edges,
            multiplicative_stretch: self.alpha,
            additive_stretch: 0,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{complete_graph, connected_erdos_renyi, GeneratorConfig};
    use freelunch_graph::spanner_check::verify_edge_stretch;

    #[test]
    fn stretch_bound_holds() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(80, 1), 0.3).unwrap();
        for alpha in [1u32, 3, 5] {
            let edges = GreedySpanner::new(alpha).unwrap().run(&graph).unwrap();
            let report = verify_edge_stretch(&graph, edges.iter().copied()).unwrap();
            assert!(
                report.satisfies(alpha),
                "alpha={alpha}: {}",
                report.max_stretch
            );
        }
    }

    #[test]
    fn alpha_one_keeps_one_edge_per_adjacent_pair() {
        let mut graph = MultiGraph::new(2);
        graph
            .add_edge(
                freelunch_graph::NodeId::new(0),
                freelunch_graph::NodeId::new(1),
            )
            .unwrap();
        graph
            .add_edge(
                freelunch_graph::NodeId::new(0),
                freelunch_graph::NodeId::new(1),
            )
            .unwrap();
        let edges = GreedySpanner::new(1).unwrap().run(&graph).unwrap();
        assert_eq!(edges.len(), 1);
    }

    #[test]
    fn higher_alpha_gives_smaller_spanners() {
        let graph = complete_graph(&GeneratorConfig::new(60, 0)).unwrap();
        let dense = GreedySpanner::new(1).unwrap().run(&graph).unwrap();
        let sparse = GreedySpanner::new(3).unwrap().run(&graph).unwrap();
        let sparser = GreedySpanner::new(5).unwrap().run(&graph).unwrap();
        assert!(sparse.len() < dense.len());
        assert!(sparser.len() <= sparse.len());
        // For alpha = 3 on K_60 the greedy spanner is triangle-free, hence has
        // at most n²/4 edges (Mantel), far below the full n(n−1)/2.
        assert!(sparse.len() <= 60 * 60 / 4);
    }

    #[test]
    fn parameter_validation_and_trait() {
        assert!(GreedySpanner::new(0).is_err());
        let graph = connected_erdos_renyi(&GeneratorConfig::new(40, 2), 0.2).unwrap();
        let result = GreedySpanner::new(3).unwrap().construct(&graph, 0).unwrap();
        assert_eq!(result.multiplicative_stretch, 3);
        assert!(result.cost.messages >= graph.edge_count() as u64);
        assert!(GreedySpanner::new(2)
            .unwrap()
            .run(&MultiGraph::new(0))
            .is_err());
    }
}
