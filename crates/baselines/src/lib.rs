//! # freelunch-baselines
//!
//! The algorithms the paper compares against (or builds on):
//!
//! * [`baswana_sen`] — the Baswana–Sen `(2k−1)`-spanner \[5\], the
//!   clustering construction `Sampler` is inspired by; sends `Θ(k·m)`
//!   messages.
//! * [`derbel`] — a Derbel-et-al-style clustering spanner used as the
//!   "off-the-shelf" second stage of the two-stage scheme (Lemma 12).
//! * [`greedy`] — the centralized greedy spanner, a quality reference for
//!   the size/stretch trade-off.
//! * [`gossip`] — gossip-based message reduction \[8, 22\]: `Θ(n)` messages
//!   per round but an `O(t·log n + log² n)` round blow-up.
//! * [`flooding`] — the status quo: direct flooding on `G`, `Θ(t·m)`
//!   messages.
//!
//! Spanner constructions implement
//! [`SpannerAlgorithm`](freelunch_core::spanner_api::SpannerAlgorithm) so
//! they can be swapped into the message-reduction schemes and compared by
//! the experiment harness.
//!
//! Every baseline meters its traffic through the workspace-wide
//! [`MessageLedger`](freelunch_runtime::metrics::MessageLedger) — the same per-edge /
//! per-round / per-byte meter the runtime engine and the reduction schemes
//! report through — so baseline-vs-scheme comparisons never mix accounting
//! conventions (the exception is [`greedy`], which is centralized and has no
//! per-edge message pattern to meter; its modelled aggregate cost is
//! documented in its module). The contract is specified in
//! `docs/METRICS.md`.
//!
//! The execution baselines ([`flooding`], [`gossip`]) additionally accept a
//! deterministic [`FaultPlan`](freelunch_runtime::fault::FaultPlan) through
//! their `*_with_faults` variants, sharing the engine's fault-accounting
//! column so robustness comparisons stay apples to apples; the construction
//! baselines ([`baswana_sen`], [`derbel`], [`greedy`]) are centralized cost
//! emulations and stay failure-free by design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baswana_sen;
pub mod derbel;
pub mod error;
pub mod flooding;
pub mod gossip;
pub mod greedy;

pub use baswana_sen::{BaswanaSen, BaswanaSenOutcome};
pub use derbel::{ClusterSpanner, ClusterSpannerOutcome};
pub use error::{BaselineError, BaselineResult};
pub use flooding::{direct_flooding, direct_flooding_with_faults, FloodingOutcome};
pub use gossip::{gossip_broadcast, gossip_broadcast_with_faults, GossipBroadcast, GossipOutcome};
pub use greedy::GreedySpanner;
