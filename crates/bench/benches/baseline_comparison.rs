//! Criterion bench: the baseline spanner constructions (Baswana-Sen, greedy,
//! Derbel-style cluster spanner) on a common workload.

use criterion::{criterion_group, criterion_main, Criterion};
use freelunch_baselines::{BaswanaSen, ClusterSpanner, GreedySpanner};
use freelunch_bench::Workload;
use freelunch_core::spanner_api::SpannerAlgorithm;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_spanners");
    group.sample_size(10);
    let graph = Workload::DenseRandom
        .build(256, 3)
        .expect("workload builds");
    group.bench_function("baswana_sen_k3", |b| {
        let algorithm = BaswanaSen::new(3).expect("valid");
        b.iter(|| algorithm.construct(&graph, 5).expect("runs"))
    });
    group.bench_function("cluster_spanner_r1", |b| {
        let algorithm = ClusterSpanner::new(1).expect("valid");
        b.iter(|| algorithm.construct(&graph, 5).expect("runs"))
    });
    group.bench_function("greedy_alpha3", |b| {
        let algorithm = GreedySpanner::new(3).expect("valid");
        b.iter(|| algorithm.construct(&graph, 5).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
