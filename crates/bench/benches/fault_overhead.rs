//! Criterion micro-bench pricing the fault-injection gate: one steady-state
//! round of the message plane with (a) no fault plan, (b) an installed but
//! *empty* plan, and (c) a live drop/duplicate plan.
//!
//! (a) and (b) must be indistinguishable — the engine resolves an empty
//! plan to the failure-free fast path at construction time, so the per-round
//! fault cost of a clean execution is exactly zero (the correctness side of
//! that claim is pinned by `tests/fault_matrix.rs`; this bench watches the
//! wall-clock side). (c) shows what a live plan costs per message: one
//! keyed ChaCha draw plus the pre-pass copy.
//!
//! Set `FAULT_OVERHEAD_SMOKE=1` to shrink the workload for CI
//! (compile + one-iteration smoke).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freelunch_graph::generators::{sparse_connected_erdos_renyi, GeneratorConfig};
use freelunch_graph::MultiGraph;
use freelunch_runtime::{Context, Envelope, FaultPlan, Network, NetworkConfig, NodeProgram};

/// Minimal message-plane load: one broadcast per node per round.
struct Beacon;

impl NodeProgram for Beacon {
    type Message = u64;

    fn init(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(0xFA_17);
    }

    fn round(&mut self, ctx: &mut Context<'_, u64>, _inbox: &[Envelope<u64>]) {
        ctx.broadcast(0xFA_17);
    }
}

fn smoke() -> bool {
    std::env::var_os("FAULT_OVERHEAD_SMOKE").is_some()
}

fn workload() -> MultiGraph {
    let n = if smoke() { 1 << 10 } else { 1 << 15 };
    sparse_connected_erdos_renyi(&GeneratorConfig::new(n, 29), 6.0).expect("workload builds")
}

fn bench_fault_overhead(c: &mut Criterion) {
    let graph = workload();
    let mut group = c.benchmark_group("fault_overhead");
    group.sample_size(if smoke() { 1 } else { 10 });
    let plans: [(&str, FaultPlan); 3] = [
        ("no-plan", FaultPlan::none()),
        ("empty-plan", FaultPlan::new(7)), // resolves to the same fast path
        (
            "drop5-dup5",
            FaultPlan::new(7)
                .with_drop_probability(0.05)
                .with_duplicate_probability(0.05),
        ),
    ];
    for (name, plan) in plans {
        group.bench_with_input(BenchmarkId::new("plan", name), &plan, |b, plan| {
            let config = NetworkConfig::with_seed(3).sharded(1);
            let mut network = Network::with_fault_plan(&graph, config, plan.clone(), |_, _| Beacon)
                .expect("network builds");
            // Prewarm to steady state so the timed rounds allocate nothing
            // on the clean paths.
            network.run_rounds(2).expect("prewarm rounds");
            b.iter(|| {
                network.run_round().expect("round runs");
                network.pending_messages()
            });
        });
    }
    eprintln!(
        "fault_overhead workload: n={}, m={}, {} program sends/round \
         (no-plan and empty-plan must coincide; drop5-dup5 prices the live gate)",
        graph.node_count(),
        graph.edge_count(),
        2 * graph.edge_count()
    );
    group.finish();
}

criterion_group!(benches, bench_fault_overhead);
criterion_main!(benches);
