//! Criterion bench: t-local broadcast on a spanner vs direct flooding
//! (experiments E5/E7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freelunch_baselines::direct_flooding;
use freelunch_bench::{experiment_params, Workload};
use freelunch_core::reduction::tlocal::t_local_broadcast;
use freelunch_core::sampler::Sampler;

fn bench_tlocal_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("t_local_broadcast");
    group.sample_size(10);
    let graph = Workload::DenseRandom
        .build(384, 9)
        .expect("workload builds");
    let params = experiment_params(2);
    let spanner = Sampler::new(params).run(&graph, 7).expect("sampler runs");
    let edges = spanner.spanner_edges().to_vec();
    for t in [1u32, 2] {
        group.bench_with_input(BenchmarkId::new("spanner_flooding", t), &t, |b, &t| {
            b.iter(|| {
                t_local_broadcast(&graph, edges.iter().copied(), t, params.stretch_bound())
                    .expect("broadcast runs")
            })
        });
        group.bench_with_input(BenchmarkId::new("direct_flooding", t), &t, |b, &t| {
            b.iter(|| direct_flooding(&graph, t).expect("flooding runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tlocal_broadcast);
criterion_main!(benches);
