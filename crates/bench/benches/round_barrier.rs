//! Criterion micro-bench isolating the engine's message plane: dispatch +
//! delivery cost per round at shard counts {1, 2, 8}, independent of any
//! program logic.
//!
//! The measured program broadcasts one fixed `u64` per incident edge per
//! round and does nothing else, so each timed iteration is one round of the
//! double-buffered barrier in steady state (the network is prewarmed: all
//! mailbox, outbox and bucket capacity is already grown, making the
//! zero-allocation round path the thing on the clock). A regression in the
//! barrier shows up here even when the `exp_scaling` end-to-end numbers are
//! masked by program cost.
//!
//! Set `ROUND_BARRIER_SMOKE=1` to shrink the workload for CI (compile +
//! one-iteration smoke).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freelunch_graph::generators::{sparse_connected_erdos_renyi, GeneratorConfig};
use freelunch_graph::MultiGraph;
use freelunch_runtime::{Context, Envelope, Network, NetworkConfig, NodeProgram};

/// Minimal message-plane load: one broadcast per node per round, no
/// per-round state, never halts (the bench drives rounds directly).
struct Beacon;

impl NodeProgram for Beacon {
    type Message = u64;

    fn init(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(0xF1EE_1A11);
    }

    fn round(&mut self, ctx: &mut Context<'_, u64>, _inbox: &[Envelope<u64>]) {
        ctx.broadcast(0xF1EE_1A11);
    }
}

fn smoke() -> bool {
    std::env::var_os("ROUND_BARRIER_SMOKE").is_some()
}

fn workload() -> MultiGraph {
    let n = if smoke() { 1 << 10 } else { 1 << 16 };
    sparse_connected_erdos_renyi(&GeneratorConfig::new(n, 17), 6.0).expect("workload builds")
}

fn bench_round_barrier(c: &mut Criterion) {
    let graph = workload();
    let messages_per_round = 2 * graph.edge_count() as u64;
    let mut group = c.benchmark_group("round_barrier");
    group.sample_size(if smoke() { 1 } else { 10 });
    for shards in [1usize, 2, 8] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            let config = NetworkConfig::with_seed(3).sharded(shards);
            let mut network = Network::new(&graph, config, |_, _| Beacon).expect("network builds");
            // Prewarm: grow every reusable buffer to steady state so the
            // timed rounds allocate nothing.
            network.run_rounds(2).expect("prewarm rounds");
            b.iter(|| {
                network.run_round().expect("round runs");
                network.pending_messages()
            });
        });
    }
    eprintln!(
        "round_barrier workload: n={}, m={}, {} messages/round \
         (divide by the printed per-iteration time for messages/sec)",
        graph.node_count(),
        graph.edge_count(),
        messages_per_round
    );
    group.finish();
}

criterion_group!(benches, bench_round_barrier);
criterion_main!(benches);
