//! Criterion micro-bench isolating the engine's message plane: dispatch +
//! delivery cost per round at shard counts {1, 2, 8}, independent of any
//! program logic.
//!
//! The measured program broadcasts one fixed `u64` per incident edge per
//! round and does nothing else, so each timed iteration is one round of the
//! double-buffered barrier in steady state (the network is prewarmed: all
//! mailbox, outbox and bucket capacity is already grown, making the
//! zero-allocation round path the thing on the clock). A regression in the
//! barrier shows up here even when the `exp_scaling` end-to-end numbers are
//! masked by program cost.
//!
//! Set `ROUND_BARRIER_SMOKE=1` to shrink the workload for CI (compile +
//! one-iteration smoke).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freelunch_bench::ScalingWorkload;
use freelunch_graph::generators::{sparse_connected_erdos_renyi, GeneratorConfig};
use freelunch_graph::MultiGraph;
use freelunch_runtime::{Context, Envelope, Network, NetworkConfig, NodeProgram, Scheduling};

/// Minimal message-plane load: one broadcast per node per round, no
/// per-round state, never halts (the bench drives rounds directly).
struct Beacon;

impl NodeProgram for Beacon {
    type Message = u64;

    fn init(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(0xF1EE_1A11);
    }

    fn round(&mut self, ctx: &mut Context<'_, u64>, _inbox: &[Envelope<u64>]) {
        ctx.broadcast(0xF1EE_1A11);
    }
}

fn smoke() -> bool {
    std::env::var_os("ROUND_BARRIER_SMOKE").is_some()
}

/// The benched topologies: the uniform sparse graph (every shard range
/// carries equal work — the scheduler-neutral case) and the skewed
/// hub-and-spokes graph whose message work is concentrated in the first
/// contiguous shard range (the case static chunking starves on).
fn workloads() -> Vec<(&'static str, MultiGraph)> {
    let n = if smoke() { 1 << 10 } else { 1 << 16 };
    vec![
        (
            "sparse-er",
            sparse_connected_erdos_renyi(&GeneratorConfig::new(n, 17), 6.0)
                .expect("workload builds"),
        ),
        (
            "skewed-hub",
            ScalingWorkload::SkewedHub
                .build(n, 17)
                .expect("workload builds"),
        ),
    ]
}

fn bench_round_barrier(c: &mut Criterion) {
    for (name, graph) in workloads() {
        let messages_per_round = 2 * graph.edge_count() as u64;
        let mut group = c.benchmark_group(format!("round_barrier/{name}"));
        group.sample_size(if smoke() { 1 } else { 10 });
        // The 1-shard row is scheduler-free (serial path); each parallel
        // shard count runs under both the work-stealing default and the
        // static contiguous partition.
        let grid: &[(usize, Scheduling, &str)] = &[
            (1, Scheduling::Dynamic, "serial"),
            (2, Scheduling::Dynamic, "dynamic"),
            (2, Scheduling::Static, "static"),
            (8, Scheduling::Dynamic, "dynamic"),
            (8, Scheduling::Static, "static"),
        ];
        for &(shards, sched, sched_label) in grid {
            group.bench_with_input(
                BenchmarkId::new(sched_label, shards),
                &shards,
                |b, &shards| {
                    let config = NetworkConfig::with_seed(3)
                        .sharded(shards)
                        .scheduling(sched);
                    let mut network =
                        Network::new(&graph, config, |_, _| Beacon).expect("network builds");
                    // Prewarm: grow every reusable buffer to steady state so
                    // the timed rounds allocate nothing.
                    network.run_rounds(2).expect("prewarm rounds");
                    b.iter(|| {
                        network.run_round().expect("round runs");
                        network.pending_messages()
                    });
                },
            );
        }
        eprintln!(
            "round_barrier/{name} workload: n={}, m={}, {} messages/round \
             (divide by the printed per-iteration time for messages/sec)",
            graph.node_count(),
            graph.edge_count(),
            messages_per_round
        );
        group.finish();
    }
}

criterion_group!(benches, bench_round_barrier);
criterion_main!(benches);
