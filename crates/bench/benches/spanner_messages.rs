//! Criterion bench: messages-per-edge of Sampler vs Baswana-Sen on dense
//! graphs (throughput of the two constructions, to accompany experiment E4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freelunch_baselines::BaswanaSen;
use freelunch_bench::{experiment_params, Workload};
use freelunch_core::sampler::Sampler;
use freelunch_core::spanner_api::SpannerAlgorithm;

fn bench_construction_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("spanner_construction_comparison");
    group.sample_size(10);
    let graph = Workload::DenseRandom
        .build(384, 3)
        .expect("workload builds");
    group.bench_with_input(BenchmarkId::new("sampler", 384), &graph, |b, graph| {
        let sampler = Sampler::new(experiment_params(2));
        b.iter(|| sampler.construct(graph, 5).expect("runs"))
    });
    group.bench_with_input(BenchmarkId::new("baswana_sen", 384), &graph, |b, graph| {
        let baswana = BaswanaSen::new(3).expect("valid");
        b.iter(|| baswana.construct(graph, 5).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_construction_comparison);
criterion_main!(benches);
