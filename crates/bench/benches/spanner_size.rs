//! Criterion bench: Sampler construction throughput across graph sizes and k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freelunch_bench::{experiment_params, Workload};
use freelunch_core::sampler::Sampler;

fn bench_sampler_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler_construction");
    group.sample_size(10);
    for &n in &[128usize, 256, 512] {
        for k in [1u32, 2] {
            let graph = Workload::DenseRandom.build(n, 1).expect("workload builds");
            let sampler = Sampler::new(experiment_params(k));
            group.bench_with_input(BenchmarkId::new(format!("k{k}"), n), &graph, |b, graph| {
                b.iter(|| sampler.run(graph, 7).expect("sampler runs"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sampler_construction);
criterion_main!(benches);
