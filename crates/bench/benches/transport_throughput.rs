//! Criterion bench comparing the per-round cost of the three transport
//! backends on the same broadcast workload: the in-process double-buffered
//! barrier, the wire-faithful mock (every payload encoded and decoded), and
//! a two-rank TCP pair over localhost (one frame per peer per round).
//!
//! Every backend moves the identical message plane — same graph, same
//! `2m` messages per round, same ledger bytes — so the per-iteration times
//! divide directly into messages/sec and payload-bytes/sec per backend
//! (the constants are printed alongside the group). For TCP one iteration
//! is one lockstep round of rank 0 (= one frame written + one frame read);
//! the companion rank free-runs in a thread and stays within one round via
//! the socket's own backpressure.
//!
//! Set `TRANSPORT_SMOKE=1` to shrink the workload for CI (compile + a
//! one-iteration smoke).

use criterion::{criterion_group, criterion_main, Criterion};
use freelunch_graph::generators::{sparse_connected_erdos_renyi, GeneratorConfig};
use freelunch_graph::MultiGraph;
use freelunch_runtime::transport::{MockTransport, TcpConfig, TcpTransport};
use freelunch_runtime::{Context, Envelope, FaultPlan, Network, NetworkConfig, NodeProgram};
use std::net::{SocketAddr, TcpListener};

/// Minimal message-plane load: one 8-byte broadcast per node per round,
/// never halts (the bench drives rounds directly).
struct Beacon;

impl NodeProgram for Beacon {
    type Message = u64;

    fn init(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(0xF1EE_1A11);
    }

    fn round(&mut self, ctx: &mut Context<'_, u64>, _inbox: &[Envelope<u64>]) {
        ctx.broadcast(0xF1EE_1A11);
    }
}

fn smoke() -> bool {
    std::env::var_os("TRANSPORT_SMOKE").is_some()
}

fn workload() -> MultiGraph {
    let n = if smoke() { 1 << 8 } else { 1 << 12 };
    sparse_connected_erdos_renyi(&GeneratorConfig::new(n, 19), 6.0).expect("workload builds")
}

fn bench_transport_throughput(c: &mut Criterion) {
    let graph = workload();
    let messages_per_round = 2 * graph.edge_count() as u64;
    let mut group = c.benchmark_group("transport_throughput");
    group.sample_size(if smoke() { 1 } else { 10 });

    group.bench_function("in-process", |b| {
        let config = NetworkConfig::with_seed(3);
        let mut network = Network::new(&graph, config, |_, _| Beacon).expect("network builds");
        network.run_rounds(2).expect("prewarm rounds");
        b.iter(|| {
            network.run_round().expect("round runs");
            network.pending_messages()
        });
    });

    group.bench_function("mock", |b| {
        let config = NetworkConfig::with_seed(3);
        let mut network = Network::with_transport(
            &graph,
            config,
            FaultPlan::none(),
            MockTransport::new(),
            |_, _| Beacon,
        )
        .expect("network builds");
        network.run_rounds(2).expect("prewarm rounds");
        b.iter(|| {
            network.run_round().expect("round runs");
            network.pending_messages()
        });
    });

    group.bench_function("tcp-pair", |b| {
        let listeners: Vec<TcpListener> = (0..2)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
            .collect();
        let peers: Vec<SocketAddr> = listeners
            .iter()
            .map(|listener| listener.local_addr().expect("local addr"))
            .collect();
        let mut listeners = listeners.into_iter();
        let (listener0, listener1) = (listeners.next().unwrap(), listeners.next().unwrap());
        let (config0, config1) = (TcpConfig::new(0, peers.clone()), TcpConfig::new(1, peers));
        let graph = &graph;
        std::thread::scope(|scope| {
            // The companion rank free-runs: each of its rounds blocks on
            // rank 0's frame, so it never gets more than one round ahead,
            // and when rank 0's network drops (sockets close) its next read
            // errors out and the thread exits.
            scope.spawn(move || {
                let transport =
                    TcpTransport::with_listener(listener1, &config1).expect("rank 1 connects");
                let mut network = Network::with_transport(
                    graph,
                    NetworkConfig::with_seed(3),
                    FaultPlan::none(),
                    transport,
                    |_, _| Beacon,
                )
                .expect("rank 1 network builds");
                while network.run_round().is_ok() {}
            });
            let transport =
                TcpTransport::with_listener(listener0, &config0).expect("rank 0 connects");
            let mut network = Network::with_transport(
                graph,
                NetworkConfig::with_seed(3),
                FaultPlan::none(),
                transport,
                |_, _| Beacon,
            )
            .expect("rank 0 network builds");
            network.run_rounds(2).expect("prewarm rounds");
            b.iter(|| {
                network.run_round().expect("round runs");
                network.pending_messages()
            });
        });
    });

    eprintln!(
        "transport_throughput workload: n={}, m={}, {} messages/round, {} payload bytes/round \
         (divide by the printed per-iteration time for messages/sec and bytes/sec)",
        graph.node_count(),
        graph.edge_count(),
        messages_per_round,
        8 * messages_per_round,
    );
    group.finish();
}

criterion_group!(benches, bench_transport_throughput);
criterion_main!(benches);
