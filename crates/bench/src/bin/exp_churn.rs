//! Churn experiment: the free lunch on a dynamic graph — amortized
//! incremental spanner repair vs. rebuild-from-scratch (`docs/CHURN.md`).
//!
//! For each PR-2 scaling workload family and churn rate (0%, 0.1%, 1% and
//! 10% of the live edges inserted *and* deleted per round), the experiment
//! replays the same seeded [`ChurnDriver`] event stream the engine applies
//! at its round barrier into an [`IncrementalSpanner`] and measures:
//!
//! * the cumulative repair bill (the [`CostPhase::Maintenance`] column) and
//!   its amortized per-event message cost;
//! * what rebuilding from scratch (Baswana–Sen on the final graph, the
//!   `Θ(k·m)` comparator) would have cost **per event** instead;
//! * the end-to-end free-lunch ratio with maintenance on the meter: spanner
//!   construction + repairs + `t`-local broadcast on the final spanner vs.
//!   direct flooding on the final graph;
//! * the repaired spanner's measured stretch against its bound of 3;
//! * cross-shard identity of an engine execution under the same churn
//!   plan: the message ledger is bit-identical for 1, 2 and 8 shards.
//!
//! Usage:
//!
//! ```sh
//! exp_churn [OUTPUT.json] [--smoke]
//! ```
//!
//! `--smoke` shrinks the sweep for CI.

use freelunch_algorithms::BallGathering;
use freelunch_baselines::{direct_flooding, BaswanaSen};
use freelunch_bench::{
    cell_f64, cell_str, cell_u64, tables_to_json, ExperimentTable, ScalingWorkload,
};
use freelunch_core::ledger::{CostPhase, Ledger};
use freelunch_core::maintain::IncrementalSpanner;
use freelunch_core::reduction::tlocal::t_local_broadcast;
use freelunch_graph::spanner_check::verify_edge_stretch;
use freelunch_graph::{CsrGraph, MultiGraph};
use freelunch_runtime::{ChurnDriver, ChurnEvent, ChurnPlan, Network, NetworkConfig};

/// Locality parameter of the broadcast stage.
const T: u32 = 2;
/// Workload / plan / algorithm seed shared by every row.
const SEED: u64 = 42;
/// Churn rates swept: fraction of the live edges deleted (and, separately,
/// inserted) per round.
const RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.1];

/// Replays the seeded churn stream for `rounds` rounds into the spanner and
/// returns the number of edge events applied.
fn replay_churn(driver: &mut ChurnDriver, spanner: &mut IncrementalSpanner, rounds: u32) -> u64 {
    let mut events = 0u64;
    for round in 1..=rounds {
        for event in driver.apply_round(round).expect("churn round applies") {
            match event {
                ChurnEvent::EdgeInsert { edge, u, v } => {
                    spanner.insert_edge(edge, u, v).expect("insert repairs");
                    events += 1;
                }
                ChurnEvent::EdgeDelete { edge } => {
                    spanner.delete_edge(edge).expect("delete repairs");
                    events += 1;
                }
                ChurnEvent::NodeJoin { .. } | ChurnEvent::NodeLeave { .. } => {}
            }
        }
        assert_eq!(
            driver.overlay().live_edge_count(),
            spanner.graph().edge_count(),
            "spanner mirror diverged from the churn overlay"
        );
    }
    events
}

/// Runs `BallGathering` on the engine under `plan` and returns the ledger
/// message/byte totals plus the per-node output digest.
fn churned_network_digest(
    graph: &MultiGraph,
    plan: ChurnPlan,
    shards: usize,
    rounds: u32,
) -> (u64, u64, Vec<Vec<u32>>) {
    let config = NetworkConfig::with_seed(SEED).sharded(shards);
    let mut network =
        Network::with_churn_plan(graph, config, plan, |node, _| BallGathering::new(node, T))
            .expect("network builds");
    network.run_rounds(rounds).expect("churned run completes");
    let outputs = network.programs().iter().map(|p| p.known_ids()).collect();
    (
        network.ledger().total_messages(),
        network.ledger().total_bytes(),
        outputs,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let output = args.iter().find(|a| !a.starts_with("--")).cloned();

    let n: usize = if smoke { 192 } else { 768 };
    let churn_rounds: u32 = if smoke { 5 } else { 16 };
    let engine_rounds: u32 = if smoke { 4 } else { 8 };
    let shard_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 8] };

    let mut repair_table = ExperimentTable::new(
        format!(
            "E-churn — amortized incremental repair vs. rebuild-from-scratch \
             ({churn_rounds} churn rounds, insert and delete rates both as shown, \
             broadcast t = {T})"
        ),
        &[
            "workload",
            "n",
            "m initial",
            "rate",
            "events",
            "m final",
            "repair msgs",
            "repair msgs/event",
            "rebuild msgs (final)",
            "rebuild/repair x",
            "spanner edges",
            "max stretch",
            "free lunch x",
            "maintenance msg frac",
        ],
    );
    let mut shard_table = ExperimentTable::new(
        "E-churn cross-shard identity — engine ledger under a churn plan vs. shard count",
        &[
            "workload",
            "rate",
            "shards",
            "ledger msgs",
            "ledger bytes",
            "identical to 1 shard",
        ],
    );

    let rebuild = BaswanaSen::new(2).expect("valid k");

    for workload in ScalingWorkload::all() {
        let graph = workload.build(n, SEED).expect("workload builds");
        let csr = CsrGraph::from_graph(&graph);
        let m_initial = graph.edge_count() as u64;

        for rate in RATES {
            let plan = ChurnPlan::new(SEED)
                .with_insert_rate(rate)
                .with_delete_rate(rate);
            let mut driver = ChurnDriver::new(plan, &csr).expect("driver builds");
            let mut spanner = IncrementalSpanner::new(&graph, SEED).expect("spanner builds");
            let build_cost = spanner.build_cost();

            let events = replay_churn(&mut driver, &mut spanner, churn_rounds);
            spanner.check_invariants().expect("invariants hold");

            let final_graph = spanner.graph().clone();
            let m_final = final_graph.edge_count() as u64;
            let stretch_report = verify_edge_stretch(&final_graph, spanner.spanner_edges())
                .expect("stretch verifies");
            assert!(
                stretch_report.satisfies(spanner.stretch_bound()),
                "{}/{rate}: stretch {} > {}",
                workload.label(),
                stretch_report.max_stretch,
                spanner.stretch_bound()
            );

            let maintenance = spanner.maintenance_cost();
            let amortized = if events == 0 {
                0.0
            } else {
                maintenance.messages as f64 / events as f64
            };
            let rebuild_cost = rebuild
                .rebuild_cost(&final_graph, SEED)
                .expect("rebuild runs");
            let rebuild_per_repair = if events == 0 || maintenance.messages == 0 {
                f64::NAN
            } else {
                rebuild_cost.messages as f64 / amortized
            };

            // The end-to-end free lunch with maintenance on the meter.
            let broadcast = t_local_broadcast(
                &final_graph,
                spanner.spanner_edges(),
                T,
                spanner.stretch_bound(),
            )
            .expect("broadcast runs");
            assert_eq!(
                broadcast
                    .coverage_violations(&final_graph, T)
                    .expect("balls"),
                0,
                "{}/{rate}: repaired spanner missed a ball",
                workload.label()
            );
            let flood = direct_flooding(&final_graph, T).expect("flooding runs");
            let mut ledger = Ledger::new();
            ledger.charge(
                CostPhase::SpannerConstruction,
                "incremental spanner build",
                build_cost,
            );
            ledger.charge(
                CostPhase::Maintenance,
                format!("{events} churn repairs"),
                maintenance,
            );
            ledger.charge(
                CostPhase::Broadcast,
                format!("{T}-local broadcast on the repaired spanner"),
                broadcast.cost,
            );
            ledger.charge(
                CostPhase::DirectExecution,
                "direct t-local flooding on the final graph",
                flood.broadcast.cost,
            );

            repair_table.push_row(vec![
                cell_str(workload.label()),
                cell_u64(n as u64),
                cell_u64(m_initial),
                cell_f64(rate),
                cell_u64(events),
                cell_u64(m_final),
                cell_u64(maintenance.messages),
                cell_f64(amortized),
                cell_u64(rebuild_cost.messages),
                cell_f64(rebuild_per_repair),
                cell_u64(spanner.spanner_size() as u64),
                cell_u64(u64::from(stretch_report.max_stretch)),
                cell_f64(ledger.free_lunch_ratio().unwrap_or(f64::NAN)),
                cell_f64(ledger.message_fraction(CostPhase::Maintenance)),
            ]);

            eprintln!(
                "{:12} rate={rate:<6} events={events:>6} repair={:>8} \
                 rebuild(final)={:>8} free-lunch={:.3}",
                workload.label(),
                maintenance.messages,
                rebuild_cost.messages,
                ledger.free_lunch_ratio().unwrap_or(f64::NAN),
            );
        }

        // Cross-shard identity of the engine under the 1% plan.
        let plan = ChurnPlan::new(SEED)
            .with_insert_rate(0.01)
            .with_delete_rate(0.01);
        let reference =
            churned_network_digest(&graph, plan.clone(), shard_counts[0], engine_rounds);
        for (i, &shards) in shard_counts.iter().enumerate() {
            let digest = if i == 0 {
                reference.clone()
            } else {
                churned_network_digest(&graph, plan.clone(), shards, engine_rounds)
            };
            let identical = digest == reference;
            assert!(
                identical,
                "{}: churned execution diverged at {shards} shards",
                workload.label()
            );
            shard_table.push_row(vec![
                cell_str(workload.label()),
                cell_f64(0.01),
                cell_u64(shards as u64),
                cell_u64(digest.0),
                cell_u64(digest.1),
                cell_str(if identical { "yes" } else { "NO" }),
            ]);
        }
    }

    println!("{}", repair_table.to_markdown());
    println!("{}", shard_table.to_markdown());

    if let Some(path) = output {
        let json = tables_to_json(&[&repair_table, &shard_table]);
        std::fs::write(&path, json).expect("result file is writable");
        eprintln!("wrote {path}");
    }
}
