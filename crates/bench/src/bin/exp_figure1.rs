//! Experiment E8 — Figure 1: a step-by-step trace of procedure `Cluster_j`.
//!
//! Runs `Sampler` with tracing on a small planted-partition graph and prints
//! the per-level panels of Figure 1: the level graph, the query edges, the
//! `F` edges, the centers, the clusters and the contracted next-level graph.
//!
//! Usage: `exp_figure1 [--smoke]` — `--smoke` halves the graph for CI.

use freelunch_bench::{cell_str, cell_u64, experiment_constants, ExperimentTable, Workload};
use freelunch_core::sampler::{Sampler, SamplerParams};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 64 } else { 128 };
    let graph = Workload::Communities.build(n, 5).expect("workload builds");
    let params = SamplerParams::with_constants(2, 3, experiment_constants()).expect("valid");
    let (outcome, trace) = Sampler::new(params)
        .run_with_trace(&graph, 3)
        .expect("sampler runs");

    println!("Figure 1 trace (one line per level):\n{trace}");

    let mut table = ExperimentTable::new(
        "E8 — Figure 1 panels per level",
        &[
            "level",
            "|V_j|",
            "|E_j|",
            "query edges",
            "F edges",
            "centers",
            "clusters",
            "unclustered",
            "|V_(j+1)|",
        ],
    );
    for level in &trace.levels {
        table.push_row(vec![
            cell_u64(u64::from(level.level)),
            cell_u64(level.nodes as u64),
            cell_u64(level.edges as u64),
            cell_u64(level.query_edges.len() as u64),
            cell_u64(level.f_edges.len() as u64),
            cell_u64(level.centers.len() as u64),
            cell_u64(level.clusters.len() as u64),
            cell_u64(level.unclustered.len() as u64),
            level
                .next_level_nodes
                .map_or_else(|| cell_str("-"), |n| cell_u64(n as u64)),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "spanner: {} of {} edges, distributed cost: {} rounds / {} messages",
        outcome.spanner_size(),
        graph.edge_count(),
        outcome.cost.rounds,
        outcome.cost.messages
    );
}
