//! Experiment E7 — Theorem 3 end to end: the "free lunch".
//!
//! Takes real `t`-round LOCAL algorithms (ball gathering and `t`-local
//! leader election), runs them directly on a dense graph, and compares the
//! direct cost against the message-reduced execution (Sampler spanner +
//! `t`-local broadcast), verifying on a sample of nodes that the information
//! delivered by the broadcast determines the same outputs.
//!
//! Usage: `exp_free_lunch [--smoke]` — `--smoke` shrinks the graph and the
//! `t` sweep for CI.

use freelunch_algorithms::{BallGathering, LocalLeaderElection};
use freelunch_bench::{
    cell_f64, cell_str, cell_u64, experiment_constants, ExperimentTable, Workload,
};
use freelunch_core::reduction::simulate::simulate_with_spanner;
use freelunch_core::sampler::{Sampler, SamplerParams};
use freelunch_runtime::NetworkConfig;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 96 } else { 384 };
    let ts: &[u32] = if smoke { &[2] } else { &[2, 3] };
    let verify_nodes = if smoke { 6 } else { 12 };
    let graph = Workload::Complete.build(n, 41).expect("workload builds");
    let params = SamplerParams::with_constants(2, 7, experiment_constants()).expect("valid");
    let sampler = Sampler::new(params);
    let spanner = sampler.run(&graph, 51).expect("sampler runs");
    let spanner_edges = spanner.spanner_edges().to_vec();
    let stretch = params.stretch_bound();

    let mut table = ExperimentTable::new(
        format!(
            "E7 — free lunch: direct vs simulated execution (complete graph, n = {n}, m = {}, |S| = {})",
            graph.edge_count(),
            spanner.spanner_size()
        ),
        &[
            "algorithm",
            "t",
            "direct msgs",
            "simulated msgs (spanner+broadcast)",
            "savings x",
            "direct rounds",
            "simulated rounds",
            "outputs verified",
        ],
    );

    for &t in ts {
        let report = simulate_with_spanner(
            &graph,
            &spanner_edges,
            stretch,
            spanner.cost,
            t,
            NetworkConfig::with_seed(7),
            |node, _| BallGathering::new(node, t),
            |p| p.known_ids(),
            verify_nodes,
        )
        .expect("simulation runs");
        table.push_row(vec![
            cell_str("ball gathering"),
            cell_u64(u64::from(t)),
            cell_u64(report.direct_cost.messages),
            cell_u64(report.simulated_cost.messages),
            cell_f64(report.message_savings()),
            cell_u64(report.direct_cost.rounds),
            cell_u64(report.simulated_cost.rounds),
            cell_str(if report.outputs_match() { "yes" } else { "NO" }),
        ]);

        let report = simulate_with_spanner(
            &graph,
            &spanner_edges,
            stretch,
            spanner.cost,
            t,
            NetworkConfig::with_seed(9),
            |node, _| LocalLeaderElection::new(node, t),
            |p| p.leader(),
            verify_nodes,
        )
        .expect("simulation runs");
        table.push_row(vec![
            cell_str("t-local leader election"),
            cell_u64(u64::from(t)),
            cell_u64(report.direct_cost.messages),
            cell_u64(report.simulated_cost.messages),
            cell_f64(report.message_savings()),
            cell_u64(report.direct_cost.rounds),
            cell_u64(report.simulated_cost.rounds),
            cell_str(if report.outputs_match() { "yes" } else { "NO" }),
        ]);
    }

    println!("{}", table.to_markdown());
}
