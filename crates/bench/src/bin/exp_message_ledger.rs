//! Message-ledger experiment: end-to-end free-lunch accounting under the
//! workspace-wide meter (`docs/METRICS.md`).
//!
//! For each PR-2 scaling workload family (sparse Erdős–Rényi, scale-free,
//! communities) plus the dense Erdős–Rényi family (the paper's `m ≫ n`
//! regime, where the free lunch materializes), the experiment measures,
//! **on the same [`MessageLedger`] meter**:
//!
//! * the direct `t`-local flooding baseline and the gossip baseline;
//! * the single-stage scheme (`Sampler` spanner + `t`-local broadcast),
//!   the end-to-end simulation of a real LOCAL algorithm, and the
//!   two-stage scheme — each with its phase-attributed free-lunch ratio
//!   from the [`Ledger`] API;
//! * congestion histograms: the maximum number of messages over any single
//!   edge, per round, for the dense flood vs. the spanner broadcast;
//! * cross-shard ledger identity: the direct execution's ledger is
//!   bit-identical for 1, 2 and 8 engine shards (asserted, and recorded).
//!
//! Usage:
//!
//! ```sh
//! exp_message_ledger [OUTPUT.json] [--smoke]
//! ```
//!
//! `--smoke` shrinks the sweep for CI.

use freelunch_algorithms::BallGathering;
use freelunch_baselines::{direct_flooding, gossip_broadcast, ClusterSpanner};
use freelunch_bench::{
    cell_f64, cell_str, cell_u64, experiment_constants, tables_to_json, ExperimentTable,
    ScalingWorkload, Workload,
};
use freelunch_core::ledger::{CostPhase, Ledger};
use freelunch_core::reduction::scheme::SamplerScheme;
use freelunch_core::reduction::simulate::simulate_with_spanner;
use freelunch_core::reduction::tlocal::t_local_broadcast;
use freelunch_core::reduction::two_stage::TwoStageScheme;
use freelunch_core::sampler::Sampler;
use freelunch_graph::MultiGraph;
use freelunch_runtime::{CostReport, MessageLedger, Network, NetworkConfig};

/// Locality parameter of the simulated task.
const T: u32 = 2;
/// Workload / algorithm seed shared by every row.
const SEED: u64 = 42;

/// One workload family of the sweep: label, swept sizes, graph builder.
type FamilySpec = (
    &'static str,
    &'static [usize],
    Box<dyn Fn(usize) -> MultiGraph>,
);

/// Compact rendering of a per-round congestion vector for the histogram
/// table (slot 0 = initialization), truncated to the first `limit` slots.
fn histogram(values: &[u64], limit: usize) -> String {
    let shown: Vec<String> = values.iter().take(limit).map(u64::to_string).collect();
    let suffix = if values.len() > limit { ",…" } else { "" };
    format!("{}{}", shown.join(","), suffix)
}

/// One ledger row: scheme-side cost vs. the direct reference, with the
/// derived ratios.
#[allow(clippy::too_many_arguments)]
fn ledger_row(
    table: &mut ExperimentTable,
    family: &str,
    n: usize,
    m: u64,
    path: &str,
    ledger: &Ledger,
    broadcast_bytes: u64,
    congestion: u64,
) {
    let scheme = ledger.scheme_cost();
    let direct = ledger.direct_cost().unwrap_or(CostReport::zero());
    table.push_row(vec![
        cell_str(family),
        cell_u64(n as u64),
        cell_u64(m),
        cell_str(path),
        cell_u64(scheme.messages),
        cell_u64(scheme.rounds),
        cell_u64(direct.messages),
        cell_f64(ledger.free_lunch_ratio().unwrap_or(f64::NAN)),
        cell_f64(ledger.round_overhead().unwrap_or(f64::NAN)),
        cell_f64(ledger.message_fraction(CostPhase::SpannerConstruction)),
        cell_u64(broadcast_bytes),
        cell_u64(congestion),
    ]);
}

/// Runs `BallGathering` directly on the engine and returns its ledger.
fn direct_network_ledger(graph: &MultiGraph, shards: usize) -> MessageLedger {
    let config = NetworkConfig::with_seed(SEED).sharded(shards);
    let mut network =
        Network::new(graph, config, |node, _| BallGathering::new(node, T)).expect("network builds");
    network.run_rounds(T).expect("direct run completes");
    network.ledger().clone()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let output = args.iter().find(|a| !a.starts_with("--")).cloned();

    let sparse_sizes: &[usize] = if smoke { &[256] } else { &[512, 1024, 2048] };
    // The dense family is the paper's `m ≫ n` regime, where the free lunch
    // actually materializes; its O(n²) generator and Θ(t·m) direct flood
    // keep the swept sizes smaller.
    let dense_sizes: &[usize] = if smoke { &[192] } else { &[384, 768] };
    let complete_sizes: &[usize] = if smoke { &[96] } else { &[256, 384] };
    let shard_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 8] };

    // The PR-2 sparse scaling families plus the dense m ≫ n family, all
    // measured identically.
    let mut families: Vec<FamilySpec> = Vec::new();
    for workload in ScalingWorkload::all() {
        families.push((
            workload.label(),
            sparse_sizes,
            Box::new(move |n| workload.build(n, SEED).expect("workload builds")),
        ));
    }
    families.push((
        "dense-er",
        dense_sizes,
        Box::new(|n| {
            Workload::DenseRandom
                .build(n, SEED)
                .expect("workload builds")
        }),
    ));
    families.push((
        "complete",
        complete_sizes,
        Box::new(|n| Workload::Complete.build(n, SEED).expect("workload builds")),
    ));

    let mut ledger_table = ExperimentTable::new(
        format!(
            "E-ledger — free-lunch accounting on the shared meter (t = {T}, \
             direct reference = t-local flooding on G)"
        ),
        &[
            "workload",
            "n",
            "m",
            "path",
            "scheme msgs",
            "scheme rounds",
            "direct msgs",
            "free lunch x",
            "round overhead x",
            "spanner msg frac",
            "broadcast bytes",
            "max edge congestion",
        ],
    );
    let mut congestion_table = ExperimentTable::new(
        "E-ledger congestion — max messages over any edge, per round slot \
         (slot 0 = initialization)",
        &[
            "workload",
            "n",
            "meter",
            "rounds",
            "overall max",
            "per-round max",
        ],
    );
    let mut shard_table = ExperimentTable::new(
        "E-ledger cross-shard identity — direct execution ledger vs. shard count",
        &[
            "workload",
            "n",
            "shards",
            "ledger msgs",
            "ledger bytes",
            "identical to 1 shard",
        ],
    );

    // γ = 2 ⇒ k = 2, h = 7: the parameterization E7 uses, whose free lunch
    // materializes on the dense families (on the sparse ones the spanner
    // cannot undercut |E| and the measured ratio honestly stays below 1 —
    // the paper's claim is about m ≫ n).
    let scheme = SamplerScheme::with_constants(2, experiment_constants()).expect("valid scheme");
    let params = scheme.sampler_params().expect("valid params");

    for (family, sizes, build) in &families {
        for &n in *sizes {
            let graph = build(n);
            let m = graph.edge_count() as u64;

            // The direct reference every scheme competes with, and the dense
            // congestion picture.
            let flood = direct_flooding(&graph, T).expect("flooding runs");
            let direct_cost = flood.broadcast.cost;
            congestion_table.push_row(vec![
                cell_str(*family),
                cell_u64(n as u64),
                cell_str("direct-flood"),
                cell_u64(flood.ledger().rounds()),
                cell_u64(flood.ledger().max_congestion()),
                cell_str(histogram(flood.ledger().max_edge_messages_per_round(), 16)),
            ]);

            // Gossip baseline on the same meter.
            let gossip = gossip_broadcast(&graph, T, SEED).expect("gossip runs");
            assert!(gossip.completed, "gossip hit its round cap");
            let gossip_ledger = Ledger::for_tlocal(gossip.cost, direct_cost);
            ledger_row(
                &mut ledger_table,
                family,
                n,
                m,
                "gossip",
                &gossip_ledger,
                gossip.ledger.total_bytes(),
                gossip.ledger.max_congestion(),
            );

            // One Sampler spanner serves the tlocal and simulate paths.
            let spanner = Sampler::new(params)
                .run(&graph, SEED)
                .expect("sampler runs");
            let stretch = params.stretch_bound();
            let broadcast =
                t_local_broadcast(&graph, spanner.spanner_edges().iter().copied(), T, stretch)
                    .expect("broadcast runs");
            assert_eq!(
                broadcast.coverage_violations(&graph, T).expect("balls"),
                0,
                "{family}/{n}: spanner broadcast missed a ball"
            );
            congestion_table.push_row(vec![
                cell_str(*family),
                cell_u64(n as u64),
                cell_str("spanner-broadcast"),
                cell_u64(broadcast.ledger.rounds()),
                cell_u64(broadcast.ledger.max_congestion()),
                cell_str(histogram(
                    broadcast.ledger.max_edge_messages_per_round(),
                    16,
                )),
            ]);

            // Path 1: the single-stage t-local broadcast scheme.
            let mut tlocal_ledger = Ledger::new();
            tlocal_ledger.charge(
                CostPhase::SpannerConstruction,
                format!("sampler spanner (k={}, h={})", params.k, params.h),
                spanner.cost,
            );
            tlocal_ledger.charge(
                CostPhase::Broadcast,
                format!("{T}-local broadcast on the spanner"),
                broadcast.cost,
            );
            tlocal_ledger.charge(
                CostPhase::DirectExecution,
                "direct t-local flooding on G",
                direct_cost,
            );
            ledger_row(
                &mut ledger_table,
                family,
                n,
                m,
                "tlocal",
                &tlocal_ledger,
                broadcast.ledger.total_bytes(),
                broadcast.ledger.max_congestion(),
            );

            // Path 2: end-to-end simulation of a real LOCAL algorithm.
            let simulation = simulate_with_spanner(
                &graph,
                spanner.spanner_edges(),
                stretch,
                spanner.cost,
                T,
                NetworkConfig::with_seed(SEED),
                |node, _| BallGathering::new(node, T),
                |p| p.known_ids(),
                8,
            )
            .expect("simulation runs");
            assert!(
                simulation.outputs_match(),
                "{family}/{n}: simulated outputs diverged"
            );
            ledger_row(
                &mut ledger_table,
                family,
                n,
                m,
                "simulate",
                &simulation.ledger(),
                broadcast.ledger.total_bytes(),
                broadcast.ledger.max_congestion(),
            );

            // Path 3: the two-stage scheme.
            let two_stage = TwoStageScheme::new(
                1,
                experiment_constants(),
                ClusterSpanner::new(1).expect("valid radius"),
            )
            .expect("valid scheme")
            .run(&graph, T, SEED)
            .expect("two-stage runs");
            let two_stage_ledger = two_stage.ledger(direct_cost);
            ledger_row(
                &mut ledger_table,
                family,
                n,
                m,
                "two_stage",
                &two_stage_ledger,
                two_stage.stage3_ledger.total_bytes(),
                two_stage.stage3_ledger.max_congestion(),
            );

            // Cross-shard ledger identity of the direct engine execution.
            let reference = direct_network_ledger(&graph, shard_counts[0]);
            for (i, &shards) in shard_counts.iter().enumerate() {
                let ledger = if i == 0 {
                    reference.clone()
                } else {
                    direct_network_ledger(&graph, shards)
                };
                let identical = ledger == reference;
                assert!(
                    identical,
                    "{family}/{n}: ledger diverged at {shards} shards"
                );
                shard_table.push_row(vec![
                    cell_str(*family),
                    cell_u64(n as u64),
                    cell_u64(shards as u64),
                    cell_u64(ledger.total_messages()),
                    cell_u64(ledger.total_bytes()),
                    cell_str(if identical { "yes" } else { "NO" }),
                ]);
            }

            eprintln!(
                "{family:12} n={n:>5} m={m:>7} direct={} tlocal={} sim={} two-stage={}",
                direct_cost.messages,
                tlocal_ledger.scheme_cost().messages,
                simulation.simulated_cost.messages,
                two_stage_ledger.scheme_cost().messages,
            );
        }
    }

    println!("{}", ledger_table.to_markdown());
    println!("{}", congestion_table.to_markdown());
    println!("{}", shard_table.to_markdown());

    if let Some(path) = output {
        let json = tables_to_json(&[&ledger_table, &congestion_table, &shard_table]);
        std::fs::write(&path, json).expect("result file is writable");
        eprintln!("wrote {path}");
    }
}
