//! Planner experiment: prediction accuracy, decision quality, and
//! congestion-aware routing, recorded to `BENCH_planner.json`.
//!
//! For each workload family (the three PR-2 sparse scaling families plus
//! the dense Erdős–Rényi and complete families), the experiment
//!
//! * plans with [`SchemePlanner`] (stats sampled from the frozen CSR,
//!   closed-form per-path predictions, decision = predicted-cheapest),
//!   re-plans and asserts the two plans are bit-identical;
//! * executes **all three** paths with `Plan::execute_all` and audits
//!   predicted vs. measured messages against the documented
//!   [`Tolerances`] bands (asserted);
//! * asserts the decision is the measured-cheapest path on every cell
//!   (regret = 1.0) and records the decision margin;
//! * runs the direct reference on the engine at every shard count and
//!   attaches the ledger to the `PlanReport`, asserting cross-shard
//!   bit-identity of the attached report;
//! * on *thickened* (parallel-edge) community and scale-free graphs,
//!   compares canonical vs. congestion-aware routing: identical totals,
//!   pointwise per-round max-congestion domination
//!   (`CongestionSnapshot::never_exceeds`), and the peak / tail numbers.
//!
//! Usage:
//!
//! ```sh
//! exp_planner [OUTPUT.json] [--smoke]
//! ```
//!
//! `--smoke` shrinks the sweep for CI.

use freelunch_algorithms::BallGathering;
use freelunch_baselines::ClusterSpanner;
use freelunch_bench::{
    cell_f64, cell_str, cell_u64, tables_to_json, ExperimentTable, ScalingWorkload, Workload,
};
use freelunch_core::planner::{SchemePlanner, Tolerances};
use freelunch_core::reduction::tlocal::{flood_on_subgraph_routed, FloodRouting};
use freelunch_graph::MultiGraph;
use freelunch_runtime::{MessageLedger, Network, NetworkConfig};

/// Locality parameter of the planned broadcast.
const T: u32 = 2;
/// Workload / algorithm seed shared by every row.
const SEED: u64 = 42;

/// One workload family of the sweep: label, swept sizes, graph builder.
type FamilySpec = (
    &'static str,
    &'static [usize],
    Box<dyn Fn(usize) -> MultiGraph>,
);

/// Runs `BallGathering` directly on the engine and returns its ledger.
fn direct_network_ledger(graph: &MultiGraph, shards: usize) -> MessageLedger {
    let config = NetworkConfig::with_seed(SEED).sharded(shards);
    let mut network =
        Network::new(graph, config, |node, _| BallGathering::new(node, T)).expect("network builds");
    network.run_rounds(T).expect("direct run completes");
    network.ledger().clone()
}

/// Duplicates every `stride`-th edge of `graph`, turning the simple workload
/// graph into a multigraph with parallel classes — the structure the
/// congestion-aware router spreads load across.
fn thicken(graph: &MultiGraph, stride: usize) -> MultiGraph {
    let mut thick = MultiGraph::new(graph.node_count());
    let edges: Vec<_> = graph.edges().map(|e| (e.u, e.v)).collect();
    for (i, &(u, v)) in edges.iter().enumerate() {
        thick.add_edge(u, v).expect("edge re-added");
        if i % stride == 0 {
            thick.add_edge(u, v).expect("parallel edge added");
        }
    }
    thick
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let lax = std::env::var("PLANNER_LAX").is_ok();
    let smoke = args.iter().any(|a| a == "--smoke");
    let output = args.iter().find(|a| !a.starts_with("--")).cloned();

    let sparse_sizes: &[usize] = if smoke { &[256] } else { &[512, 1024, 2048] };
    let dense_sizes: &[usize] = if smoke { &[192] } else { &[384, 768] };
    let complete_sizes: &[usize] = if smoke { &[96] } else { &[96, 256, 384] };
    let shard_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 8] };
    let congestion_sizes: &[usize] = if smoke { &[256] } else { &[512, 1024] };

    let mut families: Vec<FamilySpec> = Vec::new();
    for workload in ScalingWorkload::all() {
        families.push((
            workload.label(),
            sparse_sizes,
            Box::new(move |n| workload.build(n, SEED).expect("workload builds")),
        ));
    }
    families.push((
        "dense-er",
        dense_sizes,
        Box::new(|n| {
            Workload::DenseRandom
                .build(n, SEED)
                .expect("workload builds")
        }),
    ));
    families.push((
        "complete",
        complete_sizes,
        Box::new(|n| Workload::Complete.build(n, SEED).expect("workload builds")),
    ));

    let mut prediction_table = ExperimentTable::new(
        format!(
            "E-planner predictions — closed-form per-path cost models vs. the \
             measured ledger (t = {T}, ratio = predicted ÷ measured, band = \
             the documented tolerance contract)"
        ),
        &[
            "workload",
            "n",
            "m",
            "path",
            "chosen",
            "predicted msgs",
            "measured msgs",
            "ratio",
            "band low",
            "band high",
            "within band",
        ],
    );
    let mut decision_table = ExperimentTable::new(
        "E-planner decisions — chosen path vs. measured-cheapest, decision \
         margin, replan/cross-shard bit-identity",
        &[
            "workload",
            "n",
            "m",
            "decision",
            "margin",
            "best measured",
            "regret",
            "replan identical",
            "shards identical",
        ],
    );
    let mut congestion_table = ExperimentTable::new(
        "E-planner congestion — canonical vs. congestion-aware routing on \
         thickened (parallel-edge) graphs: per-round max edge congestion. \
         stride 1 = every edge doubled (full parallel redundancy), stride 3 \
         = every third edge doubled (simple edges bound the global peak)",
        &[
            "workload",
            "n",
            "stride",
            "m",
            "routing",
            "total msgs",
            "peak congestion",
            "rounds at peak",
            "dominated by canonical",
        ],
    );

    let planner = SchemePlanner::new(T).expect("valid planner");
    let second_stage = ClusterSpanner::new(1).expect("valid radius");
    let tolerances = Tolerances::default();

    for (family, sizes, build) in &families {
        for &n in *sizes {
            let graph = build(n);
            let m = graph.edge_count() as u64;

            // Plan twice: planning is a pure function of (graph, config).
            let plan = planner
                .plan_with_second_stage(&graph, &second_stage)
                .expect("plan succeeds");
            let replan = planner
                .plan_with_second_stage(&graph, &second_stage)
                .expect("replan succeeds");
            let replan_identical = plan == replan && format!("{plan:?}") == format!("{replan:?}");
            assert!(replan_identical, "{family}/{n}: replan diverged");

            // Execute every path and self-audit.
            let mut report = plan
                .execute_all(&graph, SEED, &second_stage)
                .expect("execution succeeds");
            let audit = report.audit_with(&tolerances);
            for entry in &audit.entries {
                prediction_table.push_row(vec![
                    cell_str(*family),
                    cell_u64(n as u64),
                    cell_u64(m),
                    cell_str(entry.path.label()),
                    cell_str(if entry.path == plan.decision {
                        "yes"
                    } else {
                        ""
                    }),
                    cell_f64(entry.predicted_messages),
                    cell_u64(entry.measured_messages),
                    cell_f64(entry.ratio),
                    cell_f64(entry.band.lower),
                    cell_f64(entry.band.upper),
                    cell_str(if entry.within_band { "yes" } else { "NO" }),
                ]);
                assert!(
                    lax || entry.within_band,
                    "{family}/{n}/{}: prediction ratio {:.3} outside [{}, {}]",
                    entry.path.label(),
                    entry.ratio,
                    entry.band.lower,
                    entry.band.upper,
                );
                if lax {
                    let phases: Vec<String> = report
                        .measured(entry.path)
                        .map(|m| {
                            m.phases
                                .entries()
                                .iter()
                                .map(|e| format!("{}={}", e.label, e.cost.messages))
                                .collect()
                        })
                        .unwrap_or_default();
                    eprintln!(
                        "  {family}/{n}/{}: predicted={:.0} measured={} ratio={:.3} [{}]",
                        entry.path.label(),
                        entry.predicted_messages,
                        entry.measured_messages,
                        entry.ratio,
                        phases.join(", "),
                    );
                }
            }

            // Decision quality: the planner must pick the measured-cheapest
            // path on every swept cell.
            let regret = report.regret().expect("all paths measured");
            let best = report.best_measured().expect("measurements exist").path;
            assert!(
                lax || (regret - 1.0).abs() < f64::EPSILON,
                "{family}/{n}: planner chose {} but {} measured cheaper (regret {regret:.3})",
                plan.decision.label(),
                best.label(),
            );

            // Attach the engine-measured direct ledger and check the full
            // attached report is bit-identical across shard counts.
            let reference = direct_network_ledger(&graph, shard_counts[0]);
            report.attach_engine_direct(reference.clone());
            let mut shards_identical = true;
            for &shards in &shard_counts[1..] {
                let mut other = plan
                    .execute_all(&graph, SEED, &second_stage)
                    .expect("execution succeeds");
                other.attach_engine_direct(direct_network_ledger(&graph, shards));
                if other != report || format!("{other:?}") != format!("{report:?}") {
                    shards_identical = false;
                }
            }
            assert!(
                shards_identical,
                "{family}/{n}: attached report diverged across shard counts"
            );

            decision_table.push_row(vec![
                cell_str(*family),
                cell_u64(n as u64),
                cell_u64(m),
                cell_str(plan.decision.label()),
                cell_f64(plan.decision_margin),
                cell_str(best.label()),
                cell_f64(regret),
                cell_str(if replan_identical { "yes" } else { "NO" }),
                cell_str(if shards_identical { "yes" } else { "NO" }),
            ]);

            eprintln!(
                "{family:12} n={n:>5} m={m:>7} decision={:<11} margin={:.3} regret={regret:.3}",
                plan.decision.label(),
                plan.decision_margin,
            );
        }
    }

    // Congestion-aware routing on thickened community / scale-free graphs:
    // identical totals, pointwise-dominated per-round max congestion.
    for workload in [ScalingWorkload::Community, ScalingWorkload::ScaleFree] {
        for &n in congestion_sizes {
            for stride in [1usize, 3] {
                let thick = thicken(&workload.build(n, SEED).expect("workload builds"), stride);
                let m = thick.edge_count() as u64;
                let edge_ids: Vec<_> = thick.edge_ids().collect();
                let canonical = flood_on_subgraph_routed(
                    &thick,
                    edge_ids.iter().copied(),
                    T,
                    FloodRouting::Canonical,
                )
                .expect("canonical flood runs");
                let aware = flood_on_subgraph_routed(
                    &thick,
                    edge_ids.iter().copied(),
                    T,
                    FloodRouting::CongestionAware,
                )
                .expect("aware flood runs");
                assert_eq!(
                    canonical.cost,
                    aware.cost,
                    "{}/{n}: routing changed the total cost",
                    workload.label()
                );
                assert_eq!(
                    canonical.ledger.total_bytes(),
                    aware.ledger.total_bytes(),
                    "{}/{n}: routing changed the byte count",
                    workload.label()
                );
                let canonical_snap = canonical.ledger.congestion_snapshot();
                let aware_snap = aware.ledger.congestion_snapshot();
                let dominated = aware_snap.never_exceeds(&canonical_snap);
                assert!(
                dominated,
                "{}/{n}/stride {stride}: congestion-aware routing exceeded canonical congestion",
                workload.label()
            );
                if stride == 1 {
                    // Full parallel redundancy: spreading the two directions of
                    // every class over its two edges strictly flattens the peak.
                    assert!(
                        aware_snap.peak < canonical_snap.peak,
                        "{}/{n}: full redundancy did not flatten the peak",
                        workload.label()
                    );
                }
                for (label, snap, dom) in [
                    ("canonical", &canonical_snap, "-"),
                    (
                        "congestion-aware",
                        &aware_snap,
                        if dominated { "yes" } else { "NO" },
                    ),
                ] {
                    congestion_table.push_row(vec![
                        cell_str(workload.label()),
                        cell_u64(n as u64),
                        cell_u64(stride as u64),
                        cell_u64(m),
                        cell_str(label),
                        cell_u64(snap.total_messages),
                        cell_u64(snap.peak),
                        cell_u64(snap.rounds_above(snap.peak.saturating_sub(1)) as u64),
                        cell_str(dom),
                    ]);
                }
                eprintln!(
                    "{:12} n={n:>5} stride={stride} m={m:>7} peak canonical={} aware={}",
                    workload.label(),
                    canonical_snap.peak,
                    aware_snap.peak,
                );
            }
        }
    }

    println!("{}", prediction_table.to_markdown());
    println!("{}", decision_table.to_markdown());
    println!("{}", congestion_table.to_markdown());

    if let Some(path) = output {
        let json = tables_to_json(&[&prediction_table, &decision_table, &congestion_table]);
        std::fs::write(&path, json).expect("result file is writable");
        eprintln!("wrote {path}");
    }
}
