//! Recovery experiment: what crash-recoverability costs and how fast a
//! killed rank comes back (`docs/RECOVERY.md`).
//!
//! Two tables, every row asserted before it is written:
//!
//! 1. **Checkpoint cost vs. interval** — for each scaling workload, a
//!    Luby-MIS execution is checkpointed every 1/2/4/8 rounds through the
//!    full on-disk byte format. The table records how many checkpoints were
//!    taken, the serialized size (checkpoints grow with the round counter:
//!    the metrics/ledger columns are per-round), and the serialization
//!    latency — and every row first *proves* itself: the last checkpoint is
//!    restored, the run finished, and outputs, metrics and ledger asserted
//!    bit-identical to the uninterrupted reference.
//!
//! 2. **Recovery latency vs. backoff policy** — a two-rank localhost TCP
//!    execution in which rank 1 dies at a round boundary and is relaunched
//!    from its checkpoint under three connect-backoff profiles. The table
//!    records the rejoin latency (bind + dial + [`RejoinHello`] ack) and
//!    the restore latency, with both ranks' final ledgers asserted
//!    bit-identical to the uninterrupted run.
//!
//! Usage:
//!
//! ```sh
//! exp_recovery [OUTPUT.json] [--smoke]
//! ```
//!
//! `--smoke` shrinks the sweep for CI.
//!
//! [`RejoinHello`]: freelunch_runtime::RejoinHello

use freelunch_algorithms::{BallGathering, LubyMis};
use freelunch_bench::{
    cell_f64, cell_str, cell_u64, tables_to_json, ExperimentTable, ScalingWorkload,
};
use freelunch_graph::{MultiGraph, NodeId};
use freelunch_runtime::transport::{RecoveryPolicy, TcpConfig, TcpTransport};
use freelunch_runtime::{
    ChurnPlan, ExecutionMetrics, FaultPlan, InitialKnowledge, MessageLedger, Network,
    NetworkCheckpoint, NetworkConfig,
};
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

/// Workload / algorithm seed shared by every row.
const SEED: u64 = 42;
/// Round budget for every execution in the experiment.
const BUDGET: u32 = 300;

/// Reference observables of an uninterrupted run.
type Reference = (Vec<u8>, ExecutionMetrics, MessageLedger);

fn mis_factory(_: NodeId, knowledge: &InitialKnowledge) -> LubyMis {
    LubyMis::new(knowledge.degree())
}

fn mis_outputs(network: &Network<LubyMis>) -> Vec<u8> {
    network.programs().iter().map(|p| p.state() as u8).collect()
}

/// Runs Luby-MIS uninterrupted and returns its observables + round count.
fn uninterrupted(graph: &MultiGraph) -> (Reference, u32) {
    let mut network =
        Network::new(graph, NetworkConfig::with_seed(SEED), mis_factory).expect("network builds");
    network.run_until_halt(BUDGET).expect("reference halts");
    let reference = (
        mis_outputs(&network),
        network.metrics().clone(),
        network.ledger().clone(),
    );
    (reference, network.current_round())
}

/// One checkpoint-interval row: checkpoint every `interval` rounds through
/// the byte format, then prove the last checkpoint by restoring it and
/// finishing the run bit-identically. Returns
/// `(checkpoints, last_bytes, total_serialize, restore_and_replay)`.
fn measure_interval(
    graph: &MultiGraph,
    reference: &Reference,
    interval: u32,
) -> (u64, u64, Duration, Duration) {
    let mut network =
        Network::new(graph, NetworkConfig::with_seed(SEED), mis_factory).expect("network builds");
    let mut checkpoints = 0u64;
    let mut last_bytes: Vec<u8> = Vec::new();
    let mut serialize_total = Duration::ZERO;
    while !network.all_halted() {
        network.run_round().expect("round runs");
        if network.current_round() % interval == 0 || network.all_halted() {
            let started = Instant::now();
            last_bytes = network.checkpoint().to_bytes();
            serialize_total += started.elapsed();
            checkpoints += 1;
        }
    }

    // The crash: only the serialized bytes survive.
    drop(network);
    let restore_started = Instant::now();
    let checkpoint = NetworkCheckpoint::from_bytes(&last_bytes).expect("checkpoint reloads");
    let mut resumed =
        Network::restore(graph, &checkpoint, mis_factory).expect("checkpoint restores");
    resumed.run_until_halt(BUDGET).expect("resumed run halts");
    let restore_elapsed = restore_started.elapsed();

    // The row's claim, proven before it is written.
    assert_eq!(
        &mis_outputs(&resumed),
        &reference.0,
        "interval {interval}: outputs diverged after restore"
    );
    assert_eq!(
        resumed.metrics(),
        &reference.1,
        "interval {interval}: metrics diverged after restore"
    );
    assert_eq!(
        resumed.ledger(),
        &reference.2,
        "interval {interval}: ledger diverged after restore"
    );

    (
        checkpoints,
        last_bytes.len() as u64,
        serialize_total,
        restore_elapsed,
    )
}

/// One backoff-profile row: a threaded two-rank TCP run over localhost in
/// which rank 1 dies after `kill_round` rounds and is relaunched from its
/// checkpoint. Returns `(rejoin, restore, total_rounds)` with both ranks'
/// ledgers asserted identical to `reference`.
fn measure_recovery(
    graph: &MultiGraph,
    reference: &(Vec<Vec<u32>>, ExecutionMetrics, MessageLedger),
    kill_round: u32,
    backoff_base: Duration,
    backoff_cap: Duration,
) -> (Duration, Duration, u64) {
    let factory = |node: NodeId, _: &InitialKnowledge| BallGathering::new(node, 6);
    let listeners: Vec<TcpListener> = (0..2)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let peers: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect();
    let mut listeners = listeners.into_iter();
    let survivor_listener = listeners.next().expect("listener 0");
    let victim_listener = listeners.next().expect("listener 1");

    std::thread::scope(|scope| {
        let survivor_peers = peers.clone();
        let survivor = scope.spawn(move || {
            let mut config = TcpConfig::new(0, survivor_peers)
                .with_recovery(RecoveryPolicy::Retry { attempts: 3 })
                .with_backoff(backoff_base, backoff_cap, SEED);
            config.io_timeout = Duration::from_secs(10);
            let transport = TcpTransport::with_listener(survivor_listener, &config).expect("mesh");
            let mut network = Network::with_transport(
                graph,
                NetworkConfig::with_seed(SEED),
                FaultPlan::none(),
                transport,
                factory,
            )
            .expect("network builds");
            network.run_until_halt(BUDGET).expect("survivor halts");
            (
                network.metrics().clone(),
                network.ledger().clone(),
                u64::from(network.current_round()),
            )
        });

        let victim_peers = peers.clone();
        let victim = scope.spawn(move || {
            let config = TcpConfig::new(1, victim_peers);
            let transport = TcpTransport::with_listener(victim_listener, &config).expect("mesh");
            let mut network = Network::with_transport(
                graph,
                NetworkConfig::with_seed(SEED),
                FaultPlan::none(),
                transport,
                factory,
            )
            .expect("network builds");
            network.run_rounds(kill_round).expect("victim runs");
            let bytes = network.checkpoint().to_bytes();
            drop(network); // the kill
            bytes
        });
        let checkpoint_bytes = victim.join().expect("victim thread");

        let relaunch_peers = peers.clone();
        let relauncher = scope.spawn(move || {
            let checkpoint =
                NetworkCheckpoint::from_bytes(&checkpoint_bytes).expect("checkpoint reloads");
            let config =
                TcpConfig::new(1, relaunch_peers).with_backoff(backoff_base, backoff_cap, SEED);
            let rejoin_started = Instant::now();
            let transport =
                TcpTransport::resume_from(&config, checkpoint.round, checkpoint.fault_totals())
                    .expect("rejoin admitted");
            let rejoin = rejoin_started.elapsed();
            let restore_started = Instant::now();
            let mut network = Network::restore_with_plans(
                graph,
                FaultPlan::none(),
                ChurnPlan::none(),
                transport,
                &checkpoint,
                factory,
            )
            .expect("checkpoint restores");
            network
                .run_until_halt(BUDGET)
                .expect("relaunched rank halts");
            let restore = restore_started.elapsed();
            (rejoin, restore, network.ledger().clone())
        });

        let (survivor_metrics, survivor_ledger, rounds) = survivor.join().expect("survivor");
        let (rejoin, restore, relaunched_ledger) = relauncher.join().expect("relauncher");

        // The row's claim, proven before it is written: both ranks hold the
        // uninterrupted run's global view.
        assert_eq!(&survivor_metrics, &reference.1, "survivor metrics diverged");
        assert_eq!(&survivor_ledger, &reference.2, "survivor ledger diverged");
        assert_eq!(
            &relaunched_ledger, &reference.2,
            "relaunched rank's ledger diverged"
        );
        (rejoin, restore, rounds)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let output = args.iter().find(|a| !a.starts_with("--")).cloned();

    let n: usize = if smoke { 192 } else { 768 };
    let intervals: &[u32] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let every_workload = ScalingWorkload::all();
    let workloads: &[ScalingWorkload] = if smoke {
        &every_workload[..1]
    } else {
        &every_workload
    };

    let mut cost_table = ExperimentTable::new(
        format!(
            "E-recovery checkpoint cost — Luby-MIS at n = {n}, checkpointed through the \
             on-disk format every k rounds; every row restore-verified bit-identical"
        ),
        &[
            "workload",
            "n",
            "rounds",
            "interval",
            "checkpoints",
            "last ckpt bytes",
            "serialize ms (total)",
            "serialize ms (mean)",
            "restore+replay ms",
            "restore identical",
        ],
    );

    for &workload in workloads {
        let graph = workload.build(n, SEED).expect("workload builds");
        let (reference, rounds) = uninterrupted(&graph);
        for &interval in intervals {
            let (checkpoints, bytes, serialize, restore) =
                measure_interval(&graph, &reference, interval);
            cost_table.push_row(vec![
                cell_str(workload.label()),
                cell_u64(n as u64),
                cell_u64(u64::from(rounds)),
                cell_u64(u64::from(interval)),
                cell_u64(checkpoints),
                cell_u64(bytes),
                cell_f64(serialize.as_secs_f64() * 1e3),
                cell_f64(serialize.as_secs_f64() * 1e3 / checkpoints as f64),
                cell_f64(restore.as_secs_f64() * 1e3),
                cell_str("yes"), // measure_interval asserted it
            ]);
            eprintln!(
                "{:12} interval={interval} checkpoints={checkpoints:>3} last={bytes:>8}B \
                 serialize={:>7.3}ms restore+replay={:>7.3}ms",
                workload.label(),
                serialize.as_secs_f64() * 1e3,
                restore.as_secs_f64() * 1e3,
            );
        }
    }

    let mut latency_table = ExperimentTable::new(
        format!(
            "E-recovery rejoin latency — two-rank localhost TCP, rank 1 killed at a round \
             boundary and relaunched from its checkpoint (ball gathering t = 6, n = {n}); \
             both ranks' ledgers asserted identical to the uninterrupted run"
        ),
        &[
            "backoff profile",
            "base ms",
            "cap ms",
            "kill round",
            "rejoin ms",
            "restore+replay ms",
            "rounds",
            "ledgers identical",
        ],
    );

    // The uninterrupted two-rank reference for the latency rows.
    let graph = ScalingWorkload::ErdosRenyi.build(n, SEED).expect("builds");
    let tcp_reference = {
        let factory = |node: NodeId, _: &InitialKnowledge| BallGathering::new(node, 6);
        let mut network =
            Network::new(&graph, NetworkConfig::with_seed(SEED), factory).expect("network builds");
        network.run_until_halt(BUDGET).expect("reference halts");
        let outputs: Vec<Vec<u32>> = network
            .programs()
            .iter()
            .map(BallGathering::known_ids)
            .collect();
        (outputs, network.metrics().clone(), network.ledger().clone())
    };

    let profiles: &[(&str, Duration, Duration)] = &[
        ("eager", Duration::from_millis(1), Duration::from_millis(16)),
        (
            "default",
            Duration::from_millis(10),
            Duration::from_millis(500),
        ),
        ("patient", Duration::from_millis(50), Duration::from_secs(1)),
    ];
    let kill_round = 3;
    for &(name, base, cap) in profiles {
        let (rejoin, restore, rounds) =
            measure_recovery(&graph, &tcp_reference, kill_round, base, cap);
        latency_table.push_row(vec![
            cell_str(name),
            cell_f64(base.as_secs_f64() * 1e3),
            cell_f64(cap.as_secs_f64() * 1e3),
            cell_u64(u64::from(kill_round)),
            cell_f64(rejoin.as_secs_f64() * 1e3),
            cell_f64(restore.as_secs_f64() * 1e3),
            cell_u64(rounds),
            cell_str("yes"), // measure_recovery asserted it
        ]);
        eprintln!(
            "{name:8} backoff={:?}..{:?} rejoin={:>7.3}ms restore+replay={:>7.3}ms",
            base,
            cap,
            rejoin.as_secs_f64() * 1e3,
            restore.as_secs_f64() * 1e3,
        );
    }

    println!("{}", cost_table.to_markdown());
    println!("{}", latency_table.to_markdown());

    if let Some(path) = output {
        let json = tables_to_json(&[&cost_table, &latency_table]);
        std::fs::write(&path, json).expect("result file is writable");
        eprintln!("wrote {path}");
    }
}
