//! Experiments E3 + E4 — Theorem 2, round and message complexity.
//!
//! E3: rounds of `Sampler` as a function of `k` and `h` (paper bound
//! `O(3^k·h)`).
//! E4: messages of `Sampler` vs the `Ω(m)`-message baselines (Baswana–Sen,
//! the Derbel-style cluster spanner, greedy-by-collection) on increasingly
//! dense graphs — the headline "free lunch": construction messages stop
//! tracking `m`.
//!
//! Usage: `exp_rounds_messages [--smoke]` — `--smoke` shrinks the graphs
//! and the `(k, h)` sweep for CI.

use freelunch_baselines::{BaswanaSen, ClusterSpanner};
use freelunch_bench::{
    cell_f64, cell_str, cell_u64, experiment_constants, ExperimentTable, Workload,
};
use freelunch_core::sampler::{Sampler, SamplerParams};
use freelunch_core::spanner_api::SpannerAlgorithm;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 192 } else { 512 };
    let ks: std::ops::RangeInclusive<u32> = if smoke { 1..=2 } else { 1..=3 };
    let hs: &[u32] = if smoke { &[3] } else { &[3, 7] };

    // E3: rounds vs (k, h).
    let mut rounds_table = ExperimentTable::new(
        format!("E3 — Theorem 2 rounds: measured rounds vs bound O(3^k h) (dense ER, n = {n})"),
        &["k", "h", "measured rounds", "paper bound 3^k*h", "ratio"],
    );
    let graph = Workload::DenseRandom.build(n, 7).expect("workload builds");
    for k in ks {
        for &h in hs {
            let params = SamplerParams::with_constants(k, h, experiment_constants())
                .expect("valid parameters");
            let outcome = Sampler::new(params).run(&graph, 11).expect("sampler runs");
            let bound = params.round_bound();
            rounds_table.push_row(vec![
                cell_u64(u64::from(k)),
                cell_u64(u64::from(h)),
                cell_u64(outcome.cost.rounds),
                cell_u64(bound),
                cell_f64(outcome.cost.rounds as f64 / bound as f64),
            ]);
        }
    }
    println!("{}", rounds_table.to_markdown());

    // E4: messages vs m for Sampler and Ω(m) baselines on denser and denser
    // graphs.
    let mut message_table = ExperimentTable::new(
        format!("E4 — Theorem 2 messages: construction messages vs |E| (n = {n})"),
        &[
            "workload",
            "m",
            "sampler msgs",
            "baswana-sen msgs",
            "cluster-spanner msgs",
            "sampler msgs / m",
        ],
    );
    for workload in [
        Workload::SparseRandom,
        Workload::Communities,
        Workload::DenseRandom,
        Workload::Complete,
    ] {
        let graph = workload.build(n, 3).expect("workload builds");
        let sampler = Sampler::new(
            SamplerParams::with_constants(2, 7, experiment_constants()).expect("valid parameters"),
        );
        let sampler_result = sampler.construct(&graph, 5).expect("sampler runs");
        let baswana = BaswanaSen::new(3)
            .expect("valid k")
            .construct(&graph, 5)
            .expect("runs");
        let cluster = ClusterSpanner::new(1)
            .expect("valid radius")
            .construct(&graph, 5)
            .expect("runs");
        let m = graph.edge_count() as u64;
        message_table.push_row(vec![
            cell_str(workload.label()),
            cell_u64(m),
            cell_u64(sampler_result.cost.messages),
            cell_u64(baswana.cost.messages),
            cell_u64(cluster.cost.messages),
            cell_f64(sampler_result.cost.messages as f64 / m as f64),
        ]);
    }
    println!("{}", message_table.to_markdown());
}
