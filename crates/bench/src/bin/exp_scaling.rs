//! Engine-scaling experiment: the sharded parallel round engine vs. the
//! sequential engine on million-node sparse workloads.
//!
//! For each [`ScalingWorkload`] family and node count, the same fixed-round
//! neighbor-exchange program is executed with 1, 2 and 8 shards. The run
//! asserts that rounds, message counts and per-round metrics are
//! bit-identical across shard counts (the engine's core guarantee), and
//! records wall-clock time and the speedup over the 1-shard execution —
//! honest numbers for whatever hardware the sweep ran on: the speedup
//! ceiling is the machine's usable core count (recorded in the `cores`
//! column; on a single usable core the parallel barrier can only cost, not
//! pay).
//!
//! Methodology: every configuration is executed `REPS` times in the same
//! process and the *minimum* wall time is recorded. The first execution of
//! a configuration pays one-time costs (page faults on fresh buffers,
//! allocator growth) that the double-buffered message plane amortizes away
//! in steady state; the minimum is the stable steady-state figure and is
//! far less sensitive to neighbor noise on shared machines. Identity across
//! shard counts is asserted on every repetition, not just the recorded one.
//! Tracing stays at its default ([`TraceMode::Off`]) — the plane's hot path
//! — so the numbers measure what production runs pay.
//!
//! [`TraceMode::Off`]: freelunch_runtime::TraceMode::Off
//!
//! Usage:
//!
//! ```sh
//! exp_scaling [OUTPUT.json] [--smoke]
//! ```
//!
//! `--smoke` shrinks the sweep to a few thousand nodes for CI.

use freelunch_bench::{
    cell_f64, cell_str, cell_u64, tables_to_json, ExperimentTable, ScalingWorkload,
};
use freelunch_graph::MultiGraph;
use freelunch_runtime::{Context, Envelope, Network, NetworkConfig, NodeProgram, Scheduling};
use std::time::Instant;

/// Fixed-round neighbor exchange: every node broadcasts a mixing of
/// everything it heard, for exactly `ROUNDS` rounds. Message volume is
/// `2m` per wave — the per-round neighbor-scan pattern whose throughput
/// the experiment measures.
struct PulseExchange {
    state: u64,
    rounds: u32,
}

const ROUNDS: u32 = 2;

/// Executions per configuration; the recorded wall time is the minimum.
const REPS: usize = 3;

impl NodeProgram for PulseExchange {
    type Message = u64;

    fn init(&mut self, ctx: &mut Context<'_, u64>) {
        self.state = u64::from(ctx.node().raw()).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ctx.broadcast(self.state);
    }

    fn round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[Envelope<u64>]) {
        for envelope in inbox {
            self.state ^= envelope
                .payload
                .rotate_left(envelope.edge.raw() as u32 & 63);
        }
        if ctx.round() < self.rounds {
            ctx.broadcast(self.state);
        } else {
            ctx.halt();
        }
    }
}

struct RunResult {
    elapsed_s: f64,
    messages: u64,
    rounds: u64,
    /// Mixed digest of every node's final state — a cheap whole-output
    /// fingerprint for the cross-shard identity check.
    digest: u64,
    metrics: freelunch_runtime::ExecutionMetrics,
}

fn run_once(graph: &MultiGraph, shards: usize, sched: Scheduling) -> RunResult {
    let config = NetworkConfig::with_seed(7)
        .sharded(shards)
        .scheduling(sched);
    let mut network = Network::new(graph, config, |_, _| PulseExchange {
        state: 0,
        rounds: ROUNDS,
    })
    .expect("network builds");
    // Time only the round execution: network construction (freeze + setup)
    // is sequential and identical across shard counts, and folding it into
    // the measurement would deflate the reported engine speedups.
    let start = Instant::now();
    network.run_until_halt(ROUNDS + 1).expect("run completes");
    let elapsed_s = start.elapsed().as_secs_f64();
    let cost = network.cost();
    let metrics = network.metrics().clone();
    let digest = network
        .into_programs()
        .into_iter()
        .fold(0u64, |acc, p| acc.rotate_left(1) ^ p.state);
    RunResult {
        elapsed_s,
        messages: cost.messages,
        rounds: cost.rounds,
        digest,
        metrics,
    }
}

/// Runs a configuration `REPS` times, asserts every repetition is
/// bit-identical, and returns the result carrying the minimum wall time.
fn run_best_of(graph: &MultiGraph, shards: usize, sched: Scheduling) -> RunResult {
    let mut best = run_once(graph, shards, sched);
    for _ in 1..REPS {
        let next = run_once(graph, shards, sched);
        assert_eq!(best.digest, next.digest, "nondeterministic repetition");
        assert_eq!(best.metrics, next.metrics, "nondeterministic repetition");
        if next.elapsed_s < best.elapsed_s {
            best.elapsed_s = next.elapsed_s;
        }
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let output = args.iter().find(|a| !a.starts_with("--")).cloned();

    let sizes: &[usize] = if smoke {
        &[1 << 10, 1 << 12]
    } else {
        &[1 << 16, 1 << 18, 1 << 20]
    };
    // Each parallel shard count runs under both schedulers: `dynamic` is
    // the work-stealing default, `static` the contiguous pre-stealing
    // partition kept as the comparison baseline. The 1-shard serial row is
    // scheduler-free (both modes take the same sequential path).
    let grid: &[(usize, Scheduling, &str)] = &[
        (1, Scheduling::Dynamic, "serial"),
        (2, Scheduling::Dynamic, "dynamic"),
        (2, Scheduling::Static, "static"),
        (8, Scheduling::Dynamic, "dynamic"),
        (8, Scheduling::Static, "static"),
    ];
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1) as u64;

    let mut table = ExperimentTable::new(
        "E-scaling — sharded engine throughput (nodes x shards x scheduler; min of 3 runs; identical outputs enforced)",
        &[
            "workload",
            "n",
            "m",
            "shards",
            "sched",
            "cores",
            "rounds",
            "messages",
            "wall s",
            "speedup vs 1 shard",
            "identical to 1 shard",
        ],
    );

    for workload in ScalingWorkload::throughput_sweep() {
        for &n in sizes {
            let graph = workload.build(n, 42).expect("workload builds");
            let m = graph.edge_count() as u64;
            let mut baseline: Option<RunResult> = None;
            for &(shards, sched, sched_label) in grid {
                let result = run_best_of(&graph, shards, sched);
                let (speedup, identical) = match &baseline {
                    None => (1.0, true),
                    Some(reference) => {
                        let identical = reference.digest == result.digest
                            && reference.messages == result.messages
                            && reference.rounds == result.rounds
                            && reference.metrics == result.metrics;
                        assert!(
                            identical,
                            "{}/{n}: {shards}-shard {sched_label} run diverged from sequential",
                            workload.label()
                        );
                        (reference.elapsed_s / result.elapsed_s, identical)
                    }
                };
                eprintln!(
                    "{:12} n={n:>8} m={m:>9} shards={shards} sched={sched_label:7} {:>8.3}s x{speedup:.2}",
                    workload.label(),
                    result.elapsed_s
                );
                table.push_row(vec![
                    cell_str(workload.label()),
                    cell_u64(n as u64),
                    cell_u64(m),
                    cell_u64(shards as u64),
                    cell_str(sched_label),
                    cell_u64(cores),
                    cell_u64(result.rounds),
                    cell_u64(result.messages),
                    cell_f64(result.elapsed_s),
                    cell_f64(speedup),
                    cell_str(if identical { "yes" } else { "NO" }),
                ]);
                if baseline.is_none() {
                    baseline = Some(result);
                }
            }
        }
    }

    println!("{}", table.to_markdown());

    if let Some(path) = output {
        let json = tables_to_json(&[&table]);
        std::fs::write(&path, json).expect("result file is writable");
        eprintln!("wrote {path}");
    }
}
