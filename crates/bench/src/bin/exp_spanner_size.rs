//! Experiments E1 + E2 — Theorem 2, size and stretch.
//!
//! Sweeps `n` and `k` over dense workloads, measuring the spanner size
//! produced by `Sampler`, the fitted size exponent (to compare against the
//! paper's `1 + 1/(2^{k+1}−1)`), and the worst-case per-edge stretch (to
//! compare against the bound `2·3^k − 1`).
//!
//! Usage: `exp_spanner_size [OUTPUT.json] [--smoke]` — `--smoke` shrinks
//! the `(n, k, seed)` sweep for CI.

use freelunch_bench::{
    cell_f64, cell_str, cell_u64, experiment_params, fit_power_law_exponent, tables_to_json,
    ExperimentTable, Workload,
};
use freelunch_core::sampler::Sampler;
use freelunch_graph::spanner_check::verify_edge_stretch;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let output = args.iter().find(|a| *a != "--smoke");
    // The fit needs at least two sizes even in smoke mode.
    let sizes: &[usize] = if smoke {
        &[128, 256]
    } else {
        &[256, 512, 1024]
    };
    let ks: &[u32] = if smoke { &[2] } else { &[1, 2, 3] };
    let seeds: &[u64] = if smoke { &[1] } else { &[1, 2, 3] };
    let workload = Workload::DenseRandom;

    let mut size_table = ExperimentTable::new(
        "E1 — Theorem 2 size: |S| vs n (dense Erdos-Renyi, mean over seeds)",
        &[
            "k",
            "n",
            "m",
            "spanner edges",
            "paper bound n^(1+d)",
            "edges kept (%)",
        ],
    );
    let mut stretch_table = ExperimentTable::new(
        "E2 — Theorem 9 stretch: worst per-edge stretch vs bound 2*3^k-1",
        &[
            "k",
            "n",
            "max stretch",
            "mean stretch",
            "bound",
            "within bound",
        ],
    );
    let mut fit_table = ExperimentTable::new(
        "E1b — fitted size exponent vs paper exponent 1 + 1/(2^(k+1)-1)",
        &["k", "fitted exponent", "paper exponent"],
    );

    for &k in ks {
        let params = experiment_params(k);
        let mut points: Vec<(f64, f64)> = Vec::new();
        for &n in sizes {
            let runs: Vec<(usize, usize, u32, f64, bool)> = seeds
                .iter()
                .map(|&seed| {
                    let graph = workload.build(n, seed).expect("workload builds");
                    let outcome = Sampler::new(params)
                        .run(&graph, seed)
                        .expect("sampler runs");
                    let report =
                        verify_edge_stretch(&graph, outcome.spanner_edges().iter().copied())
                            .expect("stretch check");
                    (
                        graph.edge_count(),
                        outcome.spanner_size(),
                        report.max_stretch,
                        report.mean_stretch,
                        report.satisfies(params.stretch_bound()),
                    )
                })
                .collect();
            let mean_m = runs.iter().map(|r| r.0 as f64).sum::<f64>() / runs.len() as f64;
            let mean_size = runs.iter().map(|r| r.1 as f64).sum::<f64>() / runs.len() as f64;
            let max_stretch = runs.iter().map(|r| r.2).max().unwrap_or(0);
            let mean_stretch = runs.iter().map(|r| r.3).sum::<f64>() / runs.len() as f64;
            let all_within = runs.iter().all(|r| r.4);

            size_table.push_row(vec![
                cell_u64(u64::from(k)),
                cell_u64(n as u64),
                cell_f64(mean_m),
                cell_f64(mean_size),
                cell_f64(params.size_bound(n)),
                cell_f64(100.0 * mean_size / mean_m),
            ]);
            stretch_table.push_row(vec![
                cell_u64(u64::from(k)),
                cell_u64(n as u64),
                cell_u64(u64::from(max_stretch)),
                cell_f64(mean_stretch),
                cell_u64(u64::from(params.stretch_bound())),
                cell_str(if all_within { "yes" } else { "NO" }),
            ]);
            points.push((n as f64, mean_size));
        }
        let fitted = fit_power_law_exponent(&points).unwrap_or(f64::NAN);
        fit_table.push_row(vec![
            cell_u64(u64::from(k)),
            cell_f64(fitted),
            cell_f64(1.0 + params.delta()),
        ]);
    }

    println!("{}", size_table.to_markdown());
    println!("{}", stretch_table.to_markdown());
    println!("{}", fit_table.to_markdown());

    // With an output path argument, also record the tables as a JSON
    // result file (the committed BENCH_*.json data points).
    if let Some(path) = output {
        let json = tables_to_json(&[&size_table, &stretch_table, &fit_table]);
        std::fs::write(path, json).expect("result file is writable");
        eprintln!("wrote {path}");
    }
}
