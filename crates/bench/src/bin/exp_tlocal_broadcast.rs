//! Experiment E5 — Lemma 12 (first bullet): the single-stage scheme.
//!
//! Sweeps the locality `t` and the scheme parameter `γ`, comparing the
//! measured rounds/messages of the Sampler-based `t`-local broadcast against
//! (a) direct flooding on `G` (`Θ(t·m)` messages, `t` rounds) and
//! (b) gossip-based message reduction (`Θ(n)` messages per round,
//! `O(t log n + log² n)` rounds).
//!
//! Usage: `exp_tlocal_broadcast [--smoke]` — `--smoke` shrinks the graph
//! and the `(t, γ)` sweep for CI.

use freelunch_baselines::{direct_flooding, gossip_broadcast};
use freelunch_bench::{
    cell_f64, cell_str, cell_u64, experiment_constants, ExperimentTable, Workload,
};
use freelunch_core::reduction::scheme::SamplerScheme;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 192 } else { 512 };
    let ts: &[u32] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let gammas: &[u32] = if smoke { &[1] } else { &[1, 2] };
    let graph = Workload::DenseRandom.build(n, 9).expect("workload builds");
    let m = graph.edge_count() as u64;

    let mut table = ExperimentTable::new(
        format!("E5 — Lemma 12 scheme 1: t-local broadcast on dense ER (n = {n}, m = {m})"),
        &["t", "method", "rounds", "messages", "messages / (t*m)"],
    );

    for &t in ts {
        // Baseline 1: direct flooding on G.
        let flooding = direct_flooding(&graph, t).expect("flooding runs");
        table.push_row(vec![
            cell_u64(u64::from(t)),
            cell_str("direct flooding"),
            cell_u64(flooding.broadcast.cost.rounds),
            cell_u64(flooding.broadcast.cost.messages),
            cell_f64(flooding.broadcast.cost.messages as f64 / (u64::from(t) * m) as f64),
        ]);
        // Baseline 2: gossip.
        let gossip = gossip_broadcast(&graph, t, 13).expect("gossip runs");
        table.push_row(vec![
            cell_u64(u64::from(t)),
            cell_str("gossip (push-pull)"),
            cell_u64(gossip.cost.rounds),
            cell_u64(gossip.cost.messages),
            cell_f64(gossip.cost.messages as f64 / (u64::from(t) * m) as f64),
        ]);
        // The paper's scheme for γ = 1, 2.
        for &gamma in gammas {
            let scheme =
                SamplerScheme::with_constants(gamma, experiment_constants()).expect("valid gamma");
            let report = scheme.run(&graph, t, 17).expect("scheme runs");
            table.push_row(vec![
                cell_u64(u64::from(t)),
                cell_str(format!("sampler scheme (gamma={gamma})")),
                cell_u64(report.total_cost.rounds),
                cell_u64(report.total_cost.messages),
                cell_f64(report.total_cost.messages as f64 / (u64::from(t) * m) as f64),
            ]);
        }
    }

    println!("{}", table.to_markdown());
}
