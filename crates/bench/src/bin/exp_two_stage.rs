//! Experiment E6 — Lemma 12 (second bullet) / Theorem 3: the two-stage
//! scheme.
//!
//! The second-stage spanner construction (the Derbel-style cluster spanner)
//! would cost `Θ(ρ·m)` messages if run directly; the two-stage scheme
//! instead simulates it over the stage-1 Sampler spanner and then floods the
//! second spanner, keeping the total rounds `O(t)`.
//!
//! Usage: `exp_two_stage [--smoke]` — `--smoke` shrinks the graph and the
//! `t` sweeps for CI.

use freelunch_baselines::ClusterSpanner;
use freelunch_bench::{cell_f64, cell_u64, experiment_constants, ExperimentTable, Workload};
use freelunch_core::reduction::two_stage::TwoStageScheme;
use freelunch_core::spanner_api::SpannerAlgorithm;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 192 } else { 512 };
    let ts: &[u32] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let shape_ts: &[u32] = if smoke { &[2, 4] } else { &[2, 4, 8, 16] };
    let graph = Workload::DenseRandom.build(n, 21).expect("workload builds");
    let m = graph.edge_count() as u64;

    let mut table = ExperimentTable::new(
        format!("E6 — Lemma 12 scheme 2: two-stage t-local broadcast (n = {n}, m = {m})"),
        &[
            "t",
            "stage1 msgs",
            "stage2 (simulated) msgs",
            "stage3 msgs",
            "total msgs",
            "total rounds",
            "second stage direct msgs (avoided)",
        ],
    );

    let second_stage_direct = ClusterSpanner::new(1)
        .expect("valid radius")
        .construct(&graph, 3)
        .expect("runs");

    for &t in ts {
        let scheme = TwoStageScheme::new(
            1,
            experiment_constants(),
            ClusterSpanner::new(1).expect("valid radius"),
        )
        .expect("valid gamma");
        let report = scheme.run(&graph, t, 29).expect("scheme runs");
        table.push_row(vec![
            cell_u64(u64::from(t)),
            cell_u64(report.stage1_cost.messages),
            cell_u64(report.stage2_cost.messages),
            cell_u64(report.stage3_cost.messages),
            cell_u64(report.total_cost.messages),
            cell_u64(report.total_cost.rounds),
            cell_u64(second_stage_direct.cost.messages),
        ]);
    }
    println!("{}", table.to_markdown());

    let mut shape = ExperimentTable::new(
        "E6b — round complexity stays O(t): total rounds / t",
        &["t", "total rounds", "rounds / t"],
    );
    for &t in shape_ts {
        let scheme = TwoStageScheme::new(
            1,
            experiment_constants(),
            ClusterSpanner::new(1).expect("valid radius"),
        )
        .expect("valid gamma");
        let report = scheme.run(&graph, t, 31).expect("scheme runs");
        shape.push_row(vec![
            cell_u64(u64::from(t)),
            cell_u64(report.total_cost.rounds),
            cell_f64(report.total_cost.rounds as f64 / f64::from(t)),
        ]);
    }
    println!("{}", shape.to_markdown());
}
