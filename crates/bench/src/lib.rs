//! # freelunch-bench
//!
//! Experiment harness reproducing the paper's complexity claims. The crate
//! provides:
//!
//! * [`table`] — experiment tables (markdown / JSON) and power-law fitting;
//! * [`workloads`] — the graph families and standard parameters shared by
//!   all experiments;
//! * experiment binaries (`src/bin/exp_*.rs`), one per claim of the paper
//!   (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
//!   recorded results);
//! * criterion benches (`benches/`) measuring construction and simulation
//!   throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod table;
pub mod workloads;

pub use table::{
    cell_f64, cell_str, cell_u64, fit_power_law_exponent, tables_to_json, ExperimentTable,
};
pub use workloads::{experiment_constants, experiment_params, ScalingWorkload, Workload};
