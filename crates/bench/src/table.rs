//! Lightweight experiment tables: accumulate rows, print aligned text /
//! markdown, export JSON.

use serde_json::Value;
use std::fmt::Write as _;

/// A table of experiment results with a fixed column set.
///
/// JSON export goes through [`ExperimentTable::to_value`] explicitly; the
/// offline `serde` stand-in cannot derive working serialisation.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    /// Table title (experiment identifier, e.g. "E1 / Theorem 2 size").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows; each row has exactly one value per column.
    pub rows: Vec<Vec<Value>>,
}

impl ExperimentTable {
    /// Creates an empty table with the given title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        ExperimentTable {
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the number of columns.
    pub fn push_row(&mut self, values: Vec<Value>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row has {} values but the table has {} columns",
            values.len(),
            self.columns.len()
        );
        self.rows.push(values);
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(format_value).collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }

    /// The table as a JSON value tree.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("title".to_string(), Value::from(self.title.clone())),
            (
                "columns".to_string(),
                Value::Array(
                    self.columns
                        .iter()
                        .map(|c| Value::from(c.clone()))
                        .collect(),
                ),
            ),
            (
                "rows".to_string(),
                Value::Array(
                    self.rows
                        .iter()
                        .map(|row| Value::Array(row.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Serialises the table to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value())
            .expect("experiment tables are always serialisable")
    }
}

fn format_value(value: &Value) -> String {
    match value {
        Value::Number(n) => {
            if let Some(f) = n.as_f64() {
                if n.is_f64() {
                    format!("{f:.3}")
                } else {
                    n.to_string()
                }
            } else {
                n.to_string()
            }
        }
        Value::String(s) => s.clone(),
        other => other.to_string(),
    }
}

/// Combines several tables into one pretty-printed JSON document
/// (an array of table objects), the format of the committed
/// `BENCH_*.json` result files.
pub fn tables_to_json(tables: &[&ExperimentTable]) -> String {
    let doc = Value::Array(tables.iter().map(|t| t.to_value()).collect());
    serde_json::to_string_pretty(&doc).expect("experiment tables are always serialisable")
}

/// Convenience macro-free helpers for building JSON cell values.
pub fn cell_u64(value: u64) -> Value {
    Value::from(value)
}

/// A floating-point cell.
pub fn cell_f64(value: f64) -> Value {
    Value::from(value)
}

/// A string cell.
pub fn cell_str(value: impl Into<String>) -> Value {
    Value::from(value.into())
}

/// Fits the exponent `b` of a power law `y = a·x^b` by least squares in
/// log–log space. Returns `None` if fewer than two valid points are given.
pub fn fit_power_law_exponent(points: &[(f64, f64)]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let sum_x: f64 = logs.iter().map(|(x, _)| x).sum();
    let sum_y: f64 = logs.iter().map(|(_, y)| y).sum();
    let sum_xy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let sum_xx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let denom = n * sum_xx - sum_x * sum_x;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sum_xy - sum_x * sum_y) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let mut table = ExperimentTable::new("E1", &["n", "edges"]);
        table.push_row(vec![cell_u64(128), cell_u64(400)]);
        table.push_row(vec![cell_u64(256), cell_f64(812.5)]);
        let md = table.to_markdown();
        assert!(md.contains("### E1"));
        assert!(md.contains("| n | edges |"));
        assert!(md.contains("| 128 | 400 |"));
        assert!(md.contains("812.500"));
        assert_eq!(md.lines().count(), 5);
        assert!(table.to_json().contains("\"title\""));
    }

    #[test]
    #[should_panic(expected = "row has 1 values")]
    fn mismatched_row_width_panics() {
        let mut table = ExperimentTable::new("bad", &["a", "b"]);
        table.push_row(vec![cell_u64(1)]);
    }

    #[test]
    fn power_law_fit_recovers_exponent() {
        let points: Vec<(f64, f64)> = (1..=8)
            .map(|i| (f64::from(i) * 100.0, 3.0 * (f64::from(i) * 100.0).powf(1.4)))
            .collect();
        let exponent = fit_power_law_exponent(&points).unwrap();
        assert!((exponent - 1.4).abs() < 1e-9);
        assert!(fit_power_law_exponent(&[(1.0, 2.0)]).is_none());
        assert!(fit_power_law_exponent(&[]).is_none());
    }
}
