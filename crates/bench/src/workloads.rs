//! Shared workload definitions for the experiments: the graph families and
//! the standard parameter choices used across experiment binaries and
//! criterion benches, so every table in EXPERIMENTS.md is regenerated from
//! the same inputs.

use freelunch_core::params::ConstantPolicy;
use freelunch_core::sampler::SamplerParams;
use freelunch_graph::generators::{
    barabasi_albert, complete_graph, connected_erdos_renyi, planted_partition,
    sparse_connected_erdos_renyi, sparse_planted_partition, GeneratorConfig,
    PlantedPartitionParams,
};
use freelunch_graph::{GraphResult, MultiGraph, NodeId};
use serde::{Deserialize, Serialize};

/// The graph families the evaluation sweeps over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// Dense Erdős–Rényi graph with constant edge probability (the `m ≫ n`
    /// regime the paper targets).
    DenseRandom,
    /// Sparse(ish) Erdős–Rényi graph with average degree ≈ 8.
    SparseRandom,
    /// Complete graph — the extreme dense case.
    Complete,
    /// Planted-partition graph: dense communities, sparse cuts.
    Communities,
}

impl Workload {
    /// All workloads, in presentation order.
    pub fn all() -> [Workload; 4] {
        [
            Workload::DenseRandom,
            Workload::SparseRandom,
            Workload::Complete,
            Workload::Communities,
        ]
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Workload::DenseRandom => "dense-er",
            Workload::SparseRandom => "sparse-er",
            Workload::Complete => "complete",
            Workload::Communities => "communities",
        }
    }

    /// Builds the workload graph with `n` nodes.
    ///
    /// # Errors
    ///
    /// Propagates generator errors.
    pub fn build(self, n: usize, seed: u64) -> GraphResult<MultiGraph> {
        let config = GeneratorConfig::new(n, seed);
        match self {
            Workload::DenseRandom => connected_erdos_renyi(&config, 0.2),
            Workload::SparseRandom => {
                let p = (8.0 / n as f64).min(1.0);
                connected_erdos_renyi(&config, p)
            }
            Workload::Complete => complete_graph(&config),
            Workload::Communities => {
                let communities = (n / 64).clamp(2, 16);
                let params = PlantedPartitionParams::new(communities, 0.4, 0.01)?;
                planted_partition(&config, &params)
            }
        }
    }
}

/// The large-scale workload families of the engine-scaling experiment.
///
/// Unlike [`Workload`], whose dense generators scan all `n²/2` node pairs,
/// every family here is built by an `O(n + m)` sparse generator, so the
/// sweep reaches the ≥10⁶-node sizes the paper's asymptotics are about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingWorkload {
    /// Sparse connected Erdős–Rényi graph with expected average degree 8.
    ErdosRenyi,
    /// Barabási–Albert preferential attachment with 4 edges per node
    /// (heavy-tailed degrees stress the shard load balance).
    ScaleFree,
    /// Sparse planted partition: blocks of ≈256 nodes, intra degree 12,
    /// one cut edge per two nodes.
    Community,
    /// Deterministic hub-and-spokes skew: a path-connected core of at most
    /// 64 hubs at the *lowest* node indices, every remaining node attached
    /// to one hub round-robin. Every edge is incident to a hub, so the
    /// first contiguous shard range carries half of all message work — the
    /// worst case for static shard chunking and the motivating case for
    /// the work-stealing scheduler (`docs/PERF.md` §2).
    SkewedHub,
}

impl ScalingWorkload {
    /// The three calibrated scaling families, in presentation order. The
    /// planner's cost models and the committed ledger / churn / recovery
    /// recordings quantify over exactly these; [`ScalingWorkload::SkewedHub`]
    /// is deliberately *not* included (no calibration exists for it — see
    /// [`ScalingWorkload::throughput_sweep`]).
    pub fn all() -> [ScalingWorkload; 3] {
        [
            ScalingWorkload::ErdosRenyi,
            ScalingWorkload::ScaleFree,
            ScalingWorkload::Community,
        ]
    }

    /// The engine-throughput sweep: [`ScalingWorkload::all`] plus the
    /// skewed-hub starvation topology. This is the grid `exp_scaling`
    /// records and the `round_barrier` bench regresses — the extra family
    /// exists to expose scheduler imbalance, not to feed the calibrated
    /// cost models.
    pub fn throughput_sweep() -> [ScalingWorkload; 4] {
        [
            ScalingWorkload::ErdosRenyi,
            ScalingWorkload::ScaleFree,
            ScalingWorkload::Community,
            ScalingWorkload::SkewedHub,
        ]
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            ScalingWorkload::ErdosRenyi => "erdos-renyi",
            ScalingWorkload::ScaleFree => "scale-free",
            ScalingWorkload::Community => "communities",
            ScalingWorkload::SkewedHub => "skewed-hub",
        }
    }

    /// Builds the workload graph with `n` nodes in `O(n + m)` expected time.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (e.g. `n` too small for the family).
    pub fn build(self, n: usize, seed: u64) -> GraphResult<MultiGraph> {
        let config = GeneratorConfig::new(n, seed);
        match self {
            ScalingWorkload::ErdosRenyi => sparse_connected_erdos_renyi(&config, 8.0),
            ScalingWorkload::ScaleFree => barabasi_albert(&config, 4),
            ScalingWorkload::Community => {
                let communities = (n / 256).clamp(2, 8192);
                sparse_planted_partition(&config, communities, 12.0, 1.0)
            }
            ScalingWorkload::SkewedHub => {
                // Deterministic by construction; the seed only names the row.
                let hubs = (n / 512).clamp(2, 64).min(n);
                let mut graph = MultiGraph::with_capacity(n, n.saturating_sub(1));
                for hub in 1..hubs {
                    graph.add_edge(NodeId::from_usize(hub - 1), NodeId::from_usize(hub))?;
                }
                for leaf in hubs..n {
                    graph.add_edge(NodeId::from_usize(leaf % hubs), NodeId::from_usize(leaf))?;
                }
                Ok(graph)
            }
        }
    }
}

/// The `Sampler` constant policy used by the experiments.
///
/// The paper-faithful `log³ n` budgets exceed every node degree at
/// simulatable sizes (the algorithm then degenerates to querying everything),
/// so the experiments use explicit constants — the asymptotic *shape* of the
/// theorem is what is being reproduced, not its `whp` constants.
/// EXPERIMENTS.md states this next to every affected table.
pub fn experiment_constants() -> ConstantPolicy {
    ConstantPolicy::Practical {
        target_factor: 4.0,
        query_factor: 4.0,
    }
}

/// The standard `Sampler` parameters used by an experiment for a given `k`
/// (trial budget `h = 7`, i.e. `ε = 1/7`).
///
/// # Panics
///
/// Panics only if the hard-coded parameters were invalid, which the tests
/// rule out.
pub fn experiment_params(k: u32) -> SamplerParams {
    SamplerParams::with_constants(k, 7, experiment_constants())
        .expect("hard-coded experiment parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::traversal::is_connected;

    #[test]
    fn all_scaling_workloads_build_connected_sparse_graphs() {
        for workload in ScalingWorkload::throughput_sweep() {
            let graph = workload.build(4096, 3).unwrap();
            assert_eq!(graph.node_count(), 4096, "{}", workload.label());
            assert!(
                is_connected(&graph),
                "{} should be connected",
                workload.label()
            );
            // Sparse: m = O(n), far below the quadratic regime.
            assert!(
                graph.edge_count() < 16 * graph.node_count(),
                "{} too dense: {} edges",
                workload.label(),
                graph.edge_count()
            );
        }
    }

    #[test]
    fn all_workloads_build_connected_graphs() {
        for workload in Workload::all() {
            let graph = workload.build(192, 1).unwrap();
            assert_eq!(graph.node_count(), 192, "{}", workload.label());
            assert!(
                is_connected(&graph),
                "{} should be connected",
                workload.label()
            );
        }
    }

    #[test]
    fn dense_workloads_are_denser_than_sparse_ones() {
        let dense = Workload::DenseRandom.build(256, 2).unwrap();
        let sparse = Workload::SparseRandom.build(256, 2).unwrap();
        assert!(dense.edge_count() > 3 * sparse.edge_count());
        let complete = Workload::Complete.build(256, 2).unwrap();
        assert_eq!(complete.edge_count(), 256 * 255 / 2);
    }

    #[test]
    fn experiment_params_are_valid_for_all_k() {
        for k in 1..=3 {
            let params = experiment_params(k);
            assert_eq!(params.k, k);
            assert_eq!(params.h, 7);
        }
    }
}
