//! Shared workload definitions for the experiments: the graph families and
//! the standard parameter choices used across experiment binaries and
//! criterion benches, so every table in EXPERIMENTS.md is regenerated from
//! the same inputs.

use freelunch_core::params::ConstantPolicy;
use freelunch_core::sampler::SamplerParams;
use freelunch_graph::generators::{
    complete_graph, connected_erdos_renyi, planted_partition, GeneratorConfig,
    PlantedPartitionParams,
};
use freelunch_graph::{GraphResult, MultiGraph};
use serde::{Deserialize, Serialize};

/// The graph families the evaluation sweeps over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// Dense Erdős–Rényi graph with constant edge probability (the `m ≫ n`
    /// regime the paper targets).
    DenseRandom,
    /// Sparse(ish) Erdős–Rényi graph with average degree ≈ 8.
    SparseRandom,
    /// Complete graph — the extreme dense case.
    Complete,
    /// Planted-partition graph: dense communities, sparse cuts.
    Communities,
}

impl Workload {
    /// All workloads, in presentation order.
    pub fn all() -> [Workload; 4] {
        [
            Workload::DenseRandom,
            Workload::SparseRandom,
            Workload::Complete,
            Workload::Communities,
        ]
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Workload::DenseRandom => "dense-er",
            Workload::SparseRandom => "sparse-er",
            Workload::Complete => "complete",
            Workload::Communities => "communities",
        }
    }

    /// Builds the workload graph with `n` nodes.
    ///
    /// # Errors
    ///
    /// Propagates generator errors.
    pub fn build(self, n: usize, seed: u64) -> GraphResult<MultiGraph> {
        let config = GeneratorConfig::new(n, seed);
        match self {
            Workload::DenseRandom => connected_erdos_renyi(&config, 0.2),
            Workload::SparseRandom => {
                let p = (8.0 / n as f64).min(1.0);
                connected_erdos_renyi(&config, p)
            }
            Workload::Complete => complete_graph(&config),
            Workload::Communities => {
                let communities = (n / 64).clamp(2, 16);
                let params = PlantedPartitionParams::new(communities, 0.4, 0.01)?;
                planted_partition(&config, &params)
            }
        }
    }
}

/// The `Sampler` constant policy used by the experiments.
///
/// The paper-faithful `log³ n` budgets exceed every node degree at
/// simulatable sizes (the algorithm then degenerates to querying everything),
/// so the experiments use explicit constants — the asymptotic *shape* of the
/// theorem is what is being reproduced, not its `whp` constants.
/// EXPERIMENTS.md states this next to every affected table.
pub fn experiment_constants() -> ConstantPolicy {
    ConstantPolicy::Practical {
        target_factor: 4.0,
        query_factor: 4.0,
    }
}

/// The standard `Sampler` parameters used by an experiment for a given `k`
/// (trial budget `h = 7`, i.e. `ε = 1/7`).
///
/// # Panics
///
/// Panics only if the hard-coded parameters were invalid, which the tests
/// rule out.
pub fn experiment_params(k: u32) -> SamplerParams {
    SamplerParams::with_constants(k, 7, experiment_constants())
        .expect("hard-coded experiment parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::traversal::is_connected;

    #[test]
    fn all_workloads_build_connected_graphs() {
        for workload in Workload::all() {
            let graph = workload.build(192, 1).unwrap();
            assert_eq!(graph.node_count(), 192, "{}", workload.label());
            assert!(
                is_connected(&graph),
                "{} should be connected",
                workload.label()
            );
        }
    }

    #[test]
    fn dense_workloads_are_denser_than_sparse_ones() {
        let dense = Workload::DenseRandom.build(256, 2).unwrap();
        let sparse = Workload::SparseRandom.build(256, 2).unwrap();
        assert!(dense.edge_count() > 3 * sparse.edge_count());
        let complete = Workload::Complete.build(256, 2).unwrap();
        assert_eq!(complete.edge_count(), 256 * 255 / 2);
    }

    #[test]
    fn experiment_params_are_valid_for_all_k() {
        for k in 1..=3 {
            let params = experiment_params(k);
            assert_eq!(params.k, k);
            assert_eq!(params.h, 7);
        }
    }
}
