//! Error type of the core crate.

use std::error::Error;
use std::fmt;

/// Errors raised by the Sampler algorithm and the message-reduction schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A parameter violates the requirements stated by the paper (e.g.
    /// `k < 1` or `h < 1`).
    InvalidParameter {
        /// Description of the violated requirement.
        reason: String,
    },
    /// An error surfaced from the graph substrate.
    Graph(freelunch_graph::GraphError),
    /// An error surfaced from the synchronous runtime.
    Runtime(freelunch_runtime::RuntimeError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            CoreError::Graph(err) => write!(f, "graph error: {err}"),
            CoreError::Runtime(err) => write!(f, "runtime error: {err}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Graph(err) => Some(err),
            CoreError::Runtime(err) => Some(err),
            CoreError::InvalidParameter { .. } => None,
        }
    }
}

impl From<freelunch_graph::GraphError> for CoreError {
    fn from(err: freelunch_graph::GraphError) -> Self {
        CoreError::Graph(err)
    }
}

impl From<freelunch_runtime::RuntimeError> for CoreError {
    fn from(err: freelunch_runtime::RuntimeError) -> Self {
        CoreError::Runtime(err)
    }
}

impl CoreError {
    /// Convenience constructor for [`CoreError::InvalidParameter`].
    pub fn invalid_parameter(reason: impl Into<String>) -> Self {
        CoreError::InvalidParameter {
            reason: reason.into(),
        }
    }
}

/// Result alias used throughout the core crate.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let err = CoreError::invalid_parameter("k must be at least 1");
        assert!(err.to_string().contains("k must be at least 1"));
        assert!(err.source().is_none());

        let graph_err: CoreError = freelunch_graph::GraphError::invalid_parameter("bad").into();
        assert!(graph_err.source().is_some());

        let runtime_err: CoreError = freelunch_runtime::RuntimeError::invalid_config("bad").into();
        assert!(runtime_err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }
}
