//! Phase-attributed cost ledger: which reduction phase paid for which
//! messages, and what the measured "free lunch" actually is.
//!
//! The paper's claim decomposes into phases — building a spanner, simulating
//! over it, flooding on it — each with its own round/message bill, and the
//! claim is only measurable end-to-end if every phase is attributed to the
//! same meter. [`Ledger`] collects one [`CostReport`] per [`CostPhase`]
//! entry and derives the headline numbers: the **free-lunch ratio** (direct
//! messages ÷ scheme messages; `> 1` means the scheme sends fewer) and the
//! **round overhead** (scheme rounds ÷ direct rounds; the paper's claim is
//! that the former grows while the latter stays `O(1)` per simulated round).
//!
//! Constructors exist for every reduction path in [`crate::reduction`]:
//! [`Ledger::from_simulation`] (end-to-end simulation of a LOCAL algorithm),
//! [`Ledger::from_scheme`] (single-stage `t`-local broadcast scheme),
//! [`Ledger::from_two_stage`] (two-stage scheme), and
//! [`Ledger::for_tlocal`] (a bare `t`-local broadcast measured against a
//! direct execution). The fine-grained per-edge/per-round side of the same
//! contract lives in
//! [`freelunch_runtime::metrics::MessageLedger`]; `docs/METRICS.md`
//! specifies both.

use crate::reduction::scheme::SchemeReport;
use crate::reduction::simulate::SimulationReport;
use crate::reduction::two_stage::TwoStageReport;
use freelunch_runtime::CostReport;
use serde::{Deserialize, Serialize};

/// The execution phase a cost entry is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostPhase {
    /// Constructing a spanner (the `Sampler` stage, or a baseline spanner
    /// construction run for comparison).
    SpannerConstruction,
    /// Simulating a second-stage construction over an already-built spanner
    /// (stage 2 of the two-stage scheme).
    SecondStageSimulation,
    /// The `t`-local broadcast / flooding stage that delivers the simulated
    /// algorithm's information.
    Broadcast,
    /// Incremental repair of an already-built spanner after a churn event
    /// (edge insert/delete) — the price of keeping the scheme's backbone
    /// valid on a dynamic graph instead of rebuilding it from scratch. See
    /// `docs/CHURN.md` for the repair-vs-rebuild contract.
    Maintenance,
    /// Running the simulated algorithm directly on `G` — the reference the
    /// scheme competes with. Never counted into the scheme's own cost.
    DirectExecution,
}

impl CostPhase {
    /// Short label used in experiment tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            CostPhase::SpannerConstruction => "spanner",
            CostPhase::SecondStageSimulation => "second-stage-sim",
            CostPhase::Broadcast => "broadcast",
            CostPhase::Maintenance => "maintenance",
            CostPhase::DirectExecution => "direct",
        }
    }
}

/// One attributed cost entry of a [`Ledger`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// The phase the cost belongs to.
    pub phase: CostPhase,
    /// Free-form description of what exactly was charged (algorithm name,
    /// stage number, …).
    pub label: String,
    /// The rounds and messages charged.
    pub cost: CostReport,
}

/// A phase-attributed cost ledger for one reduction-scheme execution.
///
/// # Examples
///
/// ```
/// use freelunch_core::ledger::{CostPhase, Ledger};
/// use freelunch_runtime::CostReport;
///
/// let mut ledger = Ledger::new();
/// ledger.charge(CostPhase::SpannerConstruction, "sampler", CostReport::new(6, 400));
/// ledger.charge(CostPhase::Broadcast, "t-local broadcast", CostReport::new(4, 100));
/// ledger.charge(CostPhase::DirectExecution, "direct run", CostReport::new(2, 2000));
/// assert_eq!(ledger.scheme_cost(), CostReport::new(10, 500));
/// assert_eq!(ledger.free_lunch_ratio(), Some(4.0));
/// assert_eq!(ledger.round_overhead(), Some(5.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ledger {
    entries: Vec<LedgerEntry>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Appends a cost entry attributed to `phase`.
    pub fn charge(&mut self, phase: CostPhase, label: impl Into<String>, cost: CostReport) {
        self.entries.push(LedgerEntry {
            phase,
            label: label.into(),
            cost,
        });
    }

    /// All entries, in the order they were charged.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Sequential composition of every entry attributed to `phase` (rounds
    /// and messages both add).
    pub fn phase_cost(&self, phase: CostPhase) -> CostReport {
        self.entries
            .iter()
            .filter(|e| e.phase == phase)
            .fold(CostReport::zero(), |acc, e| acc + e.cost)
    }

    /// Total cost of the scheme itself: every phase except
    /// [`CostPhase::DirectExecution`], composed sequentially.
    pub fn scheme_cost(&self) -> CostReport {
        self.entries
            .iter()
            .filter(|e| e.phase != CostPhase::DirectExecution)
            .fold(CostReport::zero(), |acc, e| acc + e.cost)
    }

    /// Total cost of the direct reference execution, if one was charged.
    pub fn direct_cost(&self) -> Option<CostReport> {
        if self
            .entries
            .iter()
            .any(|e| e.phase == CostPhase::DirectExecution)
        {
            Some(self.phase_cost(CostPhase::DirectExecution))
        } else {
            None
        }
    }

    /// The measured free-lunch ratio: direct messages ÷ scheme messages
    /// (`> 1` means the scheme sends fewer messages; `f64::INFINITY` if the
    /// scheme sent none). `None` if no direct execution was charged.
    pub fn free_lunch_ratio(&self) -> Option<f64> {
        let direct = self.direct_cost()?;
        let scheme = self.scheme_cost();
        if scheme.messages == 0 {
            return Some(f64::INFINITY);
        }
        Some(direct.messages as f64 / scheme.messages as f64)
    }

    /// The measured round overhead: scheme rounds ÷ direct rounds (`0.0` if
    /// the direct execution used no rounds). `None` if no direct execution
    /// was charged.
    pub fn round_overhead(&self) -> Option<f64> {
        let direct = self.direct_cost()?;
        let scheme = self.scheme_cost();
        if direct.rounds == 0 {
            return Some(0.0);
        }
        Some(scheme.rounds as f64 / direct.rounds as f64)
    }

    /// Fraction of the scheme's messages attributed to `phase` (0.0 if the
    /// scheme sent no messages).
    pub fn message_fraction(&self, phase: CostPhase) -> f64 {
        let scheme = self.scheme_cost();
        if scheme.messages == 0 {
            return 0.0;
        }
        self.phase_cost(phase).messages as f64 / scheme.messages as f64
    }

    /// Ledger of an end-to-end simulation
    /// ([`simulate_with_spanner`](crate::reduction::simulate::simulate_with_spanner)):
    /// spanner construction + broadcast on the scheme side, and the measured
    /// direct execution as the reference.
    pub fn from_simulation(report: &SimulationReport) -> Self {
        let mut ledger = Ledger::new();
        ledger.charge(
            CostPhase::SpannerConstruction,
            "spanner construction",
            report.spanner_cost,
        );
        ledger.charge(
            CostPhase::Broadcast,
            format!("{}-local broadcast", report.t),
            report.broadcast_cost,
        );
        ledger.charge(
            CostPhase::DirectExecution,
            "direct execution on G",
            report.direct_cost,
        );
        ledger
    }

    /// Ledger of a single-stage scheme run
    /// ([`SamplerScheme`](crate::reduction::scheme::SamplerScheme)), measured
    /// against the supplied direct-execution cost (e.g. a measured direct
    /// flooding, or the naive `2·t·|E|` bound).
    pub fn from_scheme(report: &SchemeReport, direct: CostReport) -> Self {
        let mut ledger = Ledger::new();
        ledger.charge(
            CostPhase::SpannerConstruction,
            format!("sampler spanner (gamma={})", report.gamma),
            report.spanner_cost,
        );
        ledger.charge(
            CostPhase::Broadcast,
            format!("{}-local broadcast on the spanner", report.t),
            report.broadcast_cost,
        );
        ledger.charge(CostPhase::DirectExecution, "direct execution on G", direct);
        ledger
    }

    /// Ledger of a two-stage scheme run
    /// ([`TwoStageScheme`](crate::reduction::two_stage::TwoStageScheme)),
    /// measured against the supplied direct-execution cost.
    pub fn from_two_stage(report: &TwoStageReport, direct: CostReport) -> Self {
        let mut ledger = Ledger::new();
        ledger.charge(
            CostPhase::SpannerConstruction,
            format!("stage 1: sampler spanner (gamma={})", report.gamma),
            report.stage1_cost,
        );
        ledger.charge(
            CostPhase::SecondStageSimulation,
            format!(
                "stage 2: simulate {} ({} rounds) on the stage-1 spanner",
                report.stage2_algorithm, report.stage2_rounds_simulated
            ),
            report.stage2_cost,
        );
        ledger.charge(
            CostPhase::Broadcast,
            format!("stage 3: flooding within radius {}", report.stage3_radius),
            report.stage3_cost,
        );
        ledger.charge(CostPhase::DirectExecution, "direct execution on G", direct);
        ledger
    }

    /// Ledger of a bare `t`-local broadcast (no spanner construction
    /// charged), measured against the supplied direct-execution cost.
    pub fn for_tlocal(broadcast: CostReport, direct: CostReport) -> Self {
        let mut ledger = Ledger::new();
        ledger.charge(CostPhase::Broadcast, "t-local broadcast", broadcast);
        ledger.charge(CostPhase::DirectExecution, "direct execution on G", direct);
        ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_sums_and_ratios() {
        let mut ledger = Ledger::new();
        ledger.charge(CostPhase::SpannerConstruction, "s1", CostReport::new(3, 60));
        ledger.charge(CostPhase::SpannerConstruction, "s2", CostReport::new(2, 40));
        ledger.charge(CostPhase::Broadcast, "b", CostReport::new(5, 100));
        ledger.charge(CostPhase::DirectExecution, "d", CostReport::new(2, 800));

        assert_eq!(
            ledger.phase_cost(CostPhase::SpannerConstruction),
            CostReport::new(5, 100)
        );
        assert_eq!(ledger.scheme_cost(), CostReport::new(10, 200));
        assert_eq!(ledger.direct_cost(), Some(CostReport::new(2, 800)));
        assert_eq!(ledger.free_lunch_ratio(), Some(4.0));
        assert_eq!(ledger.round_overhead(), Some(5.0));
        assert_eq!(ledger.message_fraction(CostPhase::Broadcast), 0.5);
        assert_eq!(ledger.entries().len(), 4);
    }

    #[test]
    fn ratios_require_a_direct_entry() {
        let mut ledger = Ledger::new();
        ledger.charge(CostPhase::Broadcast, "b", CostReport::new(1, 10));
        assert_eq!(ledger.direct_cost(), None);
        assert_eq!(ledger.free_lunch_ratio(), None);
        assert_eq!(ledger.round_overhead(), None);
    }

    #[test]
    fn degenerate_ratios() {
        let zero_scheme = Ledger::for_tlocal(CostReport::zero(), CostReport::new(1, 5));
        assert_eq!(zero_scheme.free_lunch_ratio(), Some(f64::INFINITY));
        let zero_direct = Ledger::for_tlocal(CostReport::new(2, 5), CostReport::zero());
        assert_eq!(zero_direct.round_overhead(), Some(0.0));
        assert_eq!(Ledger::new().message_fraction(CostPhase::Broadcast), 0.0);
    }

    #[test]
    fn maintenance_counts_into_the_scheme_cost() {
        let mut ledger = Ledger::new();
        ledger.charge(
            CostPhase::SpannerConstruction,
            "build",
            CostReport::new(4, 50),
        );
        ledger.charge(
            CostPhase::Maintenance,
            "repair after churn",
            CostReport::new(2, 10),
        );
        ledger.charge(CostPhase::DirectExecution, "d", CostReport::new(1, 300));
        assert_eq!(ledger.scheme_cost(), CostReport::new(6, 60));
        assert_eq!(ledger.free_lunch_ratio(), Some(5.0));
        assert_eq!(
            ledger.phase_cost(CostPhase::Maintenance),
            CostReport::new(2, 10)
        );
    }

    #[test]
    fn phase_labels_are_stable() {
        assert_eq!(CostPhase::SpannerConstruction.label(), "spanner");
        assert_eq!(CostPhase::SecondStageSimulation.label(), "second-stage-sim");
        assert_eq!(CostPhase::Broadcast.label(), "broadcast");
        assert_eq!(CostPhase::Maintenance.label(), "maintenance");
        assert_eq!(CostPhase::DirectExecution.label(), "direct");
    }
}
