//! # freelunch-core
//!
//! The paper's contribution: the **`Sampler`** spanner-construction
//! algorithm (Theorem 2) and the **message-reduction schemes** built on top
//! of it (Theorem 3, Lemma 12), from *"Message Reduction in the LOCAL Model
//! Is a Free Lunch"* (Bitton, Emek, Izumi, Kutten; DISC 2019).
//!
//! * [`sampler`] — the hierarchical node-sampling spanner construction,
//!   with faithful centralized execution, Section 5 distributed cost
//!   accounting, a runtime-backed level-0 protocol and Figure-1 traces;
//! * [`spanner_api`] — the [`SpannerAlgorithm`]
//!   trait shared with the baseline constructions;
//! * [`reduction`] — `t`-local broadcast over a spanner, the single-stage
//!   and two-stage message-reduction schemes, and the machinery for
//!   simulating arbitrary LOCAL algorithms with `o(m)` messages;
//! * [`planner`] — adaptive execution-path planning: a deterministic
//!   [`GraphStats`] sampler feeding closed-form cost models calibrated
//!   against the recorded bench data, choosing direct flooding vs. spanner
//!   simulation vs. two-stage per run with a self-auditing [`PlanReport`]
//!   (see `docs/PLANNER.md`);
//! * [`maintain`] — incremental repair of a stretch-3 cluster spanner under
//!   edge churn, metered per repair so dynamic-graph experiments can charge
//!   maintenance to its own ledger phase (see `docs/CHURN.md`);
//! * [`ledger`] — the phase-attributed cost ledger: spanner construction
//!   vs. maintenance vs. simulation vs. direct execution, with measured
//!   free-lunch ratios (the contract is documented in `docs/METRICS.md`);
//! * [`params`] — the `(k, h, c)` parameter space of Theorem 2.
//!
//! # Examples
//!
//! Construct a constant-stretch spanner of a dense graph and check how many
//! messages the construction needed compared to the edge count:
//!
//! ```
//! use freelunch_core::sampler::{ConstantPolicy, Sampler, SamplerParams};
//! use freelunch_graph::generators::{complete_graph, GeneratorConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = complete_graph(&GeneratorConfig::new(200, 0))?;
//! let params = SamplerParams::with_constants(
//!     2,
//!     4,
//!     ConstantPolicy::Practical { target_factor: 4.0, query_factor: 8.0 },
//! )?;
//! let outcome = Sampler::new(params).run(&graph, 7)?;
//! // On a dense graph the spanner is much smaller than the graph itself.
//! assert!(outcome.spanner_size() < graph.edge_count() / 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod ledger;
pub mod maintain;
pub mod params;
pub mod planner;
pub mod reduction;
pub mod sampler;
pub mod spanner_api;

pub use error::{CoreError, CoreResult};
pub use ledger::{CostPhase, Ledger, LedgerEntry};
pub use maintain::{IncrementalSpanner, RepairReport};
pub use params::{ConstantPolicy, FallbackPolicy, SamplerParams};
pub use planner::{
    AuditReport, CostModel, GraphStats, PathChoice, Plan, PlanReport, SchemePlanner,
    SpannerProfile, StatsConfig, Tolerances,
};
pub use sampler::{Sampler, SamplerOutcome};
pub use spanner_api::{SpannerAlgorithm, SpannerResult};
