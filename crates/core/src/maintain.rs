//! Incremental maintenance of a stretch-3 cluster spanner under edge churn.
//!
//! The message-reduction schemes amortise an expensive spanner construction
//! over many cheap broadcast rounds — a bargain that only survives on a
//! *dynamic* communication graph if the spanner can be **repaired** after a
//! churn event instead of rebuilt from scratch (a rebuild pays the full
//! `Ω(m)` construction bill again, exactly the cost the paper's free lunch
//! eliminates). [`IncrementalSpanner`] maintains the first-stage clustering
//! structure shared by `Sampler` and Baswana–Sen — *star clusters*: every
//! node is either a cluster center or attached to an adjacent center by a
//! tree edge — together with one inter-cluster edge per (node, adjacent
//! foreign cluster) pair. Two invariants make the edge set a 3-spanner:
//!
//! * **I1 (tree edges)** — every non-center node has a spanner edge to its
//!   cluster center;
//! * **I2 (coverage)** — every node has at least one spanner edge into every
//!   foreign cluster it is graph-adjacent to.
//!
//! For any graph edge `(u, v)`: same cluster → `u – center – v` (length
//! ≤ 2); different clusters → `u – w – center(v) – v` through `u`'s coverage
//! edge into `v`'s cluster (length ≤ 3). Hence
//! [`IncrementalSpanner::stretch_bound`] is 3.
//!
//! Repairs are purely local (the audited region is the churned edge's
//! endpoints and, for a tree-edge loss, their graph neighborhood) and their
//! message price is metered per operation in a [`RepairReport`] and
//! cumulatively in [`IncrementalSpanner::maintenance_cost`] — the number
//! experiments charge to [`CostPhase::Maintenance`](crate::ledger::CostPhase).
//! The exact per-operation message model is specified in `docs/CHURN.md` and
//! pinned by hand-computed tests in `tests/message_ledger.rs`; the stretch
//! bound after every repair is pinned against a from-scratch rebuild in
//! `crates/graph/tests/incremental_spanner_equiv.rs`.

use crate::error::{CoreError, CoreResult};
use freelunch_graph::{EdgeId, MultiGraph, NodeId};
use freelunch_runtime::CostReport;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};

/// What one repair operation did and what it cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// Rounds and messages charged for this operation (see `docs/CHURN.md`
    /// for the per-operation model).
    pub cost: CostReport,
    /// Edges the repair added to the spanner, in the order they were added.
    pub added_to_spanner: Vec<EdgeId>,
    /// Whether the operation removed an edge from the spanner (only
    /// deletions of spanner edges do).
    pub removed_from_spanner: bool,
    /// The new cluster center of the re-homed node, when the operation
    /// deleted a tree edge (the node itself when it fell back to a
    /// singleton cluster).
    pub rehomed: Option<NodeId>,
}

/// A stretch-3 star-cluster spanner that is repaired — not rebuilt — after
/// every edge insertion and deletion.
///
/// # Examples
///
/// ```
/// use freelunch_core::maintain::IncrementalSpanner;
/// use freelunch_graph::{EdgeId, MultiGraph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A star with center 0: the spanner is exactly the three tree edges.
/// let graph = MultiGraph::from_edges(
///     4,
///     [(NodeId::new(0), NodeId::new(1)), (NodeId::new(0), NodeId::new(2)),
///      (NodeId::new(0), NodeId::new(3))],
/// )?;
/// let mut spanner = IncrementalSpanner::with_centers(&graph, &[NodeId::new(0)])?;
/// assert_eq!(spanner.spanner_edges().len(), 3);
///
/// // Inserting a leaf-to-leaf edge stays intra-cluster: 2 messages, no
/// // spanner growth.
/// let report = spanner.insert_edge(EdgeId::new(3), NodeId::new(1), NodeId::new(2))?;
/// assert_eq!(report.cost.messages, 2);
/// assert!(report.added_to_spanner.is_empty());
/// spanner.check_invariants()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalSpanner {
    graph: MultiGraph,
    /// `center_of[v]` = the center of the cluster `v` belongs to; centers
    /// point at themselves.
    center_of: Vec<NodeId>,
    /// The I1 edge of each non-center member (centers hold `None`).
    tree_edge: Vec<Option<EdgeId>>,
    spanner: BTreeSet<EdgeId>,
    build_cost: CostReport,
    maintenance_cost: CostReport,
    repairs: u64,
}

impl IncrementalSpanner {
    /// Builds the initial structure with centers sampled independently with
    /// probability `n^{-1/2}` from the seeded stream — the first-stage
    /// sampling rate of a stretch-3 (`k = 2`) clustering.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph has no nodes.
    pub fn new(graph: &MultiGraph, seed: u64) -> CoreResult<Self> {
        if graph.node_count() == 0 {
            return Err(CoreError::invalid_parameter("the input graph has no nodes"));
        }
        let n = graph.node_count();
        let probability = (n as f64).powf(-0.5).clamp(0.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centers: Vec<NodeId> = graph
            .nodes()
            .filter(|_| rng.gen_bool(probability))
            .collect();
        IncrementalSpanner::with_centers(graph, &centers)
    }

    /// Builds the initial structure from an explicit center set — the
    /// deterministic entry point the hand-computed ledger tests use.
    ///
    /// Every non-center node adjacent to at least one center joins the
    /// center with the smallest ID (ties broken by smallest edge ID); nodes
    /// adjacent to no center become singleton centers themselves. The build
    /// is metered as 3 rounds: centers announce themselves to their
    /// neighbors, every node announces its final cluster on every incident
    /// edge, and every spanner edge is marked with one message.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph has no nodes or a center is out of
    /// range.
    pub fn with_centers(graph: &MultiGraph, centers: &[NodeId]) -> CoreResult<Self> {
        if graph.node_count() == 0 {
            return Err(CoreError::invalid_parameter("the input graph has no nodes"));
        }
        let n = graph.node_count();
        let mut is_center = vec![false; n];
        for &center in centers {
            graph.check_node(center)?;
            is_center[center.index()] = true;
        }

        let mut center_of: Vec<NodeId> = graph.nodes().collect();
        let mut tree_edge: Vec<Option<EdgeId>> = vec![None; n];
        let mut messages: u64 = (0..n)
            .filter(|&i| is_center[i])
            .map(|i| graph.degree(NodeId::from_usize(i)) as u64)
            .sum();
        for v in graph.nodes() {
            if is_center[v.index()] {
                continue;
            }
            let mut best: Option<(NodeId, EdgeId)> = None;
            for ie in graph.incident_edges(v) {
                if !is_center[ie.neighbor.index()] {
                    continue;
                }
                let candidate = (ie.neighbor, ie.edge);
                best = Some(match best {
                    Some(current) if current <= candidate => current,
                    _ => candidate,
                });
            }
            if let Some((center, edge)) = best {
                center_of[v.index()] = center;
                tree_edge[v.index()] = Some(edge);
            }
            // Otherwise v stays its own singleton center.
        }
        messages += graph.incidence_count() as u64;

        let mut spanner: BTreeSet<EdgeId> = tree_edge.iter().flatten().copied().collect();
        for v in graph.nodes() {
            for edge in missing_coverage(graph, &center_of, &spanner, v) {
                spanner.insert(edge);
            }
        }
        messages += spanner.len() as u64;

        Ok(IncrementalSpanner {
            graph: graph.clone(),
            center_of,
            tree_edge,
            spanner,
            build_cost: CostReport::new(3, messages),
            maintenance_cost: CostReport::zero(),
            repairs: 0,
        })
    }

    /// Inserts an edge and repairs the coverage invariant.
    ///
    /// The endpoints exchange cluster identifiers (2 messages, 1 round); if
    /// they sit in different clusters and either side lacks a spanner edge
    /// into the other's cluster, the new edge joins the spanner (1 more
    /// message to mark it).
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, the edge is a
    /// self-loop, or the identifier is already in use.
    pub fn insert_edge(&mut self, id: EdgeId, u: NodeId, v: NodeId) -> CoreResult<RepairReport> {
        self.graph.add_edge_with_id(id, u, v)?;
        let mut messages = 2u64;
        let mut added = Vec::new();
        let cluster_u = self.center_of[u.index()];
        let cluster_v = self.center_of[v.index()];
        if cluster_u != cluster_v && (!self.covers(u, cluster_v) || !self.covers(v, cluster_u)) {
            self.spanner.insert(id);
            added.push(id);
            messages += 1;
        }
        Ok(self.finish_repair(CostReport::new(1, messages), added, false, None))
    }

    /// Deletes an edge and repairs whatever invariant it carried.
    ///
    /// * Non-spanner edge: nothing to repair — 0 rounds, 0 messages.
    /// * Spanner edge that is no tree edge: each endpoint re-checks its
    ///   coverage toward the other's cluster and, if broken, promotes the
    ///   smallest-ID surviving edge into that cluster (2 messages per
    ///   promoted edge; 1 round if anything was promoted).
    /// * Tree edge of a member `v`: 2 rounds. Round 1 — `v` polls every
    ///   surviving neighbor for its cluster (2 messages per incident edge)
    ///   and re-homes to the adjacent center with the smallest ID (smallest
    ///   edge ID on ties; 1 message to announce), or falls back to a
    ///   singleton cluster (no announcement). Round 2 — `v` and its graph
    ///   neighbors audit their coverage and promote the smallest-ID edge
    ///   into every uncovered adjacent foreign cluster (2 messages each).
    ///
    /// # Errors
    ///
    /// Returns an error if no such edge exists.
    pub fn delete_edge(&mut self, id: EdgeId) -> CoreResult<RepairReport> {
        let edge = self.graph.remove_edge(id)?;
        let was_spanner = self.spanner.remove(&id);
        let tree_owner = [edge.u, edge.v]
            .into_iter()
            .find(|&x| self.tree_edge[x.index()] == Some(id));

        let mut messages = 0u64;
        let mut rounds = 0u64;
        let mut added = Vec::new();
        let mut rehomed = None;

        if let Some(v) = tree_owner {
            rounds = 2;
            self.tree_edge[v.index()] = None;
            // Round 1: poll the surviving neighborhood (request + reply per
            // incident edge) and re-home.
            messages += 2 * self.graph.degree(v) as u64;
            let mut best: Option<(NodeId, EdgeId)> = None;
            for ie in self.graph.incident_edges(v) {
                if self.center_of[ie.neighbor.index()] != ie.neighbor {
                    continue; // Not a center: members attach to centers only.
                }
                let candidate = (ie.neighbor, ie.edge);
                best = Some(match best {
                    Some(current) if current <= candidate => current,
                    _ => candidate,
                });
            }
            match best {
                Some((center, tree)) => {
                    self.center_of[v.index()] = center;
                    self.tree_edge[v.index()] = Some(tree);
                    if self.spanner.insert(tree) {
                        added.push(tree);
                    }
                    messages += 1;
                    rehomed = Some(center);
                }
                None => {
                    self.center_of[v.index()] = v;
                    rehomed = Some(v);
                }
            }
            // Round 2: coverage audit over {v} ∪ N(v), ascending node order.
            let mut audit: Vec<NodeId> = self
                .graph
                .incident_edges(v)
                .iter()
                .map(|ie| ie.neighbor)
                .collect();
            audit.push(v);
            audit.sort_unstable();
            audit.dedup();
            for node in audit {
                for promoted in missing_coverage(&self.graph, &self.center_of, &self.spanner, node)
                {
                    self.spanner.insert(promoted);
                    added.push(promoted);
                    messages += 2;
                }
            }
        } else if was_spanner {
            for (endpoint, cluster) in [
                (edge.u, self.center_of[edge.v.index()]),
                (edge.v, self.center_of[edge.u.index()]),
            ] {
                if self.center_of[endpoint.index()] == cluster || self.covers(endpoint, cluster) {
                    continue;
                }
                let replacement = self
                    .graph
                    .incident_edges(endpoint)
                    .iter()
                    .filter(|ie| self.center_of[ie.neighbor.index()] == cluster)
                    .map(|ie| ie.edge)
                    .min();
                if let Some(promoted) = replacement {
                    self.spanner.insert(promoted);
                    added.push(promoted);
                    messages += 2;
                }
            }
            rounds = if added.is_empty() { 0 } else { 1 };
        }

        Ok(self.finish_repair(
            CostReport::new(rounds, messages),
            added,
            was_spanner,
            rehomed,
        ))
    }

    /// The maintained graph (reflects every applied insert/delete).
    pub fn graph(&self) -> &MultiGraph {
        &self.graph
    }

    /// The current spanner edge set, ascending.
    pub fn spanner_edges(&self) -> Vec<EdgeId> {
        self.spanner.iter().copied().collect()
    }

    /// Number of edges currently in the spanner.
    pub fn spanner_size(&self) -> usize {
        self.spanner.len()
    }

    /// The cluster center `node` currently belongs to (itself for centers).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn center_of(&self, node: NodeId) -> NodeId {
        self.center_of[node.index()]
    }

    /// Whether `node` is currently a cluster center.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn is_center(&self, node: NodeId) -> bool {
        self.center_of[node.index()] == node
    }

    /// Rounds and messages of the initial construction.
    pub fn build_cost(&self) -> CostReport {
        self.build_cost
    }

    /// Cumulative rounds and messages of every repair so far — the bill an
    /// experiment charges to
    /// [`CostPhase::Maintenance`](crate::ledger::CostPhase).
    pub fn maintenance_cost(&self) -> CostReport {
        self.maintenance_cost
    }

    /// Number of insert/delete operations applied so far.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// The stretch guarantee the invariants imply: 3.
    pub fn stretch_bound(&self) -> u32 {
        3
    }

    /// Verifies invariants I1 and I2 and that the spanner is a subset of the
    /// current edge set — the oracle the property tests run after every
    /// churn event.
    ///
    /// # Errors
    ///
    /// Returns an error describing the first violated invariant.
    pub fn check_invariants(&self) -> CoreResult<()> {
        for v in self.graph.nodes() {
            let center = self.center_of[v.index()];
            if self.center_of[center.index()] != center {
                return Err(CoreError::invalid_parameter(format!(
                    "{v} points at {center}, which is not a center"
                )));
            }
            if center == v {
                if self.tree_edge[v.index()].is_some() {
                    return Err(CoreError::invalid_parameter(format!(
                        "center {v} holds a tree edge"
                    )));
                }
            } else {
                let Some(tree) = self.tree_edge[v.index()] else {
                    return Err(CoreError::invalid_parameter(format!(
                        "member {v} has no tree edge (I1)"
                    )));
                };
                if !self.spanner.contains(&tree) {
                    return Err(CoreError::invalid_parameter(format!(
                        "tree edge {tree} of {v} is not in the spanner (I1)"
                    )));
                }
                let (a, b) = self.graph.endpoints(tree)?;
                if !(a == v && b == center || a == center && b == v) {
                    return Err(CoreError::invalid_parameter(format!(
                        "tree edge {tree} does not connect {v} to its center {center} (I1)"
                    )));
                }
            }
            for ie in self.graph.incident_edges(v) {
                let foreign = self.center_of[ie.neighbor.index()];
                if foreign != center && !self.covers(v, foreign) {
                    return Err(CoreError::invalid_parameter(format!(
                        "{v} has no spanner edge into the adjacent cluster of {foreign} (I2)"
                    )));
                }
            }
        }
        for &edge in &self.spanner {
            if !self.graph.contains_edge(edge) {
                return Err(CoreError::invalid_parameter(format!(
                    "spanner edge {edge} is not in the graph"
                )));
            }
        }
        Ok(())
    }

    /// Whether `node` has a spanner edge into the cluster centered at
    /// `cluster`.
    fn covers(&self, node: NodeId, cluster: NodeId) -> bool {
        self.graph.incident_edges(node).iter().any(|ie| {
            self.spanner.contains(&ie.edge) && self.center_of[ie.neighbor.index()] == cluster
        })
    }

    fn finish_repair(
        &mut self,
        cost: CostReport,
        added_to_spanner: Vec<EdgeId>,
        removed_from_spanner: bool,
        rehomed: Option<NodeId>,
    ) -> RepairReport {
        self.maintenance_cost += cost;
        self.repairs += 1;
        RepairReport {
            cost,
            added_to_spanner,
            removed_from_spanner,
            rehomed,
        }
    }
}

/// The smallest-ID edge from `v` into every graph-adjacent foreign cluster
/// the spanner does not yet cover, keyed — and therefore returned — in
/// ascending center order.
fn missing_coverage(
    graph: &MultiGraph,
    center_of: &[NodeId],
    spanner: &BTreeSet<EdgeId>,
    v: NodeId,
) -> Vec<EdgeId> {
    let own = center_of[v.index()];
    let mut best: BTreeMap<NodeId, EdgeId> = BTreeMap::new();
    let mut covered: BTreeSet<NodeId> = BTreeSet::new();
    for ie in graph.incident_edges(v) {
        let cluster = center_of[ie.neighbor.index()];
        if cluster == own {
            continue;
        }
        if spanner.contains(&ie.edge) {
            covered.insert(cluster);
            continue;
        }
        best.entry(cluster)
            .and_modify(|edge| {
                if ie.edge < *edge {
                    *edge = ie.edge;
                }
            })
            .or_insert(ie.edge);
    }
    best.into_iter()
        .filter(|(cluster, _)| !covered.contains(cluster))
        .map(|(_, edge)| edge)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{connected_erdos_renyi, GeneratorConfig};
    use freelunch_graph::spanner_check::verify_edge_stretch;
    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn e(i: u64) -> EdgeId {
        EdgeId::new(i)
    }

    /// Star with center 0 and leaves 1..=3; edges e0=(0,1), e1=(0,2),
    /// e2=(0,3).
    fn star4() -> MultiGraph {
        MultiGraph::from_edges(4, [(n(0), n(1)), (n(0), n(2)), (n(0), n(3))]).unwrap()
    }

    /// K4; edges e0=(0,1), e1=(0,2), e2=(0,3), e3=(1,2), e4=(1,3), e5=(2,3).
    fn k4() -> MultiGraph {
        MultiGraph::from_edges(
            4,
            [
                (n(0), n(1)),
                (n(0), n(2)),
                (n(0), n(3)),
                (n(1), n(2)),
                (n(1), n(3)),
                (n(2), n(3)),
            ],
        )
        .unwrap()
    }

    /// Path 0–1–2–3; edges e0=(0,1), e1=(1,2), e2=(2,3).
    fn path4() -> MultiGraph {
        MultiGraph::from_edges(4, [(n(0), n(1)), (n(1), n(2)), (n(2), n(3))]).unwrap()
    }

    #[test]
    fn star_build_keeps_exactly_the_tree_edges() {
        let spanner = IncrementalSpanner::with_centers(&star4(), &[n(0)]).unwrap();
        assert_eq!(spanner.spanner_edges(), vec![e(0), e(1), e(2)]);
        assert!(spanner.is_center(n(0)));
        for leaf in [n(1), n(2), n(3)] {
            assert_eq!(spanner.center_of(leaf), n(0));
        }
        // 3 center announcements + 2m = 6 cluster announcements + 3 marks.
        assert_eq!(spanner.build_cost(), CostReport::new(3, 12));
        spanner.check_invariants().unwrap();
    }

    #[test]
    fn path_build_covers_cluster_boundaries() {
        // Center 0 captures node 1; nodes 2 and 3 fall back to singleton
        // clusters, so the boundary edges e1 and e2 must be covered.
        let spanner = IncrementalSpanner::with_centers(&path4(), &[n(0)]).unwrap();
        assert_eq!(spanner.spanner_edges(), vec![e(0), e(1), e(2)]);
        assert!(spanner.is_center(n(2)));
        assert!(spanner.is_center(n(3)));
        spanner.check_invariants().unwrap();
    }

    #[test]
    fn intra_cluster_insert_costs_two_messages() {
        let mut spanner = IncrementalSpanner::with_centers(&star4(), &[n(0)]).unwrap();
        let report = spanner.insert_edge(e(3), n(1), n(2)).unwrap();
        assert_eq!(report.cost, CostReport::new(1, 2));
        assert!(report.added_to_spanner.is_empty());
        assert_eq!(spanner.spanner_size(), 3);
        spanner.check_invariants().unwrap();
    }

    #[test]
    fn cross_cluster_insert_joins_the_spanner() {
        let mut spanner = IncrementalSpanner::with_centers(&path4(), &[n(0)]).unwrap();
        let report = spanner.insert_edge(e(3), n(0), n(3)).unwrap();
        assert_eq!(report.cost, CostReport::new(1, 3));
        assert_eq!(report.added_to_spanner, vec![e(3)]);
        spanner.check_invariants().unwrap();
    }

    #[test]
    fn non_spanner_delete_is_free() {
        let mut spanner = IncrementalSpanner::with_centers(&k4(), &[n(0)]).unwrap();
        assert_eq!(spanner.spanner_edges(), vec![e(0), e(1), e(2)]);
        let report = spanner.delete_edge(e(3)).unwrap();
        assert_eq!(report.cost, CostReport::zero());
        assert!(!report.removed_from_spanner);
        spanner.check_invariants().unwrap();
    }

    #[test]
    fn isolated_tree_edge_delete_falls_back_to_a_free_singleton() {
        let mut spanner = IncrementalSpanner::with_centers(&star4(), &[n(0)]).unwrap();
        let report = spanner.delete_edge(e(0)).unwrap();
        // Node 1 is isolated afterwards: the poll, the re-home and the
        // audit all touch nothing.
        assert_eq!(report.cost, CostReport::new(2, 0));
        assert!(report.removed_from_spanner);
        assert_eq!(report.rehomed, Some(n(1)));
        assert!(spanner.is_center(n(1)));
        spanner.check_invariants().unwrap();
    }

    #[test]
    fn k4_tree_edge_delete_polls_rehomes_and_audits() {
        let mut spanner = IncrementalSpanner::with_centers(&k4(), &[n(0)]).unwrap();
        let report = spanner.delete_edge(e(0)).unwrap();
        // Poll 2 surviving neighbors (4 messages), fall back to a singleton
        // (no announcement), then the audit promotes e3 (for node 1) and e4
        // (for node 3): 4 + 2 + 2 = 8.
        assert_eq!(report.cost, CostReport::new(2, 8));
        assert_eq!(report.added_to_spanner, vec![e(3), e(4)]);
        assert_eq!(report.rehomed, Some(n(1)));
        assert_eq!(spanner.spanner_edges(), vec![e(1), e(2), e(3), e(4)]);
        spanner.check_invariants().unwrap();
    }

    #[test]
    fn tree_edge_delete_rehomes_to_the_smallest_adjacent_center() {
        // On the path, node 1 stays adjacent to center 2 after losing its
        // tree edge to center 0.
        let mut spanner = IncrementalSpanner::with_centers(&path4(), &[n(0), n(2)]).unwrap();
        let report = spanner.delete_edge(e(0)).unwrap();
        // Poll the one surviving neighbor (2 messages) + re-home
        // announcement.
        assert_eq!(report.cost, CostReport::new(2, 3));
        assert_eq!(report.rehomed, Some(n(2)));
        assert_eq!(spanner.center_of(n(1)), n(2));
        spanner.check_invariants().unwrap();
    }

    #[test]
    fn spanner_non_tree_delete_promotes_replacements() {
        // Two clusters {0,1} and {2,3} joined by a parallel pair of
        // boundary edges; dropping the covering one promotes the other.
        let graph =
            MultiGraph::from_edges(4, [(n(0), n(1)), (n(2), n(3)), (n(1), n(2)), (n(1), n(2))])
                .unwrap();
        let mut spanner = IncrementalSpanner::with_centers(&graph, &[n(0), n(2)]).unwrap();
        assert_eq!(spanner.spanner_edges(), vec![e(0), e(1), e(2)]);
        let report = spanner.delete_edge(e(2)).unwrap();
        // One promotion: once e3 re-covers node 1 toward cluster 2, it also
        // covers node 2 toward cluster 0, so the second endpoint finds its
        // invariant already repaired.
        assert_eq!(report.cost, CostReport::new(1, 2));
        assert_eq!(report.added_to_spanner, vec![e(3)]);
        spanner.check_invariants().unwrap();
    }

    #[test]
    fn maintenance_cost_accumulates_across_repairs() {
        let mut spanner = IncrementalSpanner::with_centers(&k4(), &[n(0)]).unwrap();
        spanner.delete_edge(e(3)).unwrap();
        spanner.delete_edge(e(0)).unwrap();
        spanner.insert_edge(e(6), n(0), n(1)).unwrap();
        assert_eq!(spanner.repairs(), 3);
        // Free non-spanner delete + tree-edge delete (poll 1 neighbor = 2,
        // audit promotes e4 = 2) + cross-cluster insert (2 + 1 mark).
        assert_eq!(spanner.maintenance_cost(), CostReport::new(3, 7));
        spanner.check_invariants().unwrap();
    }

    #[test]
    fn seeded_construction_is_deterministic_and_stretch_3() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(48, 9), 0.2).unwrap();
        let a = IncrementalSpanner::new(&graph, 11).unwrap();
        let b = IncrementalSpanner::new(&graph, 11).unwrap();
        assert_eq!(a.spanner_edges(), b.spanner_edges());
        a.check_invariants().unwrap();
        let report = verify_edge_stretch(&graph, a.spanner_edges()).unwrap();
        assert!(
            report.satisfies(a.stretch_bound()),
            "stretch {} > 3",
            report.max_stretch
        );
    }

    #[test]
    fn random_churn_preserves_invariants_and_stretch() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(32, 4), 0.25).unwrap();
        let mut spanner = IncrementalSpanner::new(&graph, 5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut next_id = graph.edge_count() as u64;
        for step in 0..120 {
            if step % 3 == 0 {
                let u = n(rng.gen_range(0u32..32));
                let v = n(rng.gen_range(0u32..32));
                if u != v {
                    spanner.insert_edge(e(next_id), u, v).unwrap();
                    next_id += 1;
                }
            } else {
                let ids: Vec<EdgeId> = spanner.graph().edge_ids().collect();
                if !ids.is_empty() {
                    let id = ids[rng.gen_range(0..ids.len())];
                    spanner.delete_edge(id).unwrap();
                }
            }
            spanner.check_invariants().unwrap();
            let report = verify_edge_stretch(spanner.graph(), spanner.spanner_edges()).unwrap();
            assert!(
                report.satisfies(spanner.stretch_bound()),
                "step {step}: stretch {} > 3",
                report.max_stretch
            );
        }
    }

    #[test]
    fn input_validation() {
        assert!(IncrementalSpanner::new(&MultiGraph::new(0), 0).is_err());
        assert!(IncrementalSpanner::with_centers(&star4(), &[n(9)]).is_err());
        let mut spanner = IncrementalSpanner::with_centers(&star4(), &[n(0)]).unwrap();
        assert!(spanner.delete_edge(e(42)).is_err());
        assert!(spanner.insert_edge(e(0), n(1), n(2)).is_err()); // duplicate ID
        assert!(spanner.insert_edge(e(9), n(1), n(1)).is_err()); // self-loop
    }
}
