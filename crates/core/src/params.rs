//! Parameters of the `Sampler` algorithm (Theorem 2).
//!
//! The algorithm is governed by two integer parameters:
//!
//! * `k` — the number of clustering levels (`1 ≤ k ≤ log log n`); the
//!   stretch of the constructed spanner is `2·3^k − 1` and its size is
//!   `Õ(n^{1+δ})` with `δ = 1/(2^{k+1} − 1)`;
//! * `h` — the trial budget (`0 ≤ h ≤ log n` in the paper; we require
//!   `h ≥ 1`); each level runs at most `2h` edge-sampling trials and the
//!   message complexity picks up a factor `n^{1/h}`.
//!
//! On top of `k` and `h`, the algorithm uses a success constant `c` inside
//! the `c·n^{2^j δ}·log n` neighbor-finding targets and the
//! `c²·n^{2^j δ+ε}·log³ n` per-trial query budgets. The paper only needs
//! `c` to be "sufficiently large" for the `whp` claims; at the graph sizes a
//! simulation can touch, the literal `log³ n` factors exceed every node
//! degree and make the algorithm degenerate (every node queries *all* of its
//! edges, producing the trivial spanner). [`ConstantPolicy`] therefore lets
//! an experiment either keep the paper-faithful formulas
//! ([`ConstantPolicy::Paper`]) or replace the poly-log factors by explicit
//! constants ([`ConstantPolicy::Practical`]) so the asymptotic *shape* of
//! Theorem 2 is observable at laptop scale. EXPERIMENTS.md records which
//! policy each experiment uses.

use crate::error::{CoreError, CoreResult};
use serde::{Deserialize, Serialize};

/// How the `whp` constants of the algorithm are instantiated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConstantPolicy {
    /// Paper-faithful formulas: neighbor target `c·n^{2^j δ}·log₂ n`, trial
    /// budget `c²·n^{2^j δ+ε}·(log₂ n)³`.
    Paper {
        /// The paper's success constant `c`.
        c: f64,
    },
    /// Practical formulas with the poly-log factors replaced by explicit
    /// multipliers: neighbor target `target_factor·n^{2^j δ}`, trial budget
    /// `query_factor·n^{2^j δ+ε}`.
    Practical {
        /// Multiplier of the neighbor-finding target.
        target_factor: f64,
        /// Multiplier of the per-trial query budget.
        query_factor: f64,
    },
}

impl Default for ConstantPolicy {
    fn default() -> Self {
        ConstantPolicy::Paper { c: 1.0 }
    }
}

impl ConstantPolicy {
    fn validate(&self) -> CoreResult<()> {
        let positive = |name: &str, value: f64| {
            if value > 0.0 && value.is_finite() {
                Ok(())
            } else {
                Err(CoreError::invalid_parameter(format!(
                    "{name} must be positive, got {value}"
                )))
            }
        };
        match self {
            ConstantPolicy::Paper { c } => positive("c", *c),
            ConstantPolicy::Practical {
                target_factor,
                query_factor,
            } => {
                positive("target_factor", *target_factor)?;
                positive("query_factor", *query_factor)
            }
        }
    }
}

/// What the algorithm does with a node that finishes its `2h` trials neither
/// *light* (all neighbors queried) nor *heavy* (target reached).
///
/// The paper proves (Lemma 6) that this happens with probability at most
/// `n^{-Θ(c)}`, and with the [`ConstantPolicy::Paper`] constants it
/// essentially never does. Under aggressive [`ConstantPolicy::Practical`]
/// constants it can, and the choice here decides whether the stretch
/// guarantee is preserved unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FallbackPolicy {
    /// Query every remaining unexplored edge of the node, making it light.
    /// Preserves the stretch bound of Theorem 9 unconditionally; the extra
    /// queries are charged to the message count. This is the default.
    #[default]
    QueryRemaining,
    /// Leave the node ambiguous (it behaves like an unclustered node whose
    /// spanner edges may be missing). Matches the paper's pseudocode
    /// verbatim; stretch violations are then possible exactly with the
    /// probability Lemma 6 bounds.
    None,
}

/// Parameter set of one `Sampler` run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplerParams {
    /// Number of clustering levels (`k ≥ 1`).
    pub k: u32,
    /// Trial budget parameter (`h ≥ 1`); each level runs at most `2h`
    /// sampling trials.
    pub h: u32,
    /// Instantiation of the `whp` constants.
    pub constants: ConstantPolicy,
    /// Behaviour for nodes that end up neither light nor heavy.
    pub fallback: FallbackPolicy,
}

impl SamplerParams {
    /// Creates a parameter set with the default (paper-faithful) constants.
    ///
    /// # Errors
    ///
    /// Returns an error if `k` or `h` is zero or `k > 20` (beyond `k = 20`
    /// the stretch bound `2·3^k − 1` overflows any realistic use).
    pub fn new(k: u32, h: u32) -> CoreResult<Self> {
        SamplerParams {
            k,
            h,
            constants: ConstantPolicy::default(),
            fallback: FallbackPolicy::default(),
        }
        .validated()
    }

    /// Creates a parameter set with explicit constants.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SamplerParams::new`] plus positivity of the
    /// constants.
    pub fn with_constants(k: u32, h: u32, constants: ConstantPolicy) -> CoreResult<Self> {
        SamplerParams {
            k,
            h,
            constants,
            fallback: FallbackPolicy::default(),
        }
        .validated()
    }

    /// Returns a copy using the given fallback policy.
    pub fn fallback(mut self, fallback: FallbackPolicy) -> Self {
        self.fallback = fallback;
        self
    }

    /// The parameterization used by the message-reduction corollary of the
    /// paper: `1/(2^{k+1}−1) = 1/h = ε/2`, i.e. the spanner has
    /// `Õ(n^{1+ε/2})` edges and the construction sends `Õ(n^{1+ε})`
    /// messages.
    ///
    /// # Errors
    ///
    /// Returns an error if `epsilon` is not in `(0, 2]`.
    pub fn from_epsilon(epsilon: f64) -> CoreResult<Self> {
        if !(epsilon > 0.0 && epsilon <= 2.0 && epsilon.is_finite()) {
            return Err(CoreError::invalid_parameter(format!(
                "epsilon must be in (0, 2], got {epsilon}"
            )));
        }
        // 1/(2^{k+1} - 1) <= eps/2  ⇔  2^{k+1} >= 2/eps + 1.
        let needed = 2.0 / epsilon + 1.0;
        let k = (needed.log2().ceil() as u32).max(2) - 1;
        let h = (2.0 / epsilon).ceil() as u32;
        SamplerParams::new(k.max(1), h.max(1))
    }

    fn validated(self) -> CoreResult<Self> {
        if self.k == 0 {
            return Err(CoreError::invalid_parameter("k must be at least 1"));
        }
        if self.k > 20 {
            return Err(CoreError::invalid_parameter("k must be at most 20"));
        }
        if self.h == 0 {
            return Err(CoreError::invalid_parameter("h must be at least 1"));
        }
        self.constants.validate()?;
        Ok(self)
    }

    /// `δ = 1/(2^{k+1} − 1)`: the size exponent excess of Theorem 2.
    pub fn delta(&self) -> f64 {
        1.0 / ((1u64 << (self.k + 1)) as f64 - 1.0)
    }

    /// `ε = 1/h`: the message exponent excess contributed by the trial
    /// budget.
    pub fn epsilon(&self) -> f64 {
        1.0 / f64::from(self.h)
    }

    /// The stretch bound `2·3^k − 1` proved in Theorem 9.
    pub fn stretch_bound(&self) -> u32 {
        2 * 3u32.pow(self.k) - 1
    }

    /// Number of sampling trials per level (`2h`).
    pub fn trials_per_level(&self) -> u32 {
        2 * self.h
    }

    /// The paper's bound on the number of spanner edges as a function of
    /// `n`: `n^{1+δ}` (poly-log factors omitted, as in the `Õ`).
    pub fn size_bound(&self, n: usize) -> f64 {
        (n as f64).powf(1.0 + self.delta())
    }

    /// The paper's bound on the number of messages: `n^{1+δ+ε}` (poly-log
    /// factors omitted).
    pub fn message_bound(&self, n: usize) -> f64 {
        (n as f64).powf(1.0 + self.delta() + self.epsilon())
    }

    /// The paper's bound on the round complexity: `O(3^k · h)`.
    pub fn round_bound(&self) -> u64 {
        u64::from(3u32.pow(self.k)) * u64::from(self.h)
    }

    /// Center-marking probability at level `j`: `p_j = n^{-2^j δ}`.
    pub fn center_probability(&self, level: u32, n: usize) -> f64 {
        (n as f64)
            .powf(-(f64::from(1u32 << level)) * self.delta())
            .clamp(0.0, 1.0)
    }

    /// Neighbor-finding target at level `j` (the `min{…, |N_j(v)|}` is taken
    /// by the algorithm itself): paper formula `c·n^{2^j δ}·log₂ n`, or the
    /// practical substitute.
    pub fn neighbor_target(&self, level: u32, n: usize) -> usize {
        let base = (n as f64).powf(f64::from(1u32 << level) * self.delta());
        let value = match self.constants {
            ConstantPolicy::Paper { c } => c * base * log2_ceil(n),
            ConstantPolicy::Practical { target_factor, .. } => target_factor * base,
        };
        value.ceil().max(1.0) as usize
    }

    /// Per-trial query budget at level `j`: paper formula
    /// `c²·n^{2^j δ+ε}·(log₂ n)³`, or the practical substitute.
    pub fn trial_query_budget(&self, level: u32, n: usize) -> usize {
        let base = (n as f64).powf(f64::from(1u32 << level) * self.delta() + self.epsilon());
        let value = match self.constants {
            ConstantPolicy::Paper { c } => c * c * base * log2_ceil(n).powi(3),
            ConstantPolicy::Practical { query_factor, .. } => query_factor * base,
        };
        value.ceil().max(1.0) as usize
    }

    /// The largest `k` the paper allows for an `n`-node graph
    /// (`k ≤ log log n`); useful for validating experiment sweeps.
    pub fn max_k_for(n: usize) -> u32 {
        let loglog = (n.max(4) as f64).log2().log2();
        loglog.floor().max(1.0) as u32
    }
}

fn log2_ceil(n: usize) -> f64 {
    (n.max(2) as f64).log2().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_degenerate_parameters() {
        assert!(SamplerParams::new(0, 4).is_err());
        assert!(SamplerParams::new(2, 0).is_err());
        assert!(SamplerParams::new(21, 4).is_err());
        assert!(SamplerParams::new(2, 4).is_ok());
        assert!(SamplerParams::with_constants(2, 4, ConstantPolicy::Paper { c: 0.0 }).is_err());
        assert!(SamplerParams::with_constants(
            2,
            4,
            ConstantPolicy::Practical {
                target_factor: -1.0,
                query_factor: 2.0
            }
        )
        .is_err());
    }

    #[test]
    fn delta_and_stretch_match_formulas() {
        let p1 = SamplerParams::new(1, 4).unwrap();
        assert!((p1.delta() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(p1.stretch_bound(), 5);

        let p2 = SamplerParams::new(2, 4).unwrap();
        assert!((p2.delta() - 1.0 / 7.0).abs() < 1e-12);
        assert_eq!(p2.stretch_bound(), 17);

        let p3 = SamplerParams::new(3, 4).unwrap();
        assert!((p3.delta() - 1.0 / 15.0).abs() < 1e-12);
        assert_eq!(p3.stretch_bound(), 53);
        assert_eq!(p3.trials_per_level(), 8);
        assert_eq!(p3.round_bound(), 27 * 4);
    }

    #[test]
    fn center_probability_decreases_with_level() {
        let params = SamplerParams::new(3, 4).unwrap();
        let n = 10_000;
        let p0 = params.center_probability(0, n);
        let p1 = params.center_probability(1, n);
        let p2 = params.center_probability(2, n);
        assert!(p0 > p1 && p1 > p2);
        assert!(p0 <= 1.0 && p2 > 0.0);
        // p_j = n^{-2^j / 15}.
        assert!((p0 - (n as f64).powf(-1.0 / 15.0)).abs() < 1e-12);
    }

    #[test]
    fn targets_grow_with_level_and_respect_policy() {
        let n = 4096;
        let paper = SamplerParams::with_constants(2, 4, ConstantPolicy::Paper { c: 1.0 }).unwrap();
        let practical = SamplerParams::with_constants(
            2,
            4,
            ConstantPolicy::Practical {
                target_factor: 2.0,
                query_factor: 4.0,
            },
        )
        .unwrap();
        assert!(paper.neighbor_target(1, n) > paper.neighbor_target(0, n));
        assert!(paper.trial_query_budget(0, n) > paper.neighbor_target(0, n));
        // The paper constants include a log³ factor, so they dominate the
        // practical ones by a wide margin.
        assert!(paper.trial_query_budget(0, n) > 10 * practical.trial_query_budget(0, n));
        assert!(practical.neighbor_target(0, n) >= 1);
    }

    #[test]
    fn size_and_message_bounds_are_monotone_in_n() {
        let params = SamplerParams::new(2, 4).unwrap();
        assert!(params.size_bound(2000) > params.size_bound(1000));
        assert!(params.message_bound(1000) > params.size_bound(1000));
    }

    #[test]
    fn from_epsilon_realizes_the_corollary() {
        let params = SamplerParams::from_epsilon(0.5).unwrap();
        // Both exponent excesses must be at most eps/2 = 0.25.
        assert!(params.delta() <= 0.25 + 1e-9);
        assert!(params.epsilon() <= 0.25 + 1e-9);
        assert!(SamplerParams::from_epsilon(0.0).is_err());
        assert!(SamplerParams::from_epsilon(f64::NAN).is_err());

        let tight = SamplerParams::from_epsilon(2.0).unwrap();
        assert!(tight.delta() <= 1.0);
    }

    #[test]
    fn max_k_matches_loglog() {
        assert_eq!(SamplerParams::max_k_for(16), 2);
        assert_eq!(SamplerParams::max_k_for(65_536), 4);
        assert!(SamplerParams::max_k_for(2) >= 1);
    }

    #[test]
    fn fallback_builder() {
        let params = SamplerParams::new(2, 3)
            .unwrap()
            .fallback(FallbackPolicy::None);
        assert_eq!(params.fallback, FallbackPolicy::None);
        assert_eq!(
            SamplerParams::new(2, 3).unwrap().fallback,
            FallbackPolicy::QueryRemaining
        );
    }
}
