//! Adaptive execution-path planning: choose direct flooding vs. spanner
//! simulation vs. the two-stage scheme *per run*, from cheap graph
//! statistics and closed-form cost models.
//!
//! The ledger data recorded in `BENCH_message_ledger.json` shows the
//! paper's free lunch is real on dense graphs (up to 2.8× on complete-384)
//! and honestly below 1 on sparse ones — so a production deployment must
//! *choose* its execution path. This module provides that choice:
//!
//! * [`GraphStats`] — a seeded, deterministic statistics sampler over the
//!   frozen CSR view: density, degree skew, a sampled clustering proxy, and
//!   capped incidence sums, all in `O(n + sample·deg)`;
//! * [`CostModel`] — closed-form per-path message predictions whose
//!   constants are calibrated against the recorded
//!   `BENCH_message_ledger.json` grid (the provenance of every constant is
//!   documented on its field, and the whole contract in `docs/PLANNER.md`);
//! * [`SchemePlanner`] — samples stats, predicts every path, picks the
//!   cheapest, and emits a [`Plan`];
//! * [`Plan::execute`] / [`Plan::execute_all`] — run the chosen path (or
//!   every path) and emit a [`PlanReport`] carrying both the predictions
//!   and the measured [`MessageLedger`], so every planned run self-audits
//!   via [`PlanReport::audit`] against the documented [`Tolerances`].
//!
//! Planning is a pure function of the (graph, configuration) pair: stats
//! are sampled from a seeded ChaCha stream in canonical node order, and the
//! models are closed-form arithmetic — so plans, decisions, and reports are
//! bit-identical across shard counts and transport backends by
//! construction. `tests/planner_matrix.rs` pins exactly that, along with
//! the prediction-accuracy tolerance band.

use crate::error::{CoreError, CoreResult};
use crate::ledger::{CostPhase, Ledger};
use crate::params::ConstantPolicy;
use crate::reduction::tlocal::flood_on_subgraph;
use crate::reduction::two_stage::TwoStageScheme;
use crate::reduction::SamplerScheme;
use crate::sampler::Sampler;
use crate::spanner_api::SpannerAlgorithm;
use freelunch_graph::{CsrGraph, MultiGraph, NodeId, OverlayGraph};
use freelunch_runtime::{CostReport, MessageLedger};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the [`GraphStats`] sampler.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsConfig {
    /// Seed of the ChaCha stream driving the clustering-proxy sampling.
    pub seed: u64,
    /// Number of seeded nodes examined for the clustering proxy.
    pub sample_nodes: usize,
    /// Neighbor pairs tested per sampled node.
    pub pairs_per_node: usize,
    /// Degree caps for which [`GraphStats::capped_incidence`] records exact
    /// sums (`Σ_v min(deg(v), cap)`). Defaults to the caps the default
    /// [`CostModel`] queries.
    pub degree_caps: Vec<u32>,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig {
            seed: 1009,
            sample_nodes: 64,
            pairs_per_node: 4,
            degree_caps: vec![CostModel::default().two_stage_query_cap],
        }
    }
}

/// Cheap, deterministic statistics of a frozen graph — the planner's whole
/// view of the input. Sampled in `O(n + sample·deg)` by
/// [`GraphStats::sample`]: one pass over the degree sequence plus a seeded
/// clustering probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges (with multiplicity).
    pub edges: usize,
    /// Average degree (incidences ÷ nodes).
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Edge density `m / (n·(n−1)/2)` (1.0 for a complete simple graph).
    pub density: f64,
    /// Degree skew: maximum ÷ average degree (≈1 for regular graphs, large
    /// for scale-free hubs).
    pub degree_skew: f64,
    /// Sampled clustering proxy: the fraction of probed neighbor pairs that
    /// are themselves adjacent (seeded, deterministic; 0.0 when no pair was
    /// probed).
    pub clustering_proxy: f64,
    /// Number of nodes actually probed for the clustering proxy.
    pub sampled_nodes: usize,
    /// Number of neighbor pairs actually examined.
    pub sampled_pairs: usize,
    /// Exact capped incidence sums `(cap, Σ_v min(deg(v), cap))` for each
    /// configured cap, ascending by cap.
    pub capped_incidence: Vec<(u32, u64)>,
}

impl GraphStats {
    /// Samples the statistics from a frozen CSR view.
    ///
    /// Deterministic: the degree pass runs in canonical node order and the
    /// clustering probe draws from a ChaCha stream seeded by
    /// `config.seed` — two calls with equal inputs return bit-identical
    /// stats regardless of shard count or backend.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph has no nodes.
    pub fn sample(csr: &CsrGraph, config: &StatsConfig) -> CoreResult<GraphStats> {
        let n = csr.node_count();
        if n == 0 {
            return Err(CoreError::invalid_parameter("the graph has no nodes"));
        }
        let m = csr.edge_count();

        let mut caps: Vec<u32> = config.degree_caps.clone();
        caps.sort_unstable();
        caps.dedup();
        let mut capped: Vec<(u32, u64)> = caps.into_iter().map(|c| (c, 0u64)).collect();
        let mut incidences = 0u64;
        let mut max_degree = 0usize;
        for v in 0..n {
            let d = csr.degree(NodeId::from_usize(v));
            incidences += d as u64;
            max_degree = max_degree.max(d);
            for (cap, sum) in &mut capped {
                *sum += d.min(*cap as usize) as u64;
            }
        }
        let avg_degree = incidences as f64 / n as f64;
        let density = if n > 1 {
            m as f64 / (n as f64 * (n as f64 - 1.0) / 2.0)
        } else {
            0.0
        };
        let degree_skew = if avg_degree > 0.0 {
            max_degree as f64 / avg_degree
        } else {
            0.0
        };

        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut sampled_nodes = 0usize;
        let mut sampled_pairs = 0usize;
        let mut closed = 0usize;
        for _ in 0..config.sample_nodes.min(n) {
            let v = NodeId::from_usize(rng.gen_range(0..n));
            let neighbors = csr.distinct_neighbors(v);
            if neighbors.len() < 2 {
                continue;
            }
            sampled_nodes += 1;
            for _ in 0..config.pairs_per_node {
                let a = rng.gen_range(0..neighbors.len());
                let b = rng.gen_range(0..neighbors.len());
                if a == b {
                    continue;
                }
                sampled_pairs += 1;
                if csr.has_edge_between(neighbors[a], neighbors[b]) {
                    closed += 1;
                }
            }
        }
        let clustering_proxy = if sampled_pairs > 0 {
            closed as f64 / sampled_pairs as f64
        } else {
            0.0
        };

        Ok(GraphStats {
            nodes: n,
            edges: m,
            avg_degree,
            max_degree,
            density,
            degree_skew,
            clustering_proxy,
            sampled_nodes,
            sampled_pairs,
            capped_incidence: capped,
        })
    }

    /// The capped incidence sum `Σ_v min(deg(v), cap)`: exact if `cap` was
    /// configured at sampling time, otherwise the upper bound
    /// `min(2m, n·cap)`.
    pub fn capped_incidence(&self, cap: u32) -> f64 {
        for &(c, sum) in &self.capped_incidence {
            if c == cap {
                return sum as f64;
            }
        }
        self.capped_incidence_bound(f64::from(cap))
    }

    /// The closed-form bound `min(2m, n·cap)` on the capped incidence sum,
    /// for real-valued (n-dependent) caps like [`CostModel::query_cap`].
    /// Exact on regular graphs and whenever the cap binds every degree (or
    /// none); an upper bound in between (heavy-tailed degree sequences).
    pub fn capped_incidence_bound(&self, cap: f64) -> f64 {
        (2.0 * self.edges as f64).min(self.nodes as f64 * cap)
    }

    fn log2_nodes(&self) -> f64 {
        (self.nodes as f64).log2().max(0.0)
    }
}

/// A closed-form prediction of a spanner construction, returned by the
/// [`SpannerAlgorithm::predicted_profile`]
/// cost-model hook so the planner can price a second-stage algorithm it
/// knows nothing about.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpannerProfile {
    /// Predicted number of spanner edges.
    pub edges: f64,
    /// Predicted construction message cost.
    pub construction_messages: f64,
}

/// Calibrated constants of the closed-form per-path cost models.
///
/// Every constant was fitted against the measured `BENCH_message_ledger.json`
/// grid (t = 2, γ = 2, `Practical { target_factor: 4.0, query_factor: 4.0 }`
/// constants, families erdos-renyi / scale-free / communities / dense-er /
/// complete at n = 256..2048); `docs/PLANNER.md` records the fit residuals.
/// The models extrapolate to other `γ` via the paper's exponents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Messages per queried incidence of the γ-stage `Sampler` construction
    /// (`construction ≈ query_cost · Σ_v min(deg(v), cap(n))` — on sparse
    /// graphs every incidence is queried ≈`query_cost` times across levels,
    /// on dense graphs the per-level budget caps the work per node).
    pub query_cost: f64,
    /// Scale of the n-dependent per-node degree cap of the construction
    /// model, `cap(n) = query_cap_scale · n^{(2^{γ−1}+1)·δ}` with
    /// `δ = 1/(2^{γ+1}−1)` — the top-level trial-budget exponent of the
    /// `Practical` constants (`n^{3/7}` at γ = 2). Measured per-node
    /// construction cost on complete graphs tracks this law from n = 64 to
    /// n = 512 within ±25%.
    pub query_cap_scale: f64,
    /// Scale of the spanner-size law `|S| ≈ min(m, spanner_scale ·
    /// n^{1+1/h})` (paper Theorem 2 exponent, fitted scale).
    pub spanner_scale: f64,
    /// Active flooding rounds per `log2 n`: the flood quiesces once tokens
    /// stop being fresh, empirically after ≈`active_rounds_per_log · log2 n`
    /// rounds (0.50–0.57 across every measured family), capped by the
    /// flooding radius.
    pub active_rounds_per_log: f64,
    /// Messages per queried incidence of the two-stage scheme's stage-1
    /// construction (γ = 1 runs fewer levels than the single-stage γ = 2).
    pub two_stage_query_cost: f64,
    /// Degree cap of the stage-1 construction model.
    pub two_stage_query_cap: u32,
    /// Scale of the stage-1 spanner-size law `|S₁| ≈ min(m,
    /// stage1_spanner_scale · n^{1+1/3})` (γ = 1 ⇒ h = 3; the weak
    /// sparsification of a shallow hierarchy needs a large scale).
    pub stage1_spanner_scale: f64,
    /// Fallback scale for the second-stage spanner size, `|S₂| ≈ min(m,
    /// cluster_spanner_scale · n^{3/2})`, used when the second-stage
    /// algorithm provides no [`SpannerProfile`] hook.
    pub cluster_spanner_scale: f64,
    /// Rounds the second-stage construction is simulated for (enters the
    /// two-stage *round* prediction only, never the message decision).
    pub cluster_rounds: f64,
}

impl CostModel {
    /// The n-dependent per-node degree cap of the γ-stage construction
    /// model: `query_cap_scale · n^{(2^{γ−1}+1)·δ}` with
    /// `δ = 1/(2^{γ+1}−1)` (`n^{3/7}` at γ = 2, `n^{2/3}` at γ = 1).
    pub fn query_cap(&self, nodes: usize, gamma: u32) -> f64 {
        let delta = 1.0 / ((1u64 << (gamma + 1)) as f64 - 1.0);
        let exponent = ((1u64 << gamma.saturating_sub(1)) as f64 + 1.0) * delta;
        self.query_cap_scale * (nodes as f64).powf(exponent)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            query_cost: 5.6,
            query_cap_scale: 1.9,
            spanner_scale: 6.7,
            active_rounds_per_log: 0.56,
            two_stage_query_cost: 3.4,
            two_stage_query_cap: 22,
            stage1_spanner_scale: 17.0,
            cluster_spanner_scale: 1.27,
            cluster_rounds: 6.0,
        }
    }
}

/// The execution paths the planner chooses among.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PathChoice {
    /// Flood directly on `G` for `t` rounds (`2·t·m` messages — exact for
    /// `t ≤ 2` on connected graphs, an upper bound beyond).
    Direct,
    /// Single-stage scheme: γ-stage `Sampler` spanner + spanner flooding.
    SpannerSim,
    /// Two-stage scheme: stage-1 spanner, simulate a second-stage
    /// construction on it, flood on the second-stage spanner.
    TwoStage,
}

impl PathChoice {
    /// All paths, in canonical (tie-breaking) order.
    pub const ALL: [PathChoice; 3] = [
        PathChoice::Direct,
        PathChoice::SpannerSim,
        PathChoice::TwoStage,
    ];

    /// Stable snake_case label (used in recorded JSON tables).
    pub fn label(&self) -> &'static str {
        match self {
            PathChoice::Direct => "direct",
            PathChoice::SpannerSim => "spanner_sim",
            PathChoice::TwoStage => "two_stage",
        }
    }
}

/// One path's predicted cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathPrediction {
    /// The predicted path.
    pub path: PathChoice,
    /// Predicted message count.
    pub messages: f64,
    /// Predicted round count (coarse — never used for the decision).
    pub rounds: f64,
}

/// A multiplicative tolerance band on `predicted ÷ measured`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToleranceBand {
    /// Smallest acceptable `predicted ÷ measured` ratio.
    pub lower: f64,
    /// Largest acceptable `predicted ÷ measured` ratio.
    pub upper: f64,
}

impl ToleranceBand {
    /// Whether `ratio` lies within the band (inclusive).
    pub fn contains(&self, ratio: f64) -> bool {
        ratio >= self.lower && ratio <= self.upper
    }
}

/// The documented per-path tolerance contract: how far the closed-form
/// predictions may drift from measured ledgers before the self-audit fails.
/// The widths reflect the calibration residuals recorded in
/// `docs/PLANNER.md`; `tests/planner_matrix.rs` pins these exact values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tolerances {
    /// Band for [`PathChoice::Direct`] (the `2·t·m` law is exact for
    /// `t ≤ 2` on connected graphs; the width only covers `t > 2`
    /// quiescence).
    pub direct: ToleranceBand,
    /// Band for [`PathChoice::SpannerSim`].
    pub spanner_sim: ToleranceBand,
    /// Band for [`PathChoice::TwoStage`].
    pub two_stage: ToleranceBand,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            direct: ToleranceBand {
                lower: 0.95,
                upper: 1.05,
            },
            spanner_sim: ToleranceBand {
                lower: 0.70,
                upper: 1.40,
            },
            two_stage: ToleranceBand {
                lower: 0.65,
                upper: 1.45,
            },
        }
    }
}

impl Tolerances {
    /// The band for `path`.
    pub fn band(&self, path: PathChoice) -> ToleranceBand {
        match path {
            PathChoice::Direct => self.direct,
            PathChoice::SpannerSim => self.spanner_sim,
            PathChoice::TwoStage => self.two_stage,
        }
    }
}

/// The planner: samples [`GraphStats`], prices every path with the
/// [`CostModel`], and picks the predicted-cheapest one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemePlanner {
    /// Locality parameter of the broadcast being planned.
    pub t: u32,
    /// `γ` of the single-stage scheme candidate.
    pub gamma: u32,
    /// `γ` of the two-stage scheme's first stage.
    pub two_stage_gamma: u32,
    /// `Sampler` constants used by the priced (and executed) schemes. Must
    /// match the calibration constants for the model fit to apply.
    pub constants: ConstantPolicy,
    /// The calibrated cost model.
    pub model: CostModel,
    /// Configuration of the statistics sampler.
    pub stats_config: StatsConfig,
}

/// The `Sampler` constants the cost model was calibrated against
/// (`Practical { target_factor: 4.0, query_factor: 4.0 }` — the same
/// constants every recorded `BENCH_*.json` experiment runs with).
pub fn calibrated_constants() -> ConstantPolicy {
    ConstantPolicy::Practical {
        target_factor: 4.0,
        query_factor: 4.0,
    }
}

impl SchemePlanner {
    /// A planner for `t`-local broadcast with the calibrated defaults
    /// (γ = 2 single-stage candidate, γ = 1 two-stage first stage).
    ///
    /// # Errors
    ///
    /// Returns an error if `t` is zero.
    pub fn new(t: u32) -> CoreResult<Self> {
        if t == 0 {
            return Err(CoreError::invalid_parameter("t must be at least 1"));
        }
        Ok(SchemePlanner {
            t,
            gamma: 2,
            two_stage_gamma: 1,
            constants: calibrated_constants(),
            model: CostModel::default(),
            stats_config: StatsConfig::default(),
        })
    }

    /// Plans for `graph`: freezes it, samples stats, predicts, decides.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty or a parameter is invalid.
    pub fn plan(&self, graph: &MultiGraph) -> CoreResult<Plan> {
        self.plan_csr(&graph.freeze())
    }

    /// Plans from an already-frozen CSR view.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty or a parameter is invalid.
    pub fn plan_csr(&self, csr: &CsrGraph) -> CoreResult<Plan> {
        let stats = GraphStats::sample(csr, &self.stats_config)?;
        self.plan_from_stats(stats)
    }

    /// Plans for the live view of a churned graph: re-samples the stats
    /// from the overlay's current topology (deterministically — the same
    /// overlay state always yields the same plan), so planner-driven runs
    /// under churn can re-decide at epoch boundaries without ever flipping
    /// a decision mid-run (a [`Plan`] is immutable once made).
    ///
    /// # Errors
    ///
    /// Returns an error if the overlay is empty or a parameter is invalid.
    pub fn plan_overlay(&self, overlay: &OverlayGraph) -> CoreResult<Plan> {
        self.plan_csr(&overlay.to_multigraph().freeze())
    }

    /// Plans from pre-sampled stats, pricing the two-stage path with an
    /// optional second-stage [`SpannerProfile`] hook (see
    /// [`SpannerAlgorithm::predicted_profile`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the scheme parameters are invalid.
    pub fn plan_from_stats_with_profile(
        &self,
        stats: GraphStats,
        second_stage: Option<SpannerProfile>,
    ) -> CoreResult<Plan> {
        // Validate γ parameters eagerly via the scheme constructors.
        SamplerScheme::with_constants(self.gamma, self.constants)?;
        SamplerScheme::with_constants(self.two_stage_gamma, self.constants)?;
        let predictions = vec![
            self.predict_direct(&stats),
            self.predict_spanner_sim(&stats),
            self.predict_two_stage(&stats, second_stage),
        ];
        let decision = predictions
            .iter()
            .min_by(|a, b| {
                a.messages
                    .partial_cmp(&b.messages)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.path.cmp(&b.path))
            })
            .expect("three predictions exist")
            .path;
        let mut sorted: Vec<f64> = predictions.iter().map(|p| p.messages).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let decision_margin = if sorted[0] > 0.0 {
            sorted[1] / sorted[0]
        } else {
            f64::INFINITY
        };
        Ok(Plan {
            t: self.t,
            gamma: self.gamma,
            two_stage_gamma: self.two_stage_gamma,
            constants: self.constants,
            stats,
            predictions,
            decision,
            decision_margin,
        })
    }

    /// Plans from pre-sampled stats with the fallback second-stage model.
    ///
    /// # Errors
    ///
    /// Returns an error if the scheme parameters are invalid.
    pub fn plan_from_stats(&self, stats: GraphStats) -> CoreResult<Plan> {
        self.plan_from_stats_with_profile(stats, None)
    }

    /// Plans for `graph`, pricing the two-stage path with the second-stage
    /// algorithm's own cost-model hook when it provides one.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty or a parameter is invalid.
    pub fn plan_with_second_stage<S: SpannerAlgorithm>(
        &self,
        graph: &MultiGraph,
        second_stage: &S,
    ) -> CoreResult<Plan> {
        let stats = GraphStats::sample(&graph.freeze(), &self.stats_config)?;
        let profile = second_stage.predicted_profile(&stats);
        self.plan_from_stats_with_profile(stats, profile)
    }

    /// Predicted cost of direct flooding: `2·t·m` messages in `t` rounds
    /// (exact for `t ≤ 2` on connected graphs: round 1 floods every token
    /// over every edge, and after it every node has learned something, so
    /// round 2 is fully active too).
    pub fn predict_direct(&self, stats: &GraphStats) -> PathPrediction {
        PathPrediction {
            path: PathChoice::Direct,
            messages: 2.0 * f64::from(self.t) * stats.edges as f64,
            rounds: f64::from(self.t),
        }
    }

    /// Predicted cost of the single-stage scheme: calibrated construction
    /// (`query_cost · Σ min(deg, cap(n))` with the n-dependent
    /// [`CostModel::query_cap`]) plus flooding (`2·|S|·active`), with `|S|`
    /// from the paper's size law and the active-round count from the
    /// quiescence law.
    pub fn predict_spanner_sim(&self, stats: &GraphStats) -> PathPrediction {
        let model = &self.model;
        let h = f64::from((1u32 << (self.gamma + 1)) - 1);
        let stretch = 2.0 * 3f64.powi(self.gamma as i32) - 1.0;
        let construction = model.query_cost
            * stats.capped_incidence_bound(model.query_cap(stats.nodes, self.gamma));
        let spanner_edges = (stats.edges as f64)
            .min(model.spanner_scale * (stats.nodes as f64).powf(1.0 + 1.0 / h));
        let active = (model.active_rounds_per_log * stats.log2_nodes())
            .min(stretch * f64::from(self.t))
            .max(0.0);
        let rounds =
            3f64.powi(self.gamma as i32) * f64::from(self.t) + 6f64.powi(self.gamma as i32);
        PathPrediction {
            path: PathChoice::SpannerSim,
            messages: construction + 2.0 * spanner_edges * active,
            rounds,
        }
    }

    /// Predicted cost of the two-stage scheme: stage-1 construction, the
    /// second-stage construction simulated by flooding on the stage-1
    /// spanner, and the final flood on the second-stage spanner (sized by
    /// the second stage's own [`SpannerProfile`] hook when available, the
    /// calibrated `n^{3/2}` fallback otherwise).
    pub fn predict_two_stage(
        &self,
        stats: &GraphStats,
        second_stage: Option<SpannerProfile>,
    ) -> PathPrediction {
        let model = &self.model;
        let m = stats.edges as f64;
        let n = stats.nodes as f64;
        let h1 = f64::from((1u32 << (self.two_stage_gamma + 1)) - 1);
        let stretch1 = 2.0 * 3f64.powi(self.two_stage_gamma as i32) - 1.0;
        let active = model.active_rounds_per_log * stats.log2_nodes();
        let stage1 = model.two_stage_query_cost * stats.capped_incidence(model.two_stage_query_cap);
        let s1 = m.min(model.stage1_spanner_scale * n.powf(1.0 + 1.0 / h1));
        let stage2 = 2.0 * s1 * active;
        let s2 = second_stage
            .map(|p| p.edges)
            .unwrap_or_else(|| m.min(model.cluster_spanner_scale * n.powf(1.5)));
        let stage3 = 2.0 * s2 * active;
        let rounds = 3f64.powi(self.two_stage_gamma as i32) * f64::from(self.t)
            + 6f64.powi(self.two_stage_gamma as i32)
            + stretch1 * model.cluster_rounds;
        PathPrediction {
            path: PathChoice::TwoStage,
            messages: stage1 + stage2 + stage3,
            rounds,
        }
    }
}

/// An immutable planning decision: the sampled stats, every path's
/// prediction, and the chosen path. Execute it with [`Plan::execute`] (the
/// chosen path only) or [`Plan::execute_all`] (every path, for differential
/// validation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Locality parameter of the planned broadcast.
    pub t: u32,
    /// `γ` of the single-stage candidate.
    pub gamma: u32,
    /// `γ` of the two-stage first stage.
    pub two_stage_gamma: u32,
    /// `Sampler` constants the executed schemes will run with.
    pub constants: ConstantPolicy,
    /// The sampled statistics the decision was made from.
    pub stats: GraphStats,
    /// Every path's prediction, in [`PathChoice::ALL`] order.
    pub predictions: Vec<PathPrediction>,
    /// The predicted-cheapest path.
    pub decision: PathChoice,
    /// Second-cheapest ÷ cheapest predicted messages (how decisive the
    /// choice was; `INFINITY` when the cheapest prediction is zero).
    pub decision_margin: f64,
}

impl Plan {
    /// The prediction for `path`.
    pub fn predicted(&self, path: PathChoice) -> Option<&PathPrediction> {
        self.predictions.iter().find(|p| p.path == path)
    }

    /// Executes only the chosen path (the production shape) and emits a
    /// self-auditing [`PlanReport`].
    ///
    /// # Errors
    ///
    /// Propagates construction, flooding, and simulation errors.
    pub fn execute<S>(
        &self,
        graph: &MultiGraph,
        seed: u64,
        second_stage: &S,
    ) -> CoreResult<PlanReport>
    where
        S: SpannerAlgorithm + Clone,
    {
        let measurement = self.measure(graph, seed, self.decision, second_stage)?;
        Ok(PlanReport {
            plan: self.clone(),
            seed,
            measured: vec![measurement],
            engine_direct: None,
        })
    }

    /// Executes *every* path and emits a [`PlanReport`] with all three
    /// measurements — the differential shape `exp_planner` and the
    /// prediction-accuracy tests validate against.
    ///
    /// # Errors
    ///
    /// Propagates construction, flooding, and simulation errors.
    pub fn execute_all<S>(
        &self,
        graph: &MultiGraph,
        seed: u64,
        second_stage: &S,
    ) -> CoreResult<PlanReport>
    where
        S: SpannerAlgorithm + Clone,
    {
        let mut measured = Vec::with_capacity(PathChoice::ALL.len());
        for path in PathChoice::ALL {
            measured.push(self.measure(graph, seed, path, second_stage)?);
        }
        Ok(PlanReport {
            plan: self.clone(),
            seed,
            measured,
            engine_direct: None,
        })
    }

    fn measure<S>(
        &self,
        graph: &MultiGraph,
        seed: u64,
        path: PathChoice,
        second_stage: &S,
    ) -> CoreResult<PathMeasurement>
    where
        S: SpannerAlgorithm + Clone,
    {
        match path {
            PathChoice::Direct => {
                let outcome = flood_on_subgraph(graph, graph.edge_ids(), self.t)?;
                let mut phases = Ledger::new();
                phases.charge(
                    CostPhase::DirectExecution,
                    format!("direct {}-round flood on G", self.t),
                    outcome.cost,
                );
                Ok(PathMeasurement {
                    path,
                    cost: outcome.cost,
                    spanner_edges: None,
                    ledger: outcome.ledger,
                    phases,
                })
            }
            PathChoice::SpannerSim => {
                let scheme = SamplerScheme::with_constants(self.gamma, self.constants)?;
                let sampler = Sampler::new(scheme.sampler_params()?);
                let spanner = sampler.run(graph, seed)?;
                let broadcast = crate::reduction::tlocal::t_local_broadcast(
                    graph,
                    spanner.spanner_edges().iter().copied(),
                    self.t,
                    scheme.stretch(),
                )?;
                let mut phases = Ledger::new();
                phases.charge(
                    CostPhase::SpannerConstruction,
                    "Sampler spanner construction",
                    spanner.cost,
                );
                phases.charge(
                    CostPhase::Broadcast,
                    format!("{}-local broadcast on the spanner", self.t),
                    broadcast.cost,
                );
                Ok(PathMeasurement {
                    path,
                    cost: spanner.cost + broadcast.cost,
                    spanner_edges: Some(spanner.spanner_size()),
                    ledger: broadcast.ledger,
                    phases,
                })
            }
            PathChoice::TwoStage => {
                let scheme = TwoStageScheme::new(
                    self.two_stage_gamma,
                    self.constants,
                    second_stage.clone(),
                )?;
                let report = scheme.run(graph, self.t, seed)?;
                let mut phases = Ledger::new();
                phases.charge(
                    CostPhase::SpannerConstruction,
                    "stage-1 Sampler construction",
                    report.stage1_cost,
                );
                phases.charge(
                    CostPhase::SecondStageSimulation,
                    format!("simulated {} construction", report.stage2_algorithm),
                    report.stage2_cost,
                );
                phases.charge(
                    CostPhase::Broadcast,
                    format!("{}-local broadcast on the second-stage spanner", self.t),
                    report.stage3_cost,
                );
                Ok(PathMeasurement {
                    path,
                    cost: report.total_cost,
                    spanner_edges: Some(report.stage2_spanner_edges),
                    ledger: report.stage3_ledger,
                    phases,
                })
            }
        }
    }
}

/// One path's measured cost: the summary [`CostReport`], the per-edge /
/// per-round [`MessageLedger`] of its flooding stage, and the
/// phase-attributed [`Ledger`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathMeasurement {
    /// The measured path.
    pub path: PathChoice,
    /// End-to-end cost (all phases).
    pub cost: CostReport,
    /// Spanner size, for the paths that build one.
    pub spanner_edges: Option<usize>,
    /// The per-edge / per-round ledger of the path's flooding stage (the
    /// stage the congestion column belongs to; construction phases meter
    /// through [`CostReport`]s, charged in `phases`).
    pub ledger: MessageLedger,
    /// Phase-attributed cost breakdown.
    pub phases: Ledger,
}

/// The planner's emitted report: the immutable [`Plan`] plus the measured
/// ledgers of the executed path(s) — every planned run carries the data to
/// audit its own predictions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanReport {
    /// The plan that was executed.
    pub plan: Plan,
    /// Seed the executed constructions ran with.
    pub seed: u64,
    /// Measured costs: the chosen path ([`Plan::execute`]) or every path
    /// ([`Plan::execute_all`]).
    pub measured: Vec<PathMeasurement>,
    /// An engine-measured direct-execution ledger, attached by harnesses
    /// that additionally run the reference algorithm on the synchronous
    /// runtime (present so cross-backend bit-identity of planned runs is a
    /// checkable property of the serialized report).
    pub engine_direct: Option<MessageLedger>,
}

impl PlanReport {
    /// The measurement for `path`, if it was executed.
    pub fn measured(&self, path: PathChoice) -> Option<&PathMeasurement> {
        self.measured.iter().find(|m| m.path == path)
    }

    /// The chosen path's measurement.
    pub fn chosen(&self) -> Option<&PathMeasurement> {
        self.measured(self.plan.decision)
    }

    /// The measured-cheapest executed path (ties break in
    /// [`PathChoice::ALL`] order).
    pub fn best_measured(&self) -> Option<&PathMeasurement> {
        self.measured.iter().min_by(|a, b| {
            a.cost
                .messages
                .cmp(&b.cost.messages)
                .then(a.path.cmp(&b.path))
        })
    }

    /// Measured regret of the decision: chosen messages ÷ best measured
    /// messages (1.0 when the planner picked the measured-cheapest path).
    /// `None` unless every path was measured.
    pub fn regret(&self) -> Option<f64> {
        if self.measured.len() < PathChoice::ALL.len() {
            return None;
        }
        let chosen = self.chosen()?;
        let best = self.best_measured()?;
        if best.cost.messages == 0 {
            return Some(1.0);
        }
        Some(chosen.cost.messages as f64 / best.cost.messages as f64)
    }

    /// Attaches an engine-measured direct-execution ledger (see
    /// [`PlanReport::engine_direct`]).
    pub fn attach_engine_direct(&mut self, ledger: MessageLedger) {
        self.engine_direct = Some(ledger);
    }

    /// Self-audit against the default [`Tolerances`].
    pub fn audit(&self) -> AuditReport {
        self.audit_with(&Tolerances::default())
    }

    /// Self-audit against explicit tolerances: one entry per executed path
    /// comparing predicted vs. measured messages.
    pub fn audit_with(&self, tolerances: &Tolerances) -> AuditReport {
        let entries = self
            .measured
            .iter()
            .filter_map(|m| {
                let predicted = self.plan.predicted(m.path)?.messages;
                let measured = m.cost.messages as f64;
                let ratio = if measured > 0.0 {
                    predicted / measured
                } else if predicted == 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                };
                let band = tolerances.band(m.path);
                Some(AuditEntry {
                    path: m.path,
                    predicted_messages: predicted,
                    measured_messages: m.cost.messages,
                    ratio,
                    band,
                    within_band: band.contains(ratio),
                })
            })
            .collect();
        AuditReport {
            entries,
            regret: self.regret(),
        }
    }
}

/// One path's audit line: predicted vs. measured, and whether the ratio
/// stayed inside the documented band.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// The audited path.
    pub path: PathChoice,
    /// Predicted message count.
    pub predicted_messages: f64,
    /// Measured message count.
    pub measured_messages: u64,
    /// `predicted ÷ measured`.
    pub ratio: f64,
    /// The tolerance band applied.
    pub band: ToleranceBand,
    /// Whether the ratio lies inside the band.
    pub within_band: bool,
}

/// The result of a [`PlanReport`] self-audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// One line per executed path.
    pub entries: Vec<AuditEntry>,
    /// Measured regret of the decision (see [`PlanReport::regret`]).
    pub regret: Option<f64>,
}

impl AuditReport {
    /// Whether every executed path's prediction stayed inside its band.
    pub fn all_within_band(&self) -> bool {
        self.entries.iter().all(|e| e.within_band)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{
        complete_graph, connected_erdos_renyi, cycle_graph, GeneratorConfig,
    };

    #[test]
    fn stats_sampling_is_deterministic_and_exact_on_degrees() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(120, 5), 0.1).unwrap();
        let csr = graph.freeze();
        let config = StatsConfig::default();
        let a = GraphStats::sample(&csr, &config).unwrap();
        let b = GraphStats::sample(&csr, &config).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.nodes, 120);
        assert_eq!(a.edges, graph.edge_count());
        assert!((a.avg_degree - 2.0 * graph.edge_count() as f64 / 120.0).abs() < 1e-9);
        assert_eq!(a.max_degree, graph.max_degree());
        // An uncapped-by-construction cap records the full incidence count.
        let big_cap = a.max_degree as u32 + 1;
        assert_eq!(
            GraphStats::sample(
                &csr,
                &StatsConfig {
                    degree_caps: vec![big_cap],
                    ..config
                }
            )
            .unwrap()
            .capped_incidence(big_cap),
            2.0 * graph.edge_count() as f64
        );
    }

    #[test]
    fn stats_distinguish_dense_from_sparse() {
        let dense = complete_graph(&GeneratorConfig::new(64, 0)).unwrap();
        let sparse = cycle_graph(&GeneratorConfig::new(64, 0)).unwrap();
        let config = StatsConfig::default();
        let d = GraphStats::sample(&dense.freeze(), &config).unwrap();
        let s = GraphStats::sample(&sparse.freeze(), &config).unwrap();
        assert!((d.density - 1.0).abs() < 1e-9);
        assert!(s.density < 0.05);
        // Every neighbor pair closes on a complete graph; none on a cycle.
        assert!((d.clustering_proxy - 1.0).abs() < 1e-9);
        assert_eq!(s.clustering_proxy, 0.0);
        assert!((s.degree_skew - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capped_incidence_falls_back_to_the_bound() {
        let graph = complete_graph(&GeneratorConfig::new(32, 0)).unwrap();
        let stats = GraphStats::sample(&graph.freeze(), &StatsConfig::default()).unwrap();
        // 13 is not a configured cap: the fallback min(2m, n·cap) applies,
        // which on a complete graph is n·cap.
        assert_eq!(stats.capped_incidence(13), 32.0 * 13.0);
    }

    #[test]
    fn planner_prefers_direct_on_sparse_and_spanner_on_dense() {
        let planner = SchemePlanner::new(2).unwrap();
        let sparse = connected_erdos_renyi(&GeneratorConfig::new(256, 7), 0.03).unwrap();
        let plan = planner.plan(&sparse).unwrap();
        assert_eq!(plan.decision, PathChoice::Direct);
        let dense = complete_graph(&GeneratorConfig::new(256, 0)).unwrap();
        let plan = planner.plan(&dense).unwrap();
        assert_eq!(plan.decision, PathChoice::SpannerSim);
        assert!(plan.decision_margin > 1.0);
    }

    #[test]
    fn direct_prediction_is_exact_for_small_t() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(80, 3), 0.1).unwrap();
        let planner = SchemePlanner::new(2).unwrap();
        let plan = planner.plan(&graph).unwrap();
        let outcome = flood_on_subgraph(&graph, graph.edge_ids(), 2).unwrap();
        let predicted = plan.predicted(PathChoice::Direct).unwrap().messages;
        assert_eq!(predicted, outcome.cost.messages as f64);
    }

    #[test]
    fn plans_are_bit_identical_across_replans() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(100, 11), 0.08).unwrap();
        let planner = SchemePlanner::new(2).unwrap();
        let a = planner.plan(&graph).unwrap();
        let b = planner.plan(&graph).unwrap();
        assert_eq!(a, b);
        // The rendered report (every float bit included) is also identical.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn execute_runs_only_the_chosen_path_and_execute_all_every_path() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(60, 2), 0.1).unwrap();
        let planner = SchemePlanner::new(2).unwrap();
        let plan = planner.plan(&graph).unwrap();
        let second = Sampler::new(plan_second_stage_params());
        let chosen_only = plan.execute(&graph, 42, &second).unwrap();
        assert_eq!(chosen_only.measured.len(), 1);
        assert_eq!(chosen_only.measured[0].path, plan.decision);
        assert!(chosen_only.regret().is_none());
        let all = plan.execute_all(&graph, 42, &second).unwrap();
        assert_eq!(all.measured.len(), 3);
        assert!(all.regret().is_some());
        // The chosen path's measurement is identical in both shapes.
        assert_eq!(chosen_only.chosen(), all.measured(plan.decision));
    }

    fn plan_second_stage_params() -> crate::params::SamplerParams {
        crate::params::SamplerParams::with_constants(1, 3, calibrated_constants()).unwrap()
    }

    #[test]
    fn audit_flags_out_of_band_predictions() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(60, 2), 0.1).unwrap();
        let planner = SchemePlanner::new(2).unwrap();
        let plan = planner.plan(&graph).unwrap();
        let report = plan
            .execute(&graph, 7, &Sampler::new(plan_second_stage_params()))
            .unwrap();
        // Direct on a connected graph at t = 2 is exact: ratio 1.0.
        let audit = report.audit();
        assert!(audit.all_within_band());
        // An impossibly tight band must fail.
        let zero_band = ToleranceBand {
            lower: 0.0,
            upper: 0.0,
        };
        let strict = Tolerances {
            direct: zero_band,
            spanner_sim: zero_band,
            two_stage: zero_band,
        };
        assert!(!report.audit_with(&strict).all_within_band());
    }

    #[test]
    fn parameter_validation() {
        assert!(SchemePlanner::new(0).is_err());
        let mut planner = SchemePlanner::new(1).unwrap();
        planner.gamma = 0;
        let stats = GraphStats::sample(
            &cycle_graph(&GeneratorConfig::new(8, 0)).unwrap().freeze(),
            &StatsConfig::default(),
        )
        .unwrap();
        assert!(planner.plan_from_stats(stats).is_err());
        assert!(GraphStats::sample(&MultiGraph::new(0).freeze(), &StatsConfig::default()).is_err());
    }

    #[test]
    fn tolerance_band_arithmetic() {
        let band = ToleranceBand {
            lower: 0.5,
            upper: 2.0,
        };
        assert!(band.contains(1.0));
        assert!(band.contains(0.5));
        assert!(band.contains(2.0));
        assert!(!band.contains(0.49));
        assert!(!band.contains(2.01));
    }
}
