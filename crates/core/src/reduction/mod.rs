//! Message-efficient simulation of LOCAL algorithms (Section 6 of the
//! paper).
//!
//! The building block is the *`t`-local broadcast* task: every node `v`
//! holds a message `M_v` and must deliver it to every node of its ball
//! `B_{G,t}(v)`. Any `t`-round LOCAL algorithm can be simulated by a
//! `t`-local broadcast (each node then re-computes its output locally from
//! the gathered information), so a message-efficient `t`-local broadcast is
//! a message-reduction scheme.
//!
//! * [`tlocal`] — flooding within distance `α·t` on an `α`-spanner,
//!   with exact message/round accounting;
//! * [`scheme`] — the single-stage scheme of Lemma 12 (first bullet):
//!   `Sampler` spanner + spanner flooding;
//! * [`two_stage`] — the two-stage scheme of Lemma 12 (second bullet):
//!   `Sampler` spanner → simulate a second spanner construction on top of it
//!   → flood on the second spanner;
//! * [`simulate`] — end-to-end simulation of an arbitrary LOCAL algorithm
//!   (given as a [`NodeProgram`](freelunch_runtime::NodeProgram)) together
//!   with a correctness check that the `t`-ball information delivered by the
//!   broadcast indeed determines every node's output.
//!
//! Every path meters its traffic through the workspace-wide
//! [`MessageLedger`](freelunch_runtime::metrics::MessageLedger), and each report type
//! exposes a phase-attributed [`Ledger`](crate::ledger::Ledger) with the
//! measured free-lunch ratio — see `docs/METRICS.md` for the contract.
//!
//! Every emulated path also accepts a deterministic
//! [`FaultPlan`](freelunch_runtime::fault::FaultPlan) through its
//! `*_with_faults` / `*_under_faults` variants, so robustness comparisons
//! against the baselines share one fault-accounting convention — see
//! `docs/METRICS.md` §6.

pub mod scheme;
pub mod simulate;
pub mod tlocal;
pub mod two_stage;

pub use scheme::{SamplerScheme, SchemeReport};
pub use simulate::{simulate_with_spanner, simulate_with_spanner_under_faults, SimulationReport};
pub use tlocal::{
    flood_on_subgraph, flood_on_subgraph_routed, flood_on_subgraph_with_faults, t_local_broadcast,
    t_local_broadcast_routed, t_local_broadcast_with_faults, BroadcastOutcome, FloodRouting,
};
pub use two_stage::{TwoStageReport, TwoStageScheme};
