//! Message-efficient simulation of LOCAL algorithms (Section 6 of the
//! paper).
//!
//! The building block is the *`t`-local broadcast* task: every node `v`
//! holds a message `M_v` and must deliver it to every node of its ball
//! `B_{G,t}(v)`. Any `t`-round LOCAL algorithm can be simulated by a
//! `t`-local broadcast (each node then re-computes its output locally from
//! the gathered information), so a message-efficient `t`-local broadcast is
//! a message-reduction scheme.
//!
//! * [`tlocal`] — flooding within distance `α·t` on an `α`-spanner,
//!   with exact message/round accounting;
//! * [`scheme`] — the single-stage scheme of Lemma 12 (first bullet):
//!   `Sampler` spanner + spanner flooding;
//! * [`two_stage`] — the two-stage scheme of Lemma 12 (second bullet):
//!   `Sampler` spanner → simulate a second spanner construction on top of it
//!   → flood on the second spanner;
//! * [`simulate`] — end-to-end simulation of an arbitrary LOCAL algorithm
//!   (given as a [`NodeProgram`](freelunch_runtime::NodeProgram)) together
//!   with a correctness check that the `t`-ball information delivered by the
//!   broadcast indeed determines every node's output.
//!
//! Every path meters its traffic through the workspace-wide
//! [`MessageLedger`](freelunch_runtime::metrics::MessageLedger), and each report type
//! exposes a phase-attributed [`Ledger`](crate::ledger::Ledger) with the
//! measured free-lunch ratio — see `docs/METRICS.md` for the contract.

pub mod scheme;
pub mod simulate;
pub mod tlocal;
pub mod two_stage;

pub use scheme::{SamplerScheme, SchemeReport};
pub use simulate::{simulate_with_spanner, SimulationReport};
pub use tlocal::{t_local_broadcast, BroadcastOutcome};
pub use two_stage::{TwoStageReport, TwoStageScheme};
