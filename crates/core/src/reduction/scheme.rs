//! The single-stage message-reduction scheme (Lemma 12, first bullet /
//! Theorem 3, first bullet).
//!
//! For a parameter `1 ≤ γ ≤ log log n`, set `k = γ` and `h = 2^{γ+1} − 1` in
//! `Sampler`. The resulting spanner has stretch `O(3^γ)` and
//! `Õ(n^{1+1/(2^{γ+1}-1)})` edges, and its construction sends
//! `Õ(n^{1+2/(2^{γ+1}-1)})` messages in `O(6^γ)` rounds. Flooding on it for
//! `O(3^γ t)` rounds then solves the `t`-local broadcast with
//! `Õ(t·n^{1+2/(2^{γ+1}-1)})` messages and `O(3^γ t + 6^γ)` rounds.

use super::tlocal::{t_local_broadcast, BroadcastOutcome};
use crate::error::{CoreError, CoreResult};
use crate::params::{ConstantPolicy, SamplerParams};
use crate::sampler::{Sampler, SamplerOutcome};
use freelunch_graph::MultiGraph;
use freelunch_runtime::CostReport;
use serde::{Deserialize, Serialize};

/// The single-stage scheme: `Sampler` spanner + spanner flooding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplerScheme {
    /// The scheme parameter `γ` (`k = γ`, `h = 2^{γ+1} − 1`).
    pub gamma: u32,
    /// Instantiation of the algorithm's `whp` constants.
    pub constants: ConstantPolicy,
}

impl SamplerScheme {
    /// Creates the scheme for a given `γ` with paper-faithful constants.
    ///
    /// # Errors
    ///
    /// Returns an error if `γ` is zero or larger than 10 (the induced
    /// `h = 2^{γ+1} − 1` would be astronomically large beyond that).
    pub fn new(gamma: u32) -> CoreResult<Self> {
        SamplerScheme {
            gamma,
            constants: ConstantPolicy::default(),
        }
        .validated()
    }

    /// Creates the scheme with explicit constants.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SamplerScheme::new`].
    pub fn with_constants(gamma: u32, constants: ConstantPolicy) -> CoreResult<Self> {
        SamplerScheme { gamma, constants }.validated()
    }

    fn validated(self) -> CoreResult<Self> {
        if self.gamma == 0 || self.gamma > 10 {
            return Err(CoreError::invalid_parameter(format!(
                "gamma must be in 1..=10, got {}",
                self.gamma
            )));
        }
        Ok(self)
    }

    /// The `Sampler` parameters the scheme uses (`k = γ`, `h = 2^{γ+1} − 1`).
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation errors.
    pub fn sampler_params(&self) -> CoreResult<SamplerParams> {
        let h = (1u32 << (self.gamma + 1)) - 1;
        SamplerParams::with_constants(self.gamma, h, self.constants)
    }

    /// The stretch of the spanner the scheme builds.
    pub fn stretch(&self) -> u32 {
        2 * 3u32.pow(self.gamma) - 1
    }

    /// The paper's message-complexity formula for the `t`-local broadcast:
    /// `t · n^{1+2/(2^{γ+1}-1)}` (log factors omitted).
    pub fn message_formula(&self, n: usize, t: u32) -> f64 {
        let exponent = 1.0 + 2.0 / ((1u64 << (self.gamma + 1)) as f64 - 1.0);
        f64::from(t) * (n as f64).powf(exponent)
    }

    /// The paper's round-complexity formula: `3^γ·t + 6^γ`.
    pub fn round_formula(&self, t: u32) -> u64 {
        3u64.pow(self.gamma) * u64::from(t) + 6u64.pow(self.gamma)
    }

    /// Runs the scheme: builds the spanner and performs the `t`-local
    /// broadcast on it.
    ///
    /// # Errors
    ///
    /// Propagates construction and flooding errors.
    pub fn run(&self, graph: &MultiGraph, t: u32, seed: u64) -> CoreResult<SchemeReport> {
        let params = self.sampler_params()?;
        let sampler = Sampler::new(params);
        let spanner = sampler.run(graph, seed)?;
        let broadcast = t_local_broadcast(
            graph,
            spanner.spanner_edges().iter().copied(),
            t,
            self.stretch(),
        )?;
        Ok(SchemeReport::assemble(self, graph, t, spanner, broadcast))
    }
}

/// The measured cost of one scheme run, next to the paper's formulas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeReport {
    /// The scheme parameter `γ`.
    pub gamma: u32,
    /// The locality parameter `t` of the simulated algorithm.
    pub t: u32,
    /// Number of nodes of the input graph.
    pub nodes: usize,
    /// Number of edges of the input graph.
    pub edges: usize,
    /// Number of spanner edges constructed.
    pub spanner_edges: usize,
    /// Cost of the spanner construction (Section 5 accounting).
    pub spanner_cost: CostReport,
    /// Cost of the flooding stage.
    pub broadcast_cost: CostReport,
    /// Total cost of the scheme.
    pub total_cost: CostReport,
    /// The paper's round formula `3^γ t + 6^γ`.
    pub round_formula: u64,
    /// The paper's message formula `t·n^{1+2/(2^{γ+1}-1)}` (log factors
    /// omitted).
    pub message_formula: f64,
}

impl SchemeReport {
    fn assemble(
        scheme: &SamplerScheme,
        graph: &MultiGraph,
        t: u32,
        spanner: SamplerOutcome,
        broadcast: BroadcastOutcome,
    ) -> Self {
        SchemeReport {
            gamma: scheme.gamma,
            t,
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            spanner_edges: spanner.spanner_size(),
            spanner_cost: spanner.cost,
            broadcast_cost: broadcast.cost,
            total_cost: spanner.cost + broadcast.cost,
            round_formula: scheme.round_formula(t),
            message_formula: scheme.message_formula(graph.node_count(), t),
        }
    }

    /// Messages the naive approach (direct flooding on `G` for `t` rounds)
    /// would send in the worst case: `2·t·|E|`.
    pub fn naive_message_bound(&self) -> u64 {
        2 * u64::from(self.t) * self.edges as u64
    }

    /// Phase-attributed ledger of this run, measured against `direct` (a
    /// measured direct execution, or the naive `2·t·|E|` bound as a
    /// [`CostReport`]). See [`crate::ledger`] for the derived ratios.
    pub fn ledger(&self, direct: CostReport) -> crate::ledger::Ledger {
        crate::ledger::Ledger::from_scheme(self, direct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{connected_erdos_renyi, GeneratorConfig};

    fn practical(gamma: u32) -> SamplerScheme {
        SamplerScheme::with_constants(
            gamma,
            ConstantPolicy::Practical {
                target_factor: 4.0,
                query_factor: 8.0,
            },
        )
        .unwrap()
    }

    #[test]
    fn parameter_validation() {
        assert!(SamplerScheme::new(0).is_err());
        assert!(SamplerScheme::new(11).is_err());
        let scheme = SamplerScheme::new(2).unwrap();
        let params = scheme.sampler_params().unwrap();
        assert_eq!(params.k, 2);
        assert_eq!(params.h, 7);
        assert_eq!(scheme.stretch(), 17);
    }

    #[test]
    fn formulas_match_the_paper() {
        let scheme = SamplerScheme::new(1).unwrap();
        assert_eq!(scheme.round_formula(4), 3 * 4 + 6);
        // message formula exponent = 1 + 2/3.
        let expected = 4.0 * (100f64).powf(1.0 + 2.0 / 3.0);
        assert!((scheme.message_formula(100, 4) - expected).abs() < 1e-6);
    }

    #[test]
    fn scheme_run_solves_t_local_broadcast() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(120, 5), 0.25).unwrap();
        let scheme = practical(1);
        let t = 2;
        let report = scheme.run(&graph, t, 3).unwrap();
        assert!(report.spanner_edges > 0);
        assert!(report.total_cost.messages >= report.spanner_cost.messages);
        assert_eq!(
            report.total_cost.rounds,
            report.spanner_cost.rounds + report.broadcast_cost.rounds
        );
        // The flooding runs for stretch·t rounds.
        assert_eq!(
            report.broadcast_cost.rounds,
            u64::from(scheme.stretch() * t)
        );
        assert_eq!(
            report.naive_message_bound(),
            2 * u64::from(t) * graph.edge_count() as u64
        );
    }

    #[test]
    fn denser_graphs_do_not_inflate_scheme_messages_proportionally() {
        // The whole point of the scheme: its message count is governed by the
        // spanner, not by |E|.
        let sparse = connected_erdos_renyi(&GeneratorConfig::new(150, 7), 0.05).unwrap();
        let dense = connected_erdos_renyi(&GeneratorConfig::new(150, 7), 0.6).unwrap();
        let scheme = practical(1);
        let sparse_report = scheme.run(&sparse, 2, 9).unwrap();
        let dense_report = scheme.run(&dense, 2, 9).unwrap();
        let edge_ratio = dense.edge_count() as f64 / sparse.edge_count() as f64;
        let message_ratio =
            dense_report.total_cost.messages as f64 / sparse_report.total_cost.messages as f64;
        assert!(
            message_ratio < edge_ratio,
            "messages grew by {message_ratio:.2}× while edges grew by {edge_ratio:.2}×"
        );
    }
}
