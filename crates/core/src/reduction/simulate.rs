//! End-to-end simulation of an arbitrary LOCAL algorithm with `o(m)`
//! messages, together with a correctness check.
//!
//! The paper's argument (Section 6) is that a `t`-round LOCAL algorithm can
//! be replaced by a `t`-local broadcast of every node's initial knowledge:
//! afterwards each node holds the topology and inputs of its whole `t`-ball
//! and can recompute its own output locally, with zero further
//! communication. [`simulate_with_spanner`] therefore:
//!
//! 1. runs the algorithm directly on `G` with the synchronous runtime (the
//!    reference execution and the *direct* cost the scheme competes with);
//! 2. charges the simulated execution: spanner construction (supplied by the
//!    caller) + `t`-local broadcast on that spanner;
//! 3. verifies the information-sufficiency claim: for (a sample of) nodes
//!    `v`, re-running the algorithm on the subgraph containing only the
//!    edges incident to `B_{G,t}(v)` reproduces `v`'s output exactly.

use super::tlocal::t_local_broadcast_with_faults;
use crate::error::CoreResult;
use freelunch_graph::traversal::ball;
use freelunch_graph::{EdgeId, MultiGraph, NodeId};
use freelunch_runtime::{
    CostReport, FaultPlan, InitialKnowledge, Network, NetworkConfig, NodeProgram,
};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Report of one simulated execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Locality (round count) of the simulated algorithm.
    pub t: u32,
    /// Cost of running the algorithm directly on `G`.
    pub direct_cost: CostReport,
    /// Cost of constructing the spanner (as reported by the caller).
    pub spanner_cost: CostReport,
    /// Cost of the `t`-local broadcast on the spanner.
    pub broadcast_cost: CostReport,
    /// Total cost of the simulated execution (spanner + broadcast; the local
    /// recomputation sends no messages).
    pub simulated_cost: CostReport,
    /// Number of nodes whose outputs were verified against a ball-local
    /// re-execution.
    pub nodes_checked: usize,
    /// Number of verified nodes whose ball-local output differed from the
    /// direct execution (must be 0 — a nonzero value indicates the algorithm
    /// is not a `t`-round LOCAL algorithm for the given `t`).
    pub mismatches: usize,
}

impl SimulationReport {
    /// Message savings factor of the simulation over the direct execution
    /// (`> 1` means the simulation sends fewer messages).
    pub fn message_savings(&self) -> f64 {
        if self.simulated_cost.messages == 0 {
            return f64::INFINITY;
        }
        self.direct_cost.messages as f64 / self.simulated_cost.messages as f64
    }

    /// Round overhead factor of the simulation over the direct execution.
    pub fn round_overhead(&self) -> f64 {
        if self.direct_cost.rounds == 0 {
            return 0.0;
        }
        self.simulated_cost.rounds as f64 / self.direct_cost.rounds as f64
    }

    /// Returns `true` if every checked node produced the same output in the
    /// ball-local re-execution.
    pub fn outputs_match(&self) -> bool {
        self.mismatches == 0
    }

    /// Phase-attributed ledger of this simulation: spanner construction and
    /// broadcast on the scheme side, the measured direct execution as the
    /// reference. `ledger().free_lunch_ratio()` equals
    /// [`SimulationReport::message_savings`].
    pub fn ledger(&self) -> crate::ledger::Ledger {
        crate::ledger::Ledger::from_simulation(self)
    }
}

/// Simulates the LOCAL algorithm produced by `factory` (running for `t`
/// rounds) through a `t`-local broadcast on the supplied spanner.
///
/// `spanner_cost` is the cost the caller paid to construct `spanner_edges`
/// (pass [`CostReport::zero`] to study the broadcast in isolation).
/// `check_nodes` bounds how many nodes are verified by ball-local
/// re-execution (the verification is `O(n + m)` per node); pass 0 to skip.
///
/// `config` applies verbatim to the reference execution *and* to every
/// ball-local re-execution — in particular, setting
/// [`NetworkConfig::shards`] above 1 runs all of them on the sharded
/// parallel engine. Since sharding is bit-identical to sequential
/// execution, the whole [`SimulationReport`] is independent of the shard
/// count.
///
/// # Errors
///
/// Propagates runtime and graph errors.
#[allow(clippy::too_many_arguments)]
pub fn simulate_with_spanner<P, F, O>(
    graph: &MultiGraph,
    spanner_edges: &[EdgeId],
    spanner_stretch: u32,
    spanner_cost: CostReport,
    t: u32,
    config: NetworkConfig,
    factory: F,
    output: impl Fn(&P) -> O,
    check_nodes: usize,
) -> CoreResult<SimulationReport>
where
    P: NodeProgram,
    F: Fn(NodeId, &InitialKnowledge) -> P,
    O: PartialEq,
{
    simulate_with_spanner_under_faults(
        graph,
        spanner_edges,
        spanner_stretch,
        spanner_cost,
        t,
        config,
        &FaultPlan::none(),
        factory,
        output,
        check_nodes,
    )
}

/// [`simulate_with_spanner`] with the whole pipeline subjected to one
/// deterministic [`FaultPlan`]: the same plan is installed on the direct
/// reference execution (via
/// [`Network::with_fault_plan`]) *and* on the spanner broadcast (via the
/// fault-aware flood), so the scheme and the execution it competes with
/// degrade under identical adversity and report through the same
/// fault-accounting column.
///
/// Ball-sufficiency verification is only meaningful for failure-free runs
/// (a ball-local re-execution sees different faults than the full-graph
/// one), so under a non-empty plan it is skipped:
/// [`SimulationReport::nodes_checked`] is 0 regardless of `check_nodes`.
///
/// # Errors
///
/// Propagates runtime, graph and plan-validation errors.
#[allow(clippy::too_many_arguments)]
pub fn simulate_with_spanner_under_faults<P, F, O>(
    graph: &MultiGraph,
    spanner_edges: &[EdgeId],
    spanner_stretch: u32,
    spanner_cost: CostReport,
    t: u32,
    config: NetworkConfig,
    faults: &FaultPlan,
    factory: F,
    output: impl Fn(&P) -> O,
    check_nodes: usize,
) -> CoreResult<SimulationReport>
where
    P: NodeProgram,
    F: Fn(NodeId, &InitialKnowledge) -> P,
    O: PartialEq,
{
    // Reference execution on the full graph, under the same fault plan.
    let mut direct = Network::with_fault_plan(graph, config, faults.clone(), |node, knowledge| {
        factory(node, knowledge)
    })?;
    direct.run_rounds(t)?;
    let direct_cost = direct.cost();
    let direct_outputs: Vec<O> = direct.programs().iter().map(&output).collect();

    // The message-reduced execution: t-local broadcast on the spanner.
    let broadcast = t_local_broadcast_with_faults(
        graph,
        spanner_edges.iter().copied(),
        t,
        spanner_stretch,
        faults,
    )?;

    // Ball-sufficiency verification on an evenly spread sample of nodes
    // (skipped under faults — see the doc comment).
    let n = graph.node_count();
    let to_check = if faults.is_empty() {
        check_nodes.min(n)
    } else {
        0
    };
    let mut mismatches = 0usize;
    // `checked_div` is `None` exactly when `to_check == 0`, i.e. when the
    // caller asked for no verification samples.
    if let Some(step) = n.checked_div(to_check) {
        let step = step.max(1);
        // One frozen view serves every per-node ball query below.
        let frozen = graph.freeze();
        for index in (0..n).step_by(step).take(to_check) {
            let node = NodeId::from_usize(index);
            let ball_nodes: HashSet<NodeId> = ball(&frozen, node, t)?.into_iter().collect();
            // Keep every edge incident to the ball: the ball nodes' behaviour
            // may depend on their full incident edge sets, but nodes outside
            // the ball cannot influence `node` within t rounds.
            let edges: Vec<EdgeId> = graph
                .edges()
                .filter(|e| ball_nodes.contains(&e.u) || ball_nodes.contains(&e.v))
                .map(|e| e.id)
                .collect();
            let ball_graph = graph.edge_subgraph(edges)?;
            let mut local =
                Network::new(&ball_graph, config, |v, knowledge| factory(v, knowledge))?;
            local.run_rounds(t)?;
            let local_output = output(&local.programs()[index]);
            if local_output != direct_outputs[index] {
                mismatches += 1;
            }
        }
    }

    Ok(SimulationReport {
        t,
        direct_cost,
        spanner_cost,
        broadcast_cost: broadcast.cost,
        simulated_cost: spanner_cost + broadcast.cost,
        nodes_checked: to_check,
        mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{connected_erdos_renyi, GeneratorConfig};
    use freelunch_runtime::{Context, Envelope};

    /// A t-round LOCAL algorithm: every node learns the minimum node ID
    /// within its t-ball by iterated min-flooding.
    struct MinWithin {
        best: u32,
    }

    impl NodeProgram for MinWithin {
        type Message = u32;
        fn init(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.broadcast(self.best);
        }
        fn round(&mut self, ctx: &mut Context<'_, u32>, inbox: &[Envelope<u32>]) {
            let incoming = inbox.iter().map(|e| e.payload).min();
            if let Some(value) = incoming {
                if value < self.best {
                    self.best = value;
                }
            }
            ctx.broadcast(self.best);
        }
    }

    #[test]
    fn simulation_is_correct_and_saves_messages_on_dense_graphs() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(80, 3), 0.5).unwrap();
        let t = 2;
        // Use a sparse spanner: here, for test determinism, the BFS tree of
        // node 0 plus all edges of node 0 — stretch is not guaranteed, so use
        // the full edge set of a *sparser* subgraph: simplest correct choice
        // is the graph itself with stretch 1 (savings then come only from
        // comparing against the per-round flooding of the direct run).
        let spanner: Vec<EdgeId> = graph.edge_ids().collect();
        let report = simulate_with_spanner(
            &graph,
            &spanner,
            1,
            CostReport::zero(),
            t,
            NetworkConfig::with_seed(5),
            |node, _| MinWithin { best: node.raw() },
            |p| p.best,
            10,
        )
        .unwrap();
        assert!(report.outputs_match(), "{} mismatches", report.mismatches);
        assert_eq!(report.nodes_checked, 10);
        assert_eq!(report.t, t);
        // Direct execution floods every round over every edge in both
        // directions; the broadcast only forwards new tokens, so it can never
        // send more.
        assert!(report.simulated_cost.messages <= report.direct_cost.messages);
        assert!(report.message_savings() >= 1.0);
        assert!(report.round_overhead() >= 1.0);
    }

    #[test]
    fn verification_catches_under_provisioned_t() {
        // The algorithm needs t rounds to gather the t-ball minimum; checking
        // it with a smaller ball must produce mismatches for some node of a
        // long-ish path-like graph.
        let graph = connected_erdos_renyi(&GeneratorConfig::new(60, 8), 0.02).unwrap();
        let t = 3;
        let spanner: Vec<EdgeId> = graph.edge_ids().collect();
        // Run the algorithm for t rounds but verify with balls of radius t:
        // outputs must match.
        let good = simulate_with_spanner(
            &graph,
            &spanner,
            1,
            CostReport::zero(),
            t,
            NetworkConfig::with_seed(1),
            |node, _| MinWithin { best: node.raw() },
            |p| p.best,
            graph.node_count(),
        )
        .unwrap();
        assert!(good.outputs_match());
        assert_eq!(good.nodes_checked, graph.node_count());
    }

    #[test]
    fn faulty_simulation_meters_both_sides_and_skips_ball_checks() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(50, 2), 0.3).unwrap();
        let spanner: Vec<EdgeId> = graph.edge_ids().collect();
        let faults = FaultPlan::new(13).with_drop_probability(0.3);
        let run = || {
            simulate_with_spanner_under_faults(
                &graph,
                &spanner,
                1,
                CostReport::zero(),
                2,
                NetworkConfig::with_seed(5),
                &faults,
                |node, _| MinWithin { best: node.raw() },
                |p| p.best,
                10,
            )
            .unwrap()
        };
        let report = run();
        // Ball verification is skipped under a non-empty plan.
        assert_eq!(report.nodes_checked, 0);
        assert_eq!(report.mismatches, 0);
        // The same scenario replays bit-identically.
        assert_eq!(report, run());
        // An empty plan is exactly the clean entry point.
        let clean = simulate_with_spanner(
            &graph,
            &spanner,
            1,
            CostReport::zero(),
            2,
            NetworkConfig::with_seed(5),
            |node, _| MinWithin { best: node.raw() },
            |p| p.best,
            10,
        )
        .unwrap();
        let empty = simulate_with_spanner_under_faults(
            &graph,
            &spanner,
            1,
            CostReport::zero(),
            2,
            NetworkConfig::with_seed(5),
            &FaultPlan::none(),
            |node, _| MinWithin { best: node.raw() },
            |p| p.best,
            10,
        )
        .unwrap();
        assert_eq!(clean, empty);
        // Dropped messages shrink the measured direct traffic.
        assert!(report.direct_cost.messages < clean.direct_cost.messages);
    }

    #[test]
    fn zero_check_nodes_skips_verification() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(30, 1), 0.3).unwrap();
        let spanner: Vec<EdgeId> = graph.edge_ids().collect();
        let report = simulate_with_spanner(
            &graph,
            &spanner,
            1,
            CostReport::new(5, 100),
            1,
            NetworkConfig::default(),
            |node, _| MinWithin { best: node.raw() },
            |p| p.best,
            0,
        )
        .unwrap();
        assert_eq!(report.nodes_checked, 0);
        assert_eq!(report.mismatches, 0);
        // The supplied spanner cost is included in the simulated total.
        assert_eq!(
            report.simulated_cost.messages,
            100 + report.broadcast_cost.messages
        );
        assert_eq!(
            report.simulated_cost.rounds,
            5 + report.broadcast_cost.rounds
        );
    }
}
