//! The `t`-local broadcast task (Section 6) realized by flooding on a
//! spanner.
//!
//! Every node `v` starts with a token; after the broadcast every node of
//! `B_{G,t}(v)` must hold `v`'s token. Given an `α`-spanner `H = (V, S)`,
//! flooding for `α·t` rounds *in `H`* accomplishes this: any node at
//! distance `≤ t` in `G` is at distance `≤ α·t` in `H`. Each node forwards
//! (a bundle of) newly learned tokens over its incident spanner edges once
//! per round, so at most `2·|S|` messages fly per round and the whole task
//! costs at most `2·α·t·|S|` messages — independent of `|E|`.

use crate::error::{CoreError, CoreResult};
use freelunch_graph::traversal::ball;
use freelunch_graph::{EdgeId, MultiGraph, NodeId};
use freelunch_runtime::{
    edge_slot_count, CostReport, FaultCause, FaultPlan, MessageFate, MessageLedger,
};
use serde::{Deserialize, Serialize};

/// Wire size charged per token in a bundled flooding message (tokens are
/// node IDs, serialized as `u32`). See `docs/METRICS.md` for the sizing
/// rules.
pub const TOKEN_BYTES: u64 = 4;

/// A dense `n × n` bit matrix: row `v` records which tokens node `v` knows.
#[derive(Debug, Clone)]
struct BitMatrix {
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            words_per_row,
            data: vec![0; n * words_per_row],
        }
    }

    fn set(&mut self, row: usize, column: usize) -> bool {
        let word = row * self.words_per_row + column / 64;
        let mask = 1u64 << (column % 64);
        let was_set = self.data[word] & mask != 0;
        self.data[word] |= mask;
        !was_set
    }

    fn count_row(&self, row: usize) -> usize {
        let start = row * self.words_per_row;
        self.data[start..start + self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

/// Result of a flooding run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BroadcastOutcome {
    /// Rounds and messages spent by the flooding itself (spanner
    /// construction is *not* included; schemes add it separately).
    pub cost: CostReport,
    /// Radius of the flooding (`α·t` for a `t`-local broadcast on an
    /// `α`-spanner).
    pub radius: u32,
    /// For every node, the number of distinct tokens it holds at the end.
    pub tokens_received: Vec<usize>,
    /// Number of edges (with multiplicity) of the flooding subgraph.
    pub subgraph_edges: usize,
    /// Per-edge / per-round message and byte accounting of the flooding —
    /// the same meter the synchronous runtime reports through, so baseline
    /// and scheme numbers are directly comparable. `ledger.summary()`
    /// always equals [`BroadcastOutcome::cost`].
    pub ledger: MessageLedger,
    #[serde(skip)]
    known: Option<KnownTokens>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct KnownTokens {
    words_per_row: usize,
    data: Vec<u64>,
}

impl BroadcastOutcome {
    /// Returns `true` if node `holder` ended up with the token of `source`.
    pub fn holds_token(&self, holder: NodeId, source: NodeId) -> bool {
        match &self.known {
            Some(known) => {
                let word = holder.index() * known.words_per_row + source.index() / 64;
                known.data[word] & (1u64 << (source.index() % 64)) != 0
            }
            None => false,
        }
    }

    /// Verifies the `t`-local broadcast specification: for every node `v`
    /// and every node `u ∈ B_{G,t}(v)`, `u` holds `v`'s token. Returns the
    /// number of (holder, source) violations.
    ///
    /// # Errors
    ///
    /// Propagates graph errors from the ball computations.
    pub fn coverage_violations(&self, graph: &MultiGraph, t: u32) -> CoreResult<usize> {
        let mut violations = 0;
        // One frozen view serves all n single-source ball queries.
        let frozen = graph.freeze();
        for source in graph.nodes() {
            for holder in ball(&frozen, source, t)? {
                if !self.holds_token(holder, source) {
                    violations += 1;
                }
            }
        }
        Ok(violations)
    }
}

/// Floods every node's token through the subgraph spanned by `subgraph_edges`
/// for exactly `radius` rounds, counting messages exactly: a node that
/// learned at least one new token in the previous round sends one (bundled)
/// message over each of its subgraph edges.
///
/// # Errors
///
/// Returns an error if any edge ID is unknown or the graph is empty.
pub fn flood_on_subgraph(
    graph: &MultiGraph,
    subgraph_edges: impl IntoIterator<Item = EdgeId>,
    radius: u32,
) -> CoreResult<BroadcastOutcome> {
    flood_on_subgraph_with_faults(graph, subgraph_edges, radius, &FaultPlan::none())
}

/// [`flood_on_subgraph`] subjected to a deterministic
/// [`FaultPlan`] — the same plan type (and accounting convention) the
/// synchronous runtime accepts, so scheme-vs-baseline robustness
/// comparisons are metered identically on both sides.
///
/// Fault semantics of the emulated flood: a node crashed at round `r`
/// neither sends nor receives from round `r` on (rounds are 1-based here,
/// matching the ledger's round slots; crash round 0 means the node never
/// participates); a cut link silently discards both directions; drops and
/// duplications are resolved per message from the plan's keyed ChaCha
/// stream with `msg_index = 0` (the flood sends at most one bundle per
/// edge direction per round). Dropped bundles transfer no tokens and are
/// attributed in the ledger's fault column; duplicated bundles are charged
/// twice but transfer the same tokens (token union is idempotent).
/// Delivery perturbation is a no-op for the flood — it is order-insensitive
/// by construction.
///
/// The empty plan reproduces [`flood_on_subgraph`] exactly.
///
/// # Errors
///
/// Returns an error if any edge ID is unknown, the graph is empty, or the
/// plan's probabilities are invalid.
pub fn flood_on_subgraph_with_faults(
    graph: &MultiGraph,
    subgraph_edges: impl IntoIterator<Item = EdgeId>,
    radius: u32,
    faults: &FaultPlan,
) -> CoreResult<BroadcastOutcome> {
    let n = graph.node_count();
    if n == 0 {
        return Err(CoreError::invalid_parameter("the graph has no nodes"));
    }
    faults.validate().map_err(CoreError::invalid_parameter)?;
    let faulty = faults.affects_messages();
    let subgraph = graph.edge_subgraph(subgraph_edges)?;

    let mut known = BitMatrix::new(n);
    let mut fresh: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (v, fresh_v) in fresh.iter_mut().enumerate() {
        known.set(v, v);
        fresh_v.push(v as u32);
    }

    // The emulated flood reports through the same per-edge/per-round meter
    // as the synchronous runtime. Nodes are scanned in ascending order every
    // round, so the accumulation order is canonical by construction.
    let mut ledger = MessageLedger::new(edge_slot_count(subgraph.edge_ids()));
    for round in 1..=radius {
        ledger.start_round();
        let mut next_fresh: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, fresh_v) in fresh.iter().enumerate() {
            if fresh_v.is_empty() {
                continue;
            }
            let sender = NodeId::from_usize(v);
            if faulty && faults.crashed_at(sender, round) {
                continue;
            }
            let incident = subgraph.incident_edges(sender);
            // One bundled message per incident subgraph edge, sized as the
            // number of bundled tokens.
            let bundle_bytes = TOKEN_BYTES * fresh_v.len() as u64;
            for ie in incident {
                if faulty {
                    if faults.link_cut_at(ie.edge, round) {
                        ledger.record_dropped(FaultCause::LinkCut);
                        continue;
                    }
                    if faults.crashed_at(ie.neighbor, round) {
                        ledger.record_dropped(FaultCause::Crash);
                        continue;
                    }
                    match faults.message_fate(round, ie.edge, sender, 0) {
                        MessageFate::Drop => {
                            ledger.record_dropped(FaultCause::Random);
                            continue;
                        }
                        MessageFate::Duplicate => {
                            // The duplicate crosses the edge too; the token
                            // union it re-delivers is idempotent.
                            ledger.record_duplicated();
                            ledger.record_edge(ie.edge, bundle_bytes);
                        }
                        MessageFate::Deliver => {}
                    }
                }
                ledger.record_edge(ie.edge, bundle_bytes);
                let u = ie.neighbor.index();
                for &token in fresh_v {
                    if known.set(u, token as usize) {
                        next_fresh[u].push(token);
                    }
                }
            }
        }
        fresh = next_fresh;
    }

    let tokens_received = (0..n).map(|v| known.count_row(v)).collect();
    Ok(BroadcastOutcome {
        cost: ledger.summary(),
        radius,
        tokens_received,
        subgraph_edges: subgraph.edge_count(),
        known: Some(KnownTokens {
            words_per_row: known.words_per_row,
            data: known.data,
        }),
        ledger,
    })
}

/// How the flood assigns a token bundle to an edge when several parallel
/// edges join the sender to the same neighbor.
///
/// On simple graphs all three policies produce bit-identical outcomes (every
/// parallel class has size 1, so there is nothing to choose); they differ
/// only on multigraphs — e.g. spanners retaining parallel capacity links, or
/// workloads provisioned with bonded edges on high-traffic links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FloodRouting {
    /// One bundle per *incident edge*: parallel edges each carry a copy.
    /// This is the historical [`flood_on_subgraph`] behavior (and the
    /// paper's `2·|S|`-messages-per-round accounting, with `|S|` counting
    /// multiplicity).
    PerEdge,
    /// One bundle per *distinct neighbor*, always carried by the
    /// lowest-`EdgeId` edge of the parallel class. The deterministic
    /// first-edge baseline that congestion-aware routing is measured
    /// against.
    Canonical,
    /// One bundle per *distinct neighbor*, spread across the parallel class
    /// round-robin (with a direction-dependent offset, so for classes of
    /// size ≥ 2 the two directions never share an edge in a round). Sends
    /// exactly the same bundles as [`FloodRouting::Canonical`] — same total
    /// message count, same knowledge evolution — but its per-round maximum
    /// edge congestion is pointwise ≤ canonical's. See `docs/PLANNER.md`
    /// for the guarantee and the measured tail effect.
    CongestionAware,
}

/// [`flood_on_subgraph`] under an explicit [`FloodRouting`] policy.
///
/// [`FloodRouting::PerEdge`] reproduces [`flood_on_subgraph`] exactly. The
/// two neighbor-routed policies ([`FloodRouting::Canonical`] and
/// [`FloodRouting::CongestionAware`]) send one bundle per (sender, distinct
/// neighbor) pair per active round; they share message totals, byte totals,
/// round activity, and token knowledge with each other — only the per-edge
/// distribution (and hence the congestion column) differs. The routed
/// flood's cost is charged to the same phase accounting as the canonical
/// flood (callers wrap the returned [`BroadcastOutcome::cost`] in
/// [`crate::ledger::Ledger::for_tlocal`] exactly as before).
///
/// # Errors
///
/// Returns an error if any edge ID is unknown or the graph is empty.
pub fn flood_on_subgraph_routed(
    graph: &MultiGraph,
    subgraph_edges: impl IntoIterator<Item = EdgeId>,
    radius: u32,
    routing: FloodRouting,
) -> CoreResult<BroadcastOutcome> {
    if routing == FloodRouting::PerEdge {
        return flood_on_subgraph(graph, subgraph_edges, radius);
    }
    let n = graph.node_count();
    if n == 0 {
        return Err(CoreError::invalid_parameter("the graph has no nodes"));
    }
    let subgraph = graph.edge_subgraph(subgraph_edges)?;

    // Group each node's incident subgraph edges by neighbor, the parallel
    // classes sorted by edge ID. Built once; deterministic by construction.
    let mut classes: Vec<Vec<(NodeId, Vec<EdgeId>)>> = Vec::with_capacity(n);
    for v in subgraph.nodes() {
        let mut incident: Vec<(NodeId, EdgeId)> = subgraph
            .incident_edges(v)
            .iter()
            .map(|ie| (ie.neighbor, ie.edge))
            .collect();
        incident.sort_unstable_by_key(|&(u, e)| (u.index(), e.index()));
        let mut grouped: Vec<(NodeId, Vec<EdgeId>)> = Vec::new();
        for (u, e) in incident {
            match grouped.last_mut() {
                Some((last, edges)) if *last == u => edges.push(e),
                _ => grouped.push((u, vec![e])),
            }
        }
        classes.push(grouped);
    }

    let mut known = BitMatrix::new(n);
    let mut fresh: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (v, fresh_v) in fresh.iter_mut().enumerate() {
        known.set(v, v);
        fresh_v.push(v as u32);
    }

    let mut ledger = MessageLedger::new(edge_slot_count(subgraph.edge_ids()));
    for round in 1..=radius {
        ledger.start_round();
        let mut next_fresh: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, fresh_v) in fresh.iter().enumerate() {
            if fresh_v.is_empty() {
                continue;
            }
            let bundle_bytes = TOKEN_BYTES * fresh_v.len() as u64;
            for (neighbor, parallel) in &classes[v] {
                let carrier = match routing {
                    FloodRouting::PerEdge => unreachable!("handled above"),
                    FloodRouting::Canonical => parallel[0],
                    FloodRouting::CongestionAware => {
                        // Round-robin over the class; the higher-ID endpoint
                        // starts one slot ahead, so classes of size ≥ 2 never
                        // carry both directions on the same edge in a round.
                        let k = parallel.len();
                        let offset = usize::from(v > neighbor.index());
                        parallel[(round as usize - 1 + offset) % k]
                    }
                };
                ledger.record_edge(carrier, bundle_bytes);
                let u = neighbor.index();
                for &token in fresh_v {
                    if known.set(u, token as usize) {
                        next_fresh[u].push(token);
                    }
                }
            }
        }
        fresh = next_fresh;
    }

    let tokens_received = (0..n).map(|v| known.count_row(v)).collect();
    Ok(BroadcastOutcome {
        cost: ledger.summary(),
        radius,
        tokens_received,
        subgraph_edges: subgraph.edge_count(),
        known: Some(KnownTokens {
            words_per_row: known.words_per_row,
            data: known.data,
        }),
        ledger,
    })
}

/// [`t_local_broadcast`] under an explicit [`FloodRouting`] policy: flooding
/// within distance `stretch · t` with the chosen parallel-edge routing (see
/// [`flood_on_subgraph_routed`]).
///
/// # Errors
///
/// Returns an error if `stretch` is zero or an edge ID is unknown.
pub fn t_local_broadcast_routed(
    graph: &MultiGraph,
    spanner_edges: impl IntoIterator<Item = EdgeId>,
    t: u32,
    stretch: u32,
    routing: FloodRouting,
) -> CoreResult<BroadcastOutcome> {
    if stretch == 0 {
        return Err(CoreError::invalid_parameter(
            "the stretch must be at least 1",
        ));
    }
    flood_on_subgraph_routed(graph, spanner_edges, stretch.saturating_mul(t), routing)
}

/// The `t`-local broadcast of Lemma 12: flooding within distance
/// `stretch · t` on a `stretch`-spanner given by `spanner_edges`.
///
/// # Errors
///
/// Returns an error if `stretch` is zero or an edge ID is unknown.
pub fn t_local_broadcast(
    graph: &MultiGraph,
    spanner_edges: impl IntoIterator<Item = EdgeId>,
    t: u32,
    stretch: u32,
) -> CoreResult<BroadcastOutcome> {
    t_local_broadcast_with_faults(graph, spanner_edges, t, stretch, &FaultPlan::none())
}

/// [`t_local_broadcast`] under a deterministic [`FaultPlan`] (see
/// [`flood_on_subgraph_with_faults`] for the fault semantics).
///
/// # Errors
///
/// Returns an error if `stretch` is zero, an edge ID is unknown, or the
/// plan's probabilities are invalid.
pub fn t_local_broadcast_with_faults(
    graph: &MultiGraph,
    spanner_edges: impl IntoIterator<Item = EdgeId>,
    t: u32,
    stretch: u32,
    faults: &FaultPlan,
) -> CoreResult<BroadcastOutcome> {
    if stretch == 0 {
        return Err(CoreError::invalid_parameter(
            "the stretch must be at least 1",
        ));
    }
    flood_on_subgraph_with_faults(graph, spanner_edges, stretch.saturating_mul(t), faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{connected_erdos_renyi, cycle_graph, GeneratorConfig};

    #[test]
    fn flooding_on_full_graph_covers_balls_exactly() {
        let graph = cycle_graph(&GeneratorConfig::new(10, 0)).unwrap();
        let outcome = t_local_broadcast(&graph, graph.edge_ids(), 2, 1).unwrap();
        assert_eq!(outcome.coverage_violations(&graph, 2).unwrap(), 0);
        // On a cycle, |B(v, 2)| = 5 for every v.
        assert!(outcome.tokens_received.iter().all(|&c| c == 5));
        assert_eq!(outcome.cost.rounds, 2);
        // Round 1: every node sends over both edges (20 messages); round 2 the
        // same (every node learned 2 new tokens in round 1).
        assert_eq!(outcome.cost.messages, 40);
    }

    #[test]
    fn flooding_on_a_spanner_needs_the_stretch_factor() {
        // Spanner = cycle minus one edge (stretch n−1 for that edge); with
        // radius t·1 coverage fails, with a large enough radius it succeeds.
        let graph = cycle_graph(&GeneratorConfig::new(8, 0)).unwrap();
        let spanner: Vec<EdgeId> = graph.edge_ids().filter(|e| e.raw() != 7).collect();
        let too_short = t_local_broadcast(&graph, spanner.iter().copied(), 1, 1).unwrap();
        assert!(too_short.coverage_violations(&graph, 1).unwrap() > 0);
        let long_enough = t_local_broadcast(&graph, spanner.iter().copied(), 1, 7).unwrap();
        assert_eq!(long_enough.coverage_violations(&graph, 1).unwrap(), 0);
    }

    #[test]
    fn message_count_is_bounded_by_two_s_per_round() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(60, 3), 0.3).unwrap();
        let spanner: Vec<EdgeId> = graph.edge_ids().collect();
        let t = 3;
        let outcome = t_local_broadcast(&graph, spanner.iter().copied(), t, 1).unwrap();
        assert!(outcome.cost.messages <= 2 * spanner.len() as u64 * u64::from(t));
        assert_eq!(outcome.subgraph_edges, spanner.len());
    }

    #[test]
    fn radius_zero_sends_nothing() {
        let graph = cycle_graph(&GeneratorConfig::new(5, 0)).unwrap();
        let outcome = flood_on_subgraph(&graph, graph.edge_ids(), 0).unwrap();
        assert_eq!(outcome.cost.messages, 0);
        assert!(outcome.tokens_received.iter().all(|&c| c == 1));
        // Every node trivially holds its own token.
        assert_eq!(outcome.coverage_violations(&graph, 0).unwrap(), 0);
    }

    #[test]
    fn parameter_validation() {
        let graph = cycle_graph(&GeneratorConfig::new(5, 0)).unwrap();
        assert!(t_local_broadcast(&graph, graph.edge_ids(), 1, 0).is_err());
        assert!(flood_on_subgraph(&MultiGraph::new(0), std::iter::empty(), 1).is_err());
        assert!(flood_on_subgraph(&graph, [EdgeId::new(77)], 1).is_err());
    }

    #[test]
    fn ledger_agrees_with_cost_and_sizes_bundles() {
        let graph = cycle_graph(&GeneratorConfig::new(10, 0)).unwrap();
        let outcome = t_local_broadcast(&graph, graph.edge_ids(), 2, 1).unwrap();
        let ledger = &outcome.ledger;
        assert_eq!(ledger.summary(), outcome.cost);
        assert_eq!(
            ledger.messages_per_edge().iter().sum::<u64>(),
            outcome.cost.messages
        );
        // Round 1 bundles hold exactly one token (the node's own), so bytes
        // in slot 1 equal messages × TOKEN_BYTES.
        assert_eq!(
            ledger.bytes_per_round()[1],
            ledger.messages_per_round()[1] * TOKEN_BYTES
        );
        // On the cycle every edge carries one message per direction per
        // active round: congestion 2, and 4 messages per edge in total.
        assert_eq!(ledger.max_congestion(), 2);
        assert!(ledger.messages_per_edge().iter().all(|&c| c == 4));
        // Slot 0 (initialization) is always silent for the emulated flood.
        assert_eq!(ledger.messages_per_round()[0], 0);
    }

    #[test]
    fn empty_fault_plan_reproduces_the_clean_flood() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(40, 2), 0.2).unwrap();
        let clean = flood_on_subgraph(&graph, graph.edge_ids(), 3).unwrap();
        let faulty =
            flood_on_subgraph_with_faults(&graph, graph.edge_ids(), 3, &FaultPlan::none()).unwrap();
        assert_eq!(clean, faulty);
        assert_eq!(faulty.ledger.fault_totals().dropped, 0);
    }

    #[test]
    fn certain_drop_silences_the_flood_after_round_one() {
        let graph = cycle_graph(&GeneratorConfig::new(10, 0)).unwrap();
        let plan = FaultPlan::new(3).with_drop_probability(1.0);
        let outcome = flood_on_subgraph_with_faults(&graph, graph.edge_ids(), 3, &plan).unwrap();
        // Round 1: every node floods its own token over both edges — all 20
        // bundles dropped. Nobody learns anything, so rounds 2 and 3 are
        // silent.
        assert_eq!(outcome.cost.messages, 0);
        assert_eq!(outcome.ledger.fault_totals().dropped, 20);
        assert_eq!(outcome.ledger.fault_totals().dropped_random, 20);
        assert!(outcome.tokens_received.iter().all(|&c| c == 1));
        assert!(outcome.coverage_violations(&graph, 3).unwrap() > 0);
    }

    #[test]
    fn link_cut_splits_the_flood_and_is_attributed() {
        // Path 0-1-2-3; cutting e1 from round 1 splits it into {0,1}, {2,3}.
        let mut graph = MultiGraph::new(4);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3)] {
            graph.add_edge(NodeId::new(u), NodeId::new(v)).unwrap();
        }
        let plan = FaultPlan::new(0).with_link_cut(EdgeId::new(1), 1);
        let outcome = flood_on_subgraph_with_faults(&graph, graph.edge_ids(), 3, &plan).unwrap();
        assert_eq!(outcome.tokens_received, vec![2, 2, 2, 2]);
        let totals = outcome.ledger.fault_totals();
        assert!(totals.dropped_link_cut > 0);
        assert_eq!(totals.dropped, totals.dropped_link_cut);
        // No message ever crossed the cut edge.
        assert_eq!(outcome.ledger.messages_per_edge()[1], 0);
    }

    #[test]
    fn crashed_node_neither_sends_nor_receives_in_the_flood() {
        let graph = cycle_graph(&GeneratorConfig::new(6, 0)).unwrap();
        let plan = FaultPlan::new(0).with_crash(NodeId::new(3), 0);
        let outcome = flood_on_subgraph_with_faults(&graph, graph.edge_ids(), 5, &plan).unwrap();
        // The crashed node keeps only its own token; the survivors flood on
        // the remaining path and still learn all five live tokens.
        assert_eq!(outcome.tokens_received[3], 1);
        for v in [0usize, 1, 2, 4, 5] {
            assert_eq!(outcome.tokens_received[v], 5, "node {v}");
        }
        assert!(outcome.ledger.fault_totals().dropped_crash > 0);
    }

    #[test]
    fn certain_duplication_doubles_flood_traffic_only() {
        let graph = cycle_graph(&GeneratorConfig::new(8, 0)).unwrap();
        let clean = flood_on_subgraph(&graph, graph.edge_ids(), 2).unwrap();
        let plan = FaultPlan::new(5).with_duplicate_probability(1.0);
        let doubled = flood_on_subgraph_with_faults(&graph, graph.edge_ids(), 2, &plan).unwrap();
        // Every bundle crosses twice: double messages and bytes, identical
        // knowledge (token union is idempotent).
        assert_eq!(doubled.cost.messages, 2 * clean.cost.messages);
        assert_eq!(doubled.ledger.total_bytes(), 2 * clean.ledger.total_bytes());
        assert_eq!(doubled.tokens_received, clean.tokens_received);
        assert_eq!(
            doubled.ledger.fault_totals().duplicated,
            clean.cost.messages
        );
    }

    #[test]
    fn routing_policies_coincide_on_simple_graphs() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(40, 9), 0.15).unwrap();
        let per_edge = flood_on_subgraph(&graph, graph.edge_ids(), 3).unwrap();
        for routing in [
            FloodRouting::PerEdge,
            FloodRouting::Canonical,
            FloodRouting::CongestionAware,
        ] {
            let routed = flood_on_subgraph_routed(&graph, graph.edge_ids(), 3, routing).unwrap();
            assert_eq!(routed, per_edge, "{routing:?}");
        }
    }

    /// Doubled cycle edges: canonical routing piles both directions onto the
    /// first parallel edge, congestion-aware routing gives each direction its
    /// own — same bundles, same totals, flatter congestion.
    #[test]
    fn congestion_aware_routing_flattens_parallel_classes() {
        let mut graph = MultiGraph::new(6);
        for v in 0..6u32 {
            let u = NodeId::new(v);
            let w = NodeId::new((v + 1) % 6);
            graph.add_edge(u, w).unwrap();
            graph.add_edge(u, w).unwrap();
        }
        let canonical =
            flood_on_subgraph_routed(&graph, graph.edge_ids(), 3, FloodRouting::Canonical).unwrap();
        let aware =
            flood_on_subgraph_routed(&graph, graph.edge_ids(), 3, FloodRouting::CongestionAware)
                .unwrap();
        // Identical traffic and knowledge...
        assert_eq!(aware.cost, canonical.cost);
        assert_eq!(aware.ledger.total_bytes(), canonical.ledger.total_bytes());
        assert_eq!(aware.tokens_received, canonical.tokens_received);
        // ...but the congestion column flattens from 2 to 1.
        let aware_snap = aware.ledger.congestion_snapshot();
        let canonical_snap = canonical.ledger.congestion_snapshot();
        assert_eq!(canonical_snap.peak, 2);
        assert_eq!(aware_snap.peak, 1);
        assert!(aware_snap.never_exceeds(&canonical_snap));
        // One bundle per (sender, distinct neighbor): half the per-edge
        // flood's traffic on a doubled graph.
        let per_edge = flood_on_subgraph(&graph, graph.edge_ids(), 3).unwrap();
        assert_eq!(2 * canonical.cost.messages, per_edge.cost.messages);
    }

    #[test]
    fn neighbor_routed_policies_share_knowledge_with_the_per_edge_flood() {
        let mut graph = connected_erdos_renyi(&GeneratorConfig::new(30, 4), 0.2).unwrap();
        // Thicken a few links with parallel capacity.
        for (u, v) in [(0u32, 1u32), (3, 7), (10, 11)] {
            let (u, v) = (NodeId::new(u), NodeId::new(v));
            if !graph.edges_between(u, v).is_empty() {
                graph.add_edge(u, v).unwrap();
            }
        }
        let per_edge = flood_on_subgraph(&graph, graph.edge_ids(), 4).unwrap();
        for routing in [FloodRouting::Canonical, FloodRouting::CongestionAware] {
            let routed = flood_on_subgraph_routed(&graph, graph.edge_ids(), 4, routing).unwrap();
            assert_eq!(routed.tokens_received, per_edge.tokens_received);
            assert_eq!(routed.coverage_violations(&graph, 4).unwrap(), 0);
            assert!(routed.cost.messages <= per_edge.cost.messages);
        }
    }

    #[test]
    fn routed_parameter_validation() {
        let graph = cycle_graph(&GeneratorConfig::new(5, 0)).unwrap();
        assert!(t_local_broadcast_routed(
            &graph,
            graph.edge_ids(),
            1,
            0,
            FloodRouting::CongestionAware
        )
        .is_err());
        assert!(flood_on_subgraph_routed(
            &MultiGraph::new(0),
            std::iter::empty(),
            1,
            FloodRouting::Canonical
        )
        .is_err());
        assert!(
            flood_on_subgraph_routed(&graph, [EdgeId::new(77)], 1, FloodRouting::Canonical)
                .is_err()
        );
    }

    #[test]
    fn holds_token_reports_exact_knowledge() {
        let graph = cycle_graph(&GeneratorConfig::new(6, 0)).unwrap();
        let outcome = flood_on_subgraph(&graph, graph.edge_ids(), 1).unwrap();
        let v0 = NodeId::new(0);
        assert!(outcome.holds_token(v0, v0));
        assert!(outcome.holds_token(v0, NodeId::new(1)));
        assert!(outcome.holds_token(v0, NodeId::new(5)));
        assert!(!outcome.holds_token(v0, NodeId::new(3)));
    }
}
