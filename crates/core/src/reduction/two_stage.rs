//! The two-stage message-reduction scheme (Lemma 12, second bullet /
//! Theorem 3, second bullet).
//!
//! Stage 1 builds a `Sampler` spanner `H` with parameter `γ`. Stage 2 uses
//! `H` to *simulate* a second, off-the-shelf spanner construction (the paper
//! uses Derbel et al.'s `(3, O(3^κ))`-spanner): the second algorithm's `r`
//! rounds are realised by an `r`-local broadcast on `H`, so its messages are
//! governed by `|H|` instead of `|E|`. Stage 3 floods on the second spanner
//! `H'` within radius `3t + β`, solving the `t`-local broadcast in `O(t)`
//! rounds with `Õ(t²·n^{1+O(1/log t)})` messages.

use super::tlocal::{flood_on_subgraph_with_faults, t_local_broadcast_with_faults};
use crate::error::{CoreError, CoreResult};
use crate::params::ConstantPolicy;
use crate::reduction::scheme::SamplerScheme;
use crate::sampler::Sampler;
use crate::spanner_api::{SpannerAlgorithm, SpannerResult};
use freelunch_graph::MultiGraph;
use freelunch_runtime::{CostReport, FaultPlan};
use serde::{Deserialize, Serialize};

/// The two-stage scheme, generic over the second-stage spanner construction.
#[derive(Debug, Clone)]
pub struct TwoStageScheme<S> {
    /// The `γ` parameter of the stage-1 `Sampler` spanner.
    pub gamma: u32,
    /// Constants used by the stage-1 `Sampler`.
    pub constants: ConstantPolicy,
    /// The second-stage spanner construction simulated on top of the stage-1
    /// spanner.
    pub second_stage: S,
}

impl<S: SpannerAlgorithm> TwoStageScheme<S> {
    /// Creates a two-stage scheme.
    ///
    /// # Errors
    ///
    /// Returns an error if `gamma` is zero or larger than 10.
    pub fn new(gamma: u32, constants: ConstantPolicy, second_stage: S) -> CoreResult<Self> {
        if gamma == 0 || gamma > 10 {
            return Err(CoreError::invalid_parameter(format!(
                "gamma must be in 1..=10, got {gamma}"
            )));
        }
        Ok(TwoStageScheme {
            gamma,
            constants,
            second_stage,
        })
    }

    /// The `γ` value the paper recommends for locality parameter `t`:
    /// `γ = ⌈log₃ log₃ t⌉` (at least 1).
    pub fn recommended_gamma(t: u32) -> u32 {
        let t = f64::from(t.max(3));
        let gamma = t.log(3.0).log(3.0).ceil();
        (gamma.max(1.0)) as u32
    }

    /// Runs the scheme for locality parameter `t`.
    ///
    /// # Errors
    ///
    /// Propagates errors from the stage-1 construction, the second-stage
    /// construction and the flooding stages.
    pub fn run(&self, graph: &MultiGraph, t: u32, seed: u64) -> CoreResult<TwoStageReport> {
        self.run_with_faults(graph, t, seed, &FaultPlan::none())
    }

    /// Runs the scheme with both broadcast stages — the stage-2 simulation
    /// flood on the stage-1 spanner and the final stage-3 flood on the
    /// second spanner — subjected to the given deterministic
    /// [`FaultPlan`] (the empty plan reproduces [`TwoStageScheme::run`]
    /// exactly). The stage-1 `Sampler` construction and the second-stage
    /// construction itself use the paper's cost emulation rather than a
    /// message-by-message process, so faults do not apply to them; their
    /// costs are reported as in the clean run.
    ///
    /// # Errors
    ///
    /// Propagates errors from the constructions, the flooding stages and
    /// plan validation.
    pub fn run_with_faults(
        &self,
        graph: &MultiGraph,
        t: u32,
        seed: u64,
        faults: &FaultPlan,
    ) -> CoreResult<TwoStageReport> {
        // Stage 1: Sampler spanner with k = γ, h = 2^{γ+1} − 1.
        let stage1_scheme = SamplerScheme::with_constants(self.gamma, self.constants)?;
        let stage1_params = stage1_scheme.sampler_params()?;
        let stage1 = Sampler::new(stage1_params).run(graph, seed)?;
        let stage1_stretch = stage1_params.stretch_bound();

        // Stage 2: run the second-stage construction to obtain its spanner
        // and its round complexity r, then charge the cost of simulating its
        // r rounds by an r-local broadcast on the stage-1 spanner.
        let second = self.second_stage.construct(graph, seed.wrapping_add(1))?;
        let r = u32::try_from(second.cost.rounds.max(1)).unwrap_or(u32::MAX);
        let stage2_sim = t_local_broadcast_with_faults(
            graph,
            stage1.spanner_edges().iter().copied(),
            r,
            stage1_stretch,
            faults,
        )?;

        // Stage 3: t-local broadcast by flooding on the second spanner within
        // radius α·t + β.
        let radius = second.flooding_radius(t);
        let stage3 =
            flood_on_subgraph_with_faults(graph, second.edges.iter().copied(), radius, faults)?;

        let total_cost = stage1.cost + stage2_sim.cost + stage3.cost;
        let stage3_ledger = stage3.ledger;
        Ok(TwoStageReport {
            gamma: self.gamma,
            t,
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            stage1_spanner_edges: stage1.spanner_size(),
            stage2_spanner_edges: second.size(),
            stage2_algorithm: second.algorithm.clone(),
            stage2_rounds_simulated: r,
            stage1_cost: stage1.cost,
            stage2_cost: stage2_sim.cost,
            stage3_cost: stage3.cost,
            total_cost,
            stage3_radius: radius,
            stage3_ledger,
            second_stage: second,
        })
    }
}

/// Cost breakdown of a two-stage scheme run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoStageReport {
    /// The `γ` parameter used by stage 1.
    pub gamma: u32,
    /// Locality parameter of the simulated algorithm.
    pub t: u32,
    /// Number of nodes of the input graph.
    pub nodes: usize,
    /// Number of edges of the input graph.
    pub edges: usize,
    /// Size of the stage-1 (`Sampler`) spanner.
    pub stage1_spanner_edges: usize,
    /// Size of the stage-2 spanner.
    pub stage2_spanner_edges: usize,
    /// Name of the second-stage algorithm.
    pub stage2_algorithm: String,
    /// Round complexity of the second-stage algorithm (the number of rounds
    /// stage 2 had to simulate).
    pub stage2_rounds_simulated: u32,
    /// Cost of constructing the stage-1 spanner.
    pub stage1_cost: CostReport,
    /// Cost of simulating the second-stage construction on the stage-1
    /// spanner.
    pub stage2_cost: CostReport,
    /// Cost of the final flooding on the stage-2 spanner.
    pub stage3_cost: CostReport,
    /// Total cost of the scheme.
    pub total_cost: CostReport,
    /// Radius of the final flooding (`α·t + β` of the stage-2 spanner).
    pub stage3_radius: u32,
    /// Per-edge / per-round ledger of the final flooding stage (the stage
    /// whose congestion the scheme's `O(t)`-round claim hinges on).
    pub stage3_ledger: freelunch_runtime::MessageLedger,
    /// The full second-stage result (edge set included) for downstream reuse.
    pub second_stage: SpannerResult,
}

impl TwoStageReport {
    /// Phase-attributed ledger of this run, measured against `direct` (a
    /// measured direct execution, or a naive bound as a [`CostReport`]).
    /// Stage 1 is charged as spanner construction, stage 2 as second-stage
    /// simulation, stage 3 as broadcast.
    pub fn ledger(&self, direct: CostReport) -> crate::ledger::Ledger {
        crate::ledger::Ledger::from_two_stage(self, direct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{connected_erdos_renyi, GeneratorConfig};
    use freelunch_graph::EdgeId;

    /// A toy second stage: keeps every edge (a 1-spanner) and pretends it ran
    /// in 2 rounds. Enough to exercise the pipeline deterministically.
    #[derive(Debug)]
    struct KeepAll;

    impl SpannerAlgorithm for KeepAll {
        fn name(&self) -> String {
            "keep-all".into()
        }
        fn construct(&self, graph: &MultiGraph, _seed: u64) -> CoreResult<SpannerResult> {
            Ok(SpannerResult {
                algorithm: self.name(),
                edges: graph.edge_ids().collect::<Vec<EdgeId>>(),
                multiplicative_stretch: 1,
                additive_stretch: 0,
                cost: CostReport::new(2, 2 * graph.edge_count() as u64),
            })
        }
    }

    fn scheme() -> TwoStageScheme<KeepAll> {
        TwoStageScheme::new(
            1,
            ConstantPolicy::Practical {
                target_factor: 4.0,
                query_factor: 8.0,
            },
            KeepAll,
        )
        .unwrap()
    }

    #[test]
    fn recommended_gamma_grows_very_slowly() {
        assert_eq!(TwoStageScheme::<KeepAll>::recommended_gamma(3), 1);
        assert_eq!(TwoStageScheme::<KeepAll>::recommended_gamma(27), 1);
        assert!(TwoStageScheme::<KeepAll>::recommended_gamma(100_000) <= 3);
    }

    #[test]
    fn invalid_gamma_rejected() {
        assert!(TwoStageScheme::new(0, ConstantPolicy::default(), KeepAll).is_err());
        assert!(TwoStageScheme::new(11, ConstantPolicy::default(), KeepAll).is_err());
    }

    #[test]
    fn pipeline_costs_compose() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(100, 4), 0.2).unwrap();
        let t = 3;
        let report = scheme().run(&graph, t, 7).unwrap();
        assert_eq!(
            report.total_cost,
            report.stage1_cost + report.stage2_cost + report.stage3_cost
        );
        assert_eq!(report.stage2_algorithm, "keep-all");
        assert_eq!(report.stage2_rounds_simulated, 2);
        // Final flooding radius for a (1, 0) second spanner is exactly t.
        assert_eq!(report.stage3_radius, t);
        assert!(report.stage1_spanner_edges > 0);
        assert_eq!(report.stage2_spanner_edges, graph.edge_count());
    }

    #[test]
    fn faulty_two_stage_replays_and_accounts_drops() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(80, 3), 0.2).unwrap();
        let clean = scheme().run(&graph, 3, 7).unwrap();
        let empty = scheme()
            .run_with_faults(&graph, 3, 7, &FaultPlan::none())
            .unwrap();
        assert_eq!(clean, empty);
        let plan = FaultPlan::new(21).with_drop_probability(0.4);
        let faulty = scheme().run_with_faults(&graph, 3, 7, &plan).unwrap();
        assert_eq!(
            faulty,
            scheme().run_with_faults(&graph, 3, 7, &plan).unwrap()
        );
        // Stage 1 is emulated (no faults); the flooding stages lose traffic.
        assert_eq!(faulty.stage1_cost, clean.stage1_cost);
        assert!(faulty.stage3_ledger.fault_totals().dropped > 0);
        assert!(faulty.stage3_cost.messages < clean.stage3_cost.messages);
    }

    #[test]
    fn stage3_rounds_are_linear_in_t() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(80, 2), 0.3).unwrap();
        let small = scheme().run(&graph, 2, 5).unwrap();
        let large = scheme().run(&graph, 4, 5).unwrap();
        assert_eq!(small.stage3_cost.rounds, 2);
        assert_eq!(large.stage3_cost.rounds, 4);
        // Stage 1 and stage 2 costs do not depend on t at all.
        assert_eq!(small.stage1_cost, large.stage1_cost);
        assert_eq!(small.stage2_cost, large.stage2_cost);
    }
}
