//! The faithful implementation of Algorithm `Sampler` (Pseudocode 1) and
//! procedure `Cluster_j` (Pseudocode 2), replayed with the distributed cost
//! accounting of Section 5.
//!
//! The implementation follows the paper level by level:
//!
//! 1. at level `j`, every node `v` of the (virtual) graph `G_j` runs up to
//!    `2h` sampling trials; each trial draws a budgeted number of edges
//!    uniformly at random (with replacement) from the not-yet-explored edge
//!    set `X_v`, queries the neighbors behind them, keeps one edge per newly
//!    discovered neighbor in `F_v` and *peels off* every parallel edge to
//!    that neighbor from `X_v`;
//! 2. a node ends the step **light** (all neighbors queried), **heavy**
//!    (target reached) or — with the small probability bounded by Lemma 6 —
//!    **ambiguous**;
//! 3. every node marks itself a center with probability `n^{-2^j δ}`;
//!    non-center nodes that queried a center merge into (an arbitrary) one;
//!    the merged clusters become the nodes of `G_{j+1}`;
//! 4. after the final level the union of the `F` sets is the spanner `S`.

use super::cost::{DistributedCostModel, LevelActivity};
use super::figure1::{Figure1Trace, LevelTrace};
use super::hierarchy::{level_tree_stats, ClusterInfo, LevelTreeStats};
use super::NodeClass;
use crate::error::{CoreError, CoreResult};
use crate::params::{FallbackPolicy, SamplerParams};
use freelunch_graph::cluster::{contract, ClusterAssignment};
use freelunch_graph::{ClusterId, EdgeId, MultiGraph, NodeId};
use freelunch_runtime::CostReport;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};

/// The `Sampler` spanner-construction algorithm of Theorem 2.
///
/// # Examples
///
/// ```
/// use freelunch_core::sampler::{Sampler, SamplerParams};
/// use freelunch_graph::generators::{connected_erdos_renyi, GeneratorConfig};
/// use freelunch_graph::spanner_check::verify_edge_stretch;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = connected_erdos_renyi(&GeneratorConfig::new(150, 3), 0.2)?;
/// let params = SamplerParams::new(2, 4)?;
/// let outcome = Sampler::new(params).run(&graph, 11)?;
///
/// // The spanner respects the stretch bound 2·3^k − 1 of Theorem 9 …
/// let report = verify_edge_stretch(&graph, outcome.spanner_edges().iter().copied())?;
/// assert!(report.satisfies(params.stretch_bound()));
/// // … and never has more edges than the graph itself.
/// assert!(outcome.spanner_size() <= graph.edge_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sampler {
    params: SamplerParams,
    cost_model: DistributedCostModel,
}

impl Sampler {
    /// Creates a sampler with the given parameters and the default cost
    /// model.
    pub fn new(params: SamplerParams) -> Self {
        Sampler {
            params,
            cost_model: DistributedCostModel::default(),
        }
    }

    /// Creates a sampler with an explicit distributed cost model.
    pub fn with_cost_model(params: SamplerParams, cost_model: DistributedCostModel) -> Self {
        Sampler { params, cost_model }
    }

    /// The parameters this sampler runs with.
    pub fn params(&self) -> &SamplerParams {
        &self.params
    }

    /// Runs the algorithm on `graph` with the given random seed.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty or a cluster-graph contraction
    /// fails (which would indicate an internal invariant violation).
    pub fn run(&self, graph: &MultiGraph, seed: u64) -> CoreResult<SamplerOutcome> {
        self.run_internal(graph, seed, None)
    }

    /// Runs the algorithm and additionally records a Figure-1 style trace of
    /// every level.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Sampler::run`].
    pub fn run_with_trace(
        &self,
        graph: &MultiGraph,
        seed: u64,
    ) -> CoreResult<(SamplerOutcome, Figure1Trace)> {
        let mut trace = Figure1Trace::new();
        let outcome = self.run_internal(graph, seed, Some(&mut trace))?;
        Ok((outcome, trace))
    }

    fn run_internal(
        &self,
        graph: &MultiGraph,
        seed: u64,
        mut trace: Option<&mut Figure1Trace>,
    ) -> CoreResult<SamplerOutcome> {
        if graph.node_count() == 0 {
            return Err(CoreError::invalid_parameter("the input graph has no nodes"));
        }
        let n0 = graph.node_count();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let mut spanner: BTreeSet<EdgeId> = BTreeSet::new();
        let mut levels: Vec<LevelReport> = Vec::with_capacity(self.params.k as usize + 1);
        let mut hierarchy: Vec<Vec<ClusterInfo>> = Vec::with_capacity(self.params.k as usize + 1);
        let mut total_cost = CostReport::zero();

        // Level 0: every node of G is a singleton cluster.
        let mut current_graph = graph.clone();
        let mut current_clusters: Vec<ClusterInfo> =
            graph.nodes().map(ClusterInfo::singleton).collect();

        for level in 0..=self.params.k {
            let tree_stats = level_tree_stats(&current_clusters);
            let is_last = level == self.params.k;

            let step = self.sampling_step(&current_graph, level, n0, &mut rng);
            let mut query_messages = step.query_messages;
            let mut f_edges: Vec<Vec<EdgeId>> = step.f_edges;
            let classes = step.classes;
            let mut fallbacks = 0usize;

            // Step 2: center marking and clustering (all levels but the last).
            let p = self.params.center_probability(level, n0);
            let mut is_center = vec![false; current_graph.node_count()];
            let mut joined_to: Vec<Option<(usize, EdgeId)>> =
                vec![None; current_graph.node_count()];
            if !is_last {
                for center in is_center.iter_mut() {
                    *center = rng.gen_bool(p);
                }
                for v in 0..current_graph.node_count() {
                    if is_center[v] {
                        continue;
                    }
                    let node = NodeId::from_usize(v);
                    // Merge into the first queried center (the paper allows an
                    // arbitrary choice).
                    for &edge in &f_edges[v] {
                        let neighbor = current_graph.other_endpoint(edge, node)?;
                        if is_center[neighbor.index()] {
                            joined_to[v] = Some((neighbor.index(), edge));
                            break;
                        }
                    }
                }
            }

            // Fallback: a node that stays unclustered (no center at the last
            // level, not a center, not merged) must be light for the stretch
            // argument of Theorem 9. If the trials left it non-light, query
            // its remaining edges (charged) so the guarantee is unconditional.
            if self.params.fallback == FallbackPolicy::QueryRemaining {
                for v in 0..current_graph.node_count() {
                    let unclustered = !is_center[v] && joined_to[v].is_none();
                    if unclustered && classes[v] != NodeClass::Light {
                        let node = NodeId::from_usize(v);
                        let (extra_edges, extra_messages) =
                            query_all_remaining(&current_graph, node, &f_edges[v]);
                        query_messages += extra_messages;
                        f_edges[v].extend(extra_edges);
                        fallbacks += 1;
                    }
                }
            }

            // Collect F = ∪_v F_v into the spanner.
            let mut added_this_level = 0usize;
            let mut level_f: Vec<EdgeId> = Vec::new();
            for edges in &f_edges {
                for &edge in edges {
                    level_f.push(edge);
                    if spanner.insert(edge) {
                        added_this_level += 1;
                    }
                }
            }

            // Distributed cost of this level (Section 5 accounting).
            let join_messages = 2 * joined_to.iter().filter(|j| j.is_some()).count() as u64;
            let activity = LevelActivity {
                trial_slots: step.trial_slots,
                query_messages,
                join_messages,
                has_clustering_step: !is_last,
            };
            let level_cost = self.cost_model.level_cost(&tree_stats, &activity);
            total_cost += level_cost;

            let light = classes.iter().filter(|c| c.is_light()).count();
            let heavy = classes.iter().filter(|c| c.is_heavy()).count();
            let ambiguous = classes
                .iter()
                .filter(|c| **c == NodeClass::Ambiguous)
                .count();
            let centers = is_center.iter().filter(|&&c| c).count();
            let clustered = joined_to.iter().filter(|j| j.is_some()).count();

            hierarchy.push(current_clusters.clone());

            // Contract into G_{j+1}.
            let next = if is_last {
                None
            } else {
                Some(self.contract_level(
                    &current_graph,
                    &current_clusters,
                    &is_center,
                    &joined_to,
                    graph,
                )?)
            };

            if let Some(trace) = trace.as_deref_mut() {
                trace.levels.push(build_level_trace(
                    level,
                    &current_graph,
                    &current_clusters,
                    &step.query_edges,
                    &level_f,
                    &is_center,
                    &joined_to,
                    next.as_ref().map(|(g, _)| g.node_count()),
                ));
            }

            levels.push(LevelReport {
                level,
                nodes: current_graph.node_count(),
                edges: current_graph.edge_count(),
                light,
                heavy,
                ambiguous,
                fallbacks,
                centers,
                clustered_nodes: clustered,
                spanner_edges_added: added_this_level,
                query_messages,
                join_messages,
                trial_slots: step.trial_slots,
                tree_stats,
                cost: level_cost,
            });

            match next {
                Some((next_graph, next_clusters)) => {
                    current_graph = next_graph;
                    current_clusters = next_clusters;
                }
                None => break,
            }
        }

        Ok(SamplerOutcome {
            spanner: spanner.into_iter().collect(),
            levels,
            hierarchy,
            cost: total_cost,
            params: self.params,
            input_nodes: n0,
            input_edges: graph.edge_count(),
        })
    }

    /// Step 1 of `Cluster_j`: the iterative edge-sampling trials of every
    /// node of the current level graph.
    fn sampling_step(
        &self,
        graph: &MultiGraph,
        level: u32,
        n0: usize,
        rng: &mut ChaCha8Rng,
    ) -> SamplingStep {
        let node_count = graph.node_count();
        let target = self.params.neighbor_target(level, n0);
        let budget = self.params.trial_query_budget(level, n0);
        let max_trials = self.params.trials_per_level();

        let mut f_edges: Vec<Vec<EdgeId>> = vec![Vec::new(); node_count];
        let mut classes: Vec<NodeClass> = vec![NodeClass::Light; node_count];
        let mut query_messages = 0u64;
        let mut trial_slots = 0u32;
        let mut query_edges: Vec<EdgeId> = Vec::new();

        for v in 0..node_count {
            let node = NodeId::from_usize(v);
            let incident = graph.incident_edges(node);
            // X_v and the per-neighbor edge lists used for peeling.
            let mut pool: Vec<EdgeId> = incident.iter().map(|ie| ie.edge).collect();
            let mut position: HashMap<EdgeId, usize> =
                pool.iter().enumerate().map(|(i, e)| (*e, i)).collect();
            let mut edges_to: HashMap<NodeId, Vec<EdgeId>> = HashMap::new();
            let mut neighbor_of: HashMap<EdgeId, NodeId> = HashMap::with_capacity(incident.len());
            for ie in incident {
                edges_to.entry(ie.neighbor).or_default().push(ie.edge);
                neighbor_of.insert(ie.edge, ie.neighbor);
            }

            let mut queried: HashSet<NodeId> = HashSet::new();
            let mut trials_used = 0u32;

            for _trial in 0..max_trials {
                if f_edges[v].len() >= target || pool.is_empty() {
                    break;
                }
                trials_used += 1;

                // Draw the trial's query edges. When the budget is large
                // enough that a uniform sample with replacement would cover
                // X_v with overwhelming probability (coupon-collector
                // threshold), querying all remaining edges is statistically
                // equivalent and much cheaper.
                let mut sampled: Vec<EdgeId> = Vec::new();
                let mut seen: HashSet<EdgeId> = HashSet::new();
                let coupon_threshold =
                    (pool.len() as f64 * ((pool.len().max(1) as f64).ln() + 3.0)).ceil() as usize;
                if budget >= coupon_threshold {
                    sampled.extend(pool.iter().copied());
                } else {
                    for _ in 0..budget {
                        let pick = pool[rng.gen_range(0..pool.len())];
                        if seen.insert(pick) {
                            sampled.push(pick);
                        }
                    }
                }
                // Each distinct query edge costs a query and a response.
                query_messages += 2 * sampled.len() as u64;
                query_edges.extend(sampled.iter().copied());

                let mut newly: Vec<NodeId> = Vec::new();
                for edge in sampled {
                    // Cap the additions at the neighbor-finding target: once a
                    // node has found `target` neighbors it is heavy and extra
                    // spanner edges would only violate the size bound of
                    // Theorem 2 (the queries themselves are already charged).
                    if f_edges[v].len() >= target {
                        break;
                    }
                    let neighbor = neighbor_of[&edge];
                    if queried.insert(neighbor) {
                        f_edges[v].push(edge);
                        newly.push(neighbor);
                    }
                }
                // Peel off every edge leading to a freshly queried neighbor.
                for neighbor in newly {
                    for edge in &edges_to[&neighbor] {
                        if let Some(idx) = position.remove(edge) {
                            let last = *pool.last().expect("pool is non-empty while removing");
                            pool.swap_remove(idx);
                            if idx < pool.len() {
                                position.insert(last, idx);
                            }
                        }
                    }
                }
            }

            // Heavy takes precedence: a node whose additions were capped at
            // the target has queried the target many neighbors (the paper's
            // heavy condition) even if its edge pool happens to be empty.
            classes[v] = if f_edges[v].len() >= target {
                NodeClass::Heavy
            } else if pool.is_empty() {
                NodeClass::Light
            } else {
                NodeClass::Ambiguous
            };
            trial_slots = trial_slots.max(trials_used);
        }

        SamplingStep {
            f_edges,
            classes,
            query_messages,
            trial_slots,
            query_edges,
        }
    }

    /// Step 2 aftermath: build the cluster assignment, merge the cluster
    /// infos and contract the level graph.
    fn contract_level(
        &self,
        level_graph: &MultiGraph,
        clusters: &[ClusterInfo],
        is_center: &[bool],
        joined_to: &[Option<(usize, EdgeId)>],
        original_graph: &MultiGraph,
    ) -> CoreResult<(MultiGraph, Vec<ClusterInfo>)> {
        let mut assignment = ClusterAssignment::unclustered(level_graph.node_count());
        let mut cluster_of_center: HashMap<usize, ClusterId> = HashMap::new();
        let mut center_order: Vec<usize> = Vec::new();
        for (v, &center) in is_center.iter().enumerate() {
            if center {
                let id = ClusterId::from_usize(center_order.len());
                cluster_of_center.insert(v, id);
                center_order.push(v);
                assignment.assign(NodeId::from_usize(v), id)?;
            }
        }
        let mut joined_by_center: HashMap<usize, Vec<(usize, EdgeId)>> = HashMap::new();
        for (v, join) in joined_to.iter().enumerate() {
            if let Some((center, edge)) = join {
                assignment.assign(NodeId::from_usize(v), cluster_of_center[center])?;
                joined_by_center
                    .entry(*center)
                    .or_default()
                    .push((v, *edge));
            }
        }

        let mut next_clusters = Vec::with_capacity(center_order.len());
        for &center in &center_order {
            let joined: Vec<(&ClusterInfo, EdgeId)> = joined_by_center
                .get(&center)
                .map(|list| list.iter().map(|(v, e)| (&clusters[*v], *e)).collect())
                .unwrap_or_default();
            next_clusters.push(ClusterInfo::merge(
                &clusters[center],
                &joined,
                original_graph,
            ));
        }

        let contraction = contract(level_graph, &assignment)?;
        Ok((contraction.graph, next_clusters))
    }
}

/// Queries every edge of `node` that was not yet explored (i.e. whose
/// neighbor does not yet have an `F` edge), returning one new `F` edge per
/// remaining distinct neighbor and the number of messages charged
/// (query + response per remaining incident edge).
fn query_all_remaining(
    graph: &MultiGraph,
    node: NodeId,
    existing: &[EdgeId],
) -> (Vec<EdgeId>, u64) {
    // Neighbors already queried before the fallback: every edge to them has
    // been peeled off X_v and is not queried again.
    let mut already_queried: HashSet<NodeId> = HashSet::new();
    for &edge in existing {
        if let Ok(other) = graph.other_endpoint(edge, node) {
            already_queried.insert(other);
        }
    }
    let mut covered = already_queried.clone();
    let mut extra: Vec<EdgeId> = Vec::new();
    let mut remaining_edges = 0u64;
    for ie in graph.incident_edges(node) {
        if already_queried.contains(&ie.neighbor) {
            continue;
        }
        // This edge is still in X_v: the fallback queries it (and all its
        // parallels — the node cannot tell them apart before the replies).
        remaining_edges += 1;
        if covered.insert(ie.neighbor) {
            // Keep exactly one edge per newly covered neighbor.
            extra.push(ie.edge);
        }
    }
    (extra, 2 * remaining_edges)
}

struct SamplingStep {
    f_edges: Vec<Vec<EdgeId>>,
    classes: Vec<NodeClass>,
    query_messages: u64,
    trial_slots: u32,
    query_edges: Vec<EdgeId>,
}

#[allow(clippy::too_many_arguments)]
fn build_level_trace(
    level: u32,
    graph: &MultiGraph,
    clusters: &[ClusterInfo],
    query_edges: &[EdgeId],
    f_edges: &[EdgeId],
    is_center: &[bool],
    joined_to: &[Option<(usize, EdgeId)>],
    next_level_nodes: Option<usize>,
) -> LevelTrace {
    let centers: Vec<NodeId> = is_center
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c)
        .map(|(v, _)| clusters[v].root)
        .collect();
    let mut grouped: HashMap<usize, Vec<NodeId>> = HashMap::new();
    for (v, &center) in is_center.iter().enumerate() {
        if center {
            grouped
                .entry(v)
                .or_default()
                .extend(clusters[v].members.iter().copied());
        }
    }
    for (v, join) in joined_to.iter().enumerate() {
        if let Some((center, _)) = join {
            grouped
                .entry(*center)
                .or_default()
                .extend(clusters[v].members.iter().copied());
        }
    }
    let mut cluster_members: Vec<Vec<NodeId>> = grouped
        .into_values()
        .map(|mut members| {
            members.sort_unstable();
            members
        })
        .collect();
    cluster_members.sort();
    let unclustered: Vec<NodeId> = (0..graph.node_count())
        .filter(|&v| !is_center[v] && joined_to[v].is_none())
        .map(|v| clusters[v].root)
        .collect();
    let mut query_edges = query_edges.to_vec();
    query_edges.sort_unstable();
    query_edges.dedup();
    let mut f_edges = f_edges.to_vec();
    f_edges.sort_unstable();
    f_edges.dedup();
    LevelTrace {
        level,
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        query_edges,
        f_edges,
        centers,
        clusters: cluster_members,
        unclustered,
        next_level_nodes,
    }
}

/// Per-level report of a `Sampler` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelReport {
    /// Level index `j`.
    pub level: u32,
    /// `n_j`: number of nodes of `G_j`.
    pub nodes: usize,
    /// `m_j`: number of edges of `G_j` (with multiplicities).
    pub edges: usize,
    /// Nodes classified light.
    pub light: usize,
    /// Nodes classified heavy.
    pub heavy: usize,
    /// Nodes classified ambiguous (before any fallback).
    pub ambiguous: usize,
    /// Unclustered non-light nodes repaired by the fallback policy.
    pub fallbacks: usize,
    /// Nodes marked as centers.
    pub centers: usize,
    /// Non-center nodes merged into a center's cluster.
    pub clustered_nodes: usize,
    /// Edges newly added to the spanner at this level.
    pub spanner_edges_added: usize,
    /// Messages exchanged over `G_j` edges by the sampling step (query +
    /// response per distinct query edge, fallback queries included).
    pub query_messages: u64,
    /// Messages exchanged over `G_j` edges by the clustering step.
    pub join_messages: u64,
    /// Number of synchronous trial slots executed at this level.
    pub trial_slots: u32,
    /// Tree statistics of the clusters this level's virtual nodes correspond
    /// to (these trees carry the broadcast–convergecast traffic).
    pub tree_stats: LevelTreeStats,
    /// Distributed cost of this level under the Section 5 accounting.
    pub cost: CostReport,
}

/// Aggregate statistics of a `Sampler` run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplerStats {
    /// Number of spanner edges produced.
    pub spanner_edges: usize,
    /// The paper's `Õ`-style size bound `n^{1+δ}` evaluated for this run's
    /// `n` (log factors omitted).
    pub size_bound: f64,
    /// Total query messages over all levels.
    pub query_messages: u64,
    /// Total fallback repairs over all levels.
    pub fallbacks: usize,
    /// Total distributed cost.
    pub cost: CostReport,
    /// The paper's round bound `O(3^k h)` (constant = 1).
    pub round_bound: u64,
    /// The paper's message bound `n^{1+δ+ε}` (log factors omitted).
    pub message_bound: f64,
}

/// The result of a `Sampler` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplerOutcome {
    /// The spanner edge set `S` (sorted, deduplicated original edge IDs).
    pub spanner: Vec<EdgeId>,
    /// Per-level reports.
    pub levels: Vec<LevelReport>,
    /// The cluster hierarchy: `hierarchy[j]` lists the clusters that the
    /// nodes of `G_j` correspond to.
    pub hierarchy: Vec<Vec<ClusterInfo>>,
    /// Total distributed cost (Section 5 accounting).
    pub cost: CostReport,
    /// The parameters the run used.
    pub params: SamplerParams,
    /// Number of nodes of the input graph.
    pub input_nodes: usize,
    /// Number of edges of the input graph.
    pub input_edges: usize,
}

impl SamplerOutcome {
    /// The spanner edge set.
    pub fn spanner_edges(&self) -> &[EdgeId] {
        &self.spanner
    }

    /// Number of spanner edges.
    pub fn spanner_size(&self) -> usize {
        self.spanner.len()
    }

    /// Aggregate statistics of the run.
    pub fn stats(&self) -> SamplerStats {
        SamplerStats {
            spanner_edges: self.spanner.len(),
            size_bound: self.params.size_bound(self.input_nodes),
            query_messages: self.levels.iter().map(|l| l.query_messages).sum(),
            fallbacks: self.levels.iter().map(|l| l.fallbacks).sum(),
            cost: self.cost,
            round_bound: self.params.round_bound(),
            message_bound: self.params.message_bound(self.input_nodes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ConstantPolicy;
    use freelunch_graph::generators::{
        complete_graph, connected_erdos_renyi, cycle_graph, GeneratorConfig,
    };
    use freelunch_graph::spanner_check::verify_edge_stretch;
    use freelunch_graph::traversal::is_connected;

    fn paper_params(k: u32, h: u32) -> SamplerParams {
        SamplerParams::new(k, h).unwrap()
    }

    fn practical_params(k: u32, h: u32) -> SamplerParams {
        SamplerParams::with_constants(
            k,
            h,
            ConstantPolicy::Practical {
                target_factor: 4.0,
                query_factor: 8.0,
            },
        )
        .unwrap()
    }

    #[test]
    fn empty_graph_is_rejected() {
        let sampler = Sampler::new(paper_params(1, 2));
        assert!(sampler.run(&MultiGraph::new(0), 0).is_err());
    }

    #[test]
    fn spanner_respects_stretch_bound_on_random_graphs() {
        for (k, seed) in [(1u32, 1u64), (2, 2), (3, 3)] {
            let graph = connected_erdos_renyi(&GeneratorConfig::new(120, seed), 0.15).unwrap();
            let params = practical_params(k, 3);
            let outcome = Sampler::new(params).run(&graph, seed).unwrap();
            let report =
                verify_edge_stretch(&graph, outcome.spanner_edges().iter().copied()).unwrap();
            assert!(
                report.satisfies(params.stretch_bound()),
                "k={k}: stretch {} exceeds bound {} (disconnected {})",
                report.max_stretch,
                params.stretch_bound(),
                report.disconnected_pairs
            );
        }
    }

    #[test]
    fn spanner_of_connected_graph_is_connected() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(100, 9), 0.2).unwrap();
        let params = practical_params(2, 3);
        let outcome = Sampler::new(params).run(&graph, 4).unwrap();
        let spanner = graph
            .edge_subgraph(outcome.spanner_edges().iter().copied())
            .unwrap();
        assert!(is_connected(&spanner));
    }

    #[test]
    fn paper_constants_classify_every_node_and_respect_the_size_bound() {
        // With the literal log³ n budgets, every node of a small graph
        // queries its whole edge pool in the very first trial, so nobody can
        // end up ambiguous; low-degree nodes are light, high-degree nodes are
        // heavy (capped at the target).
        let graph = connected_erdos_renyi(&GeneratorConfig::new(60, 5), 0.3).unwrap();
        let params = paper_params(2, 3);
        let outcome = Sampler::new(params).run(&graph, 7).unwrap();
        let level0 = &outcome.levels[0];
        assert_eq!(level0.ambiguous, 0);
        assert_eq!(level0.light + level0.heavy, graph.node_count());
        let target = params.neighbor_target(0, graph.node_count());
        for v in graph.nodes() {
            if graph.distinct_neighbor_count(v) < target {
                // A node that cannot possibly reach the target must be light.
                assert!(level0.light > 0);
            }
        }
        // The spanner never exceeds the input and respects the Õ(n^{1+δ})
        // shape: at most target + 1 edges per node per level.
        assert!(outcome.spanner_size() <= graph.edge_count());
        let per_level_cap = graph.node_count() * (target + 1) * (params.k as usize + 1);
        assert!(outcome.spanner_size() <= per_level_cap);
    }

    #[test]
    fn practical_constants_sparsify_dense_graphs() {
        let graph = complete_graph(&GeneratorConfig::new(200, 0)).unwrap();
        let params = practical_params(2, 3);
        let outcome = Sampler::new(params).run(&graph, 13).unwrap();
        assert!(
            outcome.spanner_size() < graph.edge_count() / 2,
            "spanner has {} of {} edges",
            outcome.spanner_size(),
            graph.edge_count()
        );
        let report = verify_edge_stretch(&graph, outcome.spanner_edges().iter().copied()).unwrap();
        assert!(report.satisfies(params.stretch_bound()));
    }

    #[test]
    fn levels_have_the_expected_shape() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(150, 2), 0.2).unwrap();
        let params = practical_params(2, 3);
        let outcome = Sampler::new(params).run(&graph, 21).unwrap();
        // k + 1 levels unless a level ran out of nodes.
        assert!(outcome.levels.len() <= params.k as usize + 1);
        assert_eq!(outcome.levels[0].nodes, graph.node_count());
        // Node counts are non-increasing across levels.
        for pair in outcome.levels.windows(2) {
            assert!(pair[1].nodes <= pair[0].nodes);
        }
        // Every level's light/heavy/ambiguous counts partition the nodes.
        for level in &outcome.levels {
            assert_eq!(level.light + level.heavy + level.ambiguous, level.nodes);
        }
        // The hierarchy records clusters for every executed level.
        assert_eq!(outcome.hierarchy.len(), outcome.levels.len());
    }

    #[test]
    fn cluster_trees_respect_lemma8_diameter_bound() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(150, 4), 0.2).unwrap();
        let params = practical_params(3, 3);
        let outcome = Sampler::new(params).run(&graph, 5).unwrap();
        for (j, clusters) in outcome.hierarchy.iter().enumerate() {
            let bound = 3u32.pow(j as u32) - 1;
            for cluster in clusters {
                assert!(
                    cluster.depth <= bound,
                    "level {j}: cluster rooted at {} has depth {} > {bound}",
                    cluster.root,
                    cluster.depth
                );
                // Tree is a spanning tree of the members.
                assert_eq!(cluster.tree_edges.len(), cluster.members.len() - 1);
            }
        }
    }

    #[test]
    fn cost_accounting_is_consistent_with_level_reports() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(120, 8), 0.25).unwrap();
        let outcome = Sampler::new(practical_params(2, 4)).run(&graph, 9).unwrap();
        let summed: CostReport = outcome
            .levels
            .iter()
            .fold(CostReport::zero(), |acc, level| acc + level.cost);
        assert_eq!(summed, outcome.cost);
        assert!(outcome.cost.messages > 0);
        assert!(outcome.cost.rounds > 0);
        let stats = outcome.stats();
        assert_eq!(stats.spanner_edges, outcome.spanner_size());
        assert!(stats.query_messages <= outcome.cost.messages);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(90, 3), 0.2).unwrap();
        let sampler = Sampler::new(practical_params(2, 3));
        let a = sampler.run(&graph, 99).unwrap();
        let b = sampler.run(&graph, 99).unwrap();
        assert_eq!(a.spanner, b.spanner);
        assert_eq!(a.cost, b.cost);
        let c = sampler.run(&graph, 100).unwrap();
        assert!(a.spanner != c.spanner || a.cost != c.cost);
    }

    #[test]
    fn cycle_graph_spanner_is_whole_cycle() {
        // Removing any edge of a cycle would stretch its endpoints to n−1,
        // far beyond the bound, so a correct run keeps every edge.
        let graph = cycle_graph(&GeneratorConfig::new(30, 0)).unwrap();
        let params = practical_params(1, 2);
        let outcome = Sampler::new(params).run(&graph, 3).unwrap();
        assert_eq!(outcome.spanner_size(), graph.edge_count());
    }

    #[test]
    fn trace_mirrors_figure1_panels() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(40, 6), 0.3).unwrap();
        let params = practical_params(2, 3);
        let (outcome, trace) = Sampler::new(params).run_with_trace(&graph, 17).unwrap();
        assert_eq!(trace.levels.len(), outcome.levels.len());
        let level0 = trace.level(0).unwrap();
        assert_eq!(level0.nodes, graph.node_count());
        // F edges are a subset of the query edges at every level.
        for level in &trace.levels {
            for edge in &level.f_edges {
                assert!(
                    level.query_edges.contains(edge),
                    "F edge {edge} was never queried"
                );
            }
        }
        // Clusters and unclustered roots partition the level-0 nodes.
        let clustered: usize = level0.clusters.iter().map(Vec::len).sum();
        assert_eq!(clustered + level0.unclustered.len(), graph.node_count());
    }

    #[test]
    fn fallback_none_matches_pseudocode_but_may_leave_ambiguity() {
        // With absurdly small budgets and no fallback the run still completes
        // and reports ambiguous nodes instead of silently repairing them.
        let graph = complete_graph(&GeneratorConfig::new(80, 0)).unwrap();
        let params = SamplerParams::with_constants(
            2,
            1,
            ConstantPolicy::Practical {
                target_factor: 0.5,
                query_factor: 0.5,
            },
        )
        .unwrap()
        .fallback(FallbackPolicy::None);
        let outcome = Sampler::new(params).run(&graph, 1).unwrap();
        let total_fallbacks: usize = outcome.levels.iter().map(|l| l.fallbacks).sum();
        assert_eq!(total_fallbacks, 0);
    }
}
