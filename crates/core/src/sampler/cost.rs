//! Distributed cost accounting for `Sampler` (Section 5 of the paper).
//!
//! The centralized run of `Cluster_j` (Section 3) is replayed with the exact
//! message and round charges its distributed implementation would incur:
//!
//! * every action on an edge of the *virtual* graph `G_j` (sending a query
//!   over a sampled edge, answering it, reporting the IDs of parallel edges,
//!   joining a center) costs a constant number of messages over the
//!   corresponding edge of `G` — we charge **2 messages per query edge**
//!   (query + response) and **2 messages per joining node** (join + ack);
//! * every *virtual round* of `G_j` is simulated by a broadcast–convergecast
//!   session over the cluster trees `T_j(v)`, which costs `O(1)` messages
//!   per tree edge and `O(3^j)` rounds (Lemma 8). We charge
//!   **2 messages per tree edge per session** (one down, one up) and
//!   **`2·D_j + 2` rounds per session**, where `D_j` is the maximum root
//!   eccentricity at level `j` (`D_j ≤ 3^j − 1`);
//! * each sampling trial is one session; the clustering step (step 2) is one
//!   more session.
//!
//! These constants are an explicit instantiation of the `O(1)`s of Section 5;
//! changing them rescales every curve by the same factor and therefore does
//! not affect the shapes the experiments compare.

use super::hierarchy::LevelTreeStats;
use freelunch_runtime::CostReport;
use serde::{Deserialize, Serialize};

/// Inputs of the cost model for one level, produced by the centralized
/// replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelActivity {
    /// Number of synchronous trial slots the level executed (the maximum
    /// number of trials used by any node, since trials are run in lockstep).
    pub trial_slots: u32,
    /// Messages exchanged over `G_j` edges by the sampling process: two per
    /// distinct query edge (query + response), plus two per edge queried by a
    /// fallback.
    pub query_messages: u64,
    /// Messages exchanged over `G_j` edges by the clustering step: two per
    /// node that joins a center.
    pub join_messages: u64,
    /// Whether the level ran a clustering step (all levels except the last).
    pub has_clustering_step: bool,
}

/// The explicit constants used to instantiate Section 5's `O(1)`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributedCostModel {
    /// Messages charged per tree edge per broadcast–convergecast session.
    pub messages_per_tree_edge_per_session: u64,
    /// Extra rounds charged per session on top of the down+up tree depth
    /// (the round in which the actual `G_j`-edge messages fly).
    pub rounds_per_session_overhead: u64,
}

impl Default for DistributedCostModel {
    fn default() -> Self {
        DistributedCostModel {
            messages_per_tree_edge_per_session: 2,
            rounds_per_session_overhead: 2,
        }
    }
}

impl DistributedCostModel {
    /// Rounds of one broadcast–convergecast session at a level whose deepest
    /// cluster tree has root eccentricity `max_root_depth`.
    pub fn rounds_per_session(&self, max_root_depth: u32) -> u64 {
        2 * u64::from(max_root_depth) + self.rounds_per_session_overhead
    }

    /// Cost of one level given its tree statistics and the activity recorded
    /// by the centralized replay.
    pub fn level_cost(&self, trees: &LevelTreeStats, activity: &LevelActivity) -> CostReport {
        let sessions = u64::from(activity.trial_slots) + u64::from(activity.has_clustering_step);
        let tree_messages =
            sessions * self.messages_per_tree_edge_per_session * trees.tree_edges_total;
        let rounds = sessions * self.rounds_per_session(trees.max_root_depth);
        CostReport {
            rounds,
            messages: activity.query_messages + activity.join_messages + tree_messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trees(tree_edges_total: u64, max_root_depth: u32) -> LevelTreeStats {
        LevelTreeStats {
            tree_edges_total,
            max_root_depth,
            clusters: 10,
            covered_nodes: 20,
        }
    }

    #[test]
    fn level_zero_has_no_tree_overhead() {
        // At level 0 every cluster is a singleton: no tree edges, depth 0.
        let model = DistributedCostModel::default();
        let activity = LevelActivity {
            trial_slots: 4,
            query_messages: 100,
            join_messages: 10,
            has_clustering_step: true,
        };
        let cost = model.level_cost(&trees(0, 0), &activity);
        assert_eq!(cost.messages, 110);
        // 5 sessions × 2 rounds each.
        assert_eq!(cost.rounds, 10);
    }

    #[test]
    fn deeper_trees_cost_more_rounds_and_messages() {
        let model = DistributedCostModel::default();
        let activity = LevelActivity {
            trial_slots: 3,
            query_messages: 50,
            join_messages: 0,
            has_clustering_step: false,
        };
        let shallow = model.level_cost(&trees(40, 1), &activity);
        let deep = model.level_cost(&trees(40, 8), &activity);
        assert!(deep.rounds > shallow.rounds);
        assert_eq!(deep.messages, shallow.messages);
        // 3 sessions × (2·8 + 2) rounds.
        assert_eq!(deep.rounds, 3 * 18);
        // 50 + 3 sessions × 2 × 40 tree edges.
        assert_eq!(deep.messages, 50 + 240);
    }

    #[test]
    fn rounds_per_session_respects_lemma8_bound() {
        let model = DistributedCostModel::default();
        for j in 0..5u32 {
            let depth_bound = 3u32.pow(j) - 1;
            // One session over trees of the maximum allowed depth takes
            // O(3^j) rounds.
            assert!(model.rounds_per_session(depth_bound) <= 2 * 3u64.pow(j) + 2);
        }
    }

    #[test]
    fn zero_activity_costs_only_the_clustering_session() {
        let model = DistributedCostModel::default();
        let activity = LevelActivity {
            trial_slots: 0,
            query_messages: 0,
            join_messages: 0,
            has_clustering_step: true,
        };
        let cost = model.level_cost(&trees(5, 2), &activity);
        assert_eq!(cost.rounds, model.rounds_per_session(2));
        assert_eq!(cost.messages, 10);
    }
}
