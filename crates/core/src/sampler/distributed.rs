//! A genuine message-passing implementation of the level-0 procedure
//! `Cluster_0`, running as a [`NodeProgram`] on the synchronous runtime.
//!
//! At level 0 every cluster is a singleton, so the Section 5 simulation layer
//! (broadcast–convergecast over cluster trees) is the identity and the
//! protocol acts directly on the communication graph:
//!
//! * odd rounds: nodes that are still sampling draw a budgeted number of
//!   their unexplored incident edges and send a `Query` over each distinct
//!   one;
//! * even rounds: queried endpoints answer with `Reply { is_center }`
//!   (center marking is decided locally at initialization, so the reply can
//!   carry it and no extra probe is needed);
//! * after the `2h` trials, non-center nodes that discovered a center `Join`
//!   it over one of the discovered edges and receive an `Ack`.
//!
//! The higher levels (`j ≥ 1`) of the hierarchy are executed by the
//! centralized replay with the Section 5 cost accounting
//! (see [`centralized`](super::centralized) and [`cost`](super::cost)); this
//! module exists to validate that accounting against real message counts on
//! the level where the protocol is the most intricate (per-edge sampling).

use super::NodeClass;
use crate::params::SamplerParams;
use freelunch_graph::EdgeId;
use freelunch_runtime::transport::{check_size_and_padding, pad_to_size, CodecError, WireCodec};
use freelunch_runtime::{Context, Envelope, InitialKnowledge, NodeProgram};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Messages exchanged by the level-0 protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Level0Message {
    /// "Are you there (and are you a center)?" — sent over a sampled edge.
    Query,
    /// Answer to a query, carrying the responder's center status.
    Reply {
        /// Whether the responder marked itself as a center.
        is_center: bool,
    },
    /// Request to join the responder's cluster.
    Join,
    /// Acknowledgement of a join.
    Ack,
}

/// Wire encoding: one tag byte folding the `Reply` payload into the tag
/// (0 = `Query`, 1 = `Reply { is_center: false }`,
/// 2 = `Reply { is_center: true }`, 3 = `Join`, 4 = `Ack`), padded to
/// `size_of::<Level0Message>()` so the encoded length equals the program's
/// default `payload_bytes`.
impl WireCodec for Level0Message {
    fn encode(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.push(match self {
            Level0Message::Query => 0,
            Level0Message::Reply { is_center: false } => 1,
            Level0Message::Reply { is_center: true } => 2,
            Level0Message::Join => 3,
            Level0Message::Ack => 4,
        });
        pad_to_size(buf, start, std::mem::size_of::<Level0Message>());
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        check_size_and_padding(bytes, 1, std::mem::size_of::<Level0Message>())?;
        match bytes[0] {
            0 => Ok(Level0Message::Query),
            1 => Ok(Level0Message::Reply { is_center: false }),
            2 => Ok(Level0Message::Reply { is_center: true }),
            3 => Ok(Level0Message::Join),
            4 => Ok(Level0Message::Ack),
            tag => Err(CodecError::InvalidTag { tag }),
        }
    }
}

/// Concrete numeric configuration of the level-0 protocol, derived from
/// [`SamplerParams`] and the node count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Level0Config {
    /// Neighbor-finding target (`min` with the degree is implicit).
    pub target: usize,
    /// Edges sampled per trial (with replacement).
    pub budget: usize,
    /// Number of trials (`2h`).
    pub trials: u32,
    /// Center-marking probability `p_0 = n^{-δ}`.
    pub center_probability: f64,
}

impl Level0Config {
    /// Derives the level-0 configuration from the algorithm parameters and
    /// the number of nodes.
    pub fn from_params(params: &SamplerParams, n: usize) -> Self {
        Level0Config {
            target: params.neighbor_target(0, n),
            budget: params.trial_query_budget(0, n),
            trials: params.trials_per_level(),
            center_probability: params.center_probability(0, n),
        }
    }

    /// Number of rounds after which every node is guaranteed to have halted.
    pub fn round_budget(&self) -> u32 {
        2 * self.trials + 4
    }
}

/// The observable result of one node's level-0 run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Level0Output {
    /// Whether the node marked itself a center.
    pub is_center: bool,
    /// The edges the node added to `F_v` (one per queried neighbor).
    pub f_edges: Vec<EdgeId>,
    /// Light / heavy / ambiguous classification.
    pub class: NodeClass,
    /// The edge over which the node joined a center, if any.
    pub joined_via: Option<EdgeId>,
}

/// The per-node program of the level-0 protocol.
#[derive(Debug)]
pub struct Level0Program {
    config: Level0Config,
    is_center: bool,
    unexplored: Vec<EdgeId>,
    pending: HashSet<EdgeId>,
    f_edges: Vec<EdgeId>,
    center_edges: Vec<EdgeId>,
    trials_used: u32,
    class: Option<NodeClass>,
    joined_via: Option<EdgeId>,
}

impl Level0Program {
    /// Creates the program for one node given its initial knowledge.
    pub fn new(config: Level0Config, knowledge: &InitialKnowledge) -> Self {
        let unexplored = knowledge.ports.iter().filter_map(|p| p.edge_id).collect();
        Level0Program {
            config,
            is_center: false,
            unexplored,
            pending: HashSet::new(),
            f_edges: Vec::new(),
            center_edges: Vec::new(),
            trials_used: 0,
            class: None,
            joined_via: None,
        }
    }

    /// The node's result (meaningful once the execution has halted).
    pub fn output(&self) -> Level0Output {
        Level0Output {
            is_center: self.is_center,
            f_edges: self.f_edges.clone(),
            class: self.class.unwrap_or(NodeClass::Ambiguous),
            joined_via: self.joined_via,
        }
    }

    fn sampling_finished(&self) -> bool {
        self.f_edges.len() >= self.config.target
            || (self.unexplored.is_empty() && self.pending.is_empty())
            || self.trials_used >= self.config.trials
    }

    fn classify(&mut self) {
        let class = if self.f_edges.len() >= self.config.target {
            NodeClass::Heavy
        } else if self.unexplored.is_empty() && self.pending.is_empty() {
            NodeClass::Light
        } else {
            NodeClass::Ambiguous
        };
        self.class = Some(class);
    }
}

impl NodeProgram for Level0Program {
    type Message = Level0Message;

    fn init(&mut self, ctx: &mut Context<'_, Level0Message>) {
        self.is_center = ctx.rng().gen_bool(self.config.center_probability);
    }

    fn round(&mut self, ctx: &mut Context<'_, Level0Message>, inbox: &[Envelope<Level0Message>]) {
        // 1. Handle incoming traffic.
        for envelope in inbox {
            match envelope.payload {
                Level0Message::Query => {
                    ctx.send(
                        envelope.edge,
                        Level0Message::Reply {
                            is_center: self.is_center,
                        },
                    );
                }
                Level0Message::Reply { is_center } => {
                    if self.pending.remove(&envelope.edge)
                        && self.f_edges.len() < self.config.target
                    {
                        // Additions are capped at the target (Theorem 2's
                        // size bound); the queries were charged regardless.
                        self.f_edges.push(envelope.edge);
                        if is_center {
                            self.center_edges.push(envelope.edge);
                        }
                    }
                }
                Level0Message::Join => {
                    ctx.send(envelope.edge, Level0Message::Ack);
                }
                Level0Message::Ack => {}
            }
        }

        let round = ctx.round();
        let join_round = 2 * self.config.trials + 1;

        // 2. Sampling trials on odd rounds of the trial phase.
        if round < join_round && round % 2 == 1 && !self.sampling_finished() {
            self.trials_used += 1;
            let mut sampled: Vec<EdgeId> = Vec::new();
            let mut seen: HashSet<EdgeId> = HashSet::new();
            let pool = &self.unexplored;
            let coupon_threshold =
                (pool.len() as f64 * ((pool.len().max(1) as f64).ln() + 3.0)).ceil() as usize;
            if self.config.budget >= coupon_threshold {
                sampled.extend(pool.iter().copied());
            } else {
                for _ in 0..self.config.budget {
                    let pick = pool[ctx.rng().gen_range(0..pool.len())];
                    if seen.insert(pick) {
                        sampled.push(pick);
                    }
                }
            }
            for edge in sampled {
                self.pending.insert(edge);
                ctx.send(edge, Level0Message::Query);
            }
            self.unexplored.retain(|e| !self.pending.contains(e));
        }

        // 3. Classification and clustering.
        if round == join_round {
            self.classify();
            if !self.is_center {
                if let Some(&edge) = self.center_edges.first() {
                    self.joined_via = Some(edge);
                    ctx.send(edge, Level0Message::Join);
                } else {
                    ctx.halt();
                }
            }
        } else if round == join_round + 1 && self.is_center {
            // Joins (if any) have been answered above; the center is done.
            ctx.halt();
        } else if round >= join_round + 2 {
            // Joiners have received their acks by now.
            ctx.halt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ConstantPolicy, SamplerParams};
    use freelunch_graph::generators::{complete_graph, connected_erdos_renyi, GeneratorConfig};
    use freelunch_graph::MultiGraph;
    use freelunch_runtime::{Network, NetworkConfig};

    fn run_level0(
        graph: &MultiGraph,
        params: &SamplerParams,
        seed: u64,
    ) -> (Vec<Level0Output>, freelunch_runtime::CostReport) {
        let config = Level0Config::from_params(params, graph.node_count());
        let mut network = Network::new(graph, NetworkConfig::with_seed(seed), |_, knowledge| {
            Level0Program::new(config, knowledge)
        })
        .unwrap();
        network.run_until_halt(config.round_budget()).unwrap();
        let cost = network.cost();
        let outputs = network
            .programs()
            .iter()
            .map(Level0Program::output)
            .collect();
        (outputs, cost)
    }

    fn practical_params() -> SamplerParams {
        SamplerParams::with_constants(
            2,
            3,
            ConstantPolicy::Practical {
                target_factor: 4.0,
                query_factor: 8.0,
            },
        )
        .unwrap()
    }

    #[test]
    fn every_node_is_classified_and_f_edges_are_valid() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(80, 3), 0.2).unwrap();
        let (outputs, cost) = run_level0(&graph, &practical_params(), 7);
        assert_eq!(outputs.len(), graph.node_count());
        assert!(cost.messages > 0);
        for (v, output) in outputs.iter().enumerate() {
            let node = freelunch_graph::NodeId::from_usize(v);
            // Every F edge is incident to the node and leads to a distinct
            // neighbor.
            let mut neighbors = HashSet::new();
            for &edge in &output.f_edges {
                let other = graph.other_endpoint(edge, node).unwrap();
                assert!(neighbors.insert(other), "duplicate neighbor via {edge}");
            }
            // Light nodes discovered every neighbor.
            if output.class == NodeClass::Light {
                assert_eq!(neighbors.len(), graph.distinct_neighbor_count(node));
            }
        }
    }

    #[test]
    fn joins_point_at_actual_centers() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(100, 9), 0.15).unwrap();
        let (outputs, _) = run_level0(&graph, &practical_params(), 11);
        for (v, output) in outputs.iter().enumerate() {
            if let Some(edge) = output.joined_via {
                assert!(!output.is_center, "centers never join another cluster");
                let node = freelunch_graph::NodeId::from_usize(v);
                let other = graph.other_endpoint(edge, node).unwrap();
                assert!(
                    outputs[other.index()].is_center,
                    "join edge must lead to a center"
                );
            }
        }
    }

    #[test]
    fn paper_constants_leave_no_node_ambiguous_and_query_every_edge() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(50, 2), 0.3).unwrap();
        let params = SamplerParams::new(2, 3).unwrap();
        let (outputs, cost) = run_level0(&graph, &params, 5);
        // The literal log³ n budget covers every node's pool in trial 1, so
        // nobody ends ambiguous.
        assert!(outputs.iter().all(|o| o.class != NodeClass::Ambiguous));
        // Every edge is queried from both sides and answered: ≥ 4m messages,
        // plus join/ack traffic.
        assert!(cost.messages >= 4 * graph.edge_count() as u64);
    }

    #[test]
    fn dense_graph_with_practical_constants_sends_o_of_m_messages() {
        let graph = complete_graph(&GeneratorConfig::new(150, 0)).unwrap();
        // ε = 1/7 keeps the per-trial budget (≈ 4·n^{2/7}) well below the
        // average degree, which is exactly the regime where the algorithm
        // beats flooding.
        let params = SamplerParams::with_constants(
            2,
            7,
            ConstantPolicy::Practical {
                target_factor: 4.0,
                query_factor: 4.0,
            },
        )
        .unwrap();
        let (outputs, cost) = run_level0(&graph, &params, 3);
        // Heavy nodes exist (the target is far below the degree 149) …
        assert!(outputs.iter().any(|o| o.class == NodeClass::Heavy));
        // … and the message count stays well below the 2m a flooding-based
        // approach would need.
        assert!(
            cost.messages < graph.edge_count() as u64,
            "sent {} messages on a graph with {} edges",
            cost.messages,
            graph.edge_count()
        );
    }

    #[test]
    fn distributed_and_centralized_level0_agree_qualitatively() {
        use crate::sampler::Sampler;
        let graph = complete_graph(&GeneratorConfig::new(120, 0)).unwrap();
        let params = practical_params();
        let (outputs, cost) = run_level0(&graph, &params, 21);
        let centralized = Sampler::new(params).run(&graph, 21).unwrap();
        let level0 = &centralized.levels[0];

        let distributed_heavy = outputs
            .iter()
            .filter(|o| o.class == NodeClass::Heavy)
            .count();
        // Both executions classify the overwhelming majority of nodes of a
        // dense graph as heavy (randomness differs, so allow slack).
        assert!(distributed_heavy as f64 > 0.5 * graph.node_count() as f64);
        assert!(level0.heavy as f64 > 0.5 * graph.node_count() as f64);
        // Message counts are within a small factor of each other (the
        // distributed run adds join/ack and reply traffic).
        let centralized_messages = level0.query_messages + level0.join_messages;
        let ratio = cost.messages as f64 / centralized_messages as f64;
        assert!(
            ratio > 0.2 && ratio < 5.0,
            "message ratio {ratio} out of range"
        );
    }

    #[test]
    fn round_budget_is_sufficient_and_tight() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(40, 4), 0.2).unwrap();
        let params = practical_params();
        let config = Level0Config::from_params(&params, graph.node_count());
        let mut network = Network::new(&graph, NetworkConfig::with_seed(1), |_, knowledge| {
            Level0Program::new(config, knowledge)
        })
        .unwrap();
        network.run_until_halt(config.round_budget()).unwrap();
        assert!(network.cost().rounds <= u64::from(config.round_budget()));
    }
}
