//! Step-by-step traces of the `Cluster_j` procedure, mirroring Figure 1 of
//! the paper: (a) the level graph `G_j`, (b) the query edges, (c) the edge
//! set `F`, (d) the selected centers, (e) the clustering, (f) the contracted
//! graph `G_{j+1}`.

use freelunch_graph::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Trace of a single level of the hierarchy.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelTrace {
    /// Level index `j`.
    pub level: u32,
    /// Number of nodes of `G_j`.
    pub nodes: usize,
    /// Number of edges of `G_j` (with multiplicities).
    pub edges: usize,
    /// Every edge queried during the sampling trials (panel (b) of Figure 1).
    pub query_edges: Vec<EdgeId>,
    /// The edges added to `F` (one per queried neighbor; panel (c)).
    pub f_edges: Vec<EdgeId>,
    /// The roots (original `G_0` nodes) of the clusters marked as centers
    /// (panel (d)).
    pub centers: Vec<NodeId>,
    /// The clusters formed at this level: each entry lists the original
    /// nodes merged into one new cluster (panel (e)).
    pub clusters: Vec<Vec<NodeId>>,
    /// Roots of the clusters left unclustered at this level (panel (e),
    /// dashed nodes).
    pub unclustered: Vec<NodeId>,
    /// Number of nodes of the contracted graph `G_{j+1}` (panel (f));
    /// `None` for the final level, which performs no contraction.
    pub next_level_nodes: Option<usize>,
}

/// Full trace of a `Sampler` run, one entry per level.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Figure1Trace {
    /// Per-level traces, in level order.
    pub levels: Vec<LevelTrace>,
}

impl Figure1Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Figure1Trace::default()
    }

    /// The trace of level `j`, if recorded.
    pub fn level(&self, j: u32) -> Option<&LevelTrace> {
        self.levels.iter().find(|l| l.level == j)
    }
}

impl fmt::Display for Figure1Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for level in &self.levels {
            writeln!(
                f,
                "level {}: |V_j|={} |E_j|={} query edges={} F edges={} centers={} clusters={} unclustered={} next |V_(j+1)|={}",
                level.level,
                level.nodes,
                level.edges,
                level.query_edges.len(),
                level.f_edges.len(),
                level.centers.len(),
                level.clusters.len(),
                level.unclustered.len(),
                level.next_level_nodes.map_or_else(|| "-".to_string(), |n| n.to_string()),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_level() {
        let trace = Figure1Trace {
            levels: vec![
                LevelTrace {
                    level: 0,
                    nodes: 10,
                    ..LevelTrace::default()
                },
                LevelTrace {
                    level: 1,
                    nodes: 4,
                    ..LevelTrace::default()
                },
            ],
        };
        assert_eq!(trace.level(1).unwrap().nodes, 4);
        assert!(trace.level(2).is_none());
    }

    #[test]
    fn display_is_one_line_per_level() {
        let trace = Figure1Trace {
            levels: vec![
                LevelTrace {
                    level: 0,
                    nodes: 6,
                    edges: 9,
                    next_level_nodes: Some(2),
                    ..LevelTrace::default()
                },
                LevelTrace {
                    level: 1,
                    nodes: 2,
                    edges: 1,
                    ..LevelTrace::default()
                },
            ],
        };
        let text = trace.to_string();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("level 0"));
        assert!(text.contains("next |V_(j+1)|=2"));
        assert!(text.contains("next |V_(j+1)|=-"));
    }
}
