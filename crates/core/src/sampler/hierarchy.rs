//! The cluster hierarchy maintained across the levels of `Sampler`.
//!
//! A node of the level-`j` graph `G_j` corresponds to a cluster `C_j(v)` of
//! original (`G_0`) nodes. The proof of Lemma 8 shows that the spanner edges
//! added so far contain, for every such cluster, a spanning tree `T_j(v)` of
//! diameter at most `3^j − 1`; the distributed implementation of Section 5
//! runs its broadcast–convergecast sessions over exactly these trees. The
//! [`ClusterInfo`] structure records the members, the tree edges and the
//! root of each cluster so that (a) the stretch/diameter invariants can be
//! tested directly and (b) the distributed cost accounting can charge the
//! tree traffic exactly.

use freelunch_graph::{EdgeId, MultiGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// One cluster of the hierarchy: a node of some level graph `G_j`, described
/// in terms of the original communication graph `G_0`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterInfo {
    /// Original (`G_0`) nodes contained in the cluster.
    pub members: Vec<NodeId>,
    /// Edges of `G_0` forming the spanning tree `T_j(v)` of the cluster (all
    /// of them are spanner edges).
    pub tree_edges: Vec<EdgeId>,
    /// The original node acting as the root of the tree (the level-0 ancestor
    /// of the chain of centers that formed this cluster).
    pub root: NodeId,
    /// Eccentricity of the root inside the tree (`0` for singleton clusters).
    pub depth: u32,
}

impl ClusterInfo {
    /// A singleton cluster containing only `node` (the level-0 state).
    pub fn singleton(node: NodeId) -> Self {
        ClusterInfo {
            members: vec![node],
            tree_edges: Vec::new(),
            root: node,
            depth: 0,
        }
    }

    /// Number of original nodes in the cluster.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Merges a center's cluster with the clusters of the nodes that joined
    /// it. `joined` lists, for every joining cluster, the original edge used
    /// to connect it to the center's cluster.
    ///
    /// The resulting tree is the union of the constituent trees plus the
    /// connecting edges; the root stays the center's root. The root
    /// eccentricity is recomputed exactly by a BFS over the tree edges.
    pub fn merge(
        center: &ClusterInfo,
        joined: &[(&ClusterInfo, EdgeId)],
        graph: &MultiGraph,
    ) -> Self {
        let mut members = center.members.clone();
        let mut tree_edges = center.tree_edges.clone();
        for (cluster, connector) in joined {
            members.extend_from_slice(&cluster.members);
            tree_edges.extend_from_slice(&cluster.tree_edges);
            tree_edges.push(*connector);
        }
        members.sort_unstable();
        members.dedup();
        tree_edges.sort_unstable();
        tree_edges.dedup();
        let depth = root_eccentricity(&members, &tree_edges, center.root, graph);
        ClusterInfo {
            members,
            tree_edges,
            root: center.root,
            depth,
        }
    }
}

/// Computes the eccentricity of `root` in the forest spanned by `tree_edges`
/// restricted to `members`. Unreachable members are ignored (they cannot
/// occur for well-formed clusters; the function stays total regardless).
pub fn root_eccentricity(
    members: &[NodeId],
    tree_edges: &[EdgeId],
    root: NodeId,
    graph: &MultiGraph,
) -> u32 {
    let mut adjacency: HashMap<NodeId, Vec<NodeId>> = HashMap::with_capacity(members.len());
    for member in members {
        adjacency.entry(*member).or_default();
    }
    for edge in tree_edges {
        if let Ok((u, v)) = graph.endpoints(*edge) {
            adjacency.entry(u).or_default().push(v);
            adjacency.entry(v).or_default().push(u);
        }
    }
    let mut dist: HashMap<NodeId, u32> = HashMap::with_capacity(members.len());
    dist.insert(root, 0);
    let mut queue = VecDeque::from([root]);
    let mut eccentricity = 0;
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        eccentricity = eccentricity.max(du);
        if let Some(neighbors) = adjacency.get(&u) {
            for &v in neighbors {
                if let std::collections::hash_map::Entry::Vacant(entry) = dist.entry(v) {
                    entry.insert(du + 1);
                    queue.push_back(v);
                }
            }
        }
    }
    eccentricity
}

/// Aggregate statistics of one level of the hierarchy, used by the
/// distributed cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelTreeStats {
    /// Total number of tree edges over all clusters of the level (`T_j`).
    pub tree_edges_total: u64,
    /// Maximum root eccentricity over all clusters of the level (`D_j`).
    pub max_root_depth: u32,
    /// Number of clusters (= nodes of `G_j`).
    pub clusters: usize,
    /// Total number of original nodes covered by the clusters.
    pub covered_nodes: usize,
}

/// Computes the tree statistics of a level from its cluster list.
pub fn level_tree_stats(clusters: &[ClusterInfo]) -> LevelTreeStats {
    LevelTreeStats {
        tree_edges_total: clusters.iter().map(|c| c.tree_edges.len() as u64).sum(),
        max_root_depth: clusters.iter().map(|c| c.depth).max().unwrap_or(0),
        clusters: clusters.len(),
        covered_nodes: clusters.iter().map(ClusterInfo::size).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Path 0-1-2-3-4 plus an extra edge 0-5.
    fn graph() -> MultiGraph {
        MultiGraph::from_edges(
            6,
            [
                (n(0), n(1)),
                (n(1), n(2)),
                (n(2), n(3)),
                (n(3), n(4)),
                (n(0), n(5)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn singleton_cluster() {
        let c = ClusterInfo::singleton(n(3));
        assert_eq!(c.size(), 1);
        assert_eq!(c.depth, 0);
        assert_eq!(c.root, n(3));
        assert!(c.tree_edges.is_empty());
    }

    #[test]
    fn merge_builds_star_of_singletons() {
        let g = graph();
        let center = ClusterInfo::singleton(n(1));
        let a = ClusterInfo::singleton(n(0));
        let b = ClusterInfo::singleton(n(2));
        // Connect 0 via edge 0 (0-1) and 2 via edge 1 (1-2).
        let merged = ClusterInfo::merge(&center, &[(&a, EdgeId::new(0)), (&b, EdgeId::new(1))], &g);
        assert_eq!(merged.size(), 3);
        assert_eq!(merged.root, n(1));
        assert_eq!(merged.depth, 1);
        assert_eq!(merged.tree_edges.len(), 2);
    }

    #[test]
    fn merge_of_merged_clusters_grows_depth() {
        let g = graph();
        // First-level cluster {1, 2} rooted at 1.
        let c12 = ClusterInfo::merge(
            &ClusterInfo::singleton(n(1)),
            &[(&ClusterInfo::singleton(n(2)), EdgeId::new(1))],
            &g,
        );
        // Second-level merge: {3,4} (rooted at 3) joins via edge 2 (2-3).
        let c34 = ClusterInfo::merge(
            &ClusterInfo::singleton(n(3)),
            &[(&ClusterInfo::singleton(n(4)), EdgeId::new(3))],
            &g,
        );
        let merged = ClusterInfo::merge(&c12, &[(&c34, EdgeId::new(2))], &g);
        assert_eq!(merged.size(), 4);
        assert_eq!(merged.root, n(1));
        // Path 1-2-3-4 rooted at 1 ⇒ eccentricity 3.
        assert_eq!(merged.depth, 3);
    }

    #[test]
    fn merge_deduplicates_shared_members_and_edges() {
        let g = graph();
        let center = ClusterInfo {
            members: vec![n(0), n(1)],
            tree_edges: vec![EdgeId::new(0)],
            root: n(0),
            depth: 1,
        };
        let other = ClusterInfo {
            members: vec![n(1), n(2)],
            tree_edges: vec![EdgeId::new(1)],
            root: n(1),
            depth: 1,
        };
        let merged = ClusterInfo::merge(&center, &[(&other, EdgeId::new(1))], &g);
        assert_eq!(merged.members, vec![n(0), n(1), n(2)]);
        assert_eq!(merged.tree_edges.len(), 2);
    }

    #[test]
    fn root_eccentricity_ignores_unreachable_members() {
        let g = graph();
        // Member 5 has no tree edge: it must not make the BFS panic.
        let ecc = root_eccentricity(&[n(0), n(1), n(5)], &[EdgeId::new(0)], n(0), &g);
        assert_eq!(ecc, 1);
    }

    #[test]
    fn level_stats_aggregate() {
        let g = graph();
        let c1 = ClusterInfo::merge(
            &ClusterInfo::singleton(n(1)),
            &[(&ClusterInfo::singleton(n(0)), EdgeId::new(0))],
            &g,
        );
        let c2 = ClusterInfo::singleton(n(3));
        let stats = level_tree_stats(&[c1, c2]);
        assert_eq!(stats.clusters, 2);
        assert_eq!(stats.tree_edges_total, 1);
        assert_eq!(stats.max_root_depth, 1);
        assert_eq!(stats.covered_nodes, 3);
        assert_eq!(level_tree_stats(&[]), LevelTreeStats::default());
    }
}
