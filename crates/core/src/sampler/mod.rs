//! The `Sampler` spanner-construction algorithm (Sections 3–5 of the paper).
//!
//! `Sampler` builds an `O(3^k)`-spanner with `Õ(n^{1+1/(2^{k+1}-1)})` edges
//! in `O(3^k h)` rounds while sending only `Õ(n^{1+1/(2^{k+1}-1)+1/h})`
//! messages (Theorem 2). The module contains:
//!
//! * [`centralized`] — the faithful implementation of Pseudocode 1 & 2,
//!   replayed with the distributed cost accounting of Section 5;
//! * [`hierarchy`] — the cluster trees `T_j(v)` maintained across levels;
//! * [`cost`] — the explicit instantiation of Section 5's `O(1)` constants;
//! * [`distributed`] — a genuine message-passing implementation of the
//!   level-0 procedure `Cluster_0` running on the synchronous runtime,
//!   cross-checked against the centralized replay;
//! * [`figure1`] — a step-by-step trace of `Cluster_j` mirroring Figure 1.

pub mod centralized;
pub mod cost;
pub mod distributed;
pub mod figure1;
pub mod hierarchy;

pub use centralized::{LevelReport, Sampler, SamplerOutcome, SamplerStats};
pub use cost::{DistributedCostModel, LevelActivity};
pub use figure1::{Figure1Trace, LevelTrace};
pub use hierarchy::{ClusterInfo, LevelTreeStats};

// Re-export the parameter types here as well: `use freelunch_core::sampler::…`
// should be a one-stop import for users of the algorithm.
pub use crate::params::{ConstantPolicy, FallbackPolicy, SamplerParams};

use serde::{Deserialize, Serialize};

/// Classification of a node at the end of the sampling step of `Cluster_j`
/// (Lemma 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeClass {
    /// The node queried *all* of its neighbors (its unexplored edge set was
    /// emptied).
    Light,
    /// The node queried at least `c·n^{2^j δ}·log n` neighbors without
    /// exhausting its edges.
    Heavy,
    /// Neither light nor heavy after `2h` trials — the low-probability event
    /// Lemma 6 bounds. Depending on the
    /// [`FallbackPolicy`], such nodes are
    /// either upgraded to light (by querying their remaining edges) or left
    /// as is.
    Ambiguous,
}

impl NodeClass {
    /// Returns `true` for [`NodeClass::Light`].
    pub fn is_light(self) -> bool {
        matches!(self, NodeClass::Light)
    }

    /// Returns `true` for [`NodeClass::Heavy`].
    pub fn is_heavy(self) -> bool {
        matches!(self, NodeClass::Heavy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_class_predicates() {
        assert!(NodeClass::Light.is_light());
        assert!(!NodeClass::Light.is_heavy());
        assert!(NodeClass::Heavy.is_heavy());
        assert!(!NodeClass::Ambiguous.is_light());
        assert!(!NodeClass::Ambiguous.is_heavy());
    }
}
