//! A common interface for distributed spanner constructions.
//!
//! The message-reduction schemes of Section 6 compose spanner algorithms: the
//! two-stage scheme first builds a `Sampler` spanner and then uses it to
//! simulate *some other* spanner construction with a better stretch/size
//! trade-off. [`SpannerAlgorithm`] is the trait both `Sampler` and the
//! baseline constructions implement so they can be plugged into the schemes
//! and compared by the experiment harness.

use crate::error::CoreResult;
use crate::planner::{GraphStats, SpannerProfile};
use crate::sampler::Sampler;
use freelunch_graph::{EdgeId, MultiGraph};
use freelunch_runtime::CostReport;
use serde::{Deserialize, Serialize};

/// The output of a distributed spanner construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpannerResult {
    /// Human-readable name of the algorithm that produced the spanner.
    pub algorithm: String,
    /// The spanner edge set (original edge IDs, deduplicated).
    pub edges: Vec<EdgeId>,
    /// Guaranteed multiplicative stretch `α` (an `(α, β)`-spanner has
    /// `dist_H(u, v) ≤ α·dist_G(u, v) + β`).
    pub multiplicative_stretch: u32,
    /// Guaranteed additive stretch `β` (0 for purely multiplicative
    /// spanners).
    pub additive_stretch: u32,
    /// Rounds and messages the construction spent.
    pub cost: CostReport,
}

impl SpannerResult {
    /// Number of spanner edges.
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// The flooding radius needed to cover `B_{G,t}(v)` on this spanner:
    /// `α·t + β`.
    pub fn flooding_radius(&self, t: u32) -> u32 {
        self.multiplicative_stretch
            .saturating_mul(t)
            .saturating_add(self.additive_stretch)
    }
}

/// A distributed spanner-construction algorithm.
pub trait SpannerAlgorithm {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> String;

    /// Constructs a spanner of `graph`, reporting the edge set, the stretch
    /// guarantee, and the rounds/messages spent.
    ///
    /// # Errors
    ///
    /// Implementations return an error for invalid inputs (e.g. an empty
    /// graph).
    fn construct(&self, graph: &MultiGraph, seed: u64) -> CoreResult<SpannerResult>;

    /// Cost-model hook for the adaptive planner: a closed-form prediction
    /// of the spanner's size and construction cost from cheap
    /// [`GraphStats`], without running the construction. Algorithms with a
    /// calibrated model override this (see `docs/PLANNER.md` for the
    /// calibration provenance); the default `None` makes the planner fall
    /// back to its own generic second-stage model.
    fn predicted_profile(&self, _stats: &GraphStats) -> Option<SpannerProfile> {
        None
    }
}

impl SpannerAlgorithm for Sampler {
    fn name(&self) -> String {
        format!("sampler(k={}, h={})", self.params().k, self.params().h)
    }

    /// The paper's Theorem 2 size law with the planner's calibrated scale:
    /// `|S| ≈ min(m, scale · n^{1+1/h})`, construction ≈ the planner's
    /// capped-incidence query model.
    fn predicted_profile(&self, stats: &GraphStats) -> Option<SpannerProfile> {
        let model = crate::planner::CostModel::default();
        let h = f64::from(self.params().h.max(1));
        let edges = (stats.edges as f64)
            .min(model.spanner_scale * (stats.nodes as f64).powf(1.0 + 1.0 / h));
        let construction_messages = model.query_cost
            * stats.capped_incidence_bound(model.query_cap(stats.nodes, self.params().k));
        Some(SpannerProfile {
            edges,
            construction_messages,
        })
    }

    fn construct(&self, graph: &MultiGraph, seed: u64) -> CoreResult<SpannerResult> {
        let outcome = self.run(graph, seed)?;
        Ok(SpannerResult {
            algorithm: self.name(),
            multiplicative_stretch: self.params().stretch_bound(),
            additive_stretch: 0,
            cost: outcome.cost,
            edges: outcome.spanner,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ConstantPolicy, SamplerParams};
    use freelunch_graph::generators::{connected_erdos_renyi, GeneratorConfig};
    use freelunch_graph::spanner_check::verify_edge_stretch;

    #[test]
    fn flooding_radius_combines_both_stretches() {
        let result = SpannerResult {
            algorithm: "test".into(),
            edges: Vec::new(),
            multiplicative_stretch: 3,
            additive_stretch: 4,
            cost: CostReport::zero(),
        };
        assert_eq!(result.flooding_radius(5), 19);
        assert_eq!(result.size(), 0);
    }

    #[test]
    fn sampler_implements_the_trait() {
        let graph = connected_erdos_renyi(&GeneratorConfig::new(80, 2), 0.2).unwrap();
        let params = SamplerParams::with_constants(
            2,
            3,
            ConstantPolicy::Practical {
                target_factor: 4.0,
                query_factor: 8.0,
            },
        )
        .unwrap();
        let sampler = Sampler::new(params);
        let result = sampler.construct(&graph, 5).unwrap();
        assert!(result.algorithm.contains("sampler"));
        assert_eq!(result.multiplicative_stretch, params.stretch_bound());
        assert_eq!(result.additive_stretch, 0);
        assert!(result.size() > 0);
        let report = verify_edge_stretch(&graph, result.edges.iter().copied()).unwrap();
        assert!(report.satisfies(result.multiplicative_stretch));
        assert!(result.cost.messages > 0);
    }
}
