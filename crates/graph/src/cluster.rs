//! Cluster collections and cluster-graph contraction (Section 2 of the paper).
//!
//! A *cluster collection* `C = {C_1, …, C_l}` is a family of non-empty,
//! pairwise-disjoint node subsets (the union need not cover all nodes). The
//! *cluster graph* `G(C)` has one node per cluster and one edge per edge of
//! `G` crossing between two distinct clusters — so it typically contains
//! parallel edges even when `G` is simple. Crucially, every edge of `G(C)`
//! keeps the unique ID of the underlying crossing edge of `G`, which is what
//! allows the distributed implementation (Section 5) to "peel off" all edges
//! parallel to a query edge by exchanging edge IDs.

use crate::error::{GraphError, GraphResult};
use crate::multigraph::MultiGraph;
use crate::{ClusterId, EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Assignment of (some) nodes of a graph to pairwise-disjoint clusters.
///
/// Nodes assigned `None` are *unclustered*: they do not appear in the cluster
/// graph. Cluster indices must form the contiguous range `0..cluster_count`.
///
/// # Examples
///
/// ```
/// use freelunch_graph::cluster::ClusterAssignment;
/// use freelunch_graph::{ClusterId, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut assignment = ClusterAssignment::unclustered(4);
/// assignment.assign(NodeId::new(0), ClusterId::new(0))?;
/// assignment.assign(NodeId::new(1), ClusterId::new(0))?;
/// assignment.assign(NodeId::new(2), ClusterId::new(1))?;
/// assert_eq!(assignment.cluster_count(), 2);
/// assert_eq!(assignment.members(ClusterId::new(0)), vec![NodeId::new(0), NodeId::new(1)]);
/// assert!(assignment.cluster_of(NodeId::new(3)).is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterAssignment {
    cluster_of: Vec<Option<ClusterId>>,
    cluster_count: usize,
}

impl ClusterAssignment {
    /// Creates an assignment over `node_count` nodes with every node
    /// unclustered and no clusters declared.
    pub fn unclustered(node_count: usize) -> Self {
        ClusterAssignment {
            cluster_of: vec![None; node_count],
            cluster_count: 0,
        }
    }

    /// Builds an assignment from an explicit per-node table.
    ///
    /// # Errors
    ///
    /// Returns an error if some cluster index `>= cluster_count` is used.
    pub fn from_table(table: Vec<Option<ClusterId>>, cluster_count: usize) -> GraphResult<Self> {
        for cluster in table.iter().flatten() {
            if cluster.index() >= cluster_count {
                return Err(GraphError::ClusterOutOfRange {
                    cluster: cluster.index(),
                    cluster_count,
                });
            }
        }
        Ok(ClusterAssignment {
            cluster_of: table,
            cluster_count,
        })
    }

    /// Number of nodes covered by this assignment (clustered or not).
    pub fn node_count(&self) -> usize {
        self.cluster_of.len()
    }

    /// Number of declared clusters.
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// Cluster of `node`, or `None` if the node is unclustered.
    pub fn cluster_of(&self, node: NodeId) -> Option<ClusterId> {
        self.cluster_of.get(node.index()).copied().flatten()
    }

    /// Returns `true` if `node` belongs to some cluster.
    pub fn is_clustered(&self, node: NodeId) -> bool {
        self.cluster_of(node).is_some()
    }

    /// Assigns `node` to `cluster`, growing the declared cluster count if
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns an error if `node` is out of range.
    pub fn assign(&mut self, node: NodeId, cluster: ClusterId) -> GraphResult<()> {
        if node.index() >= self.cluster_of.len() {
            return Err(GraphError::NodeOutOfRange {
                node,
                node_count: self.cluster_of.len(),
            });
        }
        self.cluster_of[node.index()] = Some(cluster);
        self.cluster_count = self.cluster_count.max(cluster.index() + 1);
        Ok(())
    }

    /// Declares `count` clusters even if some are (still) empty.
    pub fn ensure_cluster_count(&mut self, count: usize) {
        self.cluster_count = self.cluster_count.max(count);
    }

    /// Members of `cluster`, sorted by node index.
    pub fn members(&self, cluster: ClusterId) -> Vec<NodeId> {
        self.cluster_of
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == Some(cluster))
            .map(|(i, _)| NodeId::from_usize(i))
            .collect()
    }

    /// All clustered nodes, sorted by node index.
    pub fn clustered_nodes(&self) -> Vec<NodeId> {
        self.cluster_of
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(i, _)| NodeId::from_usize(i))
            .collect()
    }

    /// All unclustered nodes, sorted by node index.
    pub fn unclustered_nodes(&self) -> Vec<NodeId> {
        self.cluster_of
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| NodeId::from_usize(i))
            .collect()
    }

    /// Sizes of all clusters, indexed by cluster id.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.cluster_count];
        for cluster in self.cluster_of.iter().flatten() {
            sizes[cluster.index()] += 1;
        }
        sizes
    }

    /// Returns an error if any declared cluster is empty (the paper requires
    /// clusters to be non-empty).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] naming the first empty cluster.
    pub fn require_nonempty_clusters(&self) -> GraphResult<()> {
        for (i, size) in self.cluster_sizes().iter().enumerate() {
            if *size == 0 {
                return Err(GraphError::invalid_parameter(format!(
                    "cluster C{i} is empty"
                )));
            }
        }
        Ok(())
    }
}

/// The result of contracting a graph by a cluster assignment.
#[derive(Debug, Clone)]
pub struct Contraction {
    /// The cluster graph `G(C)`: node `i` is cluster `C_i`; every edge keeps
    /// the ID of the underlying crossing edge of the parent graph.
    pub graph: MultiGraph,
    /// For every surviving edge ID, the endpoints it had in the parent graph.
    pub parent_endpoints: HashMap<EdgeId, (NodeId, NodeId)>,
    /// Number of parent-graph edges dropped because they were internal to a
    /// cluster or incident to an unclustered node.
    pub dropped_edges: usize,
}

/// Contracts `graph` according to `assignment`, producing the cluster graph
/// `G(C)` of Section 2.
///
/// Edges with both endpoints in the same cluster and edges incident to an
/// unclustered node are dropped; edges crossing between two distinct clusters
/// survive (with multiplicity) and keep their IDs.
///
/// # Errors
///
/// Returns an error if the assignment covers a different number of nodes than
/// the graph has, or if it declares an empty cluster.
pub fn contract(graph: &MultiGraph, assignment: &ClusterAssignment) -> GraphResult<Contraction> {
    if assignment.node_count() != graph.node_count() {
        return Err(GraphError::invalid_parameter(format!(
            "assignment covers {} nodes but the graph has {}",
            assignment.node_count(),
            graph.node_count()
        )));
    }
    assignment.require_nonempty_clusters()?;

    let mut cluster_graph = MultiGraph::new(assignment.cluster_count());
    let mut parent_endpoints = HashMap::new();
    let mut dropped = 0usize;

    for edge in graph.edges() {
        let cu = assignment.cluster_of(edge.u);
        let cv = assignment.cluster_of(edge.v);
        match (cu, cv) {
            (Some(a), Some(b)) if a != b => {
                cluster_graph.add_edge_with_id(edge.id, a.as_node(), b.as_node())?;
                parent_endpoints.insert(edge.id, (edge.u, edge.v));
            }
            _ => dropped += 1,
        }
    }

    Ok(Contraction {
        graph: cluster_graph,
        parent_endpoints,
        dropped_edges: dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }
    fn c(i: u32) -> ClusterId {
        ClusterId::new(i)
    }

    /// Two triangles {0,1,2} and {3,4,5} joined by edges (2,3) and (1,4),
    /// plus a pendant node 6 attached to 5.
    fn two_triangles() -> MultiGraph {
        MultiGraph::from_edges(
            7,
            [
                (n(0), n(1)),
                (n(1), n(2)),
                (n(2), n(0)),
                (n(3), n(4)),
                (n(4), n(5)),
                (n(5), n(3)),
                (n(2), n(3)),
                (n(1), n(4)),
                (n(5), n(6)),
            ],
        )
        .unwrap()
    }

    fn triangle_assignment() -> ClusterAssignment {
        let mut a = ClusterAssignment::unclustered(7);
        for i in 0..3 {
            a.assign(n(i), c(0)).unwrap();
        }
        for i in 3..6 {
            a.assign(n(i), c(1)).unwrap();
        }
        // node 6 stays unclustered
        a
    }

    #[test]
    fn assignment_basics() {
        let a = triangle_assignment();
        assert_eq!(a.node_count(), 7);
        assert_eq!(a.cluster_count(), 2);
        assert_eq!(a.cluster_of(n(0)), Some(c(0)));
        assert_eq!(a.cluster_of(n(6)), None);
        assert!(a.is_clustered(n(4)));
        assert!(!a.is_clustered(n(6)));
        assert_eq!(a.members(c(1)), vec![n(3), n(4), n(5)]);
        assert_eq!(a.clustered_nodes().len(), 6);
        assert_eq!(a.unclustered_nodes(), vec![n(6)]);
        assert_eq!(a.cluster_sizes(), vec![3, 3]);
        assert!(a.require_nonempty_clusters().is_ok());
    }

    #[test]
    fn assignment_rejects_out_of_range_node() {
        let mut a = ClusterAssignment::unclustered(2);
        assert!(a.assign(n(5), c(0)).is_err());
    }

    #[test]
    fn from_table_validates_cluster_indices() {
        let table = vec![Some(c(0)), Some(c(2))];
        assert!(ClusterAssignment::from_table(table.clone(), 2).is_err());
        assert!(ClusterAssignment::from_table(table, 3).is_ok());
    }

    #[test]
    fn empty_cluster_detected() {
        let mut a = ClusterAssignment::unclustered(3);
        a.assign(n(0), c(1)).unwrap(); // cluster 0 declared implicitly but empty
        assert!(a.require_nonempty_clusters().is_err());
    }

    #[test]
    fn contraction_keeps_crossing_edges_with_ids() {
        let g = two_triangles();
        let a = triangle_assignment();
        let contraction = contract(&g, &a).unwrap();
        let cg = &contraction.graph;

        assert_eq!(cg.node_count(), 2);
        // The two crossing edges (2,3) and (1,4) survive as parallel edges.
        assert_eq!(cg.edge_count(), 2);
        assert!(!cg.is_simple());
        let surviving: Vec<u64> = cg.edge_ids().map(EdgeId::raw).collect();
        assert_eq!(surviving, vec![6, 7]);
        // Intra-cluster edges (6 of them) and the pendant edge (5,6) are dropped.
        assert_eq!(contraction.dropped_edges, 7);
        // Parent endpoints recorded for surviving edges.
        assert_eq!(contraction.parent_endpoints[&EdgeId::new(6)], (n(2), n(3)));
        assert_eq!(contraction.parent_endpoints[&EdgeId::new(7)], (n(1), n(4)));
    }

    #[test]
    fn contraction_node_count_mismatch() {
        let g = two_triangles();
        let a = ClusterAssignment::unclustered(3);
        assert!(contract(&g, &a).is_err());
    }

    #[test]
    fn contraction_of_fully_unclustered_graph_is_empty() {
        let g = two_triangles();
        let a = ClusterAssignment::unclustered(7);
        let contraction = contract(&g, &a).unwrap();
        assert_eq!(contraction.graph.node_count(), 0);
        assert_eq!(contraction.graph.edge_count(), 0);
        assert_eq!(contraction.dropped_edges, g.edge_count());
    }

    #[test]
    fn repeated_contraction_preserves_edge_id_uniqueness() {
        // Contract twice: cluster graph of a cluster graph. Edge IDs must stay
        // unique and traceable to G_0.
        let g = two_triangles();
        let a = triangle_assignment();
        let first = contract(&g, &a).unwrap();

        let mut second_assignment = ClusterAssignment::unclustered(first.graph.node_count());
        second_assignment.assign(n(0), c(0)).unwrap();
        second_assignment.assign(n(1), c(0)).unwrap();
        let second = contract(&first.graph, &second_assignment).unwrap();
        // Both surviving edges of the first contraction are now internal.
        assert_eq!(second.graph.edge_count(), 0);
        assert_eq!(second.dropped_edges, 2);
        assert_eq!(second.graph.node_count(), 1);
    }
}
