//! Frozen, cache-friendly graph views in compressed-sparse-row (CSR) form.
//!
//! [`MultiGraph`] is the *mutable* substrate: adjacency lives in one `Vec`
//! per node and edge lookup goes through a `HashMap`, which is convenient
//! while a graph (or a cluster graph of the `Sampler` hierarchy) is being
//! built, but wasteful in the hot loops of the runtime and the traversal
//! routines — every neighbor scan chases a separate heap allocation and
//! every per-message edge lookup hashes.
//!
//! [`CsrGraph`] is the *frozen* counterpart produced by
//! [`MultiGraph::freeze`]: all incidence lists are packed back-to-back into
//! a single offset/edge array pair, the distinct-neighbor sets (`N_j(v)` in
//! the paper) are memoized once in a second CSR pair, and edge-ID lookup is
//! a plain array index whenever the IDs are densely allocated (the common
//! case — [`MultiGraph::add_edge`] hands out sequential IDs). The repeated
//! single-source ball queries of the simulation verifier, the `t`-local
//! broadcast coverage check and the gossip baseline all freeze once and
//! query the packed view; the execution engine keeps the frozen view as its
//! only graph copy and validates every dispatched message through the dense
//! edge lookup.
//!
//! The [`Topology`] trait abstracts over the two representations so that
//! the traversal routines ([`bfs`](crate::traversal::bfs),
//! [`ball`](crate::traversal::ball), …) accept either one unchanged.
//!
//! # Examples
//!
//! ```
//! use freelunch_graph::{MultiGraph, NodeId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = MultiGraph::new(3);
//! g.add_edge(NodeId::new(0), NodeId::new(1))?;
//! g.add_edge(NodeId::new(0), NodeId::new(1))?; // parallel edge
//! g.add_edge(NodeId::new(1), NodeId::new(2))?;
//!
//! let frozen = g.freeze();
//! assert_eq!(frozen.degree(NodeId::new(1)), 3);
//! // Distinct neighbors are deduplicated once at freeze time; this is a
//! // slice borrow, not a fresh allocation per call.
//! assert_eq!(frozen.distinct_neighbors(NodeId::new(1)), &[NodeId::new(0), NodeId::new(2)]);
//! # Ok(())
//! # }
//! ```

use crate::error::{GraphError, GraphResult};
use crate::multigraph::{Edge, IncidentEdge, MultiGraph};
use crate::{EdgeId, NodeId};
use std::collections::HashMap;

/// Iterator over the node identifiers `0..n` of a graph view.
pub type NodeIdRange = std::iter::Map<std::ops::Range<u32>, fn(u32) -> NodeId>;

/// Read-only view of an undirected multigraph's topology.
///
/// Implemented by both the mutable [`MultiGraph`] and the frozen
/// [`CsrGraph`], so traversal code and node-program drivers can be written
/// once and run on either representation.
pub trait Topology {
    /// Number of nodes (`0..node_count` are the valid node IDs).
    fn node_count(&self) -> usize;

    /// The incidence list of `node`: every incident edge with its opposite
    /// endpoint, in insertion order (parallel edges appear once each).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn incident_edges(&self, node: NodeId) -> &[IncidentEdge];

    /// Degree of `node`, counting parallel edges with multiplicity.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn degree(&self, node: NodeId) -> usize {
        self.incident_edges(node).len()
    }

    /// Iterator over all node identifiers `0..node_count`.
    fn nodes(&self) -> NodeIdRange {
        (0..self.node_count() as u32).map(NodeId::new as fn(u32) -> NodeId)
    }

    /// Checks that `node` is a valid node of this graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] otherwise.
    fn check_node(&self, node: NodeId) -> GraphResult<()> {
        if node.index() < self.node_count() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node,
                node_count: self.node_count(),
            })
        }
    }
}

impl Topology for MultiGraph {
    fn node_count(&self) -> usize {
        MultiGraph::node_count(self)
    }

    fn incident_edges(&self, node: NodeId) -> &[IncidentEdge] {
        MultiGraph::incident_edges(self, node)
    }

    fn degree(&self, node: NodeId) -> usize {
        MultiGraph::degree(self, node)
    }
}

impl Topology for CsrGraph {
    fn node_count(&self) -> usize {
        CsrGraph::node_count(self)
    }

    fn incident_edges(&self, node: NodeId) -> &[IncidentEdge] {
        CsrGraph::incident_edges(self, node)
    }

    fn degree(&self, node: NodeId) -> usize {
        CsrGraph::degree(self, node)
    }
}

/// Edge-ID → storage-index lookup. IDs assigned by [`MultiGraph::add_edge`]
/// are sequential, so the dense variant (a plain array indexed by the raw
/// ID) applies almost always; explicitly chosen sparse IDs fall back to a
/// hash map.
#[derive(Debug, Clone)]
enum EdgeLookup {
    /// `table[raw_id]` is the storage index, or `u32::MAX` for "absent".
    Dense(Vec<u32>),
    /// Fallback for sparsely allocated edge IDs.
    Sparse(HashMap<EdgeId, u32>),
}

const ABSENT: u32 = u32::MAX;

/// A frozen multigraph in compressed-sparse-row form.
///
/// Produced by [`MultiGraph::freeze`]; see the [module docs](self) for the
/// rationale. The view is immutable: to change the graph, mutate the
/// originating [`MultiGraph`] and freeze again.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    node_count: usize,
    /// `incidents[offsets[v]..offsets[v + 1]]` is the incidence list of `v`.
    offsets: Vec<usize>,
    incidents: Vec<IncidentEdge>,
    /// `neighbors[neighbor_offsets[v]..neighbor_offsets[v + 1]]` is the
    /// sorted, deduplicated neighbor set of `v` (memoized `N_j(v)`).
    neighbor_offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
    /// All edges in the insertion order of the originating graph.
    edges: Vec<Edge>,
    lookup: EdgeLookup,
}

impl CsrGraph {
    /// Builds the frozen view of `graph`. `O(n + m log Δ)` time, where the
    /// log factor comes from sorting each neighbor list once.
    pub fn from_graph(graph: &MultiGraph) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut incidents = Vec::with_capacity(graph.incidence_count());
        let mut neighbor_offsets = Vec::with_capacity(n + 1);
        neighbor_offsets.push(0);
        let mut neighbors = Vec::new();
        let mut scratch: Vec<NodeId> = Vec::new();

        for node in graph.nodes() {
            let list = graph.incident_edges(node);
            incidents.extend_from_slice(list);
            offsets.push(incidents.len());

            scratch.clear();
            scratch.extend(list.iter().map(|ie| ie.neighbor));
            scratch.sort_unstable();
            scratch.dedup();
            neighbors.extend_from_slice(&scratch);
            neighbor_offsets.push(neighbors.len());
        }

        let edges: Vec<Edge> = graph.edges().copied().collect();
        let lookup = Self::build_lookup(&edges);

        CsrGraph {
            node_count: n,
            offsets,
            incidents,
            neighbor_offsets,
            neighbors,
            edges,
            lookup,
        }
    }

    fn build_lookup(edges: &[Edge]) -> EdgeLookup {
        let max_raw = edges.iter().map(|e| e.id.raw()).max();
        let dense_limit = (2 * edges.len() + 64) as u64;
        match max_raw {
            // A dense table is worthwhile when the ID space is at most a
            // small constant factor larger than the edge count (and indices
            // fit in the u32 slots).
            Some(max) if max < dense_limit && edges.len() < ABSENT as usize => {
                let mut table = vec![ABSENT; max as usize + 1];
                for (index, edge) in edges.iter().enumerate() {
                    table[edge.id.raw() as usize] = index as u32;
                }
                EdgeLookup::Dense(table)
            }
            Some(_) => EdgeLookup::Sparse(
                edges
                    .iter()
                    .enumerate()
                    .map(|(index, edge)| (edge.id, index as u32))
                    .collect(),
            ),
            None => EdgeLookup::Dense(Vec::new()),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges, counting multiplicities.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterator over all node identifiers `0..node_count`.
    pub fn nodes(&self) -> NodeIdRange {
        (0..self.node_count as u32).map(NodeId::new as fn(u32) -> NodeId)
    }

    /// Iterator over all edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter()
    }

    /// Iterator over all edge identifiers in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().map(|e| e.id)
    }

    /// Returns `true` if the graph contains an edge with identifier `id`.
    pub fn contains_edge(&self, id: EdgeId) -> bool {
        self.edge_index(id).is_some()
    }

    #[inline]
    fn edge_index(&self, id: EdgeId) -> Option<usize> {
        match &self.lookup {
            EdgeLookup::Dense(table) => match table.get(id.raw() as usize) {
                Some(&index) if index != ABSENT => Some(index as usize),
                _ => None,
            },
            EdgeLookup::Sparse(map) => map.get(&id).map(|&index| index as usize),
        }
    }

    /// Returns the edge with identifier `id`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownEdge`] if no such edge exists.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> GraphResult<&Edge> {
        self.edge_index(id)
            .map(|index| &self.edges[index])
            .ok_or(GraphError::UnknownEdge { edge: id })
    }

    /// Returns the endpoints of an edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownEdge`] if no such edge exists.
    pub fn endpoints(&self, id: EdgeId) -> GraphResult<(NodeId, NodeId)> {
        self.edge(id).map(|e| (e.u, e.v))
    }

    /// Returns the endpoint of edge `id` that is not `node`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownEdge`] if the edge does not exist, or
    /// [`GraphError::NodeOutOfRange`] if `node` is not an endpoint.
    pub fn other_endpoint(&self, id: EdgeId, node: NodeId) -> GraphResult<NodeId> {
        let edge = self.edge(id)?;
        if edge.u == node {
            Ok(edge.v)
        } else if edge.v == node {
            Ok(edge.u)
        } else {
            Err(GraphError::NodeOutOfRange {
                node,
                node_count: self.node_count,
            })
        }
    }

    /// Degree of `node`, counting parallel edges with multiplicity.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.offsets[node.index() + 1] - self.offsets[node.index()]
    }

    /// The incidence list of `node`, packed contiguously with every other
    /// node's list.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn incident_edges(&self, node: NodeId) -> &[IncidentEdge] {
        &self.incidents[self.offsets[node.index()]..self.offsets[node.index() + 1]]
    }

    /// The distinct neighbors of `node`, sorted by node index — the
    /// memoized `N_j(v)` of the paper. Unlike
    /// [`MultiGraph::distinct_neighbors`], this is a slice borrow computed
    /// once at freeze time, not a fresh sort/dedup per call.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn distinct_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors
            [self.neighbor_offsets[node.index()]..self.neighbor_offsets[node.index() + 1]]
    }

    /// Number of distinct neighbors of `node` (`|N_j(v)|` in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn distinct_neighbor_count(&self, node: NodeId) -> usize {
        self.neighbor_offsets[node.index() + 1] - self.neighbor_offsets[node.index()]
    }

    /// Returns `true` if at least one edge connects `u` and `v` (binary
    /// search over the memoized neighbor set).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn has_edge_between(&self, u: NodeId, v: NodeId) -> bool {
        self.distinct_neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count)
            .map(|v| self.offsets[v + 1] - self.offsets[v])
            .max()
            .unwrap_or(0)
    }

    /// Total number of (node, incident edge) pairs, i.e. `2m`.
    pub fn incidence_count(&self) -> usize {
        self.incidents.len()
    }

    /// Builds a dense raw-edge-ID → endpoint-pair table: entry `i` holds
    /// the raw node IDs of the endpoints of the edge with raw ID `i`, or
    /// `[CsrGraph::NO_ENDPOINT; 2]` if no such edge exists. Sized like the
    /// per-edge metric tables (largest raw ID + 1), so sparse ID spaces —
    /// e.g. crossing edges surviving cluster contraction — stay addressable.
    ///
    /// This is the one-array-read edge validation used by the runtime's
    /// send path: `table[edge]` answers existence, incidence, and "who is
    /// the receiver" in a single dense access.
    pub fn endpoint_table(&self) -> Vec<[u32; 2]> {
        let slots = self
            .edges
            .iter()
            .map(|e| e.id.index() + 1)
            .max()
            .unwrap_or(0);
        let mut table = vec![[Self::NO_ENDPOINT; 2]; slots];
        for edge in &self.edges {
            table[edge.id.index()] = [edge.u.raw(), edge.v.raw()];
        }
        table
    }
}

impl CsrGraph {
    /// Sentinel of [`CsrGraph::endpoint_table`] marking an unallocated edge
    /// slot (no node can carry this raw ID: `NodeId::from_usize` rejects
    /// it).
    pub const NO_ENDPOINT: u32 = u32::MAX;
}

impl MultiGraph {
    /// Freezes this graph into its [`CsrGraph`] view: packed incidence
    /// arrays, memoized distinct-neighbor sets, and array-indexed edge
    /// lookup. The graph itself is unchanged.
    pub fn freeze(&self) -> CsrGraph {
        CsrGraph::from_graph(self)
    }
}

impl From<&MultiGraph> for CsrGraph {
    fn from(graph: &MultiGraph) -> Self {
        CsrGraph::from_graph(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sample() -> MultiGraph {
        let mut g = MultiGraph::new(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(1), n(2)).unwrap(); // parallel
        g.add_edge(n(2), n(3)).unwrap();
        g
    }

    #[test]
    fn freeze_preserves_counts_and_lists() {
        let g = sample();
        let frozen = g.freeze();
        assert_eq!(frozen.node_count(), g.node_count());
        assert_eq!(frozen.edge_count(), g.edge_count());
        assert_eq!(frozen.incidence_count(), g.incidence_count());
        assert_eq!(frozen.max_degree(), g.max_degree());
        assert!(!frozen.is_empty());
        for node in g.nodes() {
            assert_eq!(frozen.degree(node), g.degree(node));
            assert_eq!(frozen.incident_edges(node), g.incident_edges(node));
        }
        let ids: Vec<EdgeId> = frozen.edge_ids().collect();
        assert_eq!(ids, g.edge_ids().collect::<Vec<_>>());
    }

    #[test]
    fn memoized_distinct_neighbors_dedupe_parallel_edges() {
        let g = sample();
        let frozen = g.freeze();
        // Node 1 has degree 3 (one parallel pair to node 2) but exactly two
        // distinct neighbors; the memoized slice must be deduplicated and
        // sorted, matching the allocating MultiGraph implementation.
        assert_eq!(frozen.degree(n(1)), 3);
        assert_eq!(frozen.distinct_neighbors(n(1)), &[n(0), n(2)]);
        assert_eq!(frozen.distinct_neighbor_count(n(1)), 2);
        for node in g.nodes() {
            assert_eq!(
                frozen.distinct_neighbors(node),
                g.distinct_neighbors(node).as_slice(),
                "{node}"
            );
            assert_eq!(
                frozen.distinct_neighbor_count(node),
                g.distinct_neighbor_count(node)
            );
        }
    }

    #[test]
    fn edge_lookup_dense_path() {
        let g = sample();
        let frozen = g.freeze();
        assert!(matches!(frozen.lookup, EdgeLookup::Dense(_)));
        for edge in g.edges() {
            assert_eq!(frozen.edge(edge.id).unwrap(), edge);
            assert_eq!(frozen.endpoints(edge.id).unwrap(), (edge.u, edge.v));
            assert_eq!(frozen.other_endpoint(edge.id, edge.u).unwrap(), edge.v);
        }
        assert!(frozen.contains_edge(EdgeId::new(0)));
        assert!(!frozen.contains_edge(EdgeId::new(99)));
        assert!(frozen.edge(EdgeId::new(99)).is_err());
    }

    #[test]
    fn edge_lookup_sparse_fallback() {
        let mut g = MultiGraph::new(3);
        g.add_edge_with_id(EdgeId::new(1_000_000), n(0), n(1))
            .unwrap();
        g.add_edge_with_id(EdgeId::new(5), n(1), n(2)).unwrap();
        let frozen = g.freeze();
        assert!(matches!(frozen.lookup, EdgeLookup::Sparse(_)));
        assert_eq!(
            frozen.endpoints(EdgeId::new(1_000_000)).unwrap(),
            (n(0), n(1))
        );
        assert!(frozen.edge(EdgeId::new(6)).is_err());
        assert!(frozen.other_endpoint(EdgeId::new(5), n(0)).is_err());
    }

    #[test]
    fn has_edge_between_uses_memoized_sets() {
        let frozen = sample().freeze();
        assert!(frozen.has_edge_between(n(1), n(2)));
        assert!(frozen.has_edge_between(n(2), n(1)));
        assert!(!frozen.has_edge_between(n(0), n(3)));
    }

    #[test]
    fn empty_and_isolated_graphs_freeze() {
        let empty = MultiGraph::new(0).freeze();
        assert_eq!(empty.node_count(), 0);
        assert!(empty.is_empty());
        assert_eq!(empty.max_degree(), 0);

        let isolated = MultiGraph::new(3).freeze();
        assert_eq!(isolated.degree(n(1)), 0);
        assert!(isolated.incident_edges(n(2)).is_empty());
        assert!(isolated.distinct_neighbors(n(0)).is_empty());
    }

    #[test]
    fn endpoint_table_is_dense_and_sentinel_padded() {
        let frozen = sample().freeze();
        let table = frozen.endpoint_table();
        assert_eq!(table.len(), 4);
        assert_eq!(table[0], [0, 1]);
        assert_eq!(table[2], [1, 2]); // the parallel edge keeps its own slot
                                      // Sparse IDs pad the gaps with the sentinel.
        let mut g = MultiGraph::new(3);
        g.add_edge_with_id(EdgeId::new(5), n(0), n(1)).unwrap();
        let table = g.freeze().endpoint_table();
        assert_eq!(table.len(), 6);
        assert_eq!(table[5], [0, 1]);
        assert_eq!(table[0], [CsrGraph::NO_ENDPOINT; 2]);
        assert!(MultiGraph::new(2).freeze().endpoint_table().is_empty());
    }

    #[test]
    fn topology_trait_agrees_across_backends() {
        let g = sample();
        let frozen = g.freeze();
        fn census<T: Topology>(view: &T) -> (usize, Vec<usize>) {
            (
                view.node_count(),
                view.nodes().map(|v| view.degree(v)).collect(),
            )
        }
        assert_eq!(census(&g), census(&frozen));
        assert!(Topology::check_node(&frozen, n(3)).is_ok());
        assert!(Topology::check_node(&frozen, n(4)).is_err());
    }
}
