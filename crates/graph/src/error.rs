//! Error type shared by the graph substrate.

use crate::{EdgeId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced by graph construction, contraction and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node index was outside the graph's node range.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// An edge identifier is not present in the graph.
    UnknownEdge {
        /// The offending edge identifier.
        edge: EdgeId,
    },
    /// An edge identifier was inserted twice.
    DuplicateEdgeId {
        /// The duplicated edge identifier.
        edge: EdgeId,
    },
    /// A self-loop was supplied where the operation requires loop-free input.
    SelfLoop {
        /// The node carrying the loop.
        node: NodeId,
    },
    /// The operation requires a connected graph but the input is disconnected.
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
    /// A parameter supplied to a generator or analysis routine is invalid.
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
    /// A cluster assignment referenced a cluster index outside its range.
    ClusterOutOfRange {
        /// The offending cluster index.
        cluster: usize,
        /// Number of clusters declared by the assignment.
        cluster_count: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} is out of range for a graph with {node_count} nodes")
            }
            GraphError::UnknownEdge { edge } => write!(f, "edge {edge} does not exist"),
            GraphError::DuplicateEdgeId { edge } => {
                write!(f, "edge id {edge} was inserted more than once")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop at {node} is not allowed here")
            }
            GraphError::Disconnected { components } => {
                write!(f, "graph is disconnected ({components} components)")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
            GraphError::ClusterOutOfRange { cluster, cluster_count } => write!(
                f,
                "cluster index {cluster} is out of range for an assignment with {cluster_count} clusters"
            ),
        }
    }
}

impl Error for GraphError {}

impl GraphError {
    /// Convenience constructor for [`GraphError::InvalidParameter`].
    pub fn invalid_parameter(reason: impl Into<String>) -> Self {
        GraphError::InvalidParameter {
            reason: reason.into(),
        }
    }
}

/// Result alias used by the graph substrate.
pub type GraphResult<T> = Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offender() {
        let err = GraphError::NodeOutOfRange {
            node: NodeId::new(9),
            node_count: 4,
        };
        assert!(err.to_string().contains("v9"));
        assert!(err.to_string().contains('4'));

        let err = GraphError::UnknownEdge {
            edge: EdgeId::new(5),
        };
        assert!(err.to_string().contains("e5"));

        let err = GraphError::invalid_parameter("p must be in [0, 1]");
        assert!(err.to_string().contains("p must be in [0, 1]"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GraphError::SelfLoop {
                node: NodeId::new(1)
            },
            GraphError::SelfLoop {
                node: NodeId::new(1)
            }
        );
        assert_ne!(
            GraphError::Disconnected { components: 2 },
            GraphError::Disconnected { components: 3 }
        );
    }
}
