//! Deterministic graph families with known structure.

use super::GeneratorConfig;
use crate::error::{GraphError, GraphResult};
use crate::multigraph::MultiGraph;
use crate::NodeId;

/// Path `0 – 1 – … – (n-1)`.
///
/// # Errors
///
/// Returns an error if fewer than one node is requested.
pub fn path_graph(config: &GeneratorConfig) -> GraphResult<MultiGraph> {
    config.require_at_least(1)?;
    let mut graph = MultiGraph::with_capacity(config.nodes, config.nodes.saturating_sub(1));
    for i in 1..config.nodes {
        graph.add_edge(NodeId::from_usize(i - 1), NodeId::from_usize(i))?;
    }
    Ok(graph)
}

/// Cycle on `n ≥ 3` nodes.
///
/// # Errors
///
/// Returns an error if fewer than three nodes are requested.
pub fn cycle_graph(config: &GeneratorConfig) -> GraphResult<MultiGraph> {
    config.require_at_least(3)?;
    let mut graph = path_graph(config)?;
    graph.add_edge(NodeId::from_usize(config.nodes - 1), NodeId::new(0))?;
    Ok(graph)
}

/// Complete graph `K_n` — the densest workload (`m = n(n-1)/2`), where the
/// paper's `o(m)` message bound is most dramatic.
///
/// # Errors
///
/// Returns an error if fewer than one node is requested.
pub fn complete_graph(config: &GeneratorConfig) -> GraphResult<MultiGraph> {
    config.require_at_least(1)?;
    let n = config.nodes;
    let mut graph = MultiGraph::with_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            graph.add_edge(NodeId::from_usize(u), NodeId::from_usize(v))?;
        }
    }
    Ok(graph)
}

/// Star with node 0 as the center.
///
/// # Errors
///
/// Returns an error if fewer than two nodes are requested.
pub fn star_graph(config: &GeneratorConfig) -> GraphResult<MultiGraph> {
    config.require_at_least(2)?;
    let mut graph = MultiGraph::with_capacity(config.nodes, config.nodes - 1);
    for i in 1..config.nodes {
        graph.add_edge(NodeId::new(0), NodeId::from_usize(i))?;
    }
    Ok(graph)
}

/// Balanced binary tree with `n` nodes (node `i` is the child of
/// `(i - 1) / 2`).
///
/// # Errors
///
/// Returns an error if fewer than one node is requested.
pub fn balanced_binary_tree(config: &GeneratorConfig) -> GraphResult<MultiGraph> {
    config.require_at_least(1)?;
    let mut graph = MultiGraph::with_capacity(config.nodes, config.nodes.saturating_sub(1));
    for i in 1..config.nodes {
        graph.add_edge(NodeId::from_usize((i - 1) / 2), NodeId::from_usize(i))?;
    }
    Ok(graph)
}

/// Two-dimensional torus with `rows × cols` nodes (wrap-around grid).
///
/// Node `(r, c)` has index `r * cols + c`.
///
/// # Errors
///
/// Returns an error if either dimension is smaller than 3 (smaller wraps
/// would create parallel edges or self-loops).
pub fn torus_2d(rows: usize, cols: usize) -> GraphResult<MultiGraph> {
    if rows < 3 || cols < 3 {
        return Err(GraphError::invalid_parameter(
            "torus dimensions must both be at least 3 to avoid parallel wrap edges",
        ));
    }
    let n = rows * cols;
    let mut graph = MultiGraph::with_capacity(n, 2 * n);
    let id = |r: usize, c: usize| NodeId::from_usize(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            graph.add_edge(id(r, c), id(r, (c + 1) % cols))?;
            graph.add_edge(id(r, c), id((r + 1) % rows, c))?;
        }
    }
    Ok(graph)
}

/// Hypercube `Q_d` on `2^d` nodes; nodes are adjacent iff their indices
/// differ in exactly one bit.
///
/// # Errors
///
/// Returns an error if `dimension` is zero or larger than 20 (more than a
/// million nodes is outside the scope of the simulator).
pub fn hypercube(dimension: u32) -> GraphResult<MultiGraph> {
    if dimension == 0 || dimension > 20 {
        return Err(GraphError::invalid_parameter(
            "hypercube dimension must be in 1..=20",
        ));
    }
    let n = 1usize << dimension;
    let mut graph = MultiGraph::with_capacity(n, n * dimension as usize / 2);
    for u in 0..n {
        for bit in 0..dimension {
            let v = u ^ (1usize << bit);
            if v > u {
                graph.add_edge(NodeId::from_usize(u), NodeId::from_usize(v))?;
            }
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter_exact, is_connected};

    fn cfg(n: usize) -> GeneratorConfig {
        GeneratorConfig::new(n, 0)
    }

    #[test]
    fn path_properties() {
        let g = path_graph(&cfg(10)).unwrap();
        assert_eq!(g.edge_count(), 9);
        assert!(g.is_simple());
        assert_eq!(diameter_exact(&g).unwrap(), 9);
        let single = path_graph(&cfg(1)).unwrap();
        assert_eq!(single.edge_count(), 0);
        assert!(path_graph(&cfg(0)).is_err());
    }

    #[test]
    fn cycle_properties() {
        let g = cycle_graph(&cfg(8)).unwrap();
        assert_eq!(g.edge_count(), 8);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert_eq!(diameter_exact(&g).unwrap(), 4);
        assert!(cycle_graph(&cfg(2)).is_err());
    }

    #[test]
    fn complete_graph_properties() {
        let g = complete_graph(&cfg(7)).unwrap();
        assert_eq!(g.edge_count(), 21);
        assert!(g.nodes().all(|v| g.degree(v) == 6));
        assert_eq!(diameter_exact(&g).unwrap(), 1);
        assert!(g.is_simple());
    }

    #[test]
    fn star_properties() {
        let g = star_graph(&cfg(9)).unwrap();
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.degree(NodeId::new(0)), 8);
        assert_eq!(diameter_exact(&g).unwrap(), 2);
        assert!(star_graph(&cfg(1)).is_err());
    }

    #[test]
    fn binary_tree_properties() {
        let g = balanced_binary_tree(&cfg(15)).unwrap();
        assert_eq!(g.edge_count(), 14);
        assert!(is_connected(&g));
        assert!(g.max_degree() <= 3);
    }

    #[test]
    fn torus_properties() {
        let g = torus_2d(4, 5).unwrap();
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 40);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(g.is_simple());
        assert!(is_connected(&g));
        assert!(torus_2d(2, 5).is_err());
    }

    #[test]
    fn hypercube_properties() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(diameter_exact(&g).unwrap(), 4);
        assert!(hypercube(0).is_err());
        assert!(hypercube(21).is_err());
    }
}
