//! Graphs with planted community structure.
//!
//! These are the topologies where message reduction matters most: dense
//! communities mean `m = Θ(n²/κ)` while the information a LOCAL algorithm
//! needs is mostly local, so flooding every edge is maximally wasteful.

use super::GeneratorConfig;
use crate::error::{GraphError, GraphResult};
use crate::multigraph::MultiGraph;
use crate::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the planted-partition (stochastic block) model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlantedPartitionParams {
    /// Number of equally sized communities.
    pub communities: usize,
    /// Probability of an edge inside a community.
    pub intra_probability: f64,
    /// Probability of an edge between communities.
    pub inter_probability: f64,
}

impl PlantedPartitionParams {
    /// Creates a parameter set, validating the probabilities.
    ///
    /// # Errors
    ///
    /// Returns an error if either probability is outside `[0, 1]` or there
    /// are no communities.
    pub fn new(
        communities: usize,
        intra_probability: f64,
        inter_probability: f64,
    ) -> GraphResult<Self> {
        if communities == 0 {
            return Err(GraphError::invalid_parameter("need at least one community"));
        }
        for (name, p) in [("intra", intra_probability), ("inter", inter_probability)] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(GraphError::invalid_parameter(format!(
                    "{name} probability must be in [0, 1], got {p}"
                )));
            }
        }
        Ok(PlantedPartitionParams {
            communities,
            intra_probability,
            inter_probability,
        })
    }
}

/// Planted-partition graph: nodes are split into `communities` equal blocks
/// (the last block absorbs the remainder); intra-block pairs are connected
/// with `intra_probability`, inter-block pairs with `inter_probability`.
/// A Hamiltonian path inside each block plus one edge between consecutive
/// blocks guarantees connectivity.
///
/// # Errors
///
/// Returns an error if the parameters are invalid or the block size would be
/// zero.
pub fn planted_partition(
    config: &GeneratorConfig,
    params: &PlantedPartitionParams,
) -> GraphResult<MultiGraph> {
    config.require_at_least(params.communities)?;
    let n = config.nodes;
    let kappa = params.communities;
    let block = n / kappa;
    if block == 0 {
        return Err(GraphError::invalid_parameter(
            "each community must contain at least one node",
        ));
    }
    let community_of = |v: usize| (v / block).min(kappa - 1);

    let mut rng = config.rng();
    let mut graph = MultiGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let same = community_of(u) == community_of(v);
            // Backbone edges guaranteeing connectivity: consecutive nodes in a
            // block, and the first nodes of consecutive blocks.
            let backbone = (v == u + 1 && same)
                || (!same && u == community_of(u) * block && v == community_of(v) * block);
            let p = if same {
                params.intra_probability
            } else {
                params.inter_probability
            };
            if backbone || rng.gen_bool(p) {
                graph.add_edge(NodeId::from_usize(u), NodeId::from_usize(v))?;
            }
        }
    }
    Ok(graph)
}

/// Dumbbell graph: two cliques of `clique_size` nodes joined by a path
/// through the remaining `n − 2·clique_size` nodes (the path may be empty,
/// in which case the cliques are joined directly).
///
/// # Errors
///
/// Returns an error if `2·clique_size` exceeds the node count or either
/// clique would be empty.
pub fn dumbbell(config: &GeneratorConfig, clique_size: usize) -> GraphResult<MultiGraph> {
    let n = config.nodes;
    if clique_size == 0 {
        return Err(GraphError::invalid_parameter(
            "clique size must be positive",
        ));
    }
    if 2 * clique_size > n {
        return Err(GraphError::invalid_parameter(format!(
            "two cliques of size {clique_size} do not fit in {n} nodes"
        )));
    }
    let mut graph = MultiGraph::new(n);
    // Left clique: nodes [0, clique_size); right clique: [n - clique_size, n).
    for u in 0..clique_size {
        for v in (u + 1)..clique_size {
            graph.add_edge(NodeId::from_usize(u), NodeId::from_usize(v))?;
        }
    }
    let right_start = n - clique_size;
    for u in right_start..n {
        for v in (u + 1)..n {
            graph.add_edge(NodeId::from_usize(u), NodeId::from_usize(v))?;
        }
    }
    // Bridge path through the middle nodes (if any), otherwise a direct edge.
    let mut previous = clique_size - 1;
    for middle in clique_size..right_start {
        graph.add_edge(NodeId::from_usize(previous), NodeId::from_usize(middle))?;
        previous = middle;
    }
    graph.add_edge(
        NodeId::from_usize(previous),
        NodeId::from_usize(right_start),
    )?;
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter_exact, is_connected};

    #[test]
    fn planted_partition_shape() {
        let params = PlantedPartitionParams::new(4, 0.5, 0.01).unwrap();
        let g = planted_partition(&GeneratorConfig::new(120, 3), &params).unwrap();
        assert_eq!(g.node_count(), 120);
        assert!(is_connected(&g));
        assert!(g.is_simple());
        // Density should be dominated by intra-community edges: expected
        // intra ≈ 4 * C(30,2) * 0.5 = 870, inter ≈ C(120,2)-4*C(30,2) times 0.01 ≈ 54.
        let m = g.edge_count() as f64;
        assert!(m > 600.0 && m < 1300.0, "unexpected edge count {m}");
    }

    #[test]
    fn planted_partition_parameter_validation() {
        assert!(PlantedPartitionParams::new(0, 0.5, 0.1).is_err());
        assert!(PlantedPartitionParams::new(2, 1.5, 0.1).is_err());
        assert!(PlantedPartitionParams::new(2, 0.5, -0.1).is_err());
        let params = PlantedPartitionParams::new(5, 0.5, 0.1).unwrap();
        assert!(planted_partition(&GeneratorConfig::new(3, 1), &params).is_err());
    }

    #[test]
    fn dumbbell_shape() {
        let g = dumbbell(&GeneratorConfig::new(25, 10), 10).unwrap();
        assert!(is_connected(&g));
        // Two K_10 cliques plus a 5-node bridge path (6 bridge edges).
        assert_eq!(g.edge_count(), 45 + 45 + 6);
        assert!(diameter_exact(&g).unwrap() >= 6);
    }

    #[test]
    fn dumbbell_without_middle_nodes() {
        let g = dumbbell(&GeneratorConfig::new(8, 4), 4).unwrap();
        assert!(is_connected(&g));
        assert_eq!(g.edge_count(), 6 + 6 + 1);
    }

    #[test]
    fn dumbbell_parameter_validation() {
        assert!(dumbbell(&GeneratorConfig::new(5, 1), 3).is_err());
        assert!(dumbbell(&GeneratorConfig::new(5, 1), 0).is_err());
    }
}
