//! Graphs with planted community structure.
//!
//! These are the topologies where message reduction matters most: dense
//! communities mean `m = Θ(n²/κ)` while the information a LOCAL algorithm
//! needs is mostly local, so flooding every edge is maximally wasteful.

use super::GeneratorConfig;
use crate::error::{GraphError, GraphResult};
use crate::multigraph::MultiGraph;
use crate::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the planted-partition (stochastic block) model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlantedPartitionParams {
    /// Number of equally sized communities.
    pub communities: usize,
    /// Probability of an edge inside a community.
    pub intra_probability: f64,
    /// Probability of an edge between communities.
    pub inter_probability: f64,
}

impl PlantedPartitionParams {
    /// Creates a parameter set, validating the probabilities.
    ///
    /// # Errors
    ///
    /// Returns an error if either probability is outside `[0, 1]` or there
    /// are no communities.
    pub fn new(
        communities: usize,
        intra_probability: f64,
        inter_probability: f64,
    ) -> GraphResult<Self> {
        if communities == 0 {
            return Err(GraphError::invalid_parameter("need at least one community"));
        }
        for (name, p) in [("intra", intra_probability), ("inter", inter_probability)] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(GraphError::invalid_parameter(format!(
                    "{name} probability must be in [0, 1], got {p}"
                )));
            }
        }
        Ok(PlantedPartitionParams {
            communities,
            intra_probability,
            inter_probability,
        })
    }
}

/// Planted-partition graph: nodes are split into `communities` equal blocks
/// (the last block absorbs the remainder); intra-block pairs are connected
/// with `intra_probability`, inter-block pairs with `inter_probability`.
/// A Hamiltonian path inside each block plus one edge between consecutive
/// blocks guarantees connectivity.
///
/// # Errors
///
/// Returns an error if the parameters are invalid or the block size would be
/// zero.
pub fn planted_partition(
    config: &GeneratorConfig,
    params: &PlantedPartitionParams,
) -> GraphResult<MultiGraph> {
    config.require_at_least(params.communities)?;
    let n = config.nodes;
    let kappa = params.communities;
    let block = n / kappa;
    if block == 0 {
        return Err(GraphError::invalid_parameter(
            "each community must contain at least one node",
        ));
    }
    let community_of = |v: usize| (v / block).min(kappa - 1);

    let mut rng = config.rng();
    let mut graph = MultiGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let same = community_of(u) == community_of(v);
            // Backbone edges guaranteeing connectivity: consecutive nodes in a
            // block, and the first nodes of consecutive blocks.
            let backbone = (v == u + 1 && same)
                || (!same && u == community_of(u) * block && v == community_of(v) * block);
            let p = if same {
                params.intra_probability
            } else {
                params.inter_probability
            };
            if backbone || rng.gen_bool(p) {
                graph.add_edge(NodeId::from_usize(u), NodeId::from_usize(v))?;
            }
        }
    }
    Ok(graph)
}

/// Dumbbell graph: two cliques of `clique_size` nodes joined by a path
/// through the remaining `n − 2·clique_size` nodes (the path may be empty,
/// in which case the cliques are joined directly).
///
/// # Errors
///
/// Returns an error if `2·clique_size` exceeds the node count or either
/// clique would be empty.
pub fn dumbbell(config: &GeneratorConfig, clique_size: usize) -> GraphResult<MultiGraph> {
    let n = config.nodes;
    if clique_size == 0 {
        return Err(GraphError::invalid_parameter(
            "clique size must be positive",
        ));
    }
    if 2 * clique_size > n {
        return Err(GraphError::invalid_parameter(format!(
            "two cliques of size {clique_size} do not fit in {n} nodes"
        )));
    }
    let mut graph = MultiGraph::new(n);
    // Left clique: nodes [0, clique_size); right clique: [n - clique_size, n).
    for u in 0..clique_size {
        for v in (u + 1)..clique_size {
            graph.add_edge(NodeId::from_usize(u), NodeId::from_usize(v))?;
        }
    }
    let right_start = n - clique_size;
    for u in right_start..n {
        for v in (u + 1)..n {
            graph.add_edge(NodeId::from_usize(u), NodeId::from_usize(v))?;
        }
    }
    // Bridge path through the middle nodes (if any), otherwise a direct edge.
    let mut previous = clique_size - 1;
    for middle in clique_size..right_start {
        graph.add_edge(NodeId::from_usize(previous), NodeId::from_usize(middle))?;
        previous = middle;
    }
    graph.add_edge(
        NodeId::from_usize(previous),
        NodeId::from_usize(right_start),
    )?;
    Ok(graph)
}

/// Sparse planted-partition graph in `O(n + m)` expected time, parameterized
/// by *expected degrees* instead of edge probabilities.
///
/// [`planted_partition`] scans all `n²/2` pairs and is unusable at the
/// million-node scale of the engine-scaling experiments. This variant keeps
/// the same shape — `communities` equal blocks, dense inside, sparse across
/// — but samples directly:
///
/// * inside each block, pairs are drawn by geometric skip sampling with
///   `p_in = intra_degree / (block − 1)`;
/// * across blocks, `⌈n · inter_degree / 2⌉` distinct cut edges are drawn
///   by rejection sampling;
/// * a path inside each block plus one edge between consecutive blocks
///   guarantees connectivity, as in the dense variant.
///
/// # Errors
///
/// Returns an error if the block size would be zero, a degree is negative
/// or not finite, `intra_degree` is at least `block − 1`, or the rejection
/// sampler cannot place the requested number of cut edges (only possible
/// for extreme `inter_degree`).
pub fn sparse_planted_partition(
    config: &GeneratorConfig,
    communities: usize,
    intra_degree: f64,
    inter_degree: f64,
) -> GraphResult<MultiGraph> {
    if communities == 0 {
        return Err(GraphError::invalid_parameter("need at least one community"));
    }
    config.require_at_least(communities)?;
    let n = config.nodes;
    let kappa = communities;
    let block = n / kappa;
    if block == 0 {
        return Err(GraphError::invalid_parameter(
            "each community must contain at least one node",
        ));
    }
    for (name, d) in [("intra", intra_degree), ("inter", inter_degree)] {
        if !d.is_finite() || d < 0.0 {
            return Err(GraphError::invalid_parameter(format!(
                "{name} degree must be finite and non-negative, got {d}"
            )));
        }
    }
    if block > 1 && intra_degree >= (block - 1) as f64 {
        return Err(GraphError::invalid_parameter(format!(
            "intra degree {intra_degree} too close to the block size {block}; use planted_partition"
        )));
    }
    let community_of = |v: usize| (v / block).min(kappa - 1);
    // Block c covers [starts[c], starts[c + 1]); the last block absorbs the
    // remainder.
    let start_of = |c: usize| c * block;
    let end_of = |c: usize| if c + 1 == kappa { n } else { (c + 1) * block };

    let mut rng = config.rng();
    let expected_edges = n + (n as f64 * (intra_degree + inter_degree) / 2.0).ceil() as usize;
    let mut graph = MultiGraph::with_capacity(n, expected_edges);
    let mut present: std::collections::HashSet<(usize, usize)> =
        std::collections::HashSet::with_capacity(expected_edges);
    let add = |graph: &mut MultiGraph,
               present: &mut std::collections::HashSet<(usize, usize)>,
               u: usize,
               v: usize|
     -> GraphResult<bool> {
        let key = (u.min(v), u.max(v));
        if present.insert(key) {
            graph.add_edge(NodeId::from_usize(key.0), NodeId::from_usize(key.1))?;
            Ok(true)
        } else {
            Ok(false)
        }
    };

    // Connectivity backbone: a path inside each block, one edge between the
    // first nodes of consecutive blocks.
    for c in 0..kappa {
        for v in start_of(c) + 1..end_of(c) {
            add(&mut graph, &mut present, v - 1, v)?;
        }
        if c + 1 < kappa {
            add(&mut graph, &mut present, start_of(c), start_of(c + 1))?;
        }
    }

    // Intra-community edges by geometric skip sampling, block by block.
    if block > 1 && intra_degree > 0.0 {
        let p = intra_degree / (block - 1) as f64;
        let log_q = (1.0 - p).ln();
        for c in 0..kappa {
            let base = start_of(c);
            let size = end_of(c) - base;
            let mut v: usize = 1;
            let mut w: i64 = -1;
            while v < size {
                let r: f64 = rng.gen();
                let skip = ((1.0 - r).ln() / log_q).floor() as i64;
                w = w.saturating_add(1).saturating_add(skip.max(0));
                while v < size && w >= v as i64 {
                    w -= v as i64;
                    v += 1;
                }
                if v < size {
                    add(&mut graph, &mut present, base + w as usize, base + v)?;
                }
            }
        }
    }

    // Inter-community cut edges by rejection sampling.
    if kappa > 1 && inter_degree > 0.0 {
        let target = (n as f64 * inter_degree / 2.0).ceil() as usize;
        let mut placed = 0usize;
        let mut attempts = 0usize;
        let budget = 100 * target + 1000;
        while placed < target {
            attempts += 1;
            if attempts > budget {
                return Err(GraphError::invalid_parameter(format!(
                    "failed to place {target} inter-community edges within the retry budget"
                )));
            }
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if community_of(u) == community_of(v) {
                continue;
            }
            if add(&mut graph, &mut present, u, v)? {
                placed += 1;
            }
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter_exact, is_connected};

    #[test]
    fn sparse_planted_partition_shape_and_density() {
        let n = 2048;
        let g = sparse_planted_partition(&GeneratorConfig::new(n, 5), 8, 12.0, 1.0).unwrap();
        assert_eq!(g.node_count(), n);
        assert!(is_connected(&g));
        assert!(g.is_simple());
        let expected = n as f64 * (12.0 + 1.0) / 2.0;
        let actual = g.edge_count() as f64;
        assert!(
            (actual - expected).abs() < 0.25 * expected,
            "edge count {actual} far from {expected}"
        );
        // Communities are denser inside than across: count cut edges.
        let block = n / 8;
        let cut = g
            .edges()
            .filter(|e| e.u.index() / block != e.v.index() / block)
            .count();
        assert!(cut * 4 < g.edge_count(), "cut edges {cut} not sparse");
    }

    #[test]
    fn sparse_planted_partition_is_deterministic_and_validates() {
        let a = sparse_planted_partition(&GeneratorConfig::new(256, 9), 4, 6.0, 0.5).unwrap();
        let b = sparse_planted_partition(&GeneratorConfig::new(256, 9), 4, 6.0, 0.5).unwrap();
        let ea: Vec<_> = a.edges().map(|e| (e.u, e.v)).collect();
        let eb: Vec<_> = b.edges().map(|e| (e.u, e.v)).collect();
        assert_eq!(ea, eb);

        let cfg = GeneratorConfig::new(64, 1);
        assert!(sparse_planted_partition(&cfg, 0, 1.0, 1.0).is_err());
        assert!(sparse_planted_partition(&cfg, 128, 1.0, 1.0).is_err());
        assert!(sparse_planted_partition(&cfg, 2, -1.0, 1.0).is_err());
        assert!(sparse_planted_partition(&cfg, 2, 1.0, f64::INFINITY).is_err());
        assert!(sparse_planted_partition(&cfg, 2, 40.0, 1.0).is_err());
        // Single community degenerates to sparse ER inside one block.
        let single = sparse_planted_partition(&cfg, 1, 4.0, 0.0).unwrap();
        assert!(is_connected(&single));
    }

    #[test]
    fn planted_partition_shape() {
        let params = PlantedPartitionParams::new(4, 0.5, 0.01).unwrap();
        let g = planted_partition(&GeneratorConfig::new(120, 3), &params).unwrap();
        assert_eq!(g.node_count(), 120);
        assert!(is_connected(&g));
        assert!(g.is_simple());
        // Density should be dominated by intra-community edges: expected
        // intra ≈ 4 * C(30,2) * 0.5 = 870, inter ≈ C(120,2)-4*C(30,2) times 0.01 ≈ 54.
        let m = g.edge_count() as f64;
        assert!(m > 600.0 && m < 1300.0, "unexpected edge count {m}");
    }

    #[test]
    fn planted_partition_parameter_validation() {
        assert!(PlantedPartitionParams::new(0, 0.5, 0.1).is_err());
        assert!(PlantedPartitionParams::new(2, 1.5, 0.1).is_err());
        assert!(PlantedPartitionParams::new(2, 0.5, -0.1).is_err());
        let params = PlantedPartitionParams::new(5, 0.5, 0.1).unwrap();
        assert!(planted_partition(&GeneratorConfig::new(3, 1), &params).is_err());
    }

    #[test]
    fn dumbbell_shape() {
        let g = dumbbell(&GeneratorConfig::new(25, 10), 10).unwrap();
        assert!(is_connected(&g));
        // Two K_10 cliques plus a 5-node bridge path (6 bridge edges).
        assert_eq!(g.edge_count(), 45 + 45 + 6);
        assert!(diameter_exact(&g).unwrap() >= 6);
    }

    #[test]
    fn dumbbell_without_middle_nodes() {
        let g = dumbbell(&GeneratorConfig::new(8, 4), 4).unwrap();
        assert!(is_connected(&g));
        assert_eq!(g.edge_count(), 6 + 6 + 1);
    }

    #[test]
    fn dumbbell_parameter_validation() {
        assert!(dumbbell(&GeneratorConfig::new(5, 1), 3).is_err());
        assert!(dumbbell(&GeneratorConfig::new(5, 1), 0).is_err());
    }
}
