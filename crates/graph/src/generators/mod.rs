//! Graph generators used as workloads for the experiments.
//!
//! The paper targets the regime `m ≫ n` (dense communication graphs), where
//! sending `Ω(m)` messages is expensive; its guarantees must nevertheless
//! hold on any connected graph. The generators therefore cover:
//!
//! * deterministic topologies with known structure (`classic`): paths,
//!   cycles, complete graphs, stars, balanced trees, 2-D tori, hypercubes;
//! * random graphs (`random`): Erdős–Rényi `G(n, p)` and `G(n, m)`,
//!   random regular graphs, and connected variants;
//! * heavy-tailed degree distributions (`scale_free`): Barabási–Albert
//!   preferential attachment;
//! * community structure (`community`): planted-partition graphs and
//!   dumbbells (two dense cliques joined by a sparse bridge) — the worst
//!   cases for naive flooding-based simulation.
//!
//! All generators are deterministic functions of a [`GeneratorConfig`]
//! (node count + seed), so every experiment row is reproducible.

mod classic;
mod community;
mod random;
mod scale_free;

pub use classic::{
    balanced_binary_tree, complete_graph, cycle_graph, hypercube, path_graph, star_graph, torus_2d,
};
pub use community::{
    dumbbell, planted_partition, sparse_planted_partition, PlantedPartitionParams,
};
pub use random::{
    connected_erdos_renyi, erdos_renyi, gnm_random, random_regular, sparse_connected_erdos_renyi,
};
pub use scale_free::barabasi_albert;

use crate::error::{GraphError, GraphResult};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Common configuration shared by all generators: the number of nodes and the
/// seed of the deterministic random stream.
///
/// # Examples
///
/// ```
/// use freelunch_graph::generators::{erdos_renyi, GeneratorConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = GeneratorConfig::new(64, 42);
/// let a = erdos_renyi(&config, 0.3)?;
/// let b = erdos_renyi(&config, 0.3)?;
/// assert_eq!(a.edge_count(), b.edge_count()); // same seed ⇒ same graph
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of nodes of the generated graph.
    pub nodes: usize,
    /// Seed of the generator's random stream (ignored by deterministic
    /// topologies).
    pub seed: u64,
}

impl GeneratorConfig {
    /// Creates a configuration for `nodes` nodes with the given `seed`.
    pub const fn new(nodes: usize, seed: u64) -> Self {
        GeneratorConfig { nodes, seed }
    }

    /// Instantiates the deterministic RNG for this configuration.
    pub(crate) fn rng(&self) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.seed)
    }

    /// Validates that the configuration asks for at least `min_nodes` nodes.
    pub(crate) fn require_at_least(&self, min_nodes: usize) -> GraphResult<()> {
        if self.nodes < min_nodes {
            Err(GraphError::invalid_parameter(format!(
                "generator requires at least {min_nodes} nodes, got {}",
                self.nodes
            )))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn config_is_deterministic() {
        let config = GeneratorConfig::new(50, 7);
        let a = erdos_renyi(&config, 0.2).unwrap();
        let b = erdos_renyi(&config, 0.2).unwrap();
        let edges_a: Vec<_> = a.edges().map(|e| (e.u, e.v)).collect();
        let edges_b: Vec<_> = b.edges().map(|e| (e.u, e.v)).collect();
        assert_eq!(edges_a, edges_b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = erdos_renyi(&GeneratorConfig::new(60, 1), 0.3).unwrap();
        let b = erdos_renyi(&GeneratorConfig::new(60, 2), 0.3).unwrap();
        let edges_a: Vec<_> = a.edges().map(|e| (e.u, e.v)).collect();
        let edges_b: Vec<_> = b.edges().map(|e| (e.u, e.v)).collect();
        assert_ne!(edges_a, edges_b);
    }

    #[test]
    fn require_at_least_enforced() {
        let config = GeneratorConfig::new(1, 0);
        assert!(config.require_at_least(2).is_err());
        assert!(config.require_at_least(1).is_ok());
    }

    #[test]
    fn all_generators_produce_graphs_with_requested_node_count() {
        let config = GeneratorConfig::new(32, 3);
        assert_eq!(path_graph(&config).unwrap().node_count(), 32);
        assert_eq!(cycle_graph(&config).unwrap().node_count(), 32);
        assert_eq!(complete_graph(&config).unwrap().node_count(), 32);
        assert_eq!(star_graph(&config).unwrap().node_count(), 32);
        assert_eq!(hypercube(5).unwrap().node_count(), 32);
        assert_eq!(
            connected_erdos_renyi(&config, 0.1).unwrap().node_count(),
            32
        );
        assert_eq!(barabasi_albert(&config, 3).unwrap().node_count(), 32);
    }

    #[test]
    fn connected_generators_are_connected() {
        let config = GeneratorConfig::new(40, 11);
        assert!(is_connected(&connected_erdos_renyi(&config, 0.05).unwrap()));
        assert!(is_connected(&barabasi_albert(&config, 2).unwrap()));
        assert!(is_connected(&complete_graph(&config).unwrap()));
        assert!(is_connected(
            &dumbbell(&GeneratorConfig::new(41, 1), 15).unwrap()
        ));
    }
}
