//! Random graph models: Erdős–Rényi, fixed edge count, random regular.

use super::GeneratorConfig;
use crate::error::{GraphError, GraphResult};
use crate::multigraph::MultiGraph;
use crate::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

fn check_probability(p: f64) -> GraphResult<()> {
    if (0.0..=1.0).contains(&p) && p.is_finite() {
        Ok(())
    } else {
        Err(GraphError::invalid_parameter(format!(
            "edge probability must be in [0, 1], got {p}"
        )))
    }
}

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`. Not necessarily connected — see
/// [`connected_erdos_renyi`] for the connected variant used by the
/// experiments.
///
/// # Errors
///
/// Returns an error if `p` is outside `[0, 1]` or fewer than one node is
/// requested.
pub fn erdos_renyi(config: &GeneratorConfig, p: f64) -> GraphResult<MultiGraph> {
    config.require_at_least(1)?;
    check_probability(p)?;
    let n = config.nodes;
    let mut rng = config.rng();
    let expected = (p * (n * n.saturating_sub(1)) as f64 / 2.0).ceil() as usize;
    let mut graph = MultiGraph::with_capacity(n, expected);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                graph.add_edge(NodeId::from_usize(u), NodeId::from_usize(v))?;
            }
        }
    }
    Ok(graph)
}

/// Erdős–Rényi `G(n, p)` forced to be connected by first adding a random
/// Hamiltonian path (a standard trick that changes the edge count by at most
/// `n − 1` and keeps the density profile).
///
/// # Errors
///
/// Same conditions as [`erdos_renyi`].
pub fn connected_erdos_renyi(config: &GeneratorConfig, p: f64) -> GraphResult<MultiGraph> {
    config.require_at_least(1)?;
    check_probability(p)?;
    let n = config.nodes;
    let mut rng = config.rng();

    // Random Hamiltonian path guaranteeing connectivity.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut backbone: Vec<(usize, usize)> = Vec::with_capacity(n.saturating_sub(1));
    for w in order.windows(2) {
        backbone.push((w[0].min(w[1]), w[0].max(w[1])));
    }
    backbone.sort_unstable();

    let mut graph = MultiGraph::new(n);
    let mut backbone_iter = backbone.iter().peekable();
    for u in 0..n {
        for v in (u + 1)..n {
            let on_backbone = matches!(backbone_iter.peek(), Some(&&(a, b)) if (a, b) == (u, v));
            if on_backbone {
                backbone_iter.next();
            }
            if on_backbone || rng.gen_bool(p) {
                graph.add_edge(NodeId::from_usize(u), NodeId::from_usize(v))?;
            }
        }
    }
    Ok(graph)
}

/// Sparse connected Erdős–Rényi graph in `O(n + m)` expected time,
/// parameterized by the *expected average degree* instead of the edge
/// probability.
///
/// The quadratic pair scan of [`connected_erdos_renyi`] is fine up to a few
/// thousand nodes but hopeless at the million-node scale the scaling
/// experiments target; this variant uses Batagelj–Brandes geometric skip
/// sampling (each skip length is drawn from the geometric distribution of
/// the gap between successive successes of a Bernoulli process), so the
/// work is proportional to the number of edges actually produced.
/// Connectivity is guaranteed by a random Hamiltonian path, exactly as in
/// the dense variant.
///
/// The distribution matches `G(n, p)` with `p = expected_degree / (n − 1)`
/// (conditioned on the backbone), but the *stream of random draws* differs
/// from [`connected_erdos_renyi`], so equal seeds do not produce equal
/// graphs across the two functions.
///
/// # Errors
///
/// Returns an error if fewer than one node is requested or
/// `expected_degree` is negative, not finite, or at least `n − 1` (use the
/// dense generator for that regime).
pub fn sparse_connected_erdos_renyi(
    config: &GeneratorConfig,
    expected_degree: f64,
) -> GraphResult<MultiGraph> {
    config.require_at_least(1)?;
    let n = config.nodes;
    if !expected_degree.is_finite() || expected_degree < 0.0 {
        return Err(GraphError::invalid_parameter(format!(
            "expected degree must be finite and non-negative, got {expected_degree}"
        )));
    }
    if n > 1 && expected_degree >= (n - 1) as f64 {
        return Err(GraphError::invalid_parameter(format!(
            "expected degree {expected_degree} too close to n - 1 = {}; use connected_erdos_renyi",
            n - 1
        )));
    }
    let p = if n > 1 {
        expected_degree / (n - 1) as f64
    } else {
        0.0
    };
    let mut rng = config.rng();

    // Random Hamiltonian path guaranteeing connectivity.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut present: std::collections::HashSet<(usize, usize)> =
        std::collections::HashSet::with_capacity(n + (expected_degree * n as f64 / 2.0) as usize);
    let expected_edges = n + (expected_degree * n as f64 / 2.0) as usize;
    let mut graph = MultiGraph::with_capacity(n, expected_edges);
    for w in order.windows(2) {
        let key = (w[0].min(w[1]), w[0].max(w[1]));
        present.insert(key);
        graph.add_edge(NodeId::from_usize(key.0), NodeId::from_usize(key.1))?;
    }
    if p <= 0.0 {
        return Ok(graph);
    }

    // Batagelj–Brandes skip sampling over the upper-triangle pairs (w, v)
    // with w < v: jump ahead by a geometrically distributed gap instead of
    // flipping a coin per pair.
    let log_q = (1.0 - p).ln();
    let mut v: usize = 1;
    let mut w: i64 = -1;
    while v < n {
        let r: f64 = rng.gen();
        // `as i64` saturates for huge ratios (tiny p, r near 1), and the
        // saturating adds keep the accumulated position from overflowing.
        let skip = ((1.0 - r).ln() / log_q).floor() as i64;
        w = w.saturating_add(1).saturating_add(skip.max(0));
        while v < n && w >= v as i64 {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            let key = (w as usize, v);
            if present.insert(key) {
                graph.add_edge(NodeId::from_usize(key.0), NodeId::from_usize(key.1))?;
            }
        }
    }
    Ok(graph)
}

/// Uniform random graph with exactly `m` distinct edges (`G(n, m)` model).
///
/// # Errors
///
/// Returns an error if `m` exceeds `n(n-1)/2` or fewer than one node is
/// requested.
pub fn gnm_random(config: &GeneratorConfig, m: usize) -> GraphResult<MultiGraph> {
    config.require_at_least(1)?;
    let n = config.nodes;
    let max_edges = n * n.saturating_sub(1) / 2;
    if m > max_edges {
        return Err(GraphError::invalid_parameter(format!(
            "requested {m} edges but an {n}-node simple graph has at most {max_edges}"
        )));
    }
    let mut rng = config.rng();
    let mut graph = MultiGraph::with_capacity(n, m);
    let mut present = std::collections::HashSet::with_capacity(m);
    while present.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if present.insert(key) {
            graph.add_edge(NodeId::from_usize(key.0), NodeId::from_usize(key.1))?;
        }
    }
    Ok(graph)
}

/// Random `d`-regular graph sampled Steger–Wormald style: repeatedly pick two
/// random remaining stubs and accept the pair if it creates neither a
/// self-loop nor a parallel edge; restart the pairing if it gets stuck.
///
/// # Errors
///
/// Returns an error if `n·d` is odd, `d ≥ n`, or a simple pairing could not
/// be found within the retry budget (only likely for extreme parameters).
pub fn random_regular(config: &GeneratorConfig, degree: usize) -> GraphResult<MultiGraph> {
    config.require_at_least(2)?;
    let n = config.nodes;
    if degree >= n {
        return Err(GraphError::invalid_parameter(format!(
            "degree {degree} must be smaller than the node count {n}"
        )));
    }
    if !(n * degree).is_multiple_of(2) {
        return Err(GraphError::invalid_parameter(
            "n * degree must be even for a regular graph",
        ));
    }
    if degree == 0 {
        return Ok(MultiGraph::new(n));
    }

    let mut rng = config.rng();
    const MAX_ATTEMPTS: usize = 500;
    'attempt: for _ in 0..MAX_ATTEMPTS {
        let mut remaining: Vec<usize> = (0..n)
            .flat_map(|v| std::iter::repeat_n(v, degree))
            .collect();
        let mut seen = std::collections::HashSet::with_capacity(n * degree / 2);
        let mut edges = Vec::with_capacity(n * degree / 2);
        while !remaining.is_empty() {
            // Try a bounded number of random pairs before declaring the
            // pairing stuck and restarting from scratch.
            let mut placed = false;
            for _ in 0..20 * remaining.len() {
                let i = rng.gen_range(0..remaining.len());
                let mut j = rng.gen_range(0..remaining.len());
                if remaining.len() > 1 {
                    while j == i {
                        j = rng.gen_range(0..remaining.len());
                    }
                }
                let (u, v) = (remaining[i], remaining[j]);
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if seen.contains(&key) {
                    continue;
                }
                seen.insert(key);
                edges.push(key);
                // Remove the two stubs (larger index first so the smaller
                // index stays valid).
                let (first, second) = if i > j { (i, j) } else { (j, i) };
                remaining.swap_remove(first);
                remaining.swap_remove(second);
                placed = true;
                break;
            }
            if !placed {
                continue 'attempt;
            }
        }
        let mut graph = MultiGraph::with_capacity(n, edges.len());
        for (u, v) in edges {
            graph.add_edge(NodeId::from_usize(u), NodeId::from_usize(v))?;
        }
        return Ok(graph);
    }
    Err(GraphError::invalid_parameter(format!(
        "failed to sample a simple {degree}-regular graph on {n} nodes within the retry budget"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    fn cfg(n: usize, seed: u64) -> GeneratorConfig {
        GeneratorConfig::new(n, seed)
    }

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        let empty = erdos_renyi(&cfg(20, 1), 0.0).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(&cfg(20, 1), 1.0).unwrap();
        assert_eq!(full.edge_count(), 20 * 19 / 2);
        assert!(erdos_renyi(&cfg(20, 1), 1.5).is_err());
        assert!(erdos_renyi(&cfg(20, 1), -0.1).is_err());
        assert!(erdos_renyi(&cfg(20, 1), f64::NAN).is_err());
    }

    #[test]
    fn erdos_renyi_density_is_plausible() {
        let n = 200;
        let p = 0.1;
        let g = erdos_renyi(&cfg(n, 3), p).unwrap();
        let expected = p * (n * (n - 1)) as f64 / 2.0;
        let actual = g.edge_count() as f64;
        assert!(
            (actual - expected).abs() < 0.25 * expected,
            "edge count {actual} far from {expected}"
        );
        assert!(g.is_simple());
    }

    #[test]
    fn connected_variant_is_connected_even_when_sparse() {
        for seed in 0..5 {
            let g = connected_erdos_renyi(&cfg(100, seed), 0.001).unwrap();
            assert!(
                is_connected(&g),
                "seed {seed} produced a disconnected graph"
            );
            assert!(g.is_simple());
            assert!(g.edge_count() >= 99);
        }
    }

    #[test]
    fn connected_variant_matches_density_when_dense() {
        let n = 150;
        let g = connected_erdos_renyi(&cfg(n, 9), 0.2).unwrap();
        let expected = 0.2 * (n * (n - 1)) as f64 / 2.0;
        assert!((g.edge_count() as f64) < 1.3 * expected + n as f64);
        assert!((g.edge_count() as f64) > 0.7 * expected);
    }

    #[test]
    fn sparse_variant_is_connected_simple_and_near_target_density() {
        let n = 2000;
        let degree = 8.0;
        let g = sparse_connected_erdos_renyi(&cfg(n, 11), degree).unwrap();
        assert!(is_connected(&g));
        assert!(g.is_simple());
        // n − 1 backbone edges plus ≈ n·degree/2 sampled ones (minus the
        // small overlap with the backbone).
        let expected = (n - 1) as f64 + degree * n as f64 / 2.0;
        let actual = g.edge_count() as f64;
        assert!(
            (actual - expected).abs() < 0.2 * expected,
            "edge count {actual} far from {expected}"
        );
    }

    #[test]
    fn sparse_variant_is_deterministic_and_validates_parameters() {
        let a = sparse_connected_erdos_renyi(&cfg(300, 4), 6.0).unwrap();
        let b = sparse_connected_erdos_renyi(&cfg(300, 4), 6.0).unwrap();
        let ea: Vec<_> = a.edges().map(|e| (e.u, e.v)).collect();
        let eb: Vec<_> = b.edges().map(|e| (e.u, e.v)).collect();
        assert_eq!(ea, eb);

        // Degree 0 degenerates to the backbone path.
        let path = sparse_connected_erdos_renyi(&cfg(50, 1), 0.0).unwrap();
        assert_eq!(path.edge_count(), 49);
        assert!(is_connected(&path));
        assert_eq!(
            sparse_connected_erdos_renyi(&cfg(1, 1), 0.0)
                .unwrap()
                .edge_count(),
            0
        );

        assert!(sparse_connected_erdos_renyi(&cfg(10, 1), -1.0).is_err());
        assert!(sparse_connected_erdos_renyi(&cfg(10, 1), f64::NAN).is_err());
        assert!(sparse_connected_erdos_renyi(&cfg(10, 1), 9.0).is_err());
        assert!(sparse_connected_erdos_renyi(&cfg(0, 1), 1.0).is_err());
    }

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = gnm_random(&cfg(50, 4), 300).unwrap();
        assert_eq!(g.edge_count(), 300);
        assert!(g.is_simple());
        assert!(gnm_random(&cfg(10, 4), 100).is_err());
        assert_eq!(gnm_random(&cfg(10, 4), 0).unwrap().edge_count(), 0);
    }

    #[test]
    fn random_regular_is_regular_and_simple() {
        let g = random_regular(&cfg(60, 5), 4).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(g.is_simple());
    }

    #[test]
    fn random_regular_parameter_validation() {
        assert!(random_regular(&cfg(5, 1), 5).is_err());
        assert!(random_regular(&cfg(5, 1), 3).is_err()); // 5*3 odd
        assert_eq!(random_regular(&cfg(6, 1), 0).unwrap().edge_count(), 0);
    }

    #[test]
    fn regular_graph_has_expected_edge_count() {
        let g = random_regular(&cfg(40, 2), 6).unwrap();
        assert_eq!(g.edge_count(), 40 * 6 / 2);
    }
}
