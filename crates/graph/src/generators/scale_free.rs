//! Scale-free graphs via Barabási–Albert preferential attachment.

use super::GeneratorConfig;
use crate::error::{GraphError, GraphResult};
use crate::multigraph::MultiGraph;
use crate::NodeId;
use rand::Rng;

/// Barabási–Albert preferential-attachment graph: starts from a clique on
/// `attachment + 1` nodes, then every new node attaches to `attachment`
/// distinct existing nodes chosen proportionally to their current degree.
///
/// The result is connected and simple, with a heavy-tailed degree
/// distribution — a useful stress test because the `Sampler` edge-sampling
/// process must cope with neighbors of wildly different "volumes".
///
/// # Errors
///
/// Returns an error if `attachment` is zero or at least the node count.
pub fn barabasi_albert(config: &GeneratorConfig, attachment: usize) -> GraphResult<MultiGraph> {
    config.require_at_least(2)?;
    let n = config.nodes;
    if attachment == 0 {
        return Err(GraphError::invalid_parameter("attachment must be positive"));
    }
    if attachment >= n {
        return Err(GraphError::invalid_parameter(format!(
            "attachment {attachment} must be smaller than the node count {n}"
        )));
    }

    let mut rng = config.rng();
    let mut graph = MultiGraph::with_capacity(n, attachment * n);

    // Seed clique on attachment + 1 nodes (or fewer if n is small).
    let seed_size = (attachment + 1).min(n);
    for u in 0..seed_size {
        for v in (u + 1)..seed_size {
            graph.add_edge(NodeId::from_usize(u), NodeId::from_usize(v))?;
        }
    }

    // Degree-proportional sampling via the repeated-endpoint list.
    let mut endpoint_pool: Vec<usize> = Vec::with_capacity(2 * attachment * n);
    for edge in graph.edges() {
        endpoint_pool.push(edge.u.index());
        endpoint_pool.push(edge.v.index());
    }

    for new_node in seed_size..n {
        let mut targets = std::collections::HashSet::with_capacity(attachment);
        // Rejection-sample distinct targets; the pool is never empty because
        // the seed clique has at least one edge.
        let mut guard = 0usize;
        while targets.len() < attachment.min(new_node) {
            let pick = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            targets.insert(pick);
            guard += 1;
            if guard > 100 * attachment * (new_node + 1) {
                return Err(GraphError::invalid_parameter(
                    "preferential attachment failed to find distinct targets",
                ));
            }
        }
        let mut sorted: Vec<usize> = targets.into_iter().collect();
        sorted.sort_unstable();
        for target in sorted {
            graph.add_edge(NodeId::from_usize(new_node), NodeId::from_usize(target))?;
            endpoint_pool.push(new_node);
            endpoint_pool.push(target);
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn basic_shape() {
        let g = barabasi_albert(&GeneratorConfig::new(100, 5), 3).unwrap();
        assert_eq!(g.node_count(), 100);
        assert!(g.is_simple());
        assert!(is_connected(&g));
        // Seed clique: 4 nodes, 6 edges; then 96 nodes × 3 edges.
        assert_eq!(g.edge_count(), 6 + 96 * 3);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = barabasi_albert(&GeneratorConfig::new(300, 1), 2).unwrap();
        let degrees = g.degree_sequence();
        let max = degrees[0];
        let median = degrees[degrees.len() / 2];
        assert!(
            max >= 4 * median,
            "expected a heavy tail, max={max} median={median}"
        );
    }

    #[test]
    fn parameter_validation() {
        assert!(barabasi_albert(&GeneratorConfig::new(10, 1), 0).is_err());
        assert!(barabasi_albert(&GeneratorConfig::new(10, 1), 10).is_err());
        assert!(barabasi_albert(&GeneratorConfig::new(1, 1), 1).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = barabasi_albert(&GeneratorConfig::new(80, 9), 2).unwrap();
        let b = barabasi_albert(&GeneratorConfig::new(80, 9), 2).unwrap();
        let ea: Vec<_> = a.edges().map(|e| (e.u, e.v)).collect();
        let eb: Vec<_> = b.edges().map(|e| (e.u, e.v)).collect();
        assert_eq!(ea, eb);
    }
}
