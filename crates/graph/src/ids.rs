//! Strongly-typed identifiers used throughout the workspace.
//!
//! The LOCAL model variant studied in the paper assumes *unique edge IDs*
//! known to both endpoints of every edge (Section 1.1, assumption (ii)).
//! [`EdgeId`] is therefore a first-class identifier that survives cluster
//! contraction: an edge of the cluster graph `G_{j+1}` keeps the ID of the
//! crossing edge of `G_j` it corresponds to, and ultimately maps back to an
//! edge of the original communication graph `G_0`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`MultiGraph`](crate::MultiGraph).
///
/// Nodes of an `n`-node graph are always the contiguous range `0..n`; the
/// newtype exists to prevent accidental mixing with cluster indices or edge
/// IDs.
///
/// # Examples
///
/// ```
/// use freelunch_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from its index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Creates a node identifier from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_usize(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the raw index as `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the index as `usize`, suitable for indexing adjacency arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

/// Unique identifier of an edge.
///
/// Edge IDs are unique *within a graph and across all cluster graphs derived
/// from it*: contracting a graph keeps the IDs of the surviving crossing
/// edges. Both endpoints of an edge know its ID, which is exactly the model
/// assumption the paper's `Sampler` algorithm exploits.
///
/// # Examples
///
/// ```
/// use freelunch_graph::EdgeId;
/// let e = EdgeId::new(42);
/// assert_eq!(e.raw(), 42);
/// assert_eq!(format!("{e}"), "e42");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct EdgeId(u64);

impl EdgeId {
    /// Creates an edge identifier from its raw value.
    #[inline]
    pub const fn new(id: u64) -> Self {
        EdgeId(id)
    }

    /// Returns the raw identifier.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the identifier as `usize` (for dense per-edge tables).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u64> for EdgeId {
    fn from(value: u64) -> Self {
        EdgeId(value)
    }
}

impl From<EdgeId> for u64 {
    fn from(value: EdgeId) -> Self {
        value.0
    }
}

/// Identifier of a cluster in a cluster collection `C` (Section 2).
///
/// Clusters are indexed contiguously `0..l`; after contraction the cluster
/// with `ClusterId(i)` becomes node `NodeId(i)` of the cluster graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClusterId(u32);

impl ClusterId {
    /// Creates a cluster identifier from its index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ClusterId(index)
    }

    /// Creates a cluster identifier from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_usize(index: usize) -> Self {
        ClusterId(u32::try_from(index).expect("cluster index exceeds u32::MAX"))
    }

    /// Returns the raw index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the index as `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the node of the cluster graph this cluster becomes after
    /// contraction.
    #[inline]
    pub const fn as_node(self) -> NodeId {
        NodeId::new(self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl From<u32> for ClusterId {
    fn from(value: u32) -> Self {
        ClusterId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::new(17);
        assert_eq!(v.raw(), 17);
        assert_eq!(v.index(), 17);
        assert_eq!(NodeId::from(17u32), v);
        assert_eq!(u32::from(v), 17);
        assert_eq!(NodeId::from_usize(17), v);
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::new(123456789);
        assert_eq!(e.raw(), 123456789);
        assert_eq!(EdgeId::from(123456789u64), e);
        assert_eq!(u64::from(e), 123456789);
    }

    #[test]
    fn cluster_id_becomes_node() {
        let c = ClusterId::new(9);
        assert_eq!(c.as_node(), NodeId::new(9));
        assert_eq!(ClusterId::from_usize(9), c);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(0).to_string(), "v0");
        assert_eq!(EdgeId::new(7).to_string(), "e7");
        assert_eq!(ClusterId::new(2).to_string(), "C2");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let set: HashSet<NodeId> = (0..10).map(NodeId::new).collect();
        assert_eq!(set.len(), 10);
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(1) < EdgeId::new(2));
        assert!(ClusterId::new(1) < ClusterId::new(2));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
        assert_eq!(EdgeId::default(), EdgeId::new(0));
        assert_eq!(ClusterId::default(), ClusterId::new(0));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn from_usize_overflow_panics() {
        let _ = NodeId::from_usize(usize::MAX);
    }
}
