//! # freelunch-graph
//!
//! Graph substrate for the reproduction of *"Message Reduction in the LOCAL
//! Model Is a Free Lunch"* (Bitton, Emek, Izumi, Kutten; DISC 2019).
//!
//! The crate provides everything the paper's algorithms assume about the
//! communication graph:
//!
//! * [`MultiGraph`] — an undirected graph with **unique edge IDs** and
//!   native support for **parallel edges**, matching the model assumption of
//!   Section 1.1 and the cluster graphs of Section 2;
//! * [`CsrGraph`] — the frozen compressed-sparse-row view produced by
//!   [`MultiGraph::freeze`]: packed incidence arrays, memoized
//!   distinct-neighbor sets and array-indexed edge lookup for the hot loops
//!   of the runtime and the traversal routines ([`Topology`] abstracts over
//!   both representations);
//! * [`OverlayGraph`] — the mutable overlay over a frozen [`CsrGraph`] that
//!   the runtime's churn plane applies edge/node updates to without a
//!   re-freeze per event;
//! * [`cluster`] — cluster collections and the cluster-graph contraction
//!   `G(C)` used between the levels of the `Sampler` hierarchy;
//! * [`traversal`] — BFS distances, balls `B_{G,t}(v)`, connectivity and
//!   diameter computations;
//! * [`spanner_check`] — verification that an edge set really is an
//!   `α`-spanner (per-edge stretch) and estimation of pairwise stretch;
//! * [`generators`] — deterministic and random graph families used as
//!   experiment workloads.
//!
//! # Examples
//!
//! Build a dense random graph, take a subset of its edges, and measure the
//! stretch of the resulting subgraph:
//!
//! ```
//! use freelunch_graph::generators::{connected_erdos_renyi, GeneratorConfig};
//! use freelunch_graph::spanner_check::verify_edge_stretch;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = connected_erdos_renyi(&GeneratorConfig::new(100, 1), 0.3)?;
//! // The full edge set is trivially a 1-spanner.
//! let report = verify_edge_stretch(&graph, graph.edge_ids())?;
//! assert!(report.satisfies(1));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod csr;
pub mod error;
pub mod generators;
pub mod multigraph;
pub mod overlay;
pub mod spanner_check;
pub mod traversal;

mod ids;

pub use csr::{CsrGraph, Topology};
pub use error::{GraphError, GraphResult};
pub use ids::{ClusterId, EdgeId, NodeId};
pub use multigraph::{Edge, IncidentEdge, MultiGraph};
pub use overlay::OverlayGraph;
