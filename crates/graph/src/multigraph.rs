//! The [`MultiGraph`] substrate: an undirected graph with unique edge IDs and
//! support for parallel edges.
//!
//! The paper's `Sampler` algorithm operates on a sequence `G_0, G_1, …, G_k`
//! of graphs where `G_{j+1}` is the *cluster graph* induced by contracting
//! clusters of `G_j`. Even when the communication graph `G_0` is simple, the
//! cluster graphs typically contain edge multiplicities (Section 2), so the
//! substrate must represent parallel edges natively and preserve unique edge
//! IDs across contraction.

use crate::error::{GraphError, GraphResult};
use crate::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An undirected edge with its unique identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Unique identifier of the edge (known to both endpoints in the model).
    pub id: EdgeId,
    /// First endpoint.
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
}

impl Edge {
    /// Returns the endpoint different from `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of this edge.
    pub fn other(&self, node: NodeId) -> NodeId {
        if node == self.u {
            self.v
        } else if node == self.v {
            self.u
        } else {
            panic!("{node} is not an endpoint of edge {}", self.id)
        }
    }

    /// Returns `true` if `node` is one of the endpoints.
    pub fn touches(&self, node: NodeId) -> bool {
        self.u == node || self.v == node
    }
}

/// An entry of a node's adjacency list: an incident edge together with the
/// opposite endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IncidentEdge {
    /// The incident edge.
    pub edge: EdgeId,
    /// The other endpoint of the edge.
    pub neighbor: NodeId,
}

/// An undirected multigraph with unique edge identifiers.
///
/// Nodes are the contiguous range `0..node_count`. Parallel edges are
/// allowed; self-loops are rejected (a node never needs to send itself a
/// message in the LOCAL model). Edge identifiers may either be assigned
/// automatically ([`MultiGraph::add_edge`]) or supplied explicitly
/// ([`MultiGraph::add_edge_with_id`]) — the latter is what cluster
/// contraction uses to preserve IDs across levels.
///
/// # Examples
///
/// ```
/// use freelunch_graph::{MultiGraph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = MultiGraph::new(3);
/// let e01 = g.add_edge(NodeId::new(0), NodeId::new(1))?;
/// let e12 = g.add_edge(NodeId::new(1), NodeId::new(2))?;
/// // a parallel edge between the same endpoints:
/// let e01b = g.add_edge(NodeId::new(0), NodeId::new(1))?;
///
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.degree(NodeId::new(1)), 3);
/// assert_eq!(g.distinct_neighbors(NodeId::new(1)).len(), 2);
/// assert_eq!(g.edges_between(NodeId::new(0), NodeId::new(1)), vec![e01, e01b]);
/// assert_eq!(g.other_endpoint(e12, NodeId::new(2))?, NodeId::new(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MultiGraph {
    node_count: usize,
    edges: Vec<Edge>,
    edge_index: HashMap<EdgeId, usize>,
    adjacency: Vec<Vec<IncidentEdge>>,
    next_edge_id: u64,
}

impl MultiGraph {
    /// Creates an empty graph with `node_count` isolated nodes.
    pub fn new(node_count: usize) -> Self {
        MultiGraph {
            node_count,
            edges: Vec::new(),
            edge_index: HashMap::new(),
            adjacency: vec![Vec::new(); node_count],
            next_edge_id: 0,
        }
    }

    /// Creates an empty graph with room for `edge_capacity` edges.
    pub fn with_capacity(node_count: usize, edge_capacity: usize) -> Self {
        MultiGraph {
            node_count,
            edges: Vec::with_capacity(edge_capacity),
            edge_index: HashMap::with_capacity(edge_capacity),
            adjacency: vec![Vec::new(); node_count],
            next_edge_id: 0,
        }
    }

    /// Builds a graph from an edge list, assigning sequential edge IDs in the
    /// order given.
    ///
    /// # Errors
    ///
    /// Returns an error if any endpoint is out of range or an edge is a
    /// self-loop.
    pub fn from_edges(
        node_count: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> GraphResult<Self> {
        let mut graph = MultiGraph::new(node_count);
        for (u, v) in edges {
            graph.add_edge(u, v)?;
        }
        Ok(graph)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges, counting multiplicities.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterator over all node identifiers `0..node_count`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count as u32).map(NodeId::new)
    }

    /// Iterator over all edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter()
    }

    /// Iterator over all edge identifiers in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().map(|e| e.id)
    }

    /// Checks that `node` is a valid node of this graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] otherwise.
    pub fn check_node(&self, node: NodeId) -> GraphResult<()> {
        if node.index() < self.node_count {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node,
                node_count: self.node_count,
            })
        }
    }

    /// Adds an edge between `u` and `v`, assigning the next free edge ID.
    ///
    /// Parallel edges are permitted.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> GraphResult<EdgeId> {
        let id = EdgeId::new(self.next_edge_id);
        self.add_edge_with_id(id, u, v)?;
        Ok(id)
    }

    /// Adds an edge with an explicitly chosen identifier.
    ///
    /// Cluster contraction uses this to let edges of `G_{j+1}` keep the IDs of
    /// the crossing edges of `G_j` they correspond to.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of range, `u == v`, or the
    /// identifier is already present.
    pub fn add_edge_with_id(&mut self, id: EdgeId, u: NodeId, v: NodeId) -> GraphResult<()> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.edge_index.contains_key(&id) {
            return Err(GraphError::DuplicateEdgeId { edge: id });
        }
        let idx = self.edges.len();
        self.edges.push(Edge { id, u, v });
        self.edge_index.insert(id, idx);
        self.adjacency[u.index()].push(IncidentEdge {
            edge: id,
            neighbor: v,
        });
        self.adjacency[v.index()].push(IncidentEdge {
            edge: id,
            neighbor: u,
        });
        self.next_edge_id = self.next_edge_id.max(id.raw() + 1);
        Ok(())
    }

    /// Removes the edge with identifier `id` and returns it.
    ///
    /// Removal is `O(deg(u) + deg(v))`. The relative storage order of the
    /// remaining edges is **unspecified** afterwards (removal swaps the last
    /// edge into the vacated slot), so code that relies on
    /// [`MultiGraph::edges`] iterating in insertion order must not observe a
    /// graph after removals. Adjacency lists keep their relative order. The
    /// removed identifier may be reused by a later
    /// [`MultiGraph::add_edge_with_id`], but [`MultiGraph::add_edge`] never
    /// hands it out again.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownEdge`] if no such edge exists.
    pub fn remove_edge(&mut self, id: EdgeId) -> GraphResult<Edge> {
        let idx = self
            .edge_index
            .remove(&id)
            .ok_or(GraphError::UnknownEdge { edge: id })?;
        let removed = self.edges.swap_remove(idx);
        if let Some(moved) = self.edges.get(idx) {
            self.edge_index.insert(moved.id, idx);
        }
        self.adjacency[removed.u.index()].retain(|ie| ie.edge != id);
        self.adjacency[removed.v.index()].retain(|ie| ie.edge != id);
        Ok(removed)
    }

    /// Returns `true` if the graph contains an edge with identifier `id`.
    pub fn contains_edge(&self, id: EdgeId) -> bool {
        self.edge_index.contains_key(&id)
    }

    /// Returns the edge with identifier `id`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownEdge`] if no such edge exists.
    pub fn edge(&self, id: EdgeId) -> GraphResult<&Edge> {
        self.edge_index
            .get(&id)
            .map(|&idx| &self.edges[idx])
            .ok_or(GraphError::UnknownEdge { edge: id })
    }

    /// Returns the endpoints of an edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownEdge`] if no such edge exists.
    pub fn endpoints(&self, id: EdgeId) -> GraphResult<(NodeId, NodeId)> {
        self.edge(id).map(|e| (e.u, e.v))
    }

    /// Returns the endpoint of edge `id` that is not `node`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownEdge`] if the edge does not exist, or
    /// [`GraphError::NodeOutOfRange`] if `node` is not an endpoint.
    pub fn other_endpoint(&self, id: EdgeId, node: NodeId) -> GraphResult<NodeId> {
        let edge = self.edge(id)?;
        if edge.u == node {
            Ok(edge.v)
        } else if edge.v == node {
            Ok(edge.u)
        } else {
            Err(GraphError::NodeOutOfRange {
                node,
                node_count: self.node_count,
            })
        }
    }

    /// Degree of `node`, counting parallel edges with multiplicity.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// The adjacency list of `node`: every incident edge with its opposite
    /// endpoint, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn incident_edges(&self, node: NodeId) -> &[IncidentEdge] {
        &self.adjacency[node.index()]
    }

    /// The set of distinct neighbors of `node`, sorted by node index.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn distinct_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut neighbors: Vec<NodeId> = self.adjacency[node.index()]
            .iter()
            .map(|ie| ie.neighbor)
            .collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        neighbors
    }

    /// Number of distinct neighbors of `node` (`|N_j(v)|` in the paper).
    pub fn distinct_neighbor_count(&self, node: NodeId) -> usize {
        self.distinct_neighbors(node).len()
    }

    /// All edges connecting `u` and `v` (`E_j(u, v)` in the paper), in
    /// insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn edges_between(&self, u: NodeId, v: NodeId) -> Vec<EdgeId> {
        self.adjacency[u.index()]
            .iter()
            .filter(|ie| ie.neighbor == v)
            .map(|ie| ie.edge)
            .collect()
    }

    /// Returns `true` if at least one edge connects `u` and `v`.
    pub fn has_edge_between(&self, u: NodeId, v: NodeId) -> bool {
        self.adjacency[u.index()].iter().any(|ie| ie.neighbor == v)
    }

    /// Returns `true` if the graph has neither parallel edges nor (by
    /// construction) self-loops.
    pub fn is_simple(&self) -> bool {
        for node in self.nodes() {
            let mut neighbors: Vec<NodeId> = self.adjacency[node.index()]
                .iter()
                .map(|ie| ie.neighbor)
                .collect();
            neighbors.sort_unstable();
            let before = neighbors.len();
            neighbors.dedup();
            if neighbors.len() != before {
                return false;
            }
        }
        true
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average degree `2m / n` (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.node_count == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.node_count as f64
        }
    }

    /// The degree sequence, sorted descending.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut degrees: Vec<usize> = self.adjacency.iter().map(Vec::len).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        degrees
    }

    /// Returns a simple graph with the same connectivity: for every pair of
    /// adjacent nodes, exactly one representative edge (the one with the
    /// smallest ID) is kept with its original identifier.
    pub fn to_simple(&self) -> MultiGraph {
        let mut keep: HashMap<(NodeId, NodeId), EdgeId> = HashMap::new();
        for edge in &self.edges {
            let key = if edge.u <= edge.v {
                (edge.u, edge.v)
            } else {
                (edge.v, edge.u)
            };
            keep.entry(key)
                .and_modify(|best| *best = (*best).min(edge.id))
                .or_insert(edge.id);
        }
        let mut kept: Vec<(EdgeId, NodeId, NodeId)> =
            keep.into_iter().map(|((u, v), id)| (id, u, v)).collect();
        kept.sort_unstable_by_key(|(id, _, _)| *id);
        let mut simple = MultiGraph::new(self.node_count);
        for (id, u, v) in kept {
            simple
                .add_edge_with_id(id, u, v)
                .expect("edges of a valid graph remain valid when deduplicated");
        }
        simple
    }

    /// Returns the subgraph containing exactly the edges in `edge_ids`
    /// (node set unchanged). Unknown edge IDs are reported as errors.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownEdge`] if any requested edge is absent.
    pub fn edge_subgraph(
        &self,
        edge_ids: impl IntoIterator<Item = EdgeId>,
    ) -> GraphResult<MultiGraph> {
        let mut sub = MultiGraph::new(self.node_count);
        let mut ids: Vec<EdgeId> = edge_ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            let edge = self.edge(id)?;
            sub.add_edge_with_id(edge.id, edge.u, edge.v)?;
        }
        Ok(sub)
    }

    /// Total number of (node, incident edge) pairs, i.e. `2m`. Useful for
    /// message accounting sanity checks.
    pub fn incidence_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn triangle() -> MultiGraph {
        MultiGraph::from_edges(3, [(n(0), n(1)), (n(1), n(2)), (n(2), n(0))]).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = MultiGraph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert!(g.is_simple());
        assert_eq!(g.nodes().count(), 5);
    }

    #[test]
    fn zero_node_graph() {
        let g = MultiGraph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn add_edge_assigns_sequential_ids() {
        let g = triangle();
        let ids: Vec<u64> = g.edge_ids().map(EdgeId::raw).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle();
        for node in g.nodes() {
            assert_eq!(g.degree(node), 2);
            assert_eq!(g.distinct_neighbor_count(node), 2);
        }
        assert_eq!(g.distinct_neighbors(n(0)), vec![n(1), n(2)]);
        assert_eq!(g.incidence_count(), 6);
    }

    #[test]
    fn parallel_edges_are_supported() {
        let mut g = MultiGraph::new(2);
        let a = g.add_edge(n(0), n(1)).unwrap();
        let b = g.add_edge(n(0), n(1)).unwrap();
        let c = g.add_edge(n(1), n(0)).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(n(0)), 3);
        assert_eq!(g.distinct_neighbor_count(n(0)), 1);
        assert_eq!(g.edges_between(n(0), n(1)), vec![a, b, c]);
        assert!(!g.is_simple());
        assert!(g.has_edge_between(n(1), n(0)));
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = MultiGraph::new(2);
        assert_eq!(
            g.add_edge(n(0), n(0)),
            Err(GraphError::SelfLoop { node: n(0) })
        );
    }

    #[test]
    fn out_of_range_endpoint_rejected() {
        let mut g = MultiGraph::new(2);
        let err = g.add_edge(n(0), n(5)).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: n(5),
                node_count: 2
            }
        );
    }

    #[test]
    fn duplicate_edge_id_rejected() {
        let mut g = MultiGraph::new(3);
        g.add_edge_with_id(EdgeId::new(7), n(0), n(1)).unwrap();
        let err = g.add_edge_with_id(EdgeId::new(7), n(1), n(2)).unwrap_err();
        assert_eq!(
            err,
            GraphError::DuplicateEdgeId {
                edge: EdgeId::new(7)
            }
        );
    }

    #[test]
    fn explicit_ids_advance_auto_counter() {
        let mut g = MultiGraph::new(3);
        g.add_edge_with_id(EdgeId::new(10), n(0), n(1)).unwrap();
        let next = g.add_edge(n(1), n(2)).unwrap();
        assert_eq!(next, EdgeId::new(11));
    }

    #[test]
    fn endpoints_and_other_endpoint() {
        let g = triangle();
        let (u, v) = g.endpoints(EdgeId::new(0)).unwrap();
        assert_eq!((u, v), (n(0), n(1)));
        assert_eq!(g.other_endpoint(EdgeId::new(0), n(0)).unwrap(), n(1));
        assert_eq!(g.other_endpoint(EdgeId::new(0), n(1)).unwrap(), n(0));
        assert!(g.other_endpoint(EdgeId::new(0), n(2)).is_err());
        assert!(g.endpoints(EdgeId::new(99)).is_err());
    }

    #[test]
    fn edge_lookup() {
        let g = triangle();
        assert!(g.contains_edge(EdgeId::new(2)));
        assert!(!g.contains_edge(EdgeId::new(3)));
        let edge = g.edge(EdgeId::new(1)).unwrap();
        assert!(edge.touches(n(1)));
        assert!(edge.touches(n(2)));
        assert!(!edge.touches(n(0)));
        assert_eq!(edge.other(n(1)), n(2));
    }

    #[test]
    #[should_panic(expected = "is not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let g = triangle();
        let edge = *g.edge(EdgeId::new(0)).unwrap();
        let _ = edge.other(n(2));
    }

    #[test]
    fn to_simple_collapses_parallels() {
        let mut g = MultiGraph::new(3);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        let s = g.to_simple();
        assert_eq!(s.edge_count(), 2);
        assert!(s.is_simple());
        // The smallest edge id between 0 and 1 survives.
        assert_eq!(s.edges_between(n(0), n(1)), vec![EdgeId::new(0)]);
    }

    #[test]
    fn edge_subgraph_selects_edges() {
        let g = triangle();
        let sub = g
            .edge_subgraph([EdgeId::new(0), EdgeId::new(2), EdgeId::new(0)])
            .unwrap();
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(sub.node_count(), 3);
        assert!(sub.has_edge_between(n(0), n(1)));
        assert!(sub.has_edge_between(n(0), n(2)));
        assert!(!sub.has_edge_between(n(1), n(2)));
        assert!(g.edge_subgraph([EdgeId::new(42)]).is_err());
    }

    #[test]
    fn degree_sequence_sorted_descending() {
        let mut g = MultiGraph::new(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(0), n(2)).unwrap();
        g.add_edge(n(0), n(3)).unwrap();
        assert_eq!(g.degree_sequence(), vec![3, 1, 1, 1]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_edges_propagates_errors() {
        assert!(MultiGraph::from_edges(2, [(n(0), n(0))]).is_err());
        assert!(MultiGraph::from_edges(2, [(n(0), n(3))]).is_err());
    }

    #[test]
    fn remove_edge_detaches_both_endpoints() {
        let mut g = triangle();
        let removed = g.remove_edge(EdgeId::new(1)).unwrap();
        assert_eq!((removed.u, removed.v), (n(1), n(2)));
        assert_eq!(g.edge_count(), 2);
        assert!(!g.contains_edge(EdgeId::new(1)));
        assert!(!g.has_edge_between(n(1), n(2)));
        assert_eq!(g.degree(n(1)), 1);
        assert_eq!(g.degree(n(2)), 1);
        // The surviving edges are still addressable after the swap-remove.
        assert_eq!(g.endpoints(EdgeId::new(0)).unwrap(), (n(0), n(1)));
        assert_eq!(g.endpoints(EdgeId::new(2)).unwrap(), (n(2), n(0)));
        assert!(g.remove_edge(EdgeId::new(1)).is_err());
    }

    #[test]
    fn remove_edge_keeps_parallel_siblings() {
        let mut g = MultiGraph::new(2);
        let a = g.add_edge(n(0), n(1)).unwrap();
        let b = g.add_edge(n(0), n(1)).unwrap();
        g.remove_edge(a).unwrap();
        assert_eq!(g.edges_between(n(0), n(1)), vec![b]);
        assert_eq!(g.degree(n(0)), 1);
        // The auto-ID counter does not reuse the removed identifier.
        let c = g.add_edge(n(0), n(1)).unwrap();
        assert_eq!(c, EdgeId::new(2));
        // ... but explicit re-insertion of a removed ID is allowed.
        g.add_edge_with_id(a, n(0), n(1)).unwrap();
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn remove_then_add_round_trips_the_adjacency() {
        let mut g = triangle();
        for id in [0u64, 1, 2] {
            let e = g.remove_edge(EdgeId::new(id)).unwrap();
            g.add_edge_with_id(e.id, e.u, e.v).unwrap();
        }
        assert_eq!(g.edge_count(), 3);
        for node in g.nodes() {
            assert_eq!(g.degree(node), 2);
        }
        assert_eq!(g.incidence_count(), 6);
    }
}
