//! A mutable overlay over a frozen [`CsrGraph`], for dynamic-graph (churn)
//! executions.
//!
//! The runtime freezes its communication graph once ([`MultiGraph::freeze`])
//! and keeps the packed [`CsrGraph`] as its only copy — the right trade for
//! static executions, but a churn stream needs edge inserts/deletes and node
//! joins/leaves *between* rounds without paying a full re-freeze per event.
//! [`OverlayGraph`] is that middle ground: it clones the frozen incidence
//! lists into per-node `Vec`s once at construction and then applies events
//! in place, while keeping the deterministic iteration orders every
//! bit-identity test depends on:
//!
//! * adjacency lists preserve CSR (= insertion) order; inserted edges append,
//!   deleted edges are filtered out in place;
//! * the live-edge set iterates in ascending [`EdgeId`] order (a `BTreeMap`),
//!   so rebuild comparators and ledger sizing see a canonical edge sequence;
//! * node activity is a plain `Vec<bool>` — leaves deactivate, joins
//!   reactivate, and the node ID space never changes (the LOCAL model's
//!   `0..n` range stays the address space, as in the runtime's crash plane).
//!
//! The overlay implements [`Topology`], so traversal routines and spanner
//! verifiers run on it unchanged, and [`OverlayGraph::to_multigraph`]
//! materializes the current live graph for from-scratch rebuild baselines.
//!
//! # Examples
//!
//! ```
//! use freelunch_graph::overlay::OverlayGraph;
//! use freelunch_graph::{MultiGraph, NodeId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = MultiGraph::new(3);
//! let e01 = g.add_edge(NodeId::new(0), NodeId::new(1))?;
//! g.add_edge(NodeId::new(1), NodeId::new(2))?;
//! let frozen = g.freeze();
//!
//! let mut overlay = OverlayGraph::new(&frozen);
//! overlay.remove_edge(e01)?;
//! let e02 = overlay.insert_edge(NodeId::new(0), NodeId::new(2))?;
//! assert_eq!(overlay.live_edge_count(), 2);
//! assert_eq!(overlay.edge_endpoints(e02), Some((NodeId::new(0), NodeId::new(2))));
//! # Ok(())
//! # }
//! ```

use crate::csr::{CsrGraph, Topology};
use crate::error::{GraphError, GraphResult};
use crate::multigraph::{IncidentEdge, MultiGraph};
use crate::{EdgeId, NodeId};
use std::collections::BTreeMap;

/// A mutable edge/node-activity overlay over a frozen [`CsrGraph`].
///
/// See the [module docs](self) for the ordering guarantees.
#[derive(Debug, Clone)]
pub struct OverlayGraph {
    /// Per-node incidence lists, initially cloned from the CSR slices.
    adjacency: Vec<Vec<IncidentEdge>>,
    /// Node activity: `false` for nodes that have left the network.
    active: Vec<bool>,
    /// Live edges in ascending-ID order.
    live: BTreeMap<EdgeId, (NodeId, NodeId)>,
    /// Next automatically assigned edge ID (never reuses a seen ID).
    next_edge_id: u64,
}

impl OverlayGraph {
    /// Builds the overlay mirroring `base` exactly: every edge live, every
    /// node active.
    pub fn new(base: &CsrGraph) -> Self {
        let n = base.node_count();
        let adjacency = (0..n as u32)
            .map(|v| base.incident_edges(NodeId::new(v)).to_vec())
            .collect();
        let mut live = BTreeMap::new();
        let mut next_edge_id = 0u64;
        for edge in base.edges() {
            live.insert(edge.id, (edge.u, edge.v));
            next_edge_id = next_edge_id.max(edge.id.raw() + 1);
        }
        OverlayGraph {
            adjacency,
            active: vec![true; n],
            live,
            next_edge_id,
        }
    }

    /// Number of nodes (the fixed `0..n` address space, active or not).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of live edges.
    #[inline]
    pub fn live_edge_count(&self) -> usize {
        self.live.len()
    }

    /// Whether `node` is currently active (has not left the network).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn is_active(&self, node: NodeId) -> bool {
        self.active[node.index()]
    }

    /// Number of currently active nodes.
    pub fn active_node_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// The incidence list of `node` over the live edge set, in CSR-then-
    /// insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn incident_edges(&self, node: NodeId) -> &[IncidentEdge] {
        &self.adjacency[node.index()]
    }

    /// The endpoints of a live edge, or `None` if the edge is not live.
    #[inline]
    pub fn edge_endpoints(&self, edge: EdgeId) -> Option<(NodeId, NodeId)> {
        self.live.get(&edge).copied()
    }

    /// Iterator over the live edges in ascending [`EdgeId`] order.
    pub fn live_edges(&self) -> impl Iterator<Item = (EdgeId, (NodeId, NodeId))> + '_ {
        self.live.iter().map(|(&id, &endpoints)| (id, endpoints))
    }

    /// One past the largest edge ID ever live in this overlay — the dense
    /// per-edge table size (ledger slots, endpoint tables) that addresses
    /// every edge the execution can have seen.
    pub fn edge_slot_count(&self) -> usize {
        self.next_edge_id as usize
    }

    /// Inserts an edge with the next free identifier and returns it.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of range or `u == v`.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> GraphResult<EdgeId> {
        let id = EdgeId::new(self.next_edge_id);
        self.insert_edge_with_id(id, u, v)?;
        Ok(id)
    }

    /// Inserts an edge with an explicitly chosen identifier, as a scheduled
    /// churn event does.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of range, `u == v`, or the
    /// identifier is already live.
    pub fn insert_edge_with_id(&mut self, id: EdgeId, u: NodeId, v: NodeId) -> GraphResult<()> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.live.contains_key(&id) {
            return Err(GraphError::DuplicateEdgeId { edge: id });
        }
        self.live.insert(id, (u, v));
        self.adjacency[u.index()].push(IncidentEdge {
            edge: id,
            neighbor: v,
        });
        self.adjacency[v.index()].push(IncidentEdge {
            edge: id,
            neighbor: u,
        });
        self.next_edge_id = self.next_edge_id.max(id.raw() + 1);
        Ok(())
    }

    /// Removes a live edge and returns its endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownEdge`] if the edge is not live.
    pub fn remove_edge(&mut self, edge: EdgeId) -> GraphResult<(NodeId, NodeId)> {
        let (u, v) = self
            .live
            .remove(&edge)
            .ok_or(GraphError::UnknownEdge { edge })?;
        self.adjacency[u.index()].retain(|ie| ie.edge != edge);
        self.adjacency[v.index()].retain(|ie| ie.edge != edge);
        Ok((u, v))
    }

    /// Marks `node` as having left the network. Its incident live edges are
    /// untouched — a churn driver deletes them explicitly (in canonical
    /// order) so the accounting sees every removal.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if `node` is out of range.
    pub fn deactivate_node(&mut self, node: NodeId) -> GraphResult<()> {
        self.check_node(node)?;
        self.active[node.index()] = false;
        Ok(())
    }

    /// Marks `node` as active again (a join of a previously departed node).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if `node` is out of range.
    pub fn activate_node(&mut self, node: NodeId) -> GraphResult<()> {
        self.check_node(node)?;
        self.active[node.index()] = true;
        Ok(())
    }

    /// Materializes the current live graph (all nodes, live edges in
    /// ascending-ID order) — the input a from-scratch rebuild baseline runs
    /// on.
    pub fn to_multigraph(&self) -> MultiGraph {
        let mut graph = MultiGraph::with_capacity(self.node_count(), self.live.len());
        for (&id, &(u, v)) in &self.live {
            graph
                .add_edge_with_id(id, u, v)
                .expect("live overlay edges are valid by construction");
        }
        graph
    }
}

impl Topology for OverlayGraph {
    fn node_count(&self) -> usize {
        OverlayGraph::node_count(self)
    }

    fn incident_edges(&self, node: NodeId) -> &[IncidentEdge] {
        OverlayGraph::incident_edges(self, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn base() -> CsrGraph {
        let mut g = MultiGraph::new(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        g.freeze()
    }

    #[test]
    fn fresh_overlay_mirrors_the_base() {
        let frozen = base();
        let overlay = OverlayGraph::new(&frozen);
        assert_eq!(overlay.node_count(), 4);
        assert_eq!(overlay.live_edge_count(), 3);
        assert_eq!(overlay.active_node_count(), 4);
        assert_eq!(overlay.edge_slot_count(), 3);
        for v in frozen.nodes() {
            assert_eq!(overlay.incident_edges(v), frozen.incident_edges(v));
            assert!(overlay.is_active(v));
        }
        let ids: Vec<EdgeId> = overlay.live_edges().map(|(id, _)| id).collect();
        assert_eq!(ids, frozen.edge_ids().collect::<Vec<_>>());
    }

    #[test]
    fn insert_and_remove_update_both_endpoints() {
        let mut overlay = OverlayGraph::new(&base());
        let id = overlay.insert_edge(n(0), n(3)).unwrap();
        assert_eq!(id, EdgeId::new(3));
        assert_eq!(overlay.edge_endpoints(id), Some((n(0), n(3))));
        assert_eq!(overlay.incident_edges(n(0)).len(), 2);
        assert_eq!(overlay.incident_edges(n(3)).len(), 2);

        overlay.remove_edge(EdgeId::new(1)).unwrap();
        assert_eq!(overlay.edge_endpoints(EdgeId::new(1)), None);
        assert_eq!(overlay.incident_edges(n(1)).len(), 1);
        assert_eq!(overlay.incident_edges(n(2)).len(), 1);
        assert!(overlay.remove_edge(EdgeId::new(1)).is_err());
        // The slot space still covers the deleted edge.
        assert_eq!(overlay.edge_slot_count(), 4);
    }

    #[test]
    fn invalid_mutations_are_rejected() {
        let mut overlay = OverlayGraph::new(&base());
        assert!(matches!(
            overlay.insert_edge(n(0), n(0)),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            overlay.insert_edge(n(0), n(9)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            overlay.insert_edge_with_id(EdgeId::new(0), n(0), n(2)),
            Err(GraphError::DuplicateEdgeId { .. })
        ));
        assert!(overlay.deactivate_node(n(9)).is_err());
    }

    #[test]
    fn node_activity_toggles_without_touching_edges() {
        let mut overlay = OverlayGraph::new(&base());
        overlay.deactivate_node(n(1)).unwrap();
        assert!(!overlay.is_active(n(1)));
        assert_eq!(overlay.active_node_count(), 3);
        // Edge deletion is the driver's job; deactivation alone keeps them.
        assert_eq!(overlay.incident_edges(n(1)).len(), 2);
        overlay.activate_node(n(1)).unwrap();
        assert!(overlay.is_active(n(1)));
    }

    #[test]
    fn to_multigraph_materializes_the_live_graph() {
        let mut overlay = OverlayGraph::new(&base());
        overlay.remove_edge(EdgeId::new(0)).unwrap();
        let id = overlay.insert_edge(n(0), n(2)).unwrap();
        let graph = overlay.to_multigraph();
        assert_eq!(graph.node_count(), 4);
        assert_eq!(graph.edge_count(), 3);
        assert!(!graph.contains_edge(EdgeId::new(0)));
        assert_eq!(graph.endpoints(id).unwrap(), (n(0), n(2)));
        // Ascending-ID insertion order.
        let ids: Vec<u64> = graph.edge_ids().map(EdgeId::raw).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn explicit_ids_advance_the_auto_counter() {
        let mut overlay = OverlayGraph::new(&base());
        overlay
            .insert_edge_with_id(EdgeId::new(10), n(0), n(2))
            .unwrap();
        let next = overlay.insert_edge(n(1), n(3)).unwrap();
        assert_eq!(next, EdgeId::new(11));
        assert_eq!(overlay.edge_slot_count(), 12);
    }

    #[test]
    fn topology_trait_runs_traversals_on_the_overlay() {
        let mut overlay = OverlayGraph::new(&base());
        overlay.remove_edge(EdgeId::new(2)).unwrap();
        let distances = crate::traversal::bfs_distances(&overlay, n(0)).unwrap();
        assert_eq!(distances[2], Some(2));
        assert_eq!(distances[3], None);
    }
}
