//! Spanner verification: measuring the stretch actually achieved by an edge
//! set `S ⊆ E`.
//!
//! The paper uses the classic equivalent definition of an `α`-spanner
//! (footnote 1): `H = (V, S)` is an `α`-spanner of `G = (V, E)` iff for every
//! edge `(u, v) ∈ E` the subgraph `H` admits a `u`–`v` path of length at most
//! `α`. [`verify_edge_stretch`] measures exactly this quantity; and
//! [`sampled_pair_stretch`] additionally estimates the multiplicative stretch
//! over arbitrary node pairs, which is what a downstream simulation of a
//! LOCAL algorithm experiences.

use crate::error::{GraphError, GraphResult};
use crate::multigraph::MultiGraph;
use crate::traversal::{bfs_distances, shortest_path_len};
use crate::{EdgeId, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-edge stretch statistics of a candidate spanner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StretchReport {
    /// Largest stretch observed over all edges of `G` (`u,v` adjacent in `G`;
    /// stretch is `dist_H(u, v)`).
    pub max_stretch: u32,
    /// Average stretch over all edges of `G`.
    pub mean_stretch: f64,
    /// Number of edges of `G` whose endpoints are disconnected in `H`
    /// (infinite stretch). A valid spanner of a connected graph has none.
    pub disconnected_pairs: usize,
    /// Number of edges examined.
    pub edges_checked: usize,
    /// Number of spanner edges (counting multiplicities).
    pub spanner_edges: usize,
}

impl StretchReport {
    /// Returns `true` if every adjacent pair of `G` is connected in `H` and
    /// the stretch never exceeds `bound`.
    pub fn satisfies(&self, bound: u32) -> bool {
        self.disconnected_pairs == 0 && self.max_stretch <= bound
    }
}

/// Measures the per-edge stretch of the subgraph spanned by `spanner_edges`
/// against the original graph.
///
/// Runs one BFS in `H` per node of `G` that has at least one incident edge,
/// i.e. `O(n·|S|)` time.
///
/// # Errors
///
/// Returns an error if any edge ID in `spanner_edges` does not exist in
/// `graph`.
pub fn verify_edge_stretch(
    graph: &MultiGraph,
    spanner_edges: impl IntoIterator<Item = EdgeId>,
) -> GraphResult<StretchReport> {
    let spanner = graph.edge_subgraph(spanner_edges)?;
    verify_edge_stretch_subgraph(graph, &spanner)
}

/// Same as [`verify_edge_stretch`] but takes the spanner as an already-built
/// subgraph over the same node set.
///
/// # Errors
///
/// Returns an error if the node counts of the two graphs differ.
pub fn verify_edge_stretch_subgraph(
    graph: &MultiGraph,
    spanner: &MultiGraph,
) -> GraphResult<StretchReport> {
    if graph.node_count() != spanner.node_count() {
        return Err(GraphError::invalid_parameter(format!(
            "spanner has {} nodes but the graph has {}",
            spanner.node_count(),
            graph.node_count()
        )));
    }

    let mut max_stretch = 0u32;
    let mut total_stretch = 0f64;
    let mut disconnected = 0usize;
    let mut checked = 0usize;

    for u in graph.nodes() {
        // Only BFS from nodes that are the smaller endpoint of some edge, so
        // each undirected edge is checked exactly once.
        let mut targets: Vec<NodeId> = graph
            .incident_edges(u)
            .iter()
            .filter(|ie| ie.neighbor > u)
            .map(|ie| ie.neighbor)
            .collect();
        if targets.is_empty() {
            continue;
        }
        targets.sort_unstable();
        targets.dedup();
        let dist = bfs_distances(spanner, u)?;
        // Count parallel edges once per distinct adjacent pair: the stretch
        // definition is about adjacency, and multiplicities would only skew
        // the mean.
        for v in targets {
            checked += 1;
            match dist[v.index()] {
                Some(d) => {
                    max_stretch = max_stretch.max(d);
                    total_stretch += f64::from(d);
                }
                None => disconnected += 1,
            }
        }
    }

    let mean_stretch = if checked > disconnected {
        total_stretch / (checked - disconnected) as f64
    } else {
        0.0
    };

    Ok(StretchReport {
        max_stretch,
        mean_stretch,
        disconnected_pairs: disconnected,
        edges_checked: checked,
        spanner_edges: spanner.edge_count(),
    })
}

/// Stretch statistics over a random sample of node pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairStretchReport {
    /// Largest ratio `dist_H(u,v) / dist_G(u,v)` over the sampled pairs.
    pub max_ratio: f64,
    /// Mean ratio over the sampled pairs.
    pub mean_ratio: f64,
    /// Number of pairs sampled (pairs disconnected in `G` are skipped).
    pub pairs_checked: usize,
    /// Pairs connected in `G` but disconnected in `H`.
    pub disconnected_pairs: usize,
}

/// Estimates the multiplicative stretch of `spanner` over `samples` random
/// node pairs of `graph`.
///
/// # Errors
///
/// Returns an error if `samples` is zero, the node sets differ, or the graph
/// has fewer than two nodes.
pub fn sampled_pair_stretch<R: Rng + ?Sized>(
    graph: &MultiGraph,
    spanner: &MultiGraph,
    samples: usize,
    rng: &mut R,
) -> GraphResult<PairStretchReport> {
    if samples == 0 {
        return Err(GraphError::invalid_parameter("samples must be positive"));
    }
    if graph.node_count() != spanner.node_count() {
        return Err(GraphError::invalid_parameter(
            "graph and spanner must share the node set",
        ));
    }
    if graph.node_count() < 2 {
        return Err(GraphError::invalid_parameter(
            "need at least two nodes to sample pairs",
        ));
    }

    let nodes: Vec<NodeId> = graph.nodes().collect();
    let mut max_ratio = 0f64;
    let mut total_ratio = 0f64;
    let mut checked = 0usize;
    let mut disconnected = 0usize;

    for _ in 0..samples {
        let pair: Vec<&NodeId> = nodes.choose_multiple(rng, 2).collect();
        let (u, v) = (*pair[0], *pair[1]);
        let Some(dg) = shortest_path_len(graph, u, v, None)? else {
            continue;
        };
        if dg == 0 {
            continue;
        }
        checked += 1;
        match shortest_path_len(spanner, u, v, None)? {
            Some(dh) => {
                let ratio = f64::from(dh) / f64::from(dg);
                max_ratio = max_ratio.max(ratio);
                total_ratio += ratio;
            }
            None => disconnected += 1,
        }
    }

    let mean_ratio = if checked > disconnected {
        total_ratio / (checked - disconnected) as f64
    } else {
        0.0
    };
    Ok(PairStretchReport {
        max_ratio,
        mean_ratio,
        pairs_checked: checked,
        disconnected_pairs: disconnected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Cycle on 6 nodes: 0-1-2-3-4-5-0.
    fn cycle6() -> MultiGraph {
        MultiGraph::from_edges(
            6,
            [
                (n(0), n(1)),
                (n(1), n(2)),
                (n(2), n(3)),
                (n(3), n(4)),
                (n(4), n(5)),
                (n(5), n(0)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn full_graph_is_a_one_spanner() {
        let g = cycle6();
        let report = verify_edge_stretch(&g, g.edge_ids()).unwrap();
        assert_eq!(report.max_stretch, 1);
        assert_eq!(report.mean_stretch, 1.0);
        assert_eq!(report.disconnected_pairs, 0);
        assert_eq!(report.edges_checked, 6);
        assert!(report.satisfies(1));
    }

    #[test]
    fn removing_one_cycle_edge_gives_stretch_n_minus_1() {
        let g = cycle6();
        // Drop edge (5,0): its endpoints are now 5 hops apart in H.
        let spanner: Vec<EdgeId> = g.edge_ids().filter(|id| id.raw() != 5).collect();
        let report = verify_edge_stretch(&g, spanner).unwrap();
        assert_eq!(report.max_stretch, 5);
        assert_eq!(report.disconnected_pairs, 0);
        assert!(report.satisfies(5));
        assert!(!report.satisfies(4));
    }

    #[test]
    fn empty_spanner_of_connected_graph_is_disconnected() {
        let g = cycle6();
        let report = verify_edge_stretch(&g, std::iter::empty()).unwrap();
        assert_eq!(report.disconnected_pairs, 6);
        assert_eq!(report.spanner_edges, 0);
        assert!(!report.satisfies(100));
    }

    #[test]
    fn unknown_spanner_edge_is_an_error() {
        let g = cycle6();
        assert!(verify_edge_stretch(&g, [EdgeId::new(99)]).is_err());
    }

    #[test]
    fn node_count_mismatch_is_an_error() {
        let g = cycle6();
        let h = MultiGraph::new(3);
        assert!(verify_edge_stretch_subgraph(&g, &h).is_err());
    }

    #[test]
    fn parallel_edges_checked_once_per_pair() {
        let mut g = MultiGraph::new(2);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(0), n(1)).unwrap();
        let report = verify_edge_stretch(&g, [EdgeId::new(0)]).unwrap();
        assert_eq!(report.edges_checked, 1);
        assert_eq!(report.max_stretch, 1);
    }

    #[test]
    fn sampled_pair_stretch_on_cycle() {
        let g = cycle6();
        let spanner_edges: Vec<EdgeId> = g.edge_ids().filter(|id| id.raw() != 5).collect();
        let spanner = g.edge_subgraph(spanner_edges).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let report = sampled_pair_stretch(&g, &spanner, 200, &mut rng).unwrap();
        assert!(report.pairs_checked > 0);
        assert_eq!(report.disconnected_pairs, 0);
        assert!(report.max_ratio >= 1.0);
        // Dropping one edge of a 6-cycle can stretch a distance-1 pair to 5.
        assert!(report.max_ratio <= 5.0 + 1e-9);
        assert!(report.mean_ratio >= 1.0);
    }

    #[test]
    fn sampled_pair_stretch_parameter_validation() {
        let g = cycle6();
        let spanner = g.clone();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sampled_pair_stretch(&g, &spanner, 0, &mut rng).is_err());
        let tiny = MultiGraph::new(1);
        assert!(sampled_pair_stretch(&tiny, &tiny.clone(), 5, &mut rng).is_err());
        let mismatched = MultiGraph::new(4);
        assert!(sampled_pair_stretch(&g, &mismatched, 5, &mut rng).is_err());
    }
}
