//! Breadth-first traversal utilities: distances, balls, components, diameter.
//!
//! These routines back the verification side of the reproduction: the stretch
//! guarantee of Theorem 9 is checked by comparing BFS distances in the
//! spanner against adjacency in the original graph, and the `t`-local
//! broadcast task of Section 6 is defined in terms of the ball
//! `B_{G,t}(v) = {u : dist_G(v, u) ≤ t}`.
//!
//! Every routine is generic over [`Topology`], so it runs both on the
//! mutable [`MultiGraph`](crate::MultiGraph) and on the packed
//! [`CsrGraph`](crate::CsrGraph) view produced by
//! [`MultiGraph::freeze`](crate::MultiGraph::freeze) — freeze first when a
//! graph is scanned repeatedly (e.g. the per-node ball queries of the
//! simulation verifier).

use crate::csr::Topology;
use crate::error::{GraphError, GraphResult};
use crate::{EdgeId, NodeId};
use std::collections::VecDeque;

/// Result of a single-source BFS: hop distances and the BFS tree.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// `dist[v]` is the hop distance from the source, or `None` if `v` is
    /// unreachable.
    pub dist: Vec<Option<u32>>,
    /// `parent_edge[v]` is the tree edge through which `v` was discovered
    /// (`None` for the source and unreachable nodes).
    pub parent_edge: Vec<Option<EdgeId>>,
    /// `parent[v]` is the BFS-tree parent of `v`.
    pub parent: Vec<Option<NodeId>>,
    /// Nodes in the order they were discovered (starting with the source).
    pub order: Vec<NodeId>,
}

impl BfsResult {
    /// Hop distance to `node`, if reachable.
    pub fn distance(&self, node: NodeId) -> Option<u32> {
        self.dist.get(node.index()).copied().flatten()
    }

    /// Number of reachable nodes (including the source).
    pub fn reachable_count(&self) -> usize {
        self.order.len()
    }

    /// Reconstructs the path of edges from the source to `node`, if reachable.
    pub fn path_to(&self, node: NodeId) -> Option<Vec<EdgeId>> {
        self.distance(node)?;
        let mut path = Vec::new();
        let mut current = node;
        while let Some(edge) = self.parent_edge[current.index()] {
            path.push(edge);
            current =
                self.parent[current.index()].expect("parent exists whenever parent_edge does");
        }
        path.reverse();
        Some(path)
    }
}

/// Runs a breadth-first search from `source`, optionally bounded to
/// `max_depth` hops.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfRange`] if `source` is not a node of `graph`.
pub fn bfs<G: Topology>(
    graph: &G,
    source: NodeId,
    max_depth: Option<u32>,
) -> GraphResult<BfsResult> {
    graph.check_node(source)?;
    let n = graph.node_count();
    let mut dist = vec![None; n];
    let mut parent_edge = vec![None; n];
    let mut parent = vec![None; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();

    dist[source.index()] = Some(0);
    order.push(source);
    queue.push_back(source);

    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have a distance");
        if let Some(limit) = max_depth {
            if du >= limit {
                continue;
            }
        }
        for incident in graph.incident_edges(u) {
            let v = incident.neighbor;
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                parent_edge[v.index()] = Some(incident.edge);
                parent[v.index()] = Some(u);
                order.push(v);
                queue.push_back(v);
            }
        }
    }

    Ok(BfsResult {
        dist,
        parent_edge,
        parent,
        order,
    })
}

/// Hop distances from `source` to every node (`None` if unreachable).
///
/// # Errors
///
/// Returns an error if `source` is out of range.
pub fn bfs_distances<G: Topology>(graph: &G, source: NodeId) -> GraphResult<Vec<Option<u32>>> {
    Ok(bfs(graph, source, None)?.dist)
}

/// The ball `B_{G,t}(v)`: all nodes within hop distance `t` of `source`,
/// including `source` itself, sorted by node index.
///
/// # Errors
///
/// Returns an error if `source` is out of range.
pub fn ball<G: Topology>(graph: &G, source: NodeId, radius: u32) -> GraphResult<Vec<NodeId>> {
    let result = bfs(graph, source, Some(radius))?;
    let mut nodes: Vec<NodeId> = result
        .dist
        .iter()
        .enumerate()
        .filter_map(|(i, d)| match d {
            Some(d) if *d <= radius => Some(NodeId::from_usize(i)),
            _ => None,
        })
        .collect();
    nodes.sort_unstable();
    Ok(nodes)
}

/// Length of a shortest `u`–`v` path, or `None` if `v` is unreachable from
/// `u`. Stops early once `v` is found; `max_depth` (if given) caps the
/// search radius.
///
/// # Errors
///
/// Returns an error if either node is out of range.
pub fn shortest_path_len<G: Topology>(
    graph: &G,
    u: NodeId,
    v: NodeId,
    max_depth: Option<u32>,
) -> GraphResult<Option<u32>> {
    graph.check_node(u)?;
    graph.check_node(v)?;
    if u == v {
        return Ok(Some(0));
    }
    let n = graph.node_count();
    let mut dist = vec![None; n];
    let mut queue = VecDeque::new();
    dist[u.index()] = Some(0u32);
    queue.push_back(u);
    while let Some(x) = queue.pop_front() {
        let dx = dist[x.index()].expect("queued nodes have a distance");
        if let Some(limit) = max_depth {
            if dx >= limit {
                continue;
            }
        }
        for incident in graph.incident_edges(x) {
            let y = incident.neighbor;
            if dist[y.index()].is_none() {
                if y == v {
                    return Ok(Some(dx + 1));
                }
                dist[y.index()] = Some(dx + 1);
                queue.push_back(y);
            }
        }
    }
    Ok(None)
}

/// Assignment of each node to a connected component, components numbered
/// `0..count` in order of their smallest node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `component[v]` is the component index of node `v`.
    pub component: Vec<usize>,
    /// Number of connected components.
    pub count: usize,
}

impl Components {
    /// Sizes of the components, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.component {
            sizes[c] += 1;
        }
        sizes
    }
}

/// Computes the connected components of `graph`.
pub fn connected_components<G: Topology>(graph: &G) -> Components {
    let n = graph.node_count();
    let mut component = vec![usize::MAX; n];
    let mut count = 0;
    for start in graph.nodes() {
        if component[start.index()] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        component[start.index()] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for incident in graph.incident_edges(u) {
                let v = incident.neighbor;
                if component[v.index()] == usize::MAX {
                    component[v.index()] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    Components { component, count }
}

/// Returns `true` if the graph is connected (the empty graph and the
/// single-node graph are considered connected).
pub fn is_connected<G: Topology>(graph: &G) -> bool {
    graph.node_count() <= 1 || connected_components(graph).count == 1
}

/// Checks connectivity, returning an error naming the number of components if
/// the graph is disconnected.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] when the graph has more than one
/// connected component.
pub fn require_connected<G: Topology>(graph: &G) -> GraphResult<()> {
    let components = connected_components(graph);
    if graph.node_count() <= 1 || components.count == 1 {
        Ok(())
    } else {
        Err(GraphError::Disconnected {
            components: components.count,
        })
    }
}

/// Eccentricity of `node`: the largest hop distance to any reachable node.
///
/// # Errors
///
/// Returns an error if `node` is out of range.
pub fn eccentricity<G: Topology>(graph: &G, node: NodeId) -> GraphResult<u32> {
    let result = bfs(graph, node, None)?;
    Ok(result.dist.iter().flatten().copied().max().unwrap_or(0))
}

/// Exact diameter of a connected graph, computed by all-sources BFS
/// (`O(n·m)`).
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if the graph is not connected.
pub fn diameter_exact<G: Topology>(graph: &G) -> GraphResult<u32> {
    require_connected(graph)?;
    let mut best = 0;
    for node in graph.nodes() {
        best = best.max(eccentricity(graph, node)?);
    }
    Ok(best)
}

/// Lower bound on the diameter obtained by running BFS from `samples`
/// deterministic, evenly spread sources. Cheap alternative to
/// [`diameter_exact`] for large graphs.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if the graph is not connected, or an
/// invalid-parameter error if `samples` is zero.
pub fn diameter_lower_bound<G: Topology>(graph: &G, samples: usize) -> GraphResult<u32> {
    if samples == 0 {
        return Err(GraphError::invalid_parameter("samples must be positive"));
    }
    require_connected(graph)?;
    let n = graph.node_count();
    if n == 0 {
        return Ok(0);
    }
    let step = (n / samples).max(1);
    let mut best = 0;
    for i in (0..n).step_by(step).take(samples) {
        best = best.max(eccentricity(graph, NodeId::from_usize(i))?);
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multigraph::MultiGraph;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// 0 - 1 - 2 - 3 path plus isolated node 4.
    fn path_plus_isolated() -> MultiGraph {
        let mut g = MultiGraph::new(5);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        g
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_plus_isolated();
        let dist = bfs_distances(&g, n(0)).unwrap();
        assert_eq!(dist, vec![Some(0), Some(1), Some(2), Some(3), None]);
    }

    #[test]
    fn bfs_depth_bound_truncates() {
        let g = path_plus_isolated();
        let result = bfs(&g, n(0), Some(2)).unwrap();
        assert_eq!(result.distance(n(2)), Some(2));
        assert_eq!(result.distance(n(3)), None);
        assert_eq!(result.reachable_count(), 3);
    }

    #[test]
    fn bfs_path_reconstruction() {
        let g = path_plus_isolated();
        let result = bfs(&g, n(0), None).unwrap();
        let path = result.path_to(n(3)).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(result.path_to(n(0)).unwrap(), Vec::<EdgeId>::new());
        assert!(result.path_to(n(4)).is_none());
    }

    #[test]
    fn bfs_source_out_of_range() {
        let g = path_plus_isolated();
        assert!(bfs(&g, n(9), None).is_err());
    }

    #[test]
    fn ball_contains_exactly_radius_neighborhood() {
        let g = path_plus_isolated();
        assert_eq!(ball(&g, n(1), 0).unwrap(), vec![n(1)]);
        assert_eq!(ball(&g, n(1), 1).unwrap(), vec![n(0), n(1), n(2)]);
        assert_eq!(ball(&g, n(1), 2).unwrap(), vec![n(0), n(1), n(2), n(3)]);
        assert_eq!(ball(&g, n(1), 10).unwrap(), vec![n(0), n(1), n(2), n(3)]);
    }

    #[test]
    fn shortest_path_len_cases() {
        let g = path_plus_isolated();
        assert_eq!(shortest_path_len(&g, n(0), n(3), None).unwrap(), Some(3));
        assert_eq!(shortest_path_len(&g, n(0), n(0), None).unwrap(), Some(0));
        assert_eq!(shortest_path_len(&g, n(0), n(4), None).unwrap(), None);
        assert_eq!(shortest_path_len(&g, n(0), n(3), Some(2)).unwrap(), None);
        assert_eq!(shortest_path_len(&g, n(0), n(3), Some(3)).unwrap(), Some(3));
    }

    #[test]
    fn components_and_connectivity() {
        let g = path_plus_isolated();
        let comps = connected_components(&g);
        assert_eq!(comps.count, 2);
        assert_eq!(comps.component[0], comps.component[3]);
        assert_ne!(comps.component[0], comps.component[4]);
        assert_eq!(comps.sizes(), vec![4, 1]);
        assert!(!is_connected(&g));
        assert_eq!(
            require_connected(&g),
            Err(GraphError::Disconnected { components: 2 })
        );
    }

    #[test]
    fn single_node_and_empty_graphs_are_connected() {
        assert!(is_connected(&MultiGraph::new(0)));
        assert!(is_connected(&MultiGraph::new(1)));
        assert!(require_connected(&MultiGraph::new(1)).is_ok());
    }

    #[test]
    fn eccentricity_and_diameter() {
        let mut g = MultiGraph::new(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        assert_eq!(eccentricity(&g, n(0)).unwrap(), 3);
        assert_eq!(eccentricity(&g, n(1)).unwrap(), 2);
        assert_eq!(diameter_exact(&g).unwrap(), 3);
        let lb = diameter_lower_bound(&g, 2).unwrap();
        assert!((2..=3).contains(&lb));
    }

    #[test]
    fn diameter_requires_connected() {
        let g = path_plus_isolated();
        assert!(diameter_exact(&g).is_err());
        assert!(diameter_lower_bound(&g, 1).is_err());
        assert!(diameter_lower_bound(&MultiGraph::new(3), 0).is_err());
    }

    #[test]
    fn parallel_edges_do_not_change_distances() {
        let mut g = MultiGraph::new(3);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        assert_eq!(
            bfs_distances(&g, n(0)).unwrap(),
            vec![Some(0), Some(1), Some(2)]
        );
        assert_eq!(diameter_exact(&g).unwrap(), 2);
    }
}
