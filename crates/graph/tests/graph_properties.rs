//! Property-style tests for the graph substrate.
//!
//! Originally written with `proptest`; the offline build environment cannot
//! fetch it, so each property is exercised over a deterministic sweep of
//! `(n, seed, p)` combinations instead. The sweeps cover the same input
//! space (small-to-medium sizes, many seeds, the full probability range)
//! and keep the failure messages explicit about the offending combination.

use freelunch_graph::cluster::{contract, ClusterAssignment};
use freelunch_graph::generators::{
    connected_erdos_renyi, cycle_graph, erdos_renyi, gnm_random, GeneratorConfig,
};
use freelunch_graph::spanner_check::verify_edge_stretch;
use freelunch_graph::traversal::{
    bfs_distances, connected_components, diameter_exact, is_connected,
};
use freelunch_graph::{ClusterId, EdgeId, MultiGraph, NodeId};

/// Deterministic sweep of (n, seed, p) cases shared by the properties.
fn sweep_cases() -> Vec<(usize, u64, f64)> {
    let mut cases = Vec::new();
    for (i, n) in [2usize, 3, 5, 8, 13, 21, 34, 55].into_iter().enumerate() {
        for (j, p) in [0.0f64, 0.05, 0.15, 0.35, 0.65, 0.95]
            .into_iter()
            .enumerate()
        {
            cases.push((n, (i * 31 + j * 7) as u64, p));
        }
    }
    cases
}

/// Handshake lemma: the sum of degrees is twice the edge count, for any
/// random graph.
#[test]
fn handshake_lemma() {
    for (n, seed, p) in sweep_cases() {
        let g = erdos_renyi(&GeneratorConfig::new(n, seed), p).unwrap();
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(
            degree_sum,
            2 * g.edge_count(),
            "case n={n} seed={seed} p={p}"
        );
        assert_eq!(
            g.incidence_count(),
            2 * g.edge_count(),
            "case n={n} seed={seed} p={p}"
        );
    }
}

/// BFS distances satisfy the triangle inequality along edges:
/// |dist(u) - dist(v)| <= 1 for every edge (u, v).
#[test]
fn bfs_distance_lipschitz_along_edges() {
    for n in [2usize, 4, 9, 17, 33, 57] {
        for seed in [0u64, 17, 99, 512] {
            let g = connected_erdos_renyi(&GeneratorConfig::new(n, seed), 0.1).unwrap();
            let dist = bfs_distances(&g, NodeId::new(0)).unwrap();
            for edge in g.edges() {
                let du = dist[edge.u.index()].unwrap();
                let dv = dist[edge.v.index()].unwrap();
                assert!(du.abs_diff(dv) <= 1, "case n={n} seed={seed} edge={edge:?}");
            }
        }
    }
}

/// The connected Erdős–Rényi generator always produces a connected simple
/// graph, and its diameter is finite.
#[test]
fn connected_generator_invariants() {
    for (n, seed, p) in sweep_cases() {
        let p = p * 0.3;
        let g = connected_erdos_renyi(&GeneratorConfig::new(n, seed), p).unwrap();
        assert!(is_connected(&g), "case n={n} seed={seed} p={p}");
        assert!(g.is_simple(), "case n={n} seed={seed} p={p}");
        assert!(diameter_exact(&g).is_ok(), "case n={n} seed={seed} p={p}");
    }
}

/// G(n, m) produces exactly m edges and no duplicates.
#[test]
fn gnm_exact_edges() {
    for n in [5usize, 8, 13, 21, 34] {
        for seed in [0u64, 3, 77, 256, 499] {
            let max_edges = n * (n - 1) / 2;
            let m = max_edges / 2;
            let g = gnm_random(&GeneratorConfig::new(n, seed), m).unwrap();
            assert_eq!(g.edge_count(), m, "case n={n} seed={seed}");
            assert!(g.is_simple(), "case n={n} seed={seed}");
        }
    }
}

/// Component count lower bound: components >= n - m for any graph.
#[test]
fn component_count_lower_bound() {
    for (n, seed, p) in sweep_cases() {
        let p = p * 0.2;
        let g = erdos_renyi(&GeneratorConfig::new(n, seed), p).unwrap();
        let comps = connected_components(&g);
        assert!(
            comps.count >= n.saturating_sub(g.edge_count()),
            "case n={n} seed={seed} p={p}"
        );
        assert_eq!(
            comps.sizes().iter().sum::<usize>(),
            n,
            "case n={n} seed={seed} p={p}"
        );
    }
}

/// The whole edge set is always a 1-spanner of itself.
#[test]
fn full_edge_set_is_one_spanner() {
    for (n, seed, p) in sweep_cases() {
        let p = 0.05 + p * 0.45;
        let g = connected_erdos_renyi(&GeneratorConfig::new(n, seed), p).unwrap();
        let report = verify_edge_stretch(&g, g.edge_ids()).unwrap();
        assert!(report.satisfies(1), "case n={n} seed={seed} p={p}");
        assert_eq!(report.disconnected_pairs, 0, "case n={n} seed={seed} p={p}");
    }
}

/// Contraction never increases the number of edges, preserves edge-ID
/// uniqueness, and its node count equals the number of clusters.
#[test]
fn contraction_invariants() {
    for n in [4usize, 7, 12, 23, 41, 58] {
        for seed in [1u64, 42, 311] {
            let g = connected_erdos_renyi(&GeneratorConfig::new(n, seed), 0.2).unwrap();
            for clusters in 1usize..6 {
                let mut assignment = ClusterAssignment::unclustered(n);
                // Assign nodes round-robin to `clusters` clusters, leaving
                // every 7th node unclustered.
                for v in 0..n {
                    if v % 7 == 3 && n > clusters + 1 {
                        continue;
                    }
                    assignment
                        .assign(NodeId::from_usize(v), ClusterId::from_usize(v % clusters))
                        .unwrap();
                }
                // Guarantee no empty cluster: explicitly cover each cluster id.
                for c in 0..clusters.min(n) {
                    assignment
                        .assign(NodeId::from_usize(c), ClusterId::from_usize(c))
                        .unwrap();
                }
                let contraction = contract(&g, &assignment).unwrap();
                let case = format!("case n={n} seed={seed} clusters={clusters}");
                assert_eq!(
                    contraction.graph.node_count(),
                    assignment.cluster_count(),
                    "{case}"
                );
                assert!(contraction.graph.edge_count() <= g.edge_count(), "{case}");
                assert_eq!(
                    contraction.graph.edge_count() + contraction.dropped_edges,
                    g.edge_count(),
                    "{case}"
                );
                // Edge IDs in the contraction are a subset of the original IDs.
                for id in contraction.graph.edge_ids() {
                    assert!(g.contains_edge(id), "{case} id={id:?}");
                }
            }
        }
    }
}

/// Round-tripping through `edge_subgraph` with all edges reproduces the
/// same adjacency structure.
#[test]
fn edge_subgraph_identity() {
    for (n, seed, p) in sweep_cases() {
        let p = p * 0.6;
        let g = erdos_renyi(&GeneratorConfig::new(n, seed), p).unwrap();
        let copy = g.edge_subgraph(g.edge_ids()).unwrap();
        assert_eq!(
            copy.edge_count(),
            g.edge_count(),
            "case n={n} seed={seed} p={p}"
        );
        for v in g.nodes() {
            assert_eq!(
                copy.degree(v),
                g.degree(v),
                "case n={n} seed={seed} p={p} v={v:?}"
            );
            assert_eq!(
                copy.distinct_neighbors(v),
                g.distinct_neighbors(v),
                "case n={n} seed={seed} p={p} v={v:?}"
            );
        }
    }
}

#[test]
fn cycle_diameter_matches_formula() {
    for n in 3usize..20 {
        let g = cycle_graph(&GeneratorConfig::new(n, 0)).unwrap();
        assert_eq!(diameter_exact(&g).unwrap() as usize, n / 2);
    }
}

#[test]
fn spanner_check_detects_missing_bridge() {
    // Two triangles joined by a single bridge; dropping the bridge must be
    // reported as a disconnection.
    let mut g = MultiGraph::new(6);
    let n = NodeId::new;
    for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
        g.add_edge(n(u), n(v)).unwrap();
    }
    let bridge = g.add_edge(n(2), n(3)).unwrap();
    let without_bridge: Vec<EdgeId> = g.edge_ids().filter(|id| *id != bridge).collect();
    let report = verify_edge_stretch(&g, without_bridge).unwrap();
    assert_eq!(report.disconnected_pairs, 1);
    assert!(!report.satisfies(1000));
}
