//! Property-based tests for the graph substrate.

use freelunch_graph::cluster::{contract, ClusterAssignment};
use freelunch_graph::generators::{
    connected_erdos_renyi, cycle_graph, erdos_renyi, gnm_random, GeneratorConfig,
};
use freelunch_graph::spanner_check::verify_edge_stretch;
use freelunch_graph::traversal::{bfs_distances, connected_components, diameter_exact, is_connected};
use freelunch_graph::{ClusterId, EdgeId, MultiGraph, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Handshake lemma: the sum of degrees is twice the edge count, for any
    /// random graph.
    #[test]
    fn handshake_lemma(n in 2usize..80, seed in 0u64..1000, p in 0.0f64..1.0) {
        let g = erdos_renyi(&GeneratorConfig::new(n, seed), p).unwrap();
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        prop_assert_eq!(g.incidence_count(), 2 * g.edge_count());
    }

    /// BFS distances satisfy the triangle inequality along edges:
    /// |dist(u) - dist(v)| <= 1 for every edge (u, v).
    #[test]
    fn bfs_distance_lipschitz_along_edges(n in 2usize..60, seed in 0u64..1000) {
        let g = connected_erdos_renyi(&GeneratorConfig::new(n, seed), 0.1).unwrap();
        let dist = bfs_distances(&g, NodeId::new(0)).unwrap();
        for edge in g.edges() {
            let du = dist[edge.u.index()].unwrap();
            let dv = dist[edge.v.index()].unwrap();
            prop_assert!(du.abs_diff(dv) <= 1);
        }
    }

    /// The connected Erdős–Rényi generator always produces a connected simple
    /// graph, and its diameter is finite.
    #[test]
    fn connected_generator_invariants(n in 2usize..60, seed in 0u64..500, p in 0.0f64..0.3) {
        let g = connected_erdos_renyi(&GeneratorConfig::new(n, seed), p).unwrap();
        prop_assert!(is_connected(&g));
        prop_assert!(g.is_simple());
        prop_assert!(diameter_exact(&g).is_ok());
    }

    /// G(n, m) produces exactly m edges and no duplicates.
    #[test]
    fn gnm_exact_edges(n in 5usize..40, seed in 0u64..500) {
        let max_edges = n * (n - 1) / 2;
        let m = max_edges / 2;
        let g = gnm_random(&GeneratorConfig::new(n, seed), m).unwrap();
        prop_assert_eq!(g.edge_count(), m);
        prop_assert!(g.is_simple());
    }

    /// The number of components plus the number of edges of a forest-like
    /// lower bound: components >= n - m for any graph.
    #[test]
    fn component_count_lower_bound(n in 1usize..60, seed in 0u64..500, p in 0.0f64..0.2) {
        let g = erdos_renyi(&GeneratorConfig::new(n, seed), p).unwrap();
        let comps = connected_components(&g);
        prop_assert!(comps.count >= n.saturating_sub(g.edge_count()));
        prop_assert_eq!(comps.sizes().iter().sum::<usize>(), n);
    }

    /// The whole edge set is always a 1-spanner of itself.
    #[test]
    fn full_edge_set_is_one_spanner(n in 2usize..50, seed in 0u64..500, p in 0.05f64..0.5) {
        let g = connected_erdos_renyi(&GeneratorConfig::new(n, seed), p).unwrap();
        let report = verify_edge_stretch(&g, g.edge_ids()).unwrap();
        prop_assert!(report.satisfies(1));
        prop_assert_eq!(report.disconnected_pairs, 0);
    }

    /// Contraction never increases the number of edges, preserves edge-ID
    /// uniqueness, and its node count equals the number of clusters.
    #[test]
    fn contraction_invariants(n in 4usize..60, seed in 0u64..500, clusters in 1usize..6) {
        let g = connected_erdos_renyi(&GeneratorConfig::new(n, seed), 0.2).unwrap();
        let mut assignment = ClusterAssignment::unclustered(n);
        // Assign nodes round-robin to `clusters` clusters, leaving every 7th
        // node unclustered.
        for v in 0..n {
            if v % 7 == 3 && n > clusters + 1 {
                continue;
            }
            assignment.assign(NodeId::from_usize(v), ClusterId::from_usize(v % clusters)).unwrap();
        }
        // Guarantee no empty cluster: explicitly cover each cluster id.
        for c in 0..clusters.min(n) {
            assignment.assign(NodeId::from_usize(c), ClusterId::from_usize(c)).unwrap();
        }
        let contraction = contract(&g, &assignment).unwrap();
        prop_assert_eq!(contraction.graph.node_count(), assignment.cluster_count());
        prop_assert!(contraction.graph.edge_count() <= g.edge_count());
        prop_assert_eq!(
            contraction.graph.edge_count() + contraction.dropped_edges,
            g.edge_count()
        );
        // Edge IDs in the contraction are a subset of the original IDs.
        for id in contraction.graph.edge_ids() {
            prop_assert!(g.contains_edge(id));
        }
    }

    /// Round-tripping through `edge_subgraph` with all edges reproduces the
    /// same adjacency structure.
    #[test]
    fn edge_subgraph_identity(n in 2usize..40, seed in 0u64..300, p in 0.0f64..0.6) {
        let g = erdos_renyi(&GeneratorConfig::new(n, seed), p).unwrap();
        let copy = g.edge_subgraph(g.edge_ids()).unwrap();
        prop_assert_eq!(copy.edge_count(), g.edge_count());
        for v in g.nodes() {
            prop_assert_eq!(copy.degree(v), g.degree(v));
            prop_assert_eq!(copy.distinct_neighbors(v), g.distinct_neighbors(v));
        }
    }
}

#[test]
fn cycle_diameter_matches_formula() {
    for n in 3usize..20 {
        let g = cycle_graph(&GeneratorConfig::new(n, 0)).unwrap();
        assert_eq!(diameter_exact(&g).unwrap() as usize, n / 2);
    }
}

#[test]
fn spanner_check_detects_missing_bridge() {
    // Two triangles joined by a single bridge; dropping the bridge must be
    // reported as a disconnection.
    let mut g = MultiGraph::new(6);
    let n = NodeId::new;
    for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
        g.add_edge(n(u), n(v)).unwrap();
    }
    let bridge = g.add_edge(n(2), n(3)).unwrap();
    let without_bridge: Vec<EdgeId> = g.edge_ids().filter(|id| *id != bridge).collect();
    let report = verify_edge_stretch(&g, without_bridge).unwrap();
    assert_eq!(report.disconnected_pairs, 1);
    assert!(!report.satisfies(1000));
}
