//! Repair ≡ rebuild, after **every** event: the incremental-maintenance
//! equivalence sweep.
//!
//! `freelunch_core::maintain::IncrementalSpanner` promises that repairing
//! an already-built spanner after an edge insert or delete leaves it
//! satisfying the same stretch bound a from-scratch rebuild would (see
//! `docs/CHURN.md` for the repair-vs-rebuild contract). This sweep drives
//! seeded insert/delete streams over the ER, scale-free and community
//! families (≤ 64 nodes) and, **after every single event**:
//!
//! 1. verifies the repaired spanner with [`verify_edge_stretch`] — the
//!    workspace's independent per-pair BFS oracle, itself pinned by
//!    `spanner_stretch_sweep.rs` — against the repairer's stretch bound;
//! 2. rebuilds a spanner from scratch on the *current* graph with the same
//!    construction and seed, and verifies it satisfies the same bound — so
//!    the repaired and rebuilt backbones are held to the identical oracle
//!    at the identical topology, event by event;
//! 3. checks the repairer's structural invariants and that its spanner is
//!    a subset of the live edge set.
//!
//! A repair shortcut that silently leaked stretch (or kept a deleted edge
//! in the backbone) would fail within one event of the mistake, with the
//! full event index in the panic message.

use freelunch_core::maintain::IncrementalSpanner;
use freelunch_graph::generators::{
    barabasi_albert, sparse_connected_erdos_renyi, sparse_planted_partition, GeneratorConfig,
};
use freelunch_graph::spanner_check::verify_edge_stretch;
use freelunch_graph::{EdgeId, MultiGraph, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

/// The graph sweep: three generator families × sizes up to 64 × seeds.
fn sweep() -> Vec<(String, MultiGraph)> {
    let mut graphs = Vec::new();
    for n in [16usize, 33, 64] {
        for seed in [1u64, 2] {
            let config = GeneratorConfig::new(n, seed);
            graphs.push((
                format!("er/n={n}/seed={seed}"),
                sparse_connected_erdos_renyi(&config, 4.0).unwrap(),
            ));
            graphs.push((
                format!("scale-free/n={n}/seed={seed}"),
                barabasi_albert(&config, 2).unwrap(),
            ));
            // The sparse planted-partition generator needs blocks comfortably
            // larger than the intra-community degree.
            if n >= 33 {
                graphs.push((
                    format!("communities/n={n}/seed={seed}"),
                    sparse_planted_partition(&config, 4, 5.0, 1.0).unwrap(),
                ));
            }
        }
    }
    graphs
}

/// One seeded event: an insert of a fresh edge between random endpoints,
/// or a delete of a random live edge (biased towards deletes so streams
/// also thin the graph they started from).
fn apply_random_event(
    rng: &mut ChaCha8Rng,
    spanner: &mut IncrementalSpanner,
    next_edge: &mut u64,
) -> String {
    let n = spanner.graph().node_count() as u32;
    let live: Vec<EdgeId> = spanner.graph().edge_ids().collect();
    let delete = !live.is_empty() && rng.gen_bool(0.55);
    if delete {
        let edge = live[rng.gen_range(0..live.len())];
        spanner.delete_edge(edge).unwrap();
        format!("delete {edge}")
    } else {
        let u = NodeId::new(rng.gen_range(0..n));
        let mut v = NodeId::new(rng.gen_range(0..n));
        while v == u {
            v = NodeId::new(rng.gen_range(0..n));
        }
        let edge = EdgeId::new(*next_edge);
        *next_edge += 1;
        spanner.insert_edge(edge, u, v).unwrap();
        format!("insert {edge} = ({u}, {v})")
    }
}

/// After every event of a 60-step stream: the repaired spanner and a
/// from-scratch rebuild on the identical topology both satisfy the same
/// stretch bound under the same oracle.
#[test]
fn repaired_spanner_matches_a_rebuild_after_every_event() {
    const EVENTS: usize = 60;
    const SEED: u64 = 97;
    for (name, graph) in sweep() {
        let mut spanner = IncrementalSpanner::new(&graph, SEED).unwrap();
        let mut next_edge = graph.edge_ids().map(EdgeId::raw).max().map_or(0, |e| e + 1);
        let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ 0xD15C_0DE5);
        let bound = spanner.stretch_bound();
        for step in 0..EVENTS {
            let event = apply_random_event(&mut rng, &mut spanner, &mut next_edge);
            let label = format!("{name}: event {step} ({event})");

            // The repairer's own structural invariants, and containment:
            // the backbone never references a deleted edge.
            spanner.check_invariants().unwrap_or_else(|e| {
                panic!("{label}: invariant broke after repair: {e}");
            });
            let live: BTreeSet<EdgeId> = spanner.graph().edge_ids().collect();
            for edge in spanner.spanner_edges() {
                assert!(
                    live.contains(&edge),
                    "{label}: spanner kept dead edge {edge}"
                );
            }

            // Oracle on the repaired spanner.
            let repaired = verify_edge_stretch(spanner.graph(), spanner.spanner_edges()).unwrap();
            assert!(
                repaired.satisfies(bound),
                "{label}: repaired stretch {} exceeds {bound}",
                repaired.max_stretch
            );

            // Oracle on a from-scratch rebuild of the *same* topology with
            // the same construction and seed.
            let rebuilt = IncrementalSpanner::new(spanner.graph(), SEED).unwrap();
            assert_eq!(rebuilt.stretch_bound(), bound);
            let scratch = verify_edge_stretch(rebuilt.graph(), rebuilt.spanner_edges()).unwrap();
            assert!(
                scratch.satisfies(bound),
                "{label}: rebuilt stretch {} exceeds {bound}",
                scratch.max_stretch
            );
        }
        // The stream must have actually exercised repairs.
        assert_eq!(spanner.repairs(), EVENTS as u64, "{name}");
    }
}

/// Determinism of the whole maintenance pipeline: the same initial graph,
/// seed and event stream reproduce bit-identical spanners and repair
/// bills — churn maintenance adds no hidden nondeterminism on top of the
/// seeded construction.
#[test]
fn maintenance_replays_bit_identically() {
    let (name, graph) = sweep().remove(0);
    let run = || {
        let mut spanner = IncrementalSpanner::new(&graph, 5).unwrap();
        let mut next_edge = graph.edge_ids().map(EdgeId::raw).max().map_or(0, |e| e + 1);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..40 {
            apply_random_event(&mut rng, &mut spanner, &mut next_edge);
        }
        (
            spanner.spanner_edges(),
            spanner.maintenance_cost(),
            spanner.repairs(),
        )
    };
    assert_eq!(run(), run(), "{name}: maintenance replay diverged");
}
