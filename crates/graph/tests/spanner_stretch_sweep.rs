//! Property sweep for `spanner_check::verify_edge_stretch`: exhaustive
//! per-pair verification against an independent brute force.
//!
//! `verify_edge_stretch` is the oracle every spanner result in the
//! workspace is judged by, so it gets its own oracle here: for every graph
//! of the sweep (ER, community and scale-free families, all with ≤ 64
//! nodes, across several seeds) and several deterministic spanner
//! selections, the stretch of **every** distinct adjacent pair is
//! recomputed with `shortest_path_len` — a pairwise BFS that shares no code
//! path with the report's per-node BFS sweep — and the reported
//! `max_stretch`, `mean_stretch`, `disconnected_pairs` and `edges_checked`
//! must all agree exactly. This closes the gap where stretch was only
//! spot-checked on hand-picked graphs.

use freelunch_graph::generators::{
    barabasi_albert, sparse_connected_erdos_renyi, sparse_planted_partition, GeneratorConfig,
};
use freelunch_graph::spanner_check::verify_edge_stretch;
use freelunch_graph::traversal::shortest_path_len;
use freelunch_graph::{EdgeId, MultiGraph, NodeId};
use std::collections::BTreeSet;

/// The graph sweep: three generator families × sizes up to 64 × seeds.
fn sweep() -> Vec<(String, MultiGraph)> {
    let mut graphs = Vec::new();
    for n in [8usize, 16, 33, 48, 64] {
        for seed in [1u64, 2, 3] {
            let config = GeneratorConfig::new(n, seed);
            graphs.push((
                format!("er/n={n}/seed={seed}"),
                sparse_connected_erdos_renyi(&config, 4.0).unwrap(),
            ));
            graphs.push((
                format!("scale-free/n={n}/seed={seed}"),
                barabasi_albert(&config, 2).unwrap(),
            ));
            // The sparse planted-partition generator needs blocks comfortably
            // larger than the intra-community degree.
            if n >= 33 {
                graphs.push((
                    format!("communities/n={n}/seed={seed}"),
                    sparse_planted_partition(&config, 4, 5.0, 1.0).unwrap(),
                ));
            }
        }
    }
    graphs
}

/// Deterministic spanner selections exercising the full spectrum: the
/// identity spanner, a mild thinning, and an aggressive one that usually
/// disconnects adjacent pairs.
fn selections(graph: &MultiGraph) -> Vec<(&'static str, Vec<EdgeId>)> {
    let all: Vec<EdgeId> = graph.edge_ids().collect();
    let thinned: Vec<EdgeId> = all.iter().copied().filter(|e| e.raw() % 3 != 0).collect();
    let sparse: Vec<EdgeId> = all.iter().copied().filter(|e| e.raw() % 2 == 0).collect();
    vec![("all", all), ("thinned", thinned), ("sparse", sparse)]
}

/// Brute-force stretch statistics over every distinct adjacent pair of `G`,
/// measured in the subgraph `H` via pairwise BFS.
fn brute_force(graph: &MultiGraph, spanner: &MultiGraph) -> (u32, f64, usize, usize) {
    let mut pairs: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    for edge in graph.edges() {
        if edge.u != edge.v {
            let (a, b) = if edge.u < edge.v {
                (edge.u, edge.v)
            } else {
                (edge.v, edge.u)
            };
            pairs.insert((a, b));
        }
    }
    let mut max_stretch = 0u32;
    let mut total = 0f64;
    let mut disconnected = 0usize;
    for &(u, v) in &pairs {
        match shortest_path_len(spanner, u, v, None).unwrap() {
            Some(d) => {
                max_stretch = max_stretch.max(d);
                total += f64::from(d);
            }
            None => disconnected += 1,
        }
    }
    let connected = pairs.len() - disconnected;
    let mean = if connected > 0 {
        total / connected as f64
    } else {
        0.0
    };
    (max_stretch, mean, disconnected, pairs.len())
}

#[test]
fn verify_edge_stretch_matches_the_pairwise_brute_force() {
    for (label, graph) in sweep() {
        assert!(graph.node_count() <= 64, "{label}: sweep graphs stay small");
        for (selection, edges) in selections(&graph) {
            let case = format!("{label}/{selection}");
            let report = verify_edge_stretch(&graph, edges.iter().copied()).unwrap();
            let spanner = graph.edge_subgraph(edges.iter().copied()).unwrap();
            let (max_stretch, mean_stretch, disconnected, checked) = brute_force(&graph, &spanner);
            assert_eq!(report.max_stretch, max_stretch, "{case}: max stretch");
            assert_eq!(
                report.disconnected_pairs, disconnected,
                "{case}: disconnected pairs"
            );
            assert_eq!(report.edges_checked, checked, "{case}: pairs checked");
            assert_eq!(report.spanner_edges, spanner.edge_count(), "{case}");
            assert!(
                (report.mean_stretch - mean_stretch).abs() < 1e-9,
                "{case}: mean stretch {} vs brute force {}",
                report.mean_stretch,
                mean_stretch
            );
            // `satisfies` is consistent with the brute-force numbers.
            if disconnected == 0 {
                assert!(report.satisfies(max_stretch), "{case}");
                if max_stretch > 0 {
                    assert!(!report.satisfies(max_stretch - 1), "{case}");
                }
            } else {
                assert!(!report.satisfies(u32::MAX), "{case}");
            }
        }
    }
}

#[test]
fn identity_spanner_always_has_stretch_one() {
    for (label, graph) in sweep() {
        let report = verify_edge_stretch(&graph, graph.edge_ids()).unwrap();
        assert_eq!(report.max_stretch, 1, "{label}");
        assert_eq!(report.disconnected_pairs, 0, "{label}");
        assert_eq!(report.mean_stretch, 1.0, "{label}");
    }
}
