//! Deterministic checkpoint/restore of a running [`Network`]: capture every
//! piece of engine state that the next rounds depend on, serialize it to a
//! torn-write-safe binary file, and resume **bit-identical** to an
//! uninterrupted run.
//!
//! # What a checkpoint holds
//!
//! A [`NetworkCheckpoint`] is taken at a *round boundary* (after
//! [`run_round`] returns) and captures:
//!
//! * the [`NetworkConfig`], round counter and initialization flag;
//! * per-node program state (via the [`NodeProgram::save_state`] /
//!   [`NodeProgram::load_state`] hooks), RNG stream positions (the ChaCha
//!   word offset — the key is re-derived from the config seed), and halted
//!   flags;
//! * the pending mailbox contents (the messages delivered at the last
//!   barrier, waiting to be read next round), pre-encoded through the
//!   message type's [`WireCodec`] so the checkpoint itself is not generic;
//! * the [`ExecutionMetrics`], [`MessageLedger`] and [`Trace`] observables;
//! * the fault plane's port-silence counters and the churn events of the
//!   capture round;
//! * integrity anchors: a graph fingerprint and digests of the installed
//!   fault/churn plans. Plans are *not* serialized — both planes are keyed
//!   streams re-derived from `(seed, round, …)`, so the caller re-supplies
//!   the plans at restore and the digests reject a mismatch.
//!
//! # File format
//!
//! A [`CheckpointHeader`] (24 bytes: `"FLCP"` magic, version, body length,
//! FNV-1a checksum of the body) followed by the little-endian body whose
//! section order is specified in `docs/RECOVERY.md`. A torn file (body
//! shorter than the header promises) or a corrupt one (checksum mismatch,
//! bad magic/version, malformed section) is rejected with a precise
//! [`RuntimeError::Checkpoint`]. Files are written to a temporary sibling
//! and renamed into place, so a crash mid-write never tears a previously
//! good checkpoint.
//!
//! # Bit-identity contract
//!
//! For every workload, shard count, transport backend, and composed
//! fault+churn plan: interrupting an execution at round `r`, restoring from
//! the round-`r` checkpoint, and running to completion yields outputs,
//! metrics, ledger, and remaining trace identical to the uninterrupted run.
//! `tests/recovery_matrix.rs` pins this matrix.
//!
//! [`Network`]: crate::engine::Network
//! [`run_round`]: crate::engine::Network::run_round
//! [`NetworkConfig`]: crate::engine::NetworkConfig
//! [`NodeProgram::save_state`]: crate::node::NodeProgram::save_state
//! [`NodeProgram::load_state`]: crate::node::NodeProgram::load_state
//! [`WireCodec`]: crate::transport::WireCodec
//! [`ExecutionMetrics`]: crate::metrics::ExecutionMetrics
//! [`MessageLedger`]: crate::metrics::MessageLedger
//! [`Trace`]: crate::trace::Trace

use crate::churn::ChurnEvent;
use crate::engine::{NetworkConfig, Scheduling};
use crate::error::{RuntimeError, RuntimeResult};
use crate::knowledge::KnowledgeModel;
use crate::metrics::FaultTotals;
use crate::trace::{TraceEvent, TraceMode};
use crate::transport::{CodecError, WireCodec};
use freelunch_graph::{EdgeId, NodeId};
use std::fmt;
use std::path::Path;

/// Checkpoint-file magic: `"FLCP"` (freelunch checkpoint).
const CHECKPOINT_MAGIC: [u8; 4] = *b"FLCP";
/// Checkpoint format version; bumped on any layout change (v2 added the
/// scheduling mode and work-stealing chunk size to the config section).
const CHECKPOINT_VERSION: u8 = 2;
/// Encoded size of a [`TraceEvent`] in the trace section.
const TRACE_EVENT_BYTES: usize = 20;

/// FNV-1a 64-bit hash — the digest used for the body checksum and the
/// graph/plan fingerprints (stable, dependency-free, endian-independent).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest of a value's `Debug` rendering (derived `Debug` output is
/// deterministic, which makes this a cheap structural fingerprint for the
/// fault/churn plans the caller must re-supply at restore).
pub fn debug_digest<T: fmt::Debug>(value: &T) -> u64 {
    fnv1a64(format!("{value:?}").as_bytes())
}

/// Fingerprint of a base communication graph: node count plus the dense
/// edge-endpoint table, FNV-1a hashed in little-endian order. Restore
/// rejects a checkpoint whose fingerprint differs from the graph the caller
/// supplies.
pub fn graph_fingerprint(node_count: usize, endpoints: &[[u32; 2]]) -> u64 {
    let mut bytes = Vec::with_capacity(8 + endpoints.len() * 8);
    bytes.extend_from_slice(&(node_count as u64).to_le_bytes());
    for pair in endpoints {
        bytes.extend_from_slice(&pair[0].to_le_bytes());
        bytes.extend_from_slice(&pair[1].to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// The 24-byte versioned header of a checkpoint file.
///
/// ```text
/// [0..4]   magic "FLCP"
/// [4]      version (2)
/// [5..8]   zero padding
/// [8..16]  u64 body_len   — exact byte length of the body that follows
/// [16..24] u64 checksum   — FNV-1a 64 of the body
/// ```
///
/// The header is what makes torn and corrupt files detectable *before* any
/// section parsing: a file shorter than `24 + body_len` bytes was torn
/// mid-write, and a body whose FNV-1a hash differs from `checksum` was
/// corrupted. Decoding obeys the crate's codec laws (exact sizing,
/// truncation/oversize/tag/padding rejection — see `tests/wire_codec.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Exact byte length of the body following the header.
    pub body_len: u64,
    /// FNV-1a 64-bit checksum of the body bytes.
    pub checksum: u64,
}

impl CheckpointHeader {
    /// Exact encoded size of a checkpoint header.
    pub const WIRE_BYTES: usize = 24;
}

impl WireCodec for CheckpointHeader {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&CHECKPOINT_MAGIC);
        buf.push(CHECKPOINT_VERSION);
        buf.extend_from_slice(&[0u8; 3]);
        buf.extend_from_slice(&self.body_len.to_le_bytes());
        buf.extend_from_slice(&self.checksum.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < Self::WIRE_BYTES {
            return Err(CodecError::Truncated {
                needed: Self::WIRE_BYTES,
                got: bytes.len(),
            });
        }
        if bytes.len() > Self::WIRE_BYTES {
            return Err(CodecError::Oversized {
                expected: Self::WIRE_BYTES,
                got: bytes.len(),
            });
        }
        if bytes[..4] != CHECKPOINT_MAGIC {
            let tag = bytes[..4]
                .iter()
                .zip(CHECKPOINT_MAGIC.iter())
                .find(|(got, want)| got != want)
                .map(|(got, _)| *got)
                .unwrap_or(bytes[0]);
            return Err(CodecError::InvalidTag { tag });
        }
        if bytes[4] != CHECKPOINT_VERSION {
            return Err(CodecError::InvalidTag { tag: bytes[4] });
        }
        if bytes[5..8] != [0u8; 3] {
            return Err(CodecError::InvalidPadding);
        }
        let u64_at = |i: usize| {
            u64::from_le_bytes([
                bytes[i],
                bytes[i + 1],
                bytes[i + 2],
                bytes[i + 3],
                bytes[i + 4],
                bytes[i + 5],
                bytes[i + 6],
                bytes[i + 7],
            ])
        };
        Ok(CheckpointHeader {
            body_len: u64_at(8),
            checksum: u64_at(16),
        })
    }
}

/// One message waiting in a pending mailbox, with its payload pre-encoded
/// through the program's message codec — which keeps [`NetworkCheckpoint`]
/// free of the message type parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingEnvelope {
    /// Raw ID of the edge the message travelled over.
    pub edge: u64,
    /// Raw ID of the sending node.
    pub from: u32,
    /// The payload in its [`WireCodec`] encoding.
    pub payload: Vec<u8>,
}

/// A complete, self-validating snapshot of a [`Network`] at a round
/// boundary (see the [module docs](self) for what it captures and the
/// bit-identity contract).
///
/// Capture with [`Network::checkpoint`], resume with [`Network::restore`]
/// or [`Network::restore_with_plans`], persist with
/// [`NetworkCheckpoint::write_to_file`].
///
/// [`Network`]: crate::engine::Network
/// [`Network::checkpoint`]: crate::engine::Network::checkpoint
/// [`Network::restore`]: crate::engine::Network::restore
/// [`Network::restore_with_plans`]: crate::engine::Network::restore_with_plans
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkCheckpoint {
    /// The configuration the network was built with (restore rebuilds from
    /// it, so seeds, knowledge model, shard count and trace settings all
    /// survive).
    pub config: NetworkConfig,
    /// Round counter at capture (0 before the first round).
    pub round: u32,
    /// Whether the initialization phase had run at capture.
    pub initialized: bool,
    /// Network-wide messages in flight at capture (delivered at the last
    /// barrier, unread).
    pub in_flight: u64,
    /// Halted nodes outside the capturing engine's owned range, as of the
    /// last barrier.
    pub remote_halted: u64,
    /// Node count of the graph the checkpoint belongs to.
    pub node_count: u32,
    /// Ledger edge slots at capture (may exceed the base graph's after
    /// churn inserted edges).
    pub edge_slots: u32,
    /// FNV-1a fingerprint of the base graph (node count + endpoint table);
    /// restore rejects a different graph.
    pub graph_digest: u64,
    /// Digest of the installed fault plan (or of "none"); restore rejects a
    /// caller-supplied plan that differs.
    pub fault_digest: u64,
    /// Digest of the installed churn plan (or of "none"); restore rejects a
    /// caller-supplied plan that differs.
    pub churn_digest: u64,
    /// Per-node halted flags at capture.
    pub halted: Vec<bool>,
    /// Per-node ChaCha word positions; the stream keys are re-derived from
    /// [`NetworkConfig::seed`] at restore, so only positions are stored.
    pub rng_positions: Vec<u64>,
    /// Per-node per-port consecutive-silence counters (`None` when no fault
    /// plan was installed, which is when the engine doesn't maintain them).
    pub port_silence: Option<Vec<Vec<u32>>>,
    /// Per-node program state from [`NodeProgram::save_state`] (empty for
    /// programs that keep no state).
    ///
    /// [`NodeProgram::save_state`]: crate::node::NodeProgram::save_state
    pub program_states: Vec<Vec<u8>>,
    /// Per-node pending mailboxes: the messages delivered at the last
    /// barrier, to be read next round.
    pub pending: Vec<Vec<PendingEnvelope>>,
    /// Churn events applied at the top of the capture round (restore
    /// verifies its deterministic replay reproduces them exactly).
    pub churn_events: Vec<ChurnEvent>,
    /// [`ExecutionMetrics`](crate::metrics::ExecutionMetrics) per-round
    /// column.
    pub metrics_messages_per_round: Vec<u64>,
    /// [`ExecutionMetrics`](crate::metrics::ExecutionMetrics) per-node
    /// column.
    pub metrics_messages_per_node: Vec<u64>,
    /// Ledger contract column: messages per edge.
    pub ledger_messages_per_edge: Vec<u64>,
    /// Ledger contract column: payload bytes per edge.
    pub ledger_bytes_per_edge: Vec<u64>,
    /// Ledger contract column: messages per round slot.
    pub ledger_messages_per_round: Vec<u64>,
    /// Ledger contract column: payload bytes per round slot.
    pub ledger_bytes_per_round: Vec<u64>,
    /// Ledger contract column: per-round congestion maxima.
    pub ledger_max_edge_messages_per_round: Vec<u64>,
    /// Ledger fault column: drops per round slot.
    pub ledger_dropped_per_round: Vec<u64>,
    /// Ledger fault column: duplications per round slot.
    pub ledger_duplicated_per_round: Vec<u64>,
    /// Ledger fault column: total random drops.
    pub ledger_dropped_random: u64,
    /// Ledger fault column: total link-cut drops.
    pub ledger_dropped_link_cut: u64,
    /// Ledger fault column: total receiver-crash drops.
    pub ledger_dropped_crash: u64,
    /// Trace storage capacity at capture.
    pub trace_capacity: u64,
    /// Trace overflow-drop counter at capture.
    pub trace_dropped: u64,
    /// The stored trace events at capture.
    pub trace_events: Vec<TraceEvent>,
}

impl NetworkCheckpoint {
    /// The ledger's fault totals at capture — the baseline
    /// [`TcpTransport::resume_from`] needs so a rejoined rank's first
    /// fault-delta frame picks up exactly where the checkpoint left off.
    ///
    /// [`TcpTransport::resume_from`]: crate::transport::TcpTransport::resume_from
    pub fn fault_totals(&self) -> FaultTotals {
        FaultTotals {
            dropped: self.ledger_dropped_random
                + self.ledger_dropped_link_cut
                + self.ledger_dropped_crash,
            duplicated: self.ledger_duplicated_per_round.iter().sum(),
            dropped_random: self.ledger_dropped_random,
            dropped_link_cut: self.ledger_dropped_link_cut,
            dropped_crash: self.ledger_dropped_crash,
        }
    }

    /// Serializes the checkpoint: [`CheckpointHeader`] followed by the
    /// little-endian body (section order in `docs/RECOVERY.md`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = self.encode_body();
        let header = CheckpointHeader {
            body_len: body.len() as u64,
            checksum: fnv1a64(&body),
        };
        let mut bytes = Vec::with_capacity(CheckpointHeader::WIRE_BYTES + body.len());
        header.encode(&mut bytes);
        bytes.extend_from_slice(&body);
        bytes
    }

    /// Parses a checkpoint from its serialized form.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Checkpoint`] naming the failure precisely: a file too
    /// short for the header, a bad magic/version, a torn body (shorter than
    /// the header promises), a checksum mismatch, a malformed section, or
    /// trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> RuntimeResult<Self> {
        if bytes.len() < CheckpointHeader::WIRE_BYTES {
            return Err(RuntimeError::checkpoint(format!(
                "file holds {} byte(s), which cannot contain the {}-byte header: torn write?",
                bytes.len(),
                CheckpointHeader::WIRE_BYTES
            )));
        }
        let header = CheckpointHeader::decode(&bytes[..CheckpointHeader::WIRE_BYTES])
            .map_err(|e| RuntimeError::checkpoint(format!("invalid header: {e}")))?;
        let body = &bytes[CheckpointHeader::WIRE_BYTES..];
        if body.len() as u64 != header.body_len {
            return Err(RuntimeError::checkpoint(format!(
                "torn checkpoint: header promises a {}-byte body, file carries {} byte(s)",
                header.body_len,
                body.len()
            )));
        }
        let checksum = fnv1a64(body);
        if checksum != header.checksum {
            return Err(RuntimeError::checkpoint(format!(
                "corrupt checkpoint: body checksum {checksum:#018x} does not match the \
                 header's {:#018x}",
                header.checksum
            )));
        }
        Self::decode_body(body)
    }

    /// Writes the checkpoint to `path`, via a temporary sibling file and an
    /// atomic rename — a crash mid-write can tear the temporary, never a
    /// previously good checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Checkpoint`] wrapping the I/O failure.
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> RuntimeResult<()> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_bytes())
            .map_err(|e| RuntimeError::checkpoint(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            RuntimeError::checkpoint(format!(
                "rename {} into {}: {e}",
                tmp.display(),
                path.display()
            ))
        })
    }

    /// Reads and validates a checkpoint from `path` (see
    /// [`NetworkCheckpoint::from_bytes`] for the rejection guarantees).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Checkpoint`] on I/O failure or any form of file
    /// corruption.
    pub fn read_from_file(path: impl AsRef<Path>) -> RuntimeResult<Self> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| RuntimeError::checkpoint(format!("read {}: {e}", path.display())))?;
        Self::from_bytes(&bytes).map_err(|e| match e {
            RuntimeError::Checkpoint { reason } => {
                RuntimeError::checkpoint(format!("{}: {reason}", path.display()))
            }
            other => other,
        })
    }

    fn encode_body(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        // Section 1: config.
        buf.push(match self.config.knowledge {
            KnowledgeModel::Kt0 => 0u8,
            KnowledgeModel::UniqueEdgeIds => 1,
            KnowledgeModel::Kt1 => 2,
        });
        buf.push(match self.config.trace_mode {
            TraceMode::Off => 0u8,
            TraceMode::Full => 1,
        });
        buf.push(match self.config.sched {
            Scheduling::Dynamic => 0u8,
            Scheduling::Static => 1,
        });
        buf.extend_from_slice(&[0u8; 1]);
        buf.extend_from_slice(&self.config.log_n_slack.to_le_bytes());
        buf.extend_from_slice(&self.config.seed.to_le_bytes());
        buf.extend_from_slice(&(self.config.trace_capacity as u64).to_le_bytes());
        buf.extend_from_slice(&(self.config.shards as u64).to_le_bytes());
        buf.extend_from_slice(&(self.config.chunk_size as u64).to_le_bytes());
        // Section 2: cursor.
        buf.extend_from_slice(&self.round.to_le_bytes());
        buf.push(u8::from(self.initialized));
        buf.extend_from_slice(&[0u8; 3]);
        // Section 3: barrier counters.
        buf.extend_from_slice(&self.in_flight.to_le_bytes());
        buf.extend_from_slice(&self.remote_halted.to_le_bytes());
        // Section 4: shape.
        buf.extend_from_slice(&self.node_count.to_le_bytes());
        buf.extend_from_slice(&self.edge_slots.to_le_bytes());
        // Section 5: fingerprints.
        buf.extend_from_slice(&self.graph_digest.to_le_bytes());
        buf.extend_from_slice(&self.fault_digest.to_le_bytes());
        buf.extend_from_slice(&self.churn_digest.to_le_bytes());
        // Section 6: halted flags.
        buf.extend(self.halted.iter().map(|&h| u8::from(h)));
        // Section 7: RNG positions.
        for &pos in &self.rng_positions {
            buf.extend_from_slice(&pos.to_le_bytes());
        }
        // Section 8: port silence.
        match &self.port_silence {
            None => buf.push(0u8),
            Some(silence) => {
                buf.push(1u8);
                for counters in silence {
                    buf.extend_from_slice(&(counters.len() as u32).to_le_bytes());
                    for &counter in counters {
                        buf.extend_from_slice(&counter.to_le_bytes());
                    }
                }
            }
        }
        // Section 9: program states.
        for state in &self.program_states {
            buf.extend_from_slice(&(state.len() as u32).to_le_bytes());
            buf.extend_from_slice(state);
        }
        // Section 10: pending mailboxes.
        for mailbox in &self.pending {
            buf.extend_from_slice(&(mailbox.len() as u32).to_le_bytes());
            for envelope in mailbox {
                buf.extend_from_slice(&envelope.edge.to_le_bytes());
                buf.extend_from_slice(&envelope.from.to_le_bytes());
                buf.extend_from_slice(&(envelope.payload.len() as u32).to_le_bytes());
                buf.extend_from_slice(&envelope.payload);
            }
        }
        // Section 11: churn events of the capture round.
        buf.extend_from_slice(&(self.churn_events.len() as u32).to_le_bytes());
        for event in &self.churn_events {
            event.encode(&mut buf);
        }
        // Section 12: metrics.
        encode_u64_vec(&mut buf, &self.metrics_messages_per_round);
        encode_u64_vec(&mut buf, &self.metrics_messages_per_node);
        // Section 13: ledger.
        encode_u64_vec(&mut buf, &self.ledger_messages_per_edge);
        encode_u64_vec(&mut buf, &self.ledger_bytes_per_edge);
        encode_u64_vec(&mut buf, &self.ledger_messages_per_round);
        encode_u64_vec(&mut buf, &self.ledger_bytes_per_round);
        encode_u64_vec(&mut buf, &self.ledger_max_edge_messages_per_round);
        encode_u64_vec(&mut buf, &self.ledger_dropped_per_round);
        encode_u64_vec(&mut buf, &self.ledger_duplicated_per_round);
        buf.extend_from_slice(&self.ledger_dropped_random.to_le_bytes());
        buf.extend_from_slice(&self.ledger_dropped_link_cut.to_le_bytes());
        buf.extend_from_slice(&self.ledger_dropped_crash.to_le_bytes());
        // Section 14: trace.
        buf.extend_from_slice(&self.trace_capacity.to_le_bytes());
        buf.extend_from_slice(&self.trace_dropped.to_le_bytes());
        buf.extend_from_slice(&(self.trace_events.len() as u32).to_le_bytes());
        for event in &self.trace_events {
            buf.extend_from_slice(&event.round.to_le_bytes());
            buf.extend_from_slice(&event.from.raw().to_le_bytes());
            buf.extend_from_slice(&event.to.raw().to_le_bytes());
            buf.extend_from_slice(&event.edge.raw().to_le_bytes());
        }
        buf
    }

    fn decode_body(body: &[u8]) -> RuntimeResult<Self> {
        let mut r = BodyReader { buf: body, pos: 0 };
        // Section 1: config.
        let knowledge = match r.u8("config.knowledge")? {
            0 => KnowledgeModel::Kt0,
            1 => KnowledgeModel::UniqueEdgeIds,
            2 => KnowledgeModel::Kt1,
            tag => {
                return Err(RuntimeError::checkpoint(format!(
                    "unknown knowledge-model tag {tag} at offset {}",
                    r.pos - 1
                )))
            }
        };
        let trace_mode = match r.u8("config.trace_mode")? {
            0 => TraceMode::Off,
            1 => TraceMode::Full,
            tag => {
                return Err(RuntimeError::checkpoint(format!(
                    "unknown trace-mode tag {tag} at offset {}",
                    r.pos - 1
                )))
            }
        };
        let sched = match r.u8("config.sched")? {
            0 => Scheduling::Dynamic,
            1 => Scheduling::Static,
            tag => {
                return Err(RuntimeError::checkpoint(format!(
                    "unknown scheduling tag {tag} at offset {}",
                    r.pos - 1
                )))
            }
        };
        r.padding(1, "config padding")?;
        let log_n_slack = r.u32("config.log_n_slack")?;
        let seed = r.u64("config.seed")?;
        let trace_capacity_cfg = r.u64("config.trace_capacity")?;
        let shards = r.u64("config.shards")?;
        let chunk_size = r.u64("config.chunk_size")?;
        let config = NetworkConfig {
            knowledge,
            seed,
            log_n_slack,
            trace_mode,
            trace_capacity: trace_capacity_cfg as usize,
            shards: shards as usize,
            sched,
            chunk_size: chunk_size as usize,
        };
        // Section 2: cursor.
        let round = r.u32("round")?;
        let initialized = match r.u8("initialized")? {
            0 => false,
            1 => true,
            tag => {
                return Err(RuntimeError::checkpoint(format!(
                    "initialized flag must be 0 or 1, found {tag} at offset {}",
                    r.pos - 1
                )))
            }
        };
        r.padding(3, "cursor padding")?;
        // Section 3: barrier counters.
        let in_flight = r.u64("in_flight")?;
        let remote_halted = r.u64("remote_halted")?;
        // Section 4: shape.
        let node_count = r.u32("node_count")?;
        let edge_slots = r.u32("edge_slots")?;
        // Section 5: fingerprints.
        let graph_digest = r.u64("graph_digest")?;
        let fault_digest = r.u64("fault_digest")?;
        let churn_digest = r.u64("churn_digest")?;
        let nodes = node_count as usize;
        // Section 6: halted flags.
        let halted_bytes = r.take(nodes, "halted flags")?;
        let mut halted = Vec::with_capacity(nodes);
        for (index, &byte) in halted_bytes.iter().enumerate() {
            match byte {
                0 => halted.push(false),
                1 => halted.push(true),
                tag => {
                    return Err(RuntimeError::checkpoint(format!(
                        "halted flag of node {index} must be 0 or 1, found {tag}"
                    )))
                }
            }
        }
        // Section 7: RNG positions.
        let mut rng_positions = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            rng_positions.push(r.u64("rng position")?);
        }
        // Section 8: port silence.
        let port_silence = match r.u8("port-silence flag")? {
            0 => None,
            1 => {
                let mut silence = Vec::with_capacity(nodes);
                for _ in 0..nodes {
                    let len = r.u32("port-silence length")? as usize;
                    let mut counters = Vec::with_capacity(len.min(r.remaining() / 4 + 1));
                    for _ in 0..len {
                        counters.push(r.u32("port-silence counter")?);
                    }
                    silence.push(counters);
                }
                Some(silence)
            }
            tag => {
                return Err(RuntimeError::checkpoint(format!(
                    "port-silence flag must be 0 or 1, found {tag} at offset {}",
                    r.pos - 1
                )))
            }
        };
        // Section 9: program states.
        let mut program_states = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let len = r.u32("program-state length")? as usize;
            program_states.push(r.take(len, "program state")?.to_vec());
        }
        // Section 10: pending mailboxes.
        let mut pending = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let count = r.u32("pending-mailbox count")? as usize;
            let mut mailbox = Vec::with_capacity(count.min(r.remaining() / 16 + 1));
            for _ in 0..count {
                let edge = r.u64("pending edge")?;
                let from = r.u32("pending sender")?;
                let len = r.u32("pending payload length")? as usize;
                let payload = r.take(len, "pending payload")?.to_vec();
                mailbox.push(PendingEnvelope {
                    edge,
                    from,
                    payload,
                });
            }
            pending.push(mailbox);
        }
        // Section 11: churn events.
        let churn_count = r.u32("churn-event count")? as usize;
        let mut churn_events = Vec::with_capacity(churn_count.min(r.remaining() / 20 + 1));
        for index in 0..churn_count {
            let bytes = r.take(ChurnEvent::WIRE_BYTES, "churn event")?;
            churn_events.push(ChurnEvent::decode(bytes).map_err(|e| {
                RuntimeError::checkpoint(format!("churn event {index} failed to decode: {e}"))
            })?);
        }
        // Section 12: metrics.
        let metrics_messages_per_round = decode_u64_vec(&mut r, "metrics.messages_per_round")?;
        let metrics_messages_per_node = decode_u64_vec(&mut r, "metrics.messages_per_node")?;
        // Section 13: ledger.
        let ledger_messages_per_edge = decode_u64_vec(&mut r, "ledger.messages_per_edge")?;
        let ledger_bytes_per_edge = decode_u64_vec(&mut r, "ledger.bytes_per_edge")?;
        let ledger_messages_per_round = decode_u64_vec(&mut r, "ledger.messages_per_round")?;
        let ledger_bytes_per_round = decode_u64_vec(&mut r, "ledger.bytes_per_round")?;
        let ledger_max_edge_messages_per_round =
            decode_u64_vec(&mut r, "ledger.max_edge_messages_per_round")?;
        let ledger_dropped_per_round = decode_u64_vec(&mut r, "ledger.dropped_per_round")?;
        let ledger_duplicated_per_round = decode_u64_vec(&mut r, "ledger.duplicated_per_round")?;
        let ledger_dropped_random = r.u64("ledger.dropped_random")?;
        let ledger_dropped_link_cut = r.u64("ledger.dropped_link_cut")?;
        let ledger_dropped_crash = r.u64("ledger.dropped_crash")?;
        // Section 14: trace.
        let trace_capacity = r.u64("trace.capacity")?;
        let trace_dropped = r.u64("trace.dropped")?;
        let trace_count = r.u32("trace-event count")? as usize;
        let mut trace_events =
            Vec::with_capacity(trace_count.min(r.remaining() / TRACE_EVENT_BYTES + 1));
        for _ in 0..trace_count {
            let round = r.u32("trace-event round")?;
            let from = r.u32("trace-event sender")?;
            let to = r.u32("trace-event receiver")?;
            let edge = r.u64("trace-event edge")?;
            trace_events.push(TraceEvent {
                round,
                from: NodeId::new(from),
                to: NodeId::new(to),
                edge: EdgeId::new(edge),
            });
        }
        if r.pos != body.len() {
            return Err(RuntimeError::checkpoint(format!(
                "checkpoint body has {} trailing byte(s) after the trace section",
                body.len() - r.pos
            )));
        }
        Ok(NetworkCheckpoint {
            config,
            round,
            initialized,
            in_flight,
            remote_halted,
            node_count,
            edge_slots,
            graph_digest,
            fault_digest,
            churn_digest,
            halted,
            rng_positions,
            port_silence,
            program_states,
            pending,
            churn_events,
            metrics_messages_per_round,
            metrics_messages_per_node,
            ledger_messages_per_edge,
            ledger_bytes_per_edge,
            ledger_messages_per_round,
            ledger_bytes_per_round,
            ledger_max_edge_messages_per_round,
            ledger_dropped_per_round,
            ledger_duplicated_per_round,
            ledger_dropped_random,
            ledger_dropped_link_cut,
            ledger_dropped_crash,
            trace_capacity,
            trace_dropped,
            trace_events,
        })
    }
}

fn encode_u64_vec(buf: &mut Vec<u8>, values: &[u64]) {
    buf.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for &value in values {
        buf.extend_from_slice(&value.to_le_bytes());
    }
}

fn decode_u64_vec(r: &mut BodyReader<'_>, field: &str) -> RuntimeResult<Vec<u64>> {
    let len = r.u32(field)? as usize;
    let mut values = Vec::with_capacity(len.min(r.remaining() / 8 + 1));
    for _ in 0..len {
        values.push(r.u64(field)?);
    }
    Ok(values)
}

/// Sequential little-endian reader over a checkpoint body, producing
/// field-precise [`RuntimeError::Checkpoint`] errors.
struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, len: usize, field: &str) -> RuntimeResult<&'a [u8]> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(RuntimeError::checkpoint(format!(
                "body truncated reading {field}: wanted {len} byte(s) at offset {}, body is \
                 {} byte(s)",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    fn u8(&mut self, field: &str) -> RuntimeResult<u8> {
        Ok(self.take(1, field)?[0])
    }

    fn u32(&mut self, field: &str) -> RuntimeResult<u32> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &str) -> RuntimeResult<u64> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn padding(&mut self, len: usize, field: &str) -> RuntimeResult<()> {
        let bytes = self.take(len, field)?;
        if bytes.iter().any(|&b| b != 0) {
            return Err(RuntimeError::checkpoint(format!(
                "non-zero {field} at offset {}",
                self.pos - len
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NetworkCheckpoint {
        NetworkCheckpoint {
            config: NetworkConfig::with_seed(7),
            round: 3,
            initialized: true,
            in_flight: 12,
            remote_halted: 0,
            node_count: 2,
            edge_slots: 1,
            graph_digest: 0xDEAD,
            fault_digest: 0xBEEF,
            churn_digest: 0xF00D,
            halted: vec![false, true],
            rng_positions: vec![17, 0],
            port_silence: Some(vec![vec![1, 2], vec![]]),
            program_states: vec![vec![1, 2, 3], Vec::new()],
            pending: vec![
                vec![PendingEnvelope {
                    edge: 0,
                    from: 1,
                    payload: vec![9, 0, 0, 0],
                }],
                Vec::new(),
            ],
            churn_events: Vec::new(),
            metrics_messages_per_round: vec![2, 4, 4, 2],
            metrics_messages_per_node: vec![6, 6],
            ledger_messages_per_edge: vec![12],
            ledger_bytes_per_edge: vec![48],
            ledger_messages_per_round: vec![2, 4, 4, 2],
            ledger_bytes_per_round: vec![8, 16, 16, 8],
            ledger_max_edge_messages_per_round: vec![2, 4, 4, 2],
            ledger_dropped_per_round: vec![0, 0, 0, 0],
            ledger_duplicated_per_round: vec![0, 0, 0, 0],
            ledger_dropped_random: 0,
            ledger_dropped_link_cut: 0,
            ledger_dropped_crash: 0,
            trace_capacity: 8,
            trace_dropped: 1,
            trace_events: vec![TraceEvent {
                round: 1,
                from: NodeId::new(0),
                to: NodeId::new(1),
                edge: EdgeId::new(0),
            }],
        }
    }

    #[test]
    fn roundtrips_through_bytes() {
        let checkpoint = sample();
        let bytes = checkpoint.to_bytes();
        let decoded = NetworkCheckpoint::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(decoded, checkpoint);
    }

    #[test]
    fn every_torn_prefix_is_rejected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = NetworkCheckpoint::from_bytes(&bytes[..cut])
                .expect_err("a torn prefix must never parse");
            assert!(
                matches!(err, RuntimeError::Checkpoint { .. }),
                "cut at {cut} produced {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_body_fails_the_checksum() {
        let mut bytes = sample().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let err = NetworkCheckpoint::from_bytes(&bytes).expect_err("corruption must be caught");
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let checkpoint = sample();
        let body_plus = {
            let mut body = checkpoint.encode_body();
            body.push(0);
            body
        };
        let header = CheckpointHeader {
            body_len: body_plus.len() as u64,
            checksum: fnv1a64(&body_plus),
        };
        let mut bytes = Vec::new();
        header.encode(&mut bytes);
        bytes.extend_from_slice(&body_plus);
        let err = NetworkCheckpoint::from_bytes(&bytes).expect_err("trailing byte must fail");
        assert!(err.to_string().contains("trailing"), "got: {err}");
    }

    #[test]
    fn file_roundtrip_is_atomic_and_exact() {
        let dir = std::env::temp_dir().join(format!("freelunch-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("net.ckpt");
        let checkpoint = sample();
        checkpoint.write_to_file(&path).expect("write");
        let read = NetworkCheckpoint::read_from_file(&path).expect("read");
        assert_eq!(read, checkpoint);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_is_the_reference_function() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
