//! Deterministic graph churn: seeded edge insert/delete and node join/leave
//! streams applied in canonical order at the round barrier.
//!
//! The clean engine models a *static* communication graph. Real overlays
//! churn: links appear and disappear, nodes join and leave. A [`ChurnPlan`]
//! describes such a dynamic-topology scenario *deterministically*, with the
//! same keying discipline as the fault plane ([`crate::fault`]): every
//! generated event is resolved from a ChaCha stream keyed by
//! `(plan seed, round, event kind, event index)`, so a churning execution is
//! a pure function of `(graph, config, plan)` — independent of the shard
//! count, the trace mode, the transport backend, and thread scheduling.
//! Churning executions therefore inherit the bit-identical cross-shard and
//! cross-backend guarantees of clean runs (`tests/churn_matrix.rs`) — and
//! the plane is **checkpoint-restorable**: a
//! [`NetworkCheckpoint`](crate::checkpoint::NetworkCheckpoint) stores only
//! a plan digest plus the capture round's resolved events; restore replays
//! the stream up to the checkpoint round (rejecting any divergence) and
//! resumes, because each round's events are keyed by absolute round rather
//! than by generator history (`docs/RECOVERY.md`;
//! `tests/recovery_matrix.rs` pins kill/resume identity mid-churn).
//!
//! # Event model and canonical application order
//!
//! A round's churn is applied **once, at the opening of the round, before
//! any node is stepped** — the topology is frozen for the round's execute
//! and dispatch phases, preserving the synchronous LOCAL semantics. Within
//! a round, events apply in this canonical order (see `docs/CHURN.md`):
//!
//! 1. **Scheduled events**, in the order they were added to the plan. A
//!    [`ChurnEventSpec::Leave`] expands into one [`ChurnEvent::EdgeDelete`]
//!    per incident live edge (ascending edge ID) followed by the
//!    [`ChurnEvent::NodeLeave`] itself.
//! 2. **Generated deletes** ([`ChurnPlan::delete_rate`] × the live edge
//!    count after step 1), each picking a uniform live edge from its keyed
//!    stream.
//! 3. **Generated inserts** ([`ChurnPlan::insert_rate`] × the same base
//!    count), each picking a uniform pair of distinct active nodes from its
//!    keyed stream (parallel edges allowed, self-loops never).
//!
//! The resolved per-round event list — [`ChurnEvent`] values with concrete
//! edge IDs — is an *observable* of the execution: the transports carry it
//! across the wire (as a frame section, encoded via the event's
//! [`WireCodec`]) so that distributed ranks can verify they applied the
//! identical topology update, exactly like the lockstep round checks.
//!
//! The empty plan ([`ChurnPlan::none`]) is byte-identical to never
//! installing a plan at all — the engine keeps its static fast path.
//!
//! # Examples
//!
//! ```
//! use freelunch_graph::generators::{cycle_graph, GeneratorConfig};
//! use freelunch_runtime::{ChurnDriver, ChurnEvent, ChurnPlan};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = cycle_graph(&GeneratorConfig::new(8, 0))?.freeze();
//! let plan = ChurnPlan::new(7).with_delete_rate(0.25);
//! let mut driver = ChurnDriver::new(plan, &graph)?;
//! let events = driver.apply_round(1)?;
//! // 25% of 8 live edges: exactly two deletions, fully determined by seed 7.
//! assert_eq!(events.len(), 2);
//! assert!(events.iter().all(|e| matches!(e, ChurnEvent::EdgeDelete { .. })));
//! assert_eq!(driver.overlay().live_edge_count(), 6);
//! # Ok(())
//! # }
//! ```

use crate::error::{RuntimeError, RuntimeResult};
use crate::fault::message_seed;
use crate::transport::{CodecError, WireCodec};
use freelunch_graph::overlay::OverlayGraph;
use freelunch_graph::{CsrGraph, EdgeId, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Domain-separation tag of the churn streams (`"CHURNPLN"`), XORed into
/// the plan seed so churn draws never collide with fault draws of an equal
/// seed.
const CHURN_TAG: u64 = 0x4348_5552_4E50_4C4E;

/// Stream kind of generated edge deletions.
const KIND_DELETE: u64 = 0;
/// Stream kind of generated edge insertions.
const KIND_INSERT: u64 = 1;

/// One resolved topology update, as applied by the engine and carried by
/// the transports (see [`ChurnEvent::WIRE_BYTES`] for the wire form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// Edge `edge` now connects `u` and `v`.
    EdgeInsert {
        /// The identifier assigned to the new edge.
        edge: EdgeId,
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// Edge `edge` no longer exists.
    EdgeDelete {
        /// The deleted edge.
        edge: EdgeId,
    },
    /// `node` (re-)joined the network.
    NodeJoin {
        /// The joining node.
        node: NodeId,
    },
    /// `node` left the network (its incident edges were deleted by the
    /// preceding [`ChurnEvent::EdgeDelete`] events of the same round).
    NodeLeave {
        /// The departing node.
        node: NodeId,
    },
}

const TAG_EDGE_INSERT: u8 = 1;
const TAG_EDGE_DELETE: u8 = 2;
const TAG_NODE_JOIN: u8 = 3;
const TAG_NODE_LEAVE: u8 = 4;

impl ChurnEvent {
    /// Fixed wire size of every churn event: 1 tag byte, 3 zero-pad bytes,
    /// the edge ID as `u64` LE, and two node IDs as `u32` LE (unused fields
    /// encode as zero and are validated on decode).
    pub const WIRE_BYTES: usize = 20;
}

impl WireCodec for ChurnEvent {
    fn encode(&self, buf: &mut Vec<u8>) {
        let (tag, edge, a, b) = match *self {
            ChurnEvent::EdgeInsert { edge, u, v } => {
                (TAG_EDGE_INSERT, edge.raw(), u.raw(), v.raw())
            }
            ChurnEvent::EdgeDelete { edge } => (TAG_EDGE_DELETE, edge.raw(), 0, 0),
            ChurnEvent::NodeJoin { node } => (TAG_NODE_JOIN, 0, node.raw(), 0),
            ChurnEvent::NodeLeave { node } => (TAG_NODE_LEAVE, 0, node.raw(), 0),
        };
        buf.push(tag);
        buf.extend_from_slice(&[0u8; 3]);
        buf.extend_from_slice(&edge.to_le_bytes());
        buf.extend_from_slice(&a.to_le_bytes());
        buf.extend_from_slice(&b.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < Self::WIRE_BYTES {
            return Err(CodecError::Truncated {
                needed: Self::WIRE_BYTES,
                got: bytes.len(),
            });
        }
        if bytes.len() > Self::WIRE_BYTES {
            return Err(CodecError::Oversized {
                expected: Self::WIRE_BYTES,
                got: bytes.len(),
            });
        }
        if bytes[1..4].iter().any(|&b| b != 0) {
            return Err(CodecError::InvalidPadding);
        }
        let edge = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
        let a = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        let b = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
        match bytes[0] {
            TAG_EDGE_INSERT => Ok(ChurnEvent::EdgeInsert {
                edge: EdgeId::new(edge),
                u: NodeId::new(a),
                v: NodeId::new(b),
            }),
            TAG_EDGE_DELETE if a == 0 && b == 0 => Ok(ChurnEvent::EdgeDelete {
                edge: EdgeId::new(edge),
            }),
            TAG_NODE_JOIN if edge == 0 && b == 0 => Ok(ChurnEvent::NodeJoin {
                node: NodeId::new(a),
            }),
            TAG_NODE_LEAVE if edge == 0 && b == 0 => Ok(ChurnEvent::NodeLeave {
                node: NodeId::new(a),
            }),
            // A known tag whose unused fields are non-zero is corruption.
            TAG_EDGE_DELETE | TAG_NODE_JOIN | TAG_NODE_LEAVE => Err(CodecError::InvalidPadding),
            tag => Err(CodecError::InvalidTag { tag }),
        }
    }
}

/// A scheduled (explicit) churn event of a [`ChurnPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEventSpec {
    /// Insert an edge between `u` and `v`; the driver assigns the next free
    /// edge ID and reports it in the resolved [`ChurnEvent::EdgeInsert`].
    InsertEdge {
        /// First endpoint (must be active when the event applies).
        u: NodeId,
        /// Second endpoint (must be active when the event applies).
        v: NodeId,
    },
    /// Delete the live edge `edge`.
    DeleteEdge {
        /// The edge to delete (must be live when the event applies).
        edge: EdgeId,
    },
    /// `node` leaves the network: its incident live edges are deleted
    /// (ascending edge ID), then the node deactivates.
    Leave {
        /// The departing node (must be active when the event applies).
        node: NodeId,
    },
    /// `node` (re-)joins the network with no incident edges.
    Join {
        /// The joining node (must be inactive when the event applies).
        node: NodeId,
    },
}

/// A scheduled event with the round it applies in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledChurn {
    /// The round the event applies at (0 = before initialization).
    pub round: u32,
    /// The event itself.
    pub event: ChurnEventSpec,
}

/// A deterministic churn scenario (see the [module docs](self)).
///
/// The empty plan ([`ChurnPlan::none`], or any plan for which
/// [`ChurnPlan::is_empty`] is `true`) leaves an execution byte-identical to
/// one that never installed a plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnPlan {
    /// Seed of the churn streams. Independent from both the network seed
    /// and the fault seed.
    pub seed: u64,
    /// Explicitly scheduled events, applied in insertion order within their
    /// round.
    pub scheduled: Vec<ScheduledChurn>,
    /// Expected fraction of live edges inserted per round (in `[0, 1]`).
    pub insert_rate: f64,
    /// Expected fraction of live edges deleted per round (in `[0, 1]`).
    pub delete_rate: f64,
}

impl Default for ChurnPlan {
    fn default() -> Self {
        ChurnPlan::none()
    }
}

impl ChurnPlan {
    /// The empty plan: a static graph.
    pub fn none() -> Self {
        ChurnPlan {
            seed: 0,
            scheduled: Vec::new(),
            insert_rate: 0.0,
            delete_rate: 0.0,
        }
    }

    /// An empty plan carrying the given churn seed (configure it with the
    /// `with_*` builders).
    pub fn new(seed: u64) -> Self {
        ChurnPlan {
            seed,
            ..ChurnPlan::none()
        }
    }

    /// Returns a copy with the per-round generated insert rate set.
    pub fn with_insert_rate(mut self, rate: f64) -> Self {
        self.insert_rate = rate;
        self
    }

    /// Returns a copy with the per-round generated delete rate set.
    pub fn with_delete_rate(mut self, rate: f64) -> Self {
        self.delete_rate = rate;
        self
    }

    /// Returns a copy scheduling an edge insertion between `u` and `v`.
    pub fn with_edge_insert(mut self, round: u32, u: NodeId, v: NodeId) -> Self {
        self.scheduled.push(ScheduledChurn {
            round,
            event: ChurnEventSpec::InsertEdge { u, v },
        });
        self
    }

    /// Returns a copy scheduling the deletion of `edge`.
    pub fn with_edge_delete(mut self, round: u32, edge: EdgeId) -> Self {
        self.scheduled.push(ScheduledChurn {
            round,
            event: ChurnEventSpec::DeleteEdge { edge },
        });
        self
    }

    /// Returns a copy scheduling the departure of `node`.
    pub fn with_node_leave(mut self, round: u32, node: NodeId) -> Self {
        self.scheduled.push(ScheduledChurn {
            round,
            event: ChurnEventSpec::Leave { node },
        });
        self
    }

    /// Returns a copy scheduling the (re-)join of `node`.
    pub fn with_node_join(mut self, round: u32, node: NodeId) -> Self {
        self.scheduled.push(ScheduledChurn {
            round,
            event: ChurnEventSpec::Join { node },
        });
        self
    }

    /// Returns `true` if the plan churns nothing at all (the engine then
    /// keeps its static fast path).
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty() && self.insert_rate <= 0.0 && self.delete_rate <= 0.0
    }

    /// Validates the plan's rates.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated requirement.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("insert_rate", self.insert_rate),
            ("delete_rate", self.delete_rate),
        ] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} must be a rate in [0, 1], got {rate}"));
            }
        }
        Ok(())
    }
}

/// The resolved, stateful form of a [`ChurnPlan`]: owns the mutable
/// [`OverlayGraph`] and produces each round's canonical event list.
///
/// The engine drives one internally when constructed with a plan
/// ([`Network::with_churn_plan`](crate::engine::Network::with_churn_plan));
/// benches and tests can also drive one directly to mirror the exact event
/// stream an engine execution would see (the stream is a pure function of
/// `(plan, graph)`).
#[derive(Debug)]
pub struct ChurnDriver {
    plan: ChurnPlan,
    /// Scheduled events grouped by round, preserving plan insertion order
    /// within each round.
    scheduled: BTreeMap<u32, Vec<ChurnEventSpec>>,
    overlay: OverlayGraph,
    /// Live edges in a swap-remove arena for O(1) uniform picks; the order
    /// is a deterministic function of the event history.
    live_edges: Vec<EdgeId>,
    live_pos: HashMap<EdgeId, usize>,
    /// Active nodes in the same swap-remove discipline.
    active_nodes: Vec<NodeId>,
    active_pos: Vec<Option<usize>>,
}

impl ChurnDriver {
    /// Resolves `plan` against the frozen `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if the plan's rates are
    /// invalid or a scheduled event references an out-of-range node.
    pub fn new(plan: ChurnPlan, graph: &CsrGraph) -> RuntimeResult<Self> {
        plan.validate().map_err(RuntimeError::invalid_config)?;
        let n = graph.node_count();
        for entry in &plan.scheduled {
            let node = match entry.event {
                ChurnEventSpec::InsertEdge { u, v } => {
                    if u.index() >= n {
                        Some(u)
                    } else if v.index() >= n {
                        Some(v)
                    } else {
                        None
                    }
                }
                ChurnEventSpec::Leave { node } | ChurnEventSpec::Join { node } => {
                    (node.index() >= n).then_some(node)
                }
                ChurnEventSpec::DeleteEdge { .. } => None,
            };
            if let Some(node) = node {
                return Err(RuntimeError::invalid_config(format!(
                    "churn plan references node {node} outside 0..{n}"
                )));
            }
        }
        let mut scheduled: BTreeMap<u32, Vec<ChurnEventSpec>> = BTreeMap::new();
        for entry in &plan.scheduled {
            scheduled.entry(entry.round).or_default().push(entry.event);
        }
        let overlay = OverlayGraph::new(graph);
        let live_edges: Vec<EdgeId> = overlay.live_edges().map(|(id, _)| id).collect();
        let live_pos = live_edges
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, pos))
            .collect();
        let active_nodes: Vec<NodeId> = (0..n as u32).map(NodeId::new).collect();
        let active_pos = (0..n).map(Some).collect();
        Ok(ChurnDriver {
            plan,
            scheduled,
            overlay,
            live_edges,
            live_pos,
            active_nodes,
            active_pos,
        })
    }

    /// The plan this driver was resolved from.
    pub fn plan(&self) -> &ChurnPlan {
        &self.plan
    }

    /// The current topology overlay.
    pub fn overlay(&self) -> &OverlayGraph {
        &self.overlay
    }

    /// Applies one round's churn in canonical order (see the
    /// [module docs](self)) and returns the resolved event list.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if a *scheduled* event is
    /// infeasible when its round arrives (deleting a dead edge, inserting
    /// at an inactive endpoint, a double leave/join). Generated events with
    /// no feasible candidate (no live edge, fewer than two active nodes)
    /// are skipped silently.
    pub fn apply_round(&mut self, round: u32) -> RuntimeResult<Vec<ChurnEvent>> {
        let mut events = Vec::new();
        if let Some(specs) = self.scheduled.remove(&round) {
            for spec in specs {
                self.apply_scheduled(round, spec, &mut events)?;
            }
        }
        // Generated events share one base count: the live edge count after
        // the scheduled phase, so insert and delete rates are symmetric.
        let base = self.live_edges.len() as f64;
        let deletes = self.draw_count(round, KIND_DELETE, self.plan.delete_rate * base);
        for index in 0..deletes {
            if self.live_edges.is_empty() {
                break;
            }
            let mut rng = ChaCha8Rng::seed_from_u64(message_seed(
                self.plan.seed ^ CHURN_TAG,
                round,
                KIND_DELETE,
                0,
                index,
            ));
            let edge = self.live_edges[rng.gen_range(0..self.live_edges.len())];
            self.delete_edge(edge, &mut events)
                .expect("picked edge is live");
        }
        let inserts = self.draw_count(round, KIND_INSERT, self.plan.insert_rate * base);
        for index in 0..inserts {
            if self.active_nodes.len() < 2 {
                break;
            }
            let mut rng = ChaCha8Rng::seed_from_u64(message_seed(
                self.plan.seed ^ CHURN_TAG,
                round,
                KIND_INSERT,
                0,
                index,
            ));
            let u_idx = rng.gen_range(0..self.active_nodes.len());
            let mut v_idx = rng.gen_range(0..self.active_nodes.len() - 1);
            if v_idx >= u_idx {
                v_idx += 1;
            }
            let (u, v) = (self.active_nodes[u_idx], self.active_nodes[v_idx]);
            self.insert_edge(u, v, &mut events)
                .expect("picked endpoints are distinct active nodes");
        }
        Ok(events)
    }

    /// Rounds that still have scheduled events pending.
    pub fn pending_scheduled_rounds(&self) -> usize {
        self.scheduled.len()
    }

    fn apply_scheduled(
        &mut self,
        round: u32,
        spec: ChurnEventSpec,
        events: &mut Vec<ChurnEvent>,
    ) -> RuntimeResult<()> {
        match spec {
            ChurnEventSpec::InsertEdge { u, v } => {
                for node in [u, v] {
                    if !self.overlay.is_active(node) {
                        return Err(RuntimeError::invalid_config(format!(
                            "churn round {round}: scheduled insert touches inactive node {node}"
                        )));
                    }
                }
                self.insert_edge(u, v, events).map_err(|e| {
                    RuntimeError::invalid_config(format!(
                        "churn round {round}: scheduled insert ({u}, {v}): {e}"
                    ))
                })?;
            }
            ChurnEventSpec::DeleteEdge { edge } => {
                self.delete_edge(edge, events).map_err(|_| {
                    RuntimeError::invalid_config(format!(
                        "churn round {round}: scheduled delete of non-live edge {edge}"
                    ))
                })?;
            }
            ChurnEventSpec::Leave { node } => {
                if !self.overlay.is_active(node) {
                    return Err(RuntimeError::invalid_config(format!(
                        "churn round {round}: scheduled leave of inactive node {node}"
                    )));
                }
                let mut incident: Vec<EdgeId> = self
                    .overlay
                    .incident_edges(node)
                    .iter()
                    .map(|ie| ie.edge)
                    .collect();
                incident.sort_unstable();
                for edge in incident {
                    self.delete_edge(edge, events)
                        .expect("incident edges are live");
                }
                self.overlay
                    .deactivate_node(node)
                    .expect("node range was validated at construction");
                let pos = self.active_pos[node.index()]
                    .take()
                    .expect("active node has an arena slot");
                self.active_nodes.swap_remove(pos);
                if let Some(&moved) = self.active_nodes.get(pos) {
                    self.active_pos[moved.index()] = Some(pos);
                }
                events.push(ChurnEvent::NodeLeave { node });
            }
            ChurnEventSpec::Join { node } => {
                if self.overlay.is_active(node) {
                    return Err(RuntimeError::invalid_config(format!(
                        "churn round {round}: scheduled join of already-active node {node}"
                    )));
                }
                self.overlay
                    .activate_node(node)
                    .expect("node range was validated at construction");
                self.active_pos[node.index()] = Some(self.active_nodes.len());
                self.active_nodes.push(node);
                events.push(ChurnEvent::NodeJoin { node });
            }
        }
        Ok(())
    }

    fn insert_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        events: &mut Vec<ChurnEvent>,
    ) -> RuntimeResult<EdgeId> {
        let edge = self
            .overlay
            .insert_edge(u, v)
            .map_err(|e| RuntimeError::invalid_config(e.to_string()))?;
        self.live_pos.insert(edge, self.live_edges.len());
        self.live_edges.push(edge);
        events.push(ChurnEvent::EdgeInsert { edge, u, v });
        Ok(edge)
    }

    fn delete_edge(&mut self, edge: EdgeId, events: &mut Vec<ChurnEvent>) -> RuntimeResult<()> {
        self.overlay
            .remove_edge(edge)
            .map_err(|e| RuntimeError::invalid_config(e.to_string()))?;
        let pos = self
            .live_pos
            .remove(&edge)
            .expect("live index mirrors the overlay");
        self.live_edges.swap_remove(pos);
        if let Some(&moved) = self.live_edges.get(pos) {
            self.live_pos.insert(moved, pos);
        }
        events.push(ChurnEvent::EdgeDelete { edge });
        Ok(())
    }

    /// Resolves a fractional expected count into a concrete one: the integer
    /// part always happens, the fractional part is a keyed Bernoulli draw.
    fn draw_count(&self, round: u32, kind: u64, expected: f64) -> u32 {
        if expected <= 0.0 {
            return 0;
        }
        let base = expected.floor();
        let frac = expected - base;
        let mut count = base as u32;
        if frac > 0.0 {
            let mut rng = ChaCha8Rng::seed_from_u64(message_seed(
                self.plan.seed ^ CHURN_TAG,
                round,
                kind,
                u32::MAX,
                u32::MAX,
            ));
            if rng.gen_bool(frac.min(1.0)) {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::MultiGraph;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn path4() -> CsrGraph {
        let mut g = MultiGraph::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            g.add_edge(n(u), n(v)).unwrap();
        }
        g.freeze()
    }

    #[test]
    fn empty_plan_is_empty_and_produces_no_events() {
        let plan = ChurnPlan::none();
        assert!(plan.is_empty());
        assert!(plan.validate().is_ok());
        let mut driver = ChurnDriver::new(plan, &path4()).unwrap();
        for round in 0..5 {
            assert!(driver.apply_round(round).unwrap().is_empty());
        }
        assert_eq!(driver.overlay().live_edge_count(), 3);
    }

    #[test]
    fn builders_compose_and_validate() {
        let plan = ChurnPlan::new(3)
            .with_insert_rate(0.1)
            .with_delete_rate(0.2)
            .with_edge_insert(1, n(0), n(2))
            .with_edge_delete(2, EdgeId::new(0))
            .with_node_leave(3, n(3))
            .with_node_join(4, n(3));
        assert!(!plan.is_empty());
        assert_eq!(plan.scheduled.len(), 4);
        assert!(plan.validate().is_ok());
        assert!(ChurnPlan::new(0).with_insert_rate(1.5).validate().is_err());
        assert!(ChurnPlan::new(0)
            .with_delete_rate(f64::NAN)
            .validate()
            .is_err());
        assert!(ChurnPlan::new(0).with_delete_rate(-0.1).validate().is_err());
    }

    #[test]
    fn scheduled_events_apply_in_plan_order() {
        let plan = ChurnPlan::new(0)
            .with_edge_delete(1, EdgeId::new(1))
            .with_edge_insert(1, n(1), n(3));
        let mut driver = ChurnDriver::new(plan, &path4()).unwrap();
        assert!(driver.apply_round(0).unwrap().is_empty());
        let events = driver.apply_round(1).unwrap();
        assert_eq!(
            events,
            vec![
                ChurnEvent::EdgeDelete {
                    edge: EdgeId::new(1)
                },
                ChurnEvent::EdgeInsert {
                    edge: EdgeId::new(3),
                    u: n(1),
                    v: n(3)
                },
            ]
        );
        assert_eq!(driver.overlay().live_edge_count(), 3);
        assert_eq!(driver.pending_scheduled_rounds(), 0);
    }

    #[test]
    fn leave_expands_to_ascending_edge_deletes() {
        let plan = ChurnPlan::new(0).with_node_leave(2, n(1));
        let mut driver = ChurnDriver::new(plan, &path4()).unwrap();
        let events = driver.apply_round(2).unwrap();
        assert_eq!(
            events,
            vec![
                ChurnEvent::EdgeDelete {
                    edge: EdgeId::new(0)
                },
                ChurnEvent::EdgeDelete {
                    edge: EdgeId::new(1)
                },
                ChurnEvent::NodeLeave { node: n(1) },
            ]
        );
        assert!(!driver.overlay().is_active(n(1)));
        assert_eq!(driver.overlay().live_edge_count(), 1);
    }

    #[test]
    fn join_reactivates_a_departed_node() {
        let plan = ChurnPlan::new(0)
            .with_node_leave(1, n(3))
            .with_node_join(2, n(3))
            .with_edge_insert(3, n(3), n(0));
        let mut driver = ChurnDriver::new(plan, &path4()).unwrap();
        driver.apply_round(1).unwrap();
        assert!(!driver.overlay().is_active(n(3)));
        let events = driver.apply_round(2).unwrap();
        assert_eq!(events, vec![ChurnEvent::NodeJoin { node: n(3) }]);
        let events = driver.apply_round(3).unwrap();
        assert!(matches!(events[0], ChurnEvent::EdgeInsert { .. }));
    }

    #[test]
    fn infeasible_scheduled_events_are_config_errors() {
        let plan = ChurnPlan::new(0).with_edge_delete(1, EdgeId::new(9));
        let mut driver = ChurnDriver::new(plan, &path4()).unwrap();
        assert!(driver.apply_round(1).is_err());

        let plan = ChurnPlan::new(0)
            .with_node_leave(1, n(2))
            .with_edge_insert(2, n(2), n(0));
        let mut driver = ChurnDriver::new(plan, &path4()).unwrap();
        driver.apply_round(1).unwrap();
        assert!(driver.apply_round(2).is_err());

        let plan = ChurnPlan::new(0).with_node_join(1, n(0));
        let mut driver = ChurnDriver::new(plan, &path4()).unwrap();
        assert!(driver.apply_round(1).is_err());

        assert!(ChurnDriver::new(ChurnPlan::new(0).with_node_leave(0, n(9)), &path4()).is_err());
        assert!(ChurnDriver::new(ChurnPlan::new(0).with_insert_rate(2.0), &path4()).is_err());
    }

    #[test]
    fn generated_churn_is_deterministic_per_seed() {
        let graph = {
            let mut g = MultiGraph::new(16);
            for u in 0..15u32 {
                g.add_edge(n(u), n(u + 1)).unwrap();
            }
            g.freeze()
        };
        let stream = |seed: u64| {
            let plan = ChurnPlan::new(seed)
                .with_insert_rate(0.3)
                .with_delete_rate(0.3);
            let mut driver = ChurnDriver::new(plan, &graph).unwrap();
            let mut all = Vec::new();
            for round in 0..6 {
                all.extend(driver.apply_round(round).unwrap());
            }
            all
        };
        assert_eq!(stream(5), stream(5));
        assert_ne!(stream(5), stream(6));
        assert!(!stream(5).is_empty());
    }

    #[test]
    fn fractional_rates_round_by_keyed_bernoulli() {
        // delete_rate 0.5 on 3 live edges → expected 1.5: every round
        // deletes either 1 or 2 edges, and over rounds both happen.
        let graph = {
            let mut g = MultiGraph::new(32);
            for u in 0..31u32 {
                g.add_edge(n(u), n(u + 1)).unwrap();
            }
            g.freeze()
        };
        let plan = ChurnPlan::new(9)
            .with_delete_rate(0.1)
            .with_insert_rate(0.1);
        let mut driver = ChurnDriver::new(plan, &graph).unwrap();
        let mut sizes = Vec::new();
        for round in 0..12 {
            sizes.push(driver.apply_round(round).unwrap().len());
        }
        // Expected 3.1 deletes + 3.1 inserts per round; the two fractional
        // parts are rounded by *independent* keyed Bernoulli draws, so each
        // round yields 6, 7, or 8 events (floor/floor .. ceil/ceil).
        assert!(sizes.iter().all(|&s| (6..=8).contains(&s)), "{sizes:?}");
        assert!(sizes.iter().any(|&s| s != sizes[0]), "{sizes:?}");
    }

    #[test]
    fn generated_events_skip_when_no_candidates_remain() {
        let plan = ChurnPlan::new(1).with_delete_rate(1.0);
        let mut driver = ChurnDriver::new(plan, &path4()).unwrap();
        for round in 0..4 {
            driver.apply_round(round).unwrap();
        }
        assert_eq!(driver.overlay().live_edge_count(), 0);
        assert!(driver.apply_round(9).unwrap().is_empty());
    }

    #[test]
    fn churn_events_roundtrip_on_the_wire() {
        let events = [
            ChurnEvent::EdgeInsert {
                edge: EdgeId::new(7),
                u: n(1),
                v: n(2),
            },
            ChurnEvent::EdgeDelete {
                edge: EdgeId::new(u64::MAX),
            },
            ChurnEvent::NodeJoin { node: n(0) },
            ChurnEvent::NodeLeave { node: n(u32::MAX) },
        ];
        for event in events {
            let encoded = event.encode_to_vec();
            assert_eq!(encoded.len(), ChurnEvent::WIRE_BYTES);
            assert_eq!(ChurnEvent::decode(&encoded), Ok(event));
        }
    }

    #[test]
    fn churn_event_decode_rejects_corruption() {
        let event = ChurnEvent::EdgeDelete {
            edge: EdgeId::new(3),
        };
        let encoded = event.encode_to_vec();
        assert!(matches!(
            ChurnEvent::decode(&encoded[..10]),
            Err(CodecError::Truncated { .. })
        ));
        let mut long = encoded.clone();
        long.push(0);
        assert!(matches!(
            ChurnEvent::decode(&long),
            Err(CodecError::Oversized { .. })
        ));
        let mut bad_tag = encoded.clone();
        bad_tag[0] = 0xEE;
        assert_eq!(
            ChurnEvent::decode(&bad_tag),
            Err(CodecError::InvalidTag { tag: 0xEE })
        );
        let mut bad_pad = encoded.clone();
        bad_pad[2] = 1;
        assert_eq!(
            ChurnEvent::decode(&bad_pad),
            Err(CodecError::InvalidPadding)
        );
        // Non-zero unused field on a delete (a node slot) is corruption too.
        let mut bad_field = encoded;
        bad_field[13] = 1;
        assert_eq!(
            ChurnEvent::decode(&bad_field),
            Err(CodecError::InvalidPadding)
        );
    }
}
