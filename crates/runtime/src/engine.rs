//! The synchronous execution engine: runs one [`NodeProgram`] per node of a
//! communication graph, round by round, with exact message accounting.
//!
//! This is the (fully synchronous) LOCAL model of Linial / Peleg as used in
//! the paper: in every round each node may send one message over each
//! incident edge (message size is not bounded), receives the messages sent
//! to it in that round, and performs arbitrary local computation.
//!
//! # The message plane
//!
//! Messages live in flat, **double-buffered per-node mailboxes**: the front
//! buffer holds the inboxes the programs read this round, the back buffer
//! collects the messages they send. At the start of each round the two are
//! swapped and the (now stale) back buffer is cleared — never reallocated —
//! so in steady state a round performs **no per-message allocation**:
//! outboxes, inboxes and metrics scratch are all reused across rounds.
//! Sends are resolved when the program makes them ([`Context::send_port`]
//! reads the receiver straight off the node's packed CSR incidence slice;
//! [`Context::send`] validates with one dense array read), so the barrier
//! never touches the graph per message.
//!
//! # Sharded parallel execution
//!
//! Every round has two phases, both parallelized over
//! [`NetworkConfig::shards`] worker threads under a [`Scheduling`] mode:
//!
//! * the *execute* phase steps each node's program against its inbox
//!   snapshot — nodes are mutually independent within a round. Under the
//!   default [`Scheduling::Dynamic`] the node range is pre-split into
//!   many small chunks ([`NetworkConfig::chunk_size`] nodes each) and the
//!   workers **claim chunks off a shared atomic cursor** until none
//!   remain, so a skewed workload (scale-free hubs, a half-halted graph)
//!   cannot idle every worker behind one overloaded range.
//!   [`Scheduling::Static`] keeps the pre-stealing partition into exactly
//!   `shards` contiguous `div_ceil` ranges as a comparison baseline;
//! * the *dispatch* phase delivers at the round barrier with
//!   **receiver-chunked workers**: a route step buckets the canonical
//!   node-ordered outboxes into a (sender chunk × receiver chunk) grid,
//!   then workers claim receiver chunks and drain their bucket columns in
//!   ascending sender-chunk order, accumulating per-edge ledger partials
//!   as they go; the partials are merged into the [`MessageLedger`] when
//!   the barrier closes. Each receiver's mailbox is filled in ascending
//!   sender order (and, per sender, in send order): the exact order the
//!   sequential engine produces.
//!
//! Work-stealing changes only *which worker* steps a node, and that is
//! unobservable: every node writes only its own pre-allocated slots
//! (program state, RNG, outbox, halted flag — chunks are disjoint `&mut`
//! sub-slices each claimed exactly once), each node draws from its own
//! seeded [`ChaCha8Rng`] stream keyed by `(seed, node)`, and the barrier
//! reads everything back in canonical node order. A failing round reports
//! the canonically **first** error (lowest node index) on all paths — the
//! serial engine trivially, the static partition by joining shards in
//! ascending order, the dynamic scheduler by reducing the per-worker
//! lowest-node candidates after the join. Hence every observable of an
//! execution — [`ExecutionMetrics`], [`MessageLedger`], [`Trace`],
//! program outputs — is **bit-identical for every shard count, scheduler
//! and chunk size** at equal seeds. Sharding and scheduling are
//! wall-clock knobs, never semantics knobs.
//!
//! Per-message trace recording is priced separately: it is off by default
//! ([`TraceMode::Off`]) and a traced execution ([`NetworkConfig::traced`])
//! runs the barrier serially so events appear in canonical order — see
//! [`TraceMode`].
//!
//! # Pluggable transports
//!
//! The barrier's delivery step is a [`Transport`]: the default
//! [`InProcessTransport`] is the zero-allocation double-buffered plane
//! described above, [`TcpTransport`](crate::transport::TcpTransport) runs
//! the same execution across processes, and
//! [`MockTransport`](crate::transport::MockTransport) is a wire-faithful
//! test double. Routing, fault injection, sender-side metrics and the
//! run-loop live here and are backend-independent; every backend upholds
//! the bit-identity contract of `docs/TRANSPORT.md`, so the *same* program,
//! workload and seed produce the same outputs, [`ExecutionMetrics`] and
//! [`MessageLedger`] on all of them. Build a network on a non-default
//! backend with [`Network::with_transport`].
//!
//! ```
//! use freelunch_graph::generators::{sparse_connected_erdos_renyi, GeneratorConfig};
//! use freelunch_runtime::{Context, Envelope, Network, NetworkConfig, NodeProgram};
//!
//! /// Two rounds of min-ID flooding.
//! struct MinFlood(u32);
//! impl NodeProgram for MinFlood {
//!     type Message = u32;
//!     fn init(&mut self, ctx: &mut Context<'_, u32>) {
//!         ctx.broadcast(self.0);
//!     }
//!     fn round(&mut self, ctx: &mut Context<'_, u32>, inbox: &[Envelope<u32>]) {
//!         self.0 = inbox.iter().map(|e| e.payload).chain([self.0]).min().unwrap();
//!         if ctx.round() < 2 { ctx.broadcast(self.0); } else { ctx.halt(); }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = sparse_connected_erdos_renyi(&GeneratorConfig::new(64, 3), 4.0)?;
//! let run = |config: NetworkConfig| -> Result<_, Box<dyn std::error::Error>> {
//!     let mut network = Network::new(&graph, config, |v, _| MinFlood(v.raw()))?;
//!     network.run_until_halt(4)?;
//!     Ok((network.cost(), network.metrics().clone()))
//! };
//! let sequential = run(NetworkConfig::with_seed(7))?;
//! let sharded = run(NetworkConfig::with_seed(7).sharded(4))?;
//! assert_eq!(sequential, sharded); // identical CostReport *and* per-round metrics
//! # Ok(())
//! # }
//! ```

use crate::checkpoint::{debug_digest, graph_fingerprint, NetworkCheckpoint, PendingEnvelope};
use crate::churn::{ChurnDriver, ChurnEvent, ChurnPlan};
use crate::error::{RuntimeError, RuntimeResult};
use crate::fault::{FaultPlan, MessageFate, ResolvedFaultPlan};
use crate::knowledge::{initial_knowledge, InitialKnowledge, KnowledgeModel};
use crate::metrics::{edge_slot_count, CostReport, ExecutionMetrics, FaultCause, MessageLedger};
use crate::node::{Context, Envelope, NodeProgram, Outgoing};
use crate::trace::{Trace, TraceMode};
use crate::transport::{InProcessTransport, RoundBarrier, Transport, WireCodec};
use freelunch_graph::{CsrGraph, EdgeId, IncidentEdge, MultiGraph, NodeId, OverlayGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One claimable chunk of the work-stealing execute phase: `(first node
/// index, programs, rngs, outboxes, halted flags)` — disjoint equal-length
/// sub-slices of the per-node state arrays, handed to exactly one worker by
/// the claim cursor.
type ExecChunk<'a, P, M> = (
    usize,
    &'a mut [P],
    &'a mut [ChaCha8Rng],
    &'a mut [Vec<Outgoing<M>>],
    &'a mut [bool],
);

/// The work-stealing claim queue of the dynamic execute phase: one slot per
/// [`ExecChunk`], `take`n exactly once by whichever worker's cursor fetch
/// lands on it.
type ExecQueue<'a, P, M> = Vec<Mutex<Option<ExecChunk<'a, P, M>>>>;

/// How the parallel execute and dispatch phases split their node ranges
/// across the worker shards.
///
/// Either mode produces **bit-identical observables** — outputs,
/// [`ExecutionMetrics`], [`MessageLedger`], [`Trace`] — at equal seeds:
/// every node writes only its own pre-allocated slots (program state, RNG,
/// outbox, halted flag) whichever worker steps it, and all merging stays in
/// canonical node order. Scheduling, like the shard count, is a wall-clock
/// knob, never a semantics knob. See `docs/PERF.md` §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Scheduling {
    /// Chunked work-stealing (the default): the node range is split into
    /// many small fixed-size chunks ([`NetworkConfig::chunk_size`] nodes)
    /// and workers claim them off a shared atomic cursor, so a worker that
    /// finishes its chunk early immediately picks up the next one. On
    /// skewed (scale-free) workloads this keeps every worker busy until the
    /// barrier instead of leaving all but the hub-owning shard idle.
    #[default]
    Dynamic,
    /// The pre-stealing static partition: exactly `shards` contiguous
    /// `div_ceil` chunks, one per worker. Kept as the comparison baseline
    /// (`BENCH_engine_scaling.json` records both) and for workloads whose
    /// per-node cost is genuinely uniform.
    Static,
}

/// Default [`NetworkConfig::chunk_size`]: small enough that a scale-free
/// hub's chunk cannot dominate the barrier, large enough that the claim
/// cursor is touched a few hundred times per phase at most.
pub const DEFAULT_CHUNK_SIZE: usize = 2048;

fn default_chunk_size() -> usize {
    DEFAULT_CHUNK_SIZE
}

/// Configuration of a synchronous execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Initial-knowledge model handed to the nodes.
    pub knowledge: KnowledgeModel,
    /// Seed from which every node's private random stream is derived.
    pub seed: u64,
    /// Extra slack added to the `log2 n` upper bound the nodes are given
    /// (models the "O(1)-approximate upper bound" of assumption (i)).
    pub log_n_slack: u32,
    /// Per-message trace recording ([`TraceMode::Off`] by default; message
    /// *counts* are always exact regardless). [`TraceMode::Full`] forces
    /// the round barrier onto its serial path so events are recorded in
    /// canonical order.
    ///
    /// Compatibility: configs serialized before this field existed
    /// deserialize as `Off` even if `trace_capacity > 0` — tracing is now
    /// an explicit opt-in, so such configs must also set `trace_mode`
    /// (or be built via [`NetworkConfig::traced`], which sets both).
    #[serde(default)]
    pub trace_mode: TraceMode,
    /// Maximum number of message events stored in the trace under
    /// [`TraceMode::Full`] (events beyond the capacity are counted, not
    /// stored).
    pub trace_capacity: usize,
    /// Number of worker shards each round's execute and dispatch phases are
    /// split into (1 = sequential). Shard counts above the node count are
    /// clamped down; 0 is rejected by [`Network::new`]. Every observable of
    /// the execution is bit-identical for every shard count — see the
    /// [module docs](self).
    pub shards: usize,
    /// How the parallel phases divide work across the shard workers
    /// ([`Scheduling::Dynamic`] chunked work-stealing by default).
    /// Irrelevant when `shards == 1`. Configs serialized before this field
    /// existed deserialize as `Dynamic`; that is safe because scheduling
    /// never changes an observable.
    #[serde(default)]
    pub sched: Scheduling,
    /// Target nodes per work-stealing chunk under [`Scheduling::Dynamic`]
    /// ([`DEFAULT_CHUNK_SIZE`] by default; 0 is rejected by
    /// [`Network::new`]). Smaller chunks balance skew better but touch the
    /// claim cursor more often; the dispatch barrier additionally clamps
    /// its chunk grid so its bucket matrix stays small — see
    /// `docs/PERF.md` §2 for tuning guidance.
    #[serde(default = "default_chunk_size")]
    pub chunk_size: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            knowledge: KnowledgeModel::UniqueEdgeIds,
            seed: 0,
            log_n_slack: 1,
            trace_mode: TraceMode::Off,
            trace_capacity: 0,
            shards: 1,
            sched: Scheduling::Dynamic,
            chunk_size: default_chunk_size(),
        }
    }
}

impl NetworkConfig {
    /// Configuration with the paper's knowledge model and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        NetworkConfig {
            seed,
            ..NetworkConfig::default()
        }
    }

    /// Returns a copy using the given knowledge model.
    pub fn knowledge(mut self, model: KnowledgeModel) -> Self {
        self.knowledge = model;
        self
    }

    /// Returns a copy that records message traces ([`TraceMode::Full`]),
    /// storing up to `capacity` events. Tracing costs per-message time and
    /// forces the round barrier onto its serial path — see [`TraceMode`].
    pub fn traced(mut self, capacity: usize) -> Self {
        self.trace_mode = TraceMode::Full;
        self.trace_capacity = capacity;
        self
    }

    /// Returns a copy using the given [`TraceMode`] (with the current
    /// capacity; [`NetworkConfig::traced`] sets both at once).
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }

    /// Returns a copy that executes each round's node programs — and the
    /// round barrier's delivery — on `shards` worker threads. The execution
    /// stays bit-identical to the sequential engine (see the
    /// [module docs](self)); only wall-clock time changes.
    pub fn sharded(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns a copy using the given [`Scheduling`] mode for the parallel
    /// phases. A no-op knob semantically: observables are bit-identical
    /// under either mode (and under any shard count).
    pub fn scheduling(mut self, sched: Scheduling) -> Self {
        self.sched = sched;
        self
    }

    /// Returns a copy using the given work-stealing chunk size (nodes per
    /// claimable chunk under [`Scheduling::Dynamic`]; 0 is rejected by
    /// [`Network::new`]).
    pub fn chunk_size(mut self, nodes: usize) -> Self {
        self.chunk_size = nodes;
        self
    }
}

/// Mixes the network seed with a node index into an independent per-node
/// stream seed (the crate-wide splitmix64 finalizer).
fn node_seed(seed: u64, node: usize) -> u64 {
    crate::fault::splitmix64(seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A synchronous network executing one program instance per node.
///
/// # Examples
///
/// A two-node network where each node greets its neighbor once:
///
/// ```
/// use freelunch_graph::{MultiGraph, NodeId};
/// use freelunch_runtime::{Context, Envelope, Network, NetworkConfig, NodeProgram};
///
/// struct Greeter { greeted: bool, received: usize }
///
/// impl NodeProgram for Greeter {
///     type Message = String;
///     fn init(&mut self, ctx: &mut Context<'_, String>) {
///         ctx.broadcast(format!("hello from {}", ctx.node()));
///         self.greeted = true;
///     }
///     fn round(&mut self, ctx: &mut Context<'_, String>, inbox: &[Envelope<String>]) {
///         self.received += inbox.len();
///         ctx.halt();
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut graph = MultiGraph::new(2);
/// graph.add_edge(NodeId::new(0), NodeId::new(1))?;
/// let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| Greeter {
///     greeted: false,
///     received: 0,
/// })?;
/// network.run_until_halt(10)?;
/// assert_eq!(network.cost().messages, 2);
/// assert!(network.programs().iter().all(|p| p.received == 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Network<
    P: NodeProgram,
    T: Transport<<P as NodeProgram>::Message> = InProcessTransport<<P as NodeProgram>::Message>,
> {
    /// Frozen CSR view of the communication graph: packed incidence arrays
    /// whose per-node slices double as the contexts' port tables. The
    /// network never needs the mutable [`MultiGraph`] after construction,
    /// so this is the only copy it keeps.
    csr: CsrGraph,
    config: NetworkConfig,
    knowledge: Vec<InitialKnowledge>,
    /// Dense raw-edge-ID → endpoints table
    /// ([`CsrGraph::endpoint_table`]): the single array read that
    /// validates a [`Context::send`].
    edge_endpoints: Vec<[u32; 2]>,
    programs: Vec<P>,
    rngs: Vec<ChaCha8Rng>,
    halted: Vec<bool>,
    /// Front mailbox buffer: the inboxes the programs read this round.
    inboxes: Vec<Vec<Envelope<P::Message>>>,
    /// Back mailbox buffer: the messages dispatched this round, delivered
    /// next round by swapping with `inboxes`. Both buffers (and their
    /// per-node capacity) are reused for the whole execution.
    pending: Vec<Vec<Envelope<P::Message>>>,
    /// Per-node outboxes, written by the execute phase and drained by the
    /// dispatch phase; reused across rounds.
    outboxes: Vec<Vec<Outgoing<P::Message>>>,
    /// The delivery backend the round barrier hands its outboxes to.
    transport: T,
    /// The contiguous node range this engine steps locally
    /// ([`Transport::owned_range`]); the full range on single-process
    /// backends.
    owned: Range<usize>,
    /// Halted nodes outside `owned`, as reported by the transport at the
    /// last barrier (always 0 on single-process backends).
    remote_halted: usize,
    /// Number of messages sent but not yet delivered, network-wide —
    /// maintained at the barrier so [`Network::pending_messages`] is `O(1)`.
    in_flight: usize,
    metrics: ExecutionMetrics,
    ledger: MessageLedger,
    /// Installed fault plan, resolved to dense lookups. `None` on the
    /// failure-free fast path — including when the caller passed an *empty*
    /// plan, which is how "clean plan ≡ no plan" is byte-identical by
    /// construction.
    faults: Option<ResolvedFaultPlan>,
    /// Per-node, per-port consecutive-silent-round counters surfaced as
    /// [`Context::port_silence`]; maintained (and allocated) only under an
    /// installed fault plan.
    port_silence: Vec<Vec<u32>>,
    /// Dense raw-edge-ID → `[port at endpoints[0], port at endpoints[1]]`
    /// table (aligned with `edge_endpoints`), giving the silence update an
    /// O(1) port lookup per delivered envelope. Built only under an
    /// installed fault plan; empty otherwise.
    edge_ports: Vec<[u32; 2]>,
    /// Scratch buffer of the fault pre-pass (reused across rounds; empty and
    /// untouched on the failure-free path).
    fault_scratch: Vec<Outgoing<P::Message>>,
    /// Installed churn driver, holding the plan's keyed event streams and
    /// the mutable [`OverlayGraph`] view of the topology. `None` on the
    /// static fast path — including when the caller passed an *empty*
    /// plan, which is how "empty plan ≡ no plan" is byte-identical by
    /// construction.
    churn: Option<ChurnDriver>,
    /// Churn events applied at the top of the current round, in canonical
    /// order; handed to the transport at the barrier
    /// ([`RoundBarrier::churn`]) and exposed through
    /// [`Network::last_churn_events`]. Always empty without a driver.
    churn_events: Vec<ChurnEvent>,
    trace: Trace,
    round: u32,
    initialized: bool,
}

/// Which program entry point the execute phase calls.
#[derive(Clone, Copy)]
enum Phase {
    Init,
    Round,
}

impl<P: NodeProgram> Network<P> {
    /// Builds a network over `graph`, creating one program per node via
    /// `factory`.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph has no nodes.
    pub fn new(
        graph: &MultiGraph,
        config: NetworkConfig,
        factory: impl FnMut(NodeId, &InitialKnowledge) -> P,
    ) -> RuntimeResult<Self> {
        Network::with_fault_plan(graph, config, FaultPlan::none(), factory)
    }

    /// Builds a network like [`Network::new`], additionally subjecting the
    /// execution to the given deterministic [`FaultPlan`].
    ///
    /// Installing the *empty* plan ([`FaultPlan::is_empty`]) is guaranteed
    /// to be byte-identical to [`Network::new`]: the engine does no fault
    /// work at all in that case. With a non-empty plan, every observable of
    /// the execution remains bit-identical across shard counts and trace
    /// modes at equal `(config.seed, plan.seed)` — see
    /// [`fault`](crate::fault) for the keyed-stream construction behind
    /// this.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph has no nodes, the shard count is zero,
    /// a plan probability is outside `[0, 1]`, or the plan references an
    /// unknown edge or node.
    pub fn with_fault_plan(
        graph: &MultiGraph,
        config: NetworkConfig,
        plan: FaultPlan,
        factory: impl FnMut(NodeId, &InitialKnowledge) -> P,
    ) -> RuntimeResult<Self> {
        Network::with_transport(graph, config, plan, InProcessTransport::new(), factory)
    }

    /// Builds a network like [`Network::new`], additionally subjecting the
    /// topology to the given deterministic [`ChurnPlan`]: edge
    /// inserts/deletes and node joins/leaves applied in canonical order at
    /// the top of each round, over a mutable [`OverlayGraph`] view of the
    /// frozen graph. See [`churn`](crate::churn) for the event model and
    /// `docs/CHURN.md` for the full contract.
    ///
    /// Installing the *empty* plan ([`ChurnPlan::is_empty`]) is guaranteed
    /// to be byte-identical to [`Network::new`]: the engine does no churn
    /// work at all in that case. With a non-empty plan, every observable
    /// stays bit-identical across shard counts, trace modes, and transport
    /// backends at equal `(config.seed, plan.seed)`.
    ///
    /// Semantics under churn (the parts visible to programs):
    ///
    /// * [`Context::broadcast`] and [`Context::send_port`] address the
    ///   *live* incidence list (ports shift as edges come and go), while
    ///   [`Context::knowledge`] stays the construction-time snapshot — the
    ///   paper's initial-knowledge assumptions are about round 0;
    /// * messages already in flight when their edge is deleted (or their
    ///   receiver leaves) are still delivered — they were sent while the
    ///   edge existed; a departed node simply never reads its inbox;
    /// * a departed node is not stepped and counts as halted; a rejoining
    ///   node is stepped again from its retained program state.
    ///
    /// # Errors
    ///
    /// Returns every error [`Network::new`] can, plus an invalid-config
    /// error if the plan's rates are outside `[0, 1]` or a scheduled event
    /// references a node outside the graph.
    pub fn with_churn_plan(
        graph: &MultiGraph,
        config: NetworkConfig,
        plan: ChurnPlan,
        factory: impl FnMut(NodeId, &InitialKnowledge) -> P,
    ) -> RuntimeResult<Self> {
        Network::with_plans(
            graph,
            config,
            FaultPlan::none(),
            plan,
            InProcessTransport::new(),
            factory,
        )
    }
}

impl<P: NodeProgram, T: Transport<P::Message>> Network<P, T> {
    /// Builds a network like [`Network::with_fault_plan`] on an explicit
    /// delivery backend — this is how an execution is put on the TCP or
    /// mock transport (see [`transport`](crate::transport)).
    ///
    /// The engine steps only the nodes of the transport's
    /// [`Transport::owned_range`]; programs outside it are constructed (so
    /// every rank derives identical initial knowledge) but never stepped.
    ///
    /// # Errors
    ///
    /// Returns every error [`Network::with_fault_plan`] can, plus an
    /// invalid-config error if the config demands
    /// [`TraceMode::Full`] on a backend whose
    /// [`Transport::supports_tracing`] is `false`.
    pub fn with_transport(
        graph: &MultiGraph,
        config: NetworkConfig,
        plan: FaultPlan,
        transport: T,
        factory: impl FnMut(NodeId, &InitialKnowledge) -> P,
    ) -> RuntimeResult<Self> {
        Network::with_plans(graph, config, plan, ChurnPlan::none(), transport, factory)
    }

    /// The fully general constructor: an explicit delivery backend plus
    /// *both* deterministic plans — the [`FaultPlan`] of
    /// [`Network::with_fault_plan`] and the [`ChurnPlan`] of
    /// [`Network::with_churn_plan`]. Every other constructor delegates here
    /// with the respective empty plan, so an empty plan is byte-identical
    /// to not passing one by construction.
    ///
    /// Faults and churn compose: churn is applied at the top of the round
    /// (before programs step), faults act on the messages those programs
    /// then send. Under both plans the fault plane's port tables are
    /// rebuilt from the live overlay after every churn round.
    ///
    /// # Errors
    ///
    /// The union of [`Network::with_transport`]'s,
    /// [`Network::with_fault_plan`]'s and [`Network::with_churn_plan`]'s
    /// error conditions.
    pub fn with_plans(
        graph: &MultiGraph,
        config: NetworkConfig,
        plan: FaultPlan,
        churn_plan: ChurnPlan,
        transport: T,
        mut factory: impl FnMut(NodeId, &InitialKnowledge) -> P,
    ) -> RuntimeResult<Self> {
        if graph.node_count() == 0 {
            return Err(RuntimeError::invalid_config(
                "the communication graph has no nodes",
            ));
        }
        if config.shards == 0 {
            return Err(RuntimeError::invalid_config(
                "the shard count must be at least 1",
            ));
        }
        if config.chunk_size == 0 {
            return Err(RuntimeError::invalid_config(
                "the work-stealing chunk size must be at least 1 node",
            ));
        }
        if config.trace_mode == TraceMode::Full && !transport.supports_tracing() {
            return Err(RuntimeError::invalid_config(
                "this transport backend cannot record canonical-order traces \
                 (TraceMode::Full); run traced executions on the in-process backend",
            ));
        }
        let owned = transport.owned_range(graph.node_count());
        if owned.start > owned.end || owned.end > graph.node_count() {
            return Err(RuntimeError::invalid_config(format!(
                "the transport claims node range {owned:?}, which is not within the \
                 {}-node graph",
                graph.node_count()
            )));
        }
        let csr = graph.freeze();
        let knowledge = initial_knowledge(&csr, config.knowledge, config.log_n_slack);
        let edge_slots = edge_slot_count(csr.edge_ids());
        let edge_endpoints = csr.endpoint_table();
        debug_assert_eq!(edge_endpoints.len(), edge_slots);
        let programs: Vec<P> = knowledge.iter().map(|k| factory(k.node, k)).collect();
        let rngs = (0..graph.node_count())
            .map(|v| ChaCha8Rng::seed_from_u64(node_seed(config.seed, v)))
            .collect();
        let node_count = graph.node_count();
        let ledger = MessageLedger::new(edge_slots);
        // Validate before the emptiness shortcut: a plan with (say) a
        // negative probability must be rejected, not silently treated as
        // empty — the emulated `*_with_faults` paths reject it too.
        plan.validate().map_err(RuntimeError::invalid_config)?;
        let faults = if plan.is_empty() {
            None
        } else {
            Some(
                ResolvedFaultPlan::resolve(plan, edge_slots, node_count)
                    .map_err(RuntimeError::invalid_config)?,
            )
        };
        churn_plan
            .validate()
            .map_err(RuntimeError::invalid_config)?;
        let churn = if churn_plan.is_empty() {
            None
        } else {
            Some(ChurnDriver::new(churn_plan, &csr)?)
        };
        let (port_silence, edge_ports) = if faults.is_some() {
            let silence = (0..node_count)
                .map(|v| vec![0u32; csr.incident_edges(NodeId::from_usize(v)).len()])
                .collect();
            // Dense edge → (port at lower endpoint slot, port at higher
            // slot) table aligned with `edge_endpoints`, so the silence
            // update below resolves each envelope's port with one read
            // instead of scanning the incidence slice.
            let mut ports = vec![[u32::MAX; 2]; edge_slots];
            for v in 0..node_count {
                let me = v as u32;
                for (port, incident) in csr.incident_edges(NodeId::from_usize(v)).iter().enumerate()
                {
                    let slot = if edge_endpoints[incident.edge.index()][0] == me {
                        0
                    } else {
                        1
                    };
                    ports[incident.edge.index()][slot] = port as u32;
                }
            }
            (silence, ports)
        } else {
            (Vec::new(), Vec::new())
        };
        Ok(Network {
            csr,
            config,
            knowledge,
            edge_endpoints,
            programs,
            rngs,
            halted: vec![false; node_count],
            inboxes: (0..node_count).map(|_| Vec::new()).collect(),
            pending: (0..node_count).map(|_| Vec::new()).collect(),
            outboxes: (0..node_count).map(|_| Vec::new()).collect(),
            transport,
            owned,
            remote_halted: 0,
            in_flight: 0,
            metrics: ExecutionMetrics::new(node_count),
            ledger,
            faults,
            port_silence,
            edge_ports,
            fault_scratch: Vec::new(),
            churn,
            churn_events: Vec::new(),
            trace: Trace::with_capacity(config.trace_capacity),
            round: 0,
            initialized: false,
        })
    }

    /// The communication graph the network runs on, as its frozen
    /// [`CsrGraph`] view (the network keeps no mutable copy).
    pub fn graph(&self) -> &CsrGraph {
        &self.csr
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The current round number (0 before the first round).
    pub fn current_round(&self) -> u32 {
        self.round
    }

    /// Returns `true` once every node has called [`Context::halt`]. On a
    /// distributed backend, nodes outside the owned range count through the
    /// halt totals the transport exchanges at each barrier.
    pub fn all_halted(&self) -> bool {
        self.halted_count() == self.programs.len()
    }

    /// Number of nodes that have halted so far (network-wide; remote nodes
    /// are counted as of the last barrier).
    pub fn halted_count(&self) -> usize {
        self.halted[self.owned.clone()]
            .iter()
            .filter(|&&h| h)
            .count()
            + self.remote_halted
    }

    /// The contiguous node range this engine steps locally — the transport's
    /// [`Transport::owned_range`]; every node on single-process backends.
    pub fn owned_nodes(&self) -> Range<usize> {
        self.owned.clone()
    }

    /// The delivery backend.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Mutable access to the delivery backend (e.g. to read a
    /// [`MockTransport`](crate::transport::MockTransport)'s frame log).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Immutable access to all node programs (indexed by node).
    pub fn programs(&self) -> &[P] {
        &self.programs
    }

    /// Immutable access to the program of a single node.
    pub fn program(&self, node: NodeId) -> &P {
        &self.programs[node.index()]
    }

    /// Consumes the network and returns the node programs (for extracting
    /// outputs).
    pub fn into_programs(self) -> Vec<P> {
        self.programs
    }

    /// Detailed execution metrics.
    pub fn metrics(&self) -> &ExecutionMetrics {
        &self.metrics
    }

    /// The message-complexity ledger: per-edge and per-round message counts
    /// and payload bytes (see `docs/METRICS.md` for the contract). Like
    /// every other observable, the ledger is bit-identical across shard
    /// counts at equal seeds.
    pub fn ledger(&self) -> &MessageLedger {
        &self.ledger
    }

    /// Round/message summary so far.
    pub fn cost(&self) -> CostReport {
        self.metrics.summary()
    }

    /// The (bounded) message trace. Empty unless the network was configured
    /// with [`TraceMode::Full`] (e.g. via [`NetworkConfig::traced`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of messages currently in flight (sent but not yet delivered).
    /// `O(1)`: the engine maintains the counter at the round barrier.
    pub fn pending_messages(&self) -> usize {
        self.in_flight
    }

    /// The installed [`FaultPlan`], if any. `None` both when no plan was
    /// installed and when an empty one was (the two are indistinguishable by
    /// design: an empty plan injects nothing).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(ResolvedFaultPlan::plan)
    }

    /// The installed [`ChurnPlan`], if any. `None` both when no plan was
    /// installed and when an empty one was (the two are indistinguishable
    /// by design: an empty plan emits nothing).
    pub fn churn_plan(&self) -> Option<&ChurnPlan> {
        self.churn.as_ref().map(ChurnDriver::plan)
    }

    /// The live topology under churn: the [`OverlayGraph`] the installed
    /// churn driver maintains. `None` without a (non-empty) churn plan —
    /// the topology is then the frozen [`Network::graph`] forever.
    pub fn churn_overlay(&self) -> Option<&OverlayGraph> {
        self.churn.as_ref().map(ChurnDriver::overlay)
    }

    /// The churn events applied at the top of the current round, in
    /// canonical application order (empty without a churn plan, and empty
    /// again after a round in which the plan emitted nothing).
    pub fn last_churn_events(&self) -> &[ChurnEvent] {
        &self.churn_events
    }

    /// Returns `true` if `node` has crashed by the current round (it no
    /// longer participates; its program state is frozen at the pre-crash
    /// value). Always `false` without a fault plan.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.crashed_at(node.index(), self.round))
    }

    /// The nodes that have crashed by the current round, in ascending order.
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        match &self.faults {
            None => Vec::new(),
            Some(faults) => (0..self.programs.len())
                .filter(|&v| faults.crashed_at(v, self.round))
                .map(NodeId::from_usize)
                .collect(),
        }
    }

    /// Number of nodes that have crashed by the current round.
    pub fn crashed_count(&self) -> usize {
        match &self.faults {
            None => 0,
            Some(faults) => (0..self.programs.len())
                .filter(|&v| faults.crashed_at(v, self.round))
                .count(),
        }
    }

    /// Effective shard count: the configured value clamped to the number of
    /// locally owned nodes (a shard with no nodes would be a useless
    /// thread).
    pub fn shard_count(&self) -> usize {
        self.config.shards.min(self.owned.len()).max(1)
    }

    /// Execute phase: steps every program once (init or round) against its
    /// inbox snapshot, writing resolved messages into the per-node
    /// persistent outboxes and sizing their payloads
    /// ([`NodeProgram::payload_bytes`]) on the worker that stepped the
    /// node. With more than one shard the nodes are split into contiguous
    /// chunks stepped on scoped worker threads: one `div_ceil` chunk per
    /// worker under [`Scheduling::Static`], or many
    /// [`NetworkConfig::chunk_size`]-node chunks claimed off a shared
    /// atomic cursor under [`Scheduling::Dynamic`] (the default), so
    /// skewed per-node costs cannot leave workers idle at the barrier.
    ///
    /// An invalid send (unknown or non-incident edge) aborts the round at
    /// the barrier — before anything is delivered or counted — reporting
    /// the canonically first error (lowest node, earliest send): the serial
    /// path sees it first, the static path joins shards in ascending node
    /// order, and the work-stealing path reduces worker-local candidates by
    /// node index.
    fn execute_phase(&mut self, round: u32, phase: Phase) -> RuntimeResult<()> {
        let shards = self.shard_count();
        let csr = &self.csr;
        let knowledge = &self.knowledge;
        let edge_endpoints = &self.edge_endpoints;
        let inboxes = &self.inboxes;
        let faults = self.faults.as_ref();
        let port_silence = &self.port_silence;
        let overlay = self.churn.as_ref().map(ChurnDriver::overlay);

        let step = |index: usize,
                    program: &mut P,
                    rng: &mut ChaCha8Rng,
                    outbox: &mut Vec<Outgoing<P::Message>>,
                    halted: &mut bool|
         -> Option<RuntimeError> {
            outbox.clear();
            if let Some(faults) = faults {
                // A crashed node is never stepped: its program state stays
                // frozen, it sends nothing, and it counts as halted so
                // executions still terminate.
                if faults.crashed_at(index, round) {
                    *halted = true;
                    return None;
                }
            }
            // Under churn, a departed node is not stepped either — but its
            // program state is retained, so a later NodeJoin resumes it.
            if let Some(overlay) = overlay {
                if !overlay.is_active(NodeId::from_usize(index)) {
                    *halted = true;
                    return None;
                }
            }
            // The incidence slice programs address ports against: the live
            // overlay view under churn, the frozen CSR otherwise.
            let ports: &[IncidentEdge] = match overlay {
                Some(overlay) => overlay.incident_edges(NodeId::from_usize(index)),
                None => csr.incident_edges(NodeId::from_usize(index)),
            };
            let silence: &[u32] = port_silence.get(index).map_or(&[], Vec::as_slice);
            let mut ctx = Context::new(
                &knowledge[index],
                ports,
                edge_endpoints,
                round,
                rng,
                outbox,
                silence,
            );
            match phase {
                Phase::Init => program.init(&mut ctx),
                Phase::Round => program.round(&mut ctx, &inboxes[index]),
            }
            if ctx.halted {
                *halted = true;
            }
            let error = ctx.error.take();
            // Size the payloads here, on the thread that stepped the node:
            // the per-shard portion of the ledger accounting.
            for outgoing in outbox.iter_mut() {
                outgoing.bytes = P::payload_bytes(&outgoing.payload);
            }
            error
        };

        let owned = self.owned.clone();
        let mut first_error: Option<RuntimeError> = None;
        if shards == 1 {
            for (offset, (((program, rng), outbox), halted)) in self.programs[owned.clone()]
                .iter_mut()
                .zip(self.rngs[owned.clone()].iter_mut())
                .zip(self.outboxes[owned.clone()].iter_mut())
                .zip(self.halted[owned.clone()].iter_mut())
                .enumerate()
            {
                let error = step(owned.start + offset, program, rng, outbox, halted);
                if first_error.is_none() {
                    first_error = error;
                }
            }
        } else if self.config.sched == Scheduling::Static {
            let chunk = owned.len().div_ceil(shards);
            std::thread::scope(|scope| {
                let handles: Vec<_> = self.programs[owned.clone()]
                    .chunks_mut(chunk)
                    .zip(self.rngs[owned.clone()].chunks_mut(chunk))
                    .zip(self.outboxes[owned.clone()].chunks_mut(chunk))
                    .zip(self.halted[owned.clone()].chunks_mut(chunk))
                    .enumerate()
                    .map(|(shard, (((programs, rngs), outboxes), halted))| {
                        let base = owned.start + shard * chunk;
                        let step = &step;
                        scope.spawn(move || {
                            let mut shard_error: Option<RuntimeError> = None;
                            for (offset, (((program, rng), outbox), halted)) in programs
                                .iter_mut()
                                .zip(rngs.iter_mut())
                                .zip(outboxes.iter_mut())
                                .zip(halted.iter_mut())
                                .enumerate()
                            {
                                let error = step(base + offset, program, rng, outbox, halted);
                                if shard_error.is_none() {
                                    shard_error = error;
                                }
                            }
                            shard_error
                        })
                    })
                    .collect();
                for handle in handles {
                    match handle.join() {
                        // Shards are joined in ascending node order, so the
                        // first error seen is the canonically first one.
                        Ok(error) => {
                            if first_error.is_none() {
                                first_error = error;
                            }
                        }
                        // A panicking program panics the whole execution,
                        // just like in the sequential engine.
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
        } else {
            // Chunked work-stealing (`Scheduling::Dynamic`): the owned range
            // is pre-split into many small chunks and the workers claim them
            // off a shared cursor, so a worker that drew cheap nodes keeps
            // stepping while another grinds through a hub's heavy chunk.
            // Determinism is free: whichever worker claims a chunk, every
            // node still writes only its own pre-allocated slots, and errors
            // are reduced to the canonical first one (lowest node index)
            // after the joins.
            let chunk = self
                .config
                .chunk_size
                .min(owned.len().div_ceil(shards))
                .max(1);
            let chunks: ExecQueue<'_, P, P::Message> = self.programs[owned.clone()]
                .chunks_mut(chunk)
                .zip(self.rngs[owned.clone()].chunks_mut(chunk))
                .zip(self.outboxes[owned.clone()].chunks_mut(chunk))
                .zip(self.halted[owned.clone()].chunks_mut(chunk))
                .enumerate()
                .map(|(slot, (((programs, rngs), outboxes), halted))| {
                    Mutex::new(Some((
                        owned.start + slot * chunk,
                        programs,
                        rngs,
                        outboxes,
                        halted,
                    )))
                })
                .collect();
            let cursor = AtomicUsize::new(0);
            let workers = shards.min(chunks.len());
            let mut lowest: Option<(usize, RuntimeError)> = None;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let step = &step;
                        let cursor = &cursor;
                        let chunks = &chunks;
                        scope.spawn(move || {
                            // This worker's canonically first error:
                            // `(node index, error)`, lowest index wins.
                            let mut worst: Option<(usize, RuntimeError)> = None;
                            loop {
                                let claimed = cursor.fetch_add(1, Ordering::Relaxed);
                                if claimed >= chunks.len() {
                                    break;
                                }
                                let (base, programs, rngs, outboxes, halted) = chunks[claimed]
                                    .lock()
                                    .expect("a chunk claim cannot be poisoned")
                                    .take()
                                    .expect("the cursor hands each chunk to exactly one worker");
                                for (offset, (((program, rng), outbox), halted)) in programs
                                    .iter_mut()
                                    .zip(rngs.iter_mut())
                                    .zip(outboxes.iter_mut())
                                    .zip(halted.iter_mut())
                                    .enumerate()
                                {
                                    let index = base + offset;
                                    if let Some(error) = step(index, program, rng, outbox, halted) {
                                        if worst.as_ref().is_none_or(|&(node, _)| index < node) {
                                            worst = Some((index, error));
                                        }
                                    }
                                }
                            }
                            worst
                        })
                    })
                    .collect();
                for handle in handles {
                    match handle.join() {
                        // Workers interleave their claims nondeterministically,
                        // so — unlike the static path's ascending joins — the
                        // canonical first error must be restored explicitly:
                        // the lowest erroring node index wins.
                        Ok(Some((node, error))) => {
                            if lowest.as_ref().is_none_or(|&(best, _)| node < best) {
                                lowest = Some((node, error));
                            }
                        }
                        Ok(None) => {}
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
            first_error = lowest.map(|(_, error)| error);
        }
        match first_error {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }

    /// Dispatch phase: the round barrier. Applies the fault plan's message
    /// faults (a no-op without one), counts every surviving outbox into the
    /// metrics (sender-side, canonical node order), then hands the outboxes
    /// to the [`Transport`] to deliver into the back mailbox buffer, and
    /// finally applies the plan's delivery perturbation. All sends were
    /// validated at send time, so on the in-process backend this phase
    /// cannot fail; wire backends can surface transport errors.
    fn dispatch_phase(&mut self, round: u32) -> RuntimeResult<()> {
        self.apply_message_faults(round);
        let mut round_total = 0u64;
        for (index, outbox) in self.outboxes.iter().enumerate() {
            let count = outbox.len() as u64;
            if count > 0 {
                self.metrics.record_sends(index, count);
            }
            round_total += count;
        }

        let shards = self.shard_count();
        let traced = self.config.trace_mode == TraceMode::Full;
        let outcome = self.transport.deliver(RoundBarrier {
            round,
            shards,
            sched: self.config.sched,
            chunk_size: self.config.chunk_size,
            traced,
            local_sent: round_total,
            halted: &self.halted,
            outboxes: &mut self.outboxes,
            mailboxes: &mut self.pending,
            metrics: &mut self.metrics,
            ledger: &mut self.ledger,
            trace: &mut self.trace,
            churn: &self.churn_events,
        })?;
        self.in_flight = outcome.delivered as usize;
        self.remote_halted = outcome.remote_halted;
        self.perturb_deliveries(round);
        Ok(())
    }

    /// Fault pre-pass of the barrier: walks the outboxes in canonical
    /// (sender, send) order and resolves each message's fate against the
    /// installed plan — link cut and receiver-crash gates first, then the
    /// keyed drop/duplicate stream. Survivors stay in the outboxes (in
    /// order, duplicates adjacent to their originals), so the untouched
    /// serial and parallel delivery paths below both see the same
    /// post-fault message sequence; drops and duplications are attributed
    /// to the ledger's fault column right here, in canonical order.
    ///
    /// No-op (and allocation-free) without a message-affecting plan —
    /// `tests/fault_matrix.rs` pins the clean-plan ≡ no-plan guarantee and
    /// the `fault_overhead` bench prices this gate.
    fn apply_message_faults(&mut self, round: u32) {
        let Some(faults) = &self.faults else { return };
        if !faults.affects_messages() {
            return;
        }
        let ledger = &mut self.ledger;
        let scratch = &mut self.fault_scratch;
        for outbox in self.outboxes.iter_mut() {
            if outbox.is_empty() {
                continue;
            }
            scratch.clear();
            for (msg_index, outgoing) in outbox.drain(..).enumerate() {
                if faults.link_cut_at(outgoing.edge.index(), round) {
                    ledger.record_dropped(FaultCause::LinkCut);
                    continue;
                }
                // A message sent in round r is read in round r + 1; a
                // receiver crashed by then never processes it.
                if faults.crashed_at(outgoing.receiver.index(), round + 1) {
                    ledger.record_dropped(FaultCause::Crash);
                    continue;
                }
                match faults.fate(round, outgoing.edge, outgoing.sender, msg_index as u32) {
                    MessageFate::Deliver => scratch.push(outgoing),
                    MessageFate::Drop => ledger.record_dropped(FaultCause::Random),
                    MessageFate::Duplicate => {
                        ledger.record_duplicated();
                        scratch.push(outgoing.clone());
                        scratch.push(outgoing);
                    }
                }
            }
            std::mem::swap(outbox, scratch);
        }
    }

    /// Applies the plan's seeded delivery permutation to every freshly
    /// filled mailbox. The mailboxes are in canonical order at this point
    /// whatever the shard count or trace mode, and the permutation is keyed
    /// by `(plan seed, round, receiver)` alone — so perturbed executions
    /// stay bit-identical across shard counts, and the trace (recorded
    /// before this step) keeps its canonical send order.
    fn perturb_deliveries(&mut self, round: u32) {
        let Some(faults) = &self.faults else { return };
        if !faults.perturbs() {
            return;
        }
        for (receiver, mailbox) in self.pending.iter_mut().enumerate() {
            faults
                .plan()
                .perturb_mailbox(round, NodeId::from_usize(receiver), mailbox);
        }
    }

    /// Advances the per-port silence counters from this round's inboxes:
    /// every counter ages by one round, then every port that delivered at
    /// least one message this round resets to zero. Maintained only under a
    /// fault plan (the per-node counter vectors are empty otherwise), purely
    /// from the node's own inbox — so the counters are as shard-independent
    /// as the inboxes themselves. The `edge_ports` table makes each
    /// envelope's port lookup a single read.
    fn update_port_silence(&mut self) {
        if self.faults.is_none() {
            return;
        }
        for (v, counters) in self.port_silence.iter_mut().enumerate() {
            for counter in counters.iter_mut() {
                *counter = counter.saturating_add(1);
            }
            let me = v as u32;
            for envelope in &self.inboxes[v] {
                let edge = envelope.edge.index();
                let slot = if self.edge_endpoints[edge][0] == me {
                    0
                } else {
                    1
                };
                let port = self.edge_ports[edge][slot] as usize;
                if let Some(counter) = counters.get_mut(port) {
                    *counter = 0;
                }
            }
        }
    }

    /// Churn pass of the round: draws and applies this round's events from
    /// the installed plan (a no-op without one), updates the engine's dense
    /// edge tables and halted flags, and — under a fault plan — rebuilds
    /// the fault plane's port tables from the live overlay. Runs at the top
    /// of the round, *before* the execute phase, so programs already see
    /// the updated topology; messages sent in the previous round are still
    /// delivered this round even if their edge just vanished (they were in
    /// flight at the barrier).
    fn apply_churn(&mut self, round: u32) -> RuntimeResult<()> {
        self.churn_events.clear();
        let Some(churn) = &mut self.churn else {
            return Ok(());
        };
        let events = churn.apply_round(round)?;
        for &event in &events {
            match event {
                ChurnEvent::EdgeInsert { edge, u, v } => {
                    let slot = edge.index();
                    if slot >= self.edge_endpoints.len() {
                        self.edge_endpoints
                            .resize(slot + 1, [CsrGraph::NO_ENDPOINT; 2]);
                    }
                    self.edge_endpoints[slot] = [u.raw(), v.raw()];
                    // The ledger gains a counter for the new edge; existing
                    // counters (and history) are untouched.
                    self.ledger.ensure_edge_slots(slot + 1);
                }
                ChurnEvent::EdgeDelete { edge } => {
                    // A deleted edge becomes unknown to `Context::send`;
                    // its ledger counters keep their history.
                    self.edge_endpoints[edge.index()] = [CsrGraph::NO_ENDPOINT; 2];
                }
                ChurnEvent::NodeLeave { node } => {
                    // Departed nodes count as halted so executions still
                    // terminate (mirrors crashed nodes).
                    self.halted[node.index()] = true;
                }
                ChurnEvent::NodeJoin { node } => {
                    self.halted[node.index()] = false;
                }
            }
        }
        if self.faults.is_some() && !events.is_empty() {
            // Rebuild the fault plane's dense port tables from the live
            // overlay: ports shift when incidence lists change, and a
            // node whose degree changed gets fresh silence counters (the
            // old per-port numbering is meaningless).
            let overlay = self
                .churn
                .as_ref()
                .expect("events imply an installed driver")
                .overlay();
            let edge_endpoints = &self.edge_endpoints;
            self.edge_ports.clear();
            self.edge_ports.resize(edge_endpoints.len(), [u32::MAX; 2]);
            for (v, counters) in self.port_silence.iter_mut().enumerate() {
                let me = v as u32;
                let incident = overlay.incident_edges(NodeId::from_usize(v));
                for (port, ie) in incident.iter().enumerate() {
                    let slot = if edge_endpoints[ie.edge.index()][0] == me {
                        0
                    } else {
                        1
                    };
                    self.edge_ports[ie.edge.index()][slot] = port as u32;
                }
                if counters.len() != incident.len() {
                    *counters = vec![0; incident.len()];
                }
            }
        }
        self.churn_events = events;
        Ok(())
    }

    /// Runs the initialization phase (safe to call multiple times; only the
    /// first call has an effect). Messages sent during initialization are
    /// delivered in round 1 and counted in the round-0 slot of the metrics.
    ///
    /// # Errors
    ///
    /// Returns an error if a program sends over a non-incident or unknown
    /// edge.
    pub fn initialize(&mut self) -> RuntimeResult<()> {
        if self.initialized {
            return Ok(());
        }
        self.apply_churn(0)?;
        self.execute_phase(0, Phase::Init)?;
        self.dispatch_phase(0)?;
        self.initialized = true;
        Ok(())
    }

    /// Executes one synchronous round: delivers every pending message and
    /// calls each node's [`NodeProgram::round`].
    ///
    /// # Errors
    ///
    /// Returns an error if a program sends over a non-incident or unknown
    /// edge.
    pub fn run_round(&mut self) -> RuntimeResult<()> {
        self.initialize()?;
        self.round += 1;
        self.metrics.start_round();
        self.ledger.start_round();
        // Swap the double-buffered mailboxes: last round's back buffer
        // becomes this round's inboxes; the stale front buffer is cleared
        // (capacity kept) by the dispatch phase before it refills it.
        std::mem::swap(&mut self.inboxes, &mut self.pending);
        self.in_flight = 0;
        // Silence counters first (they describe the round that just
        // delivered, on its port numbering), then this round's churn.
        self.update_port_silence();
        let round = self.round;
        if let Err(error) = self.apply_churn(round) {
            // Same cleanup as an execute-phase error below: the barrier
            // never runs, so drop the stale back buffer.
            for mailbox in &mut self.pending {
                mailbox.clear();
            }
            return Err(error);
        }
        if let Err(error) = self.execute_phase(round, Phase::Round) {
            // The barrier never ran, so the back buffer still holds the
            // (already delivered) envelopes of two rounds ago. Drop them:
            // a caller that continues past the error must not see them
            // swapped back in as freshly delivered messages.
            for mailbox in &mut self.pending {
                mailbox.clear();
            }
            return Err(error);
        }
        self.dispatch_phase(round)
    }

    /// Runs exactly `rounds` synchronous rounds.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Network::run_round`].
    pub fn run_rounds(&mut self, rounds: u32) -> RuntimeResult<()> {
        for _ in 0..rounds {
            self.run_round()?;
        }
        Ok(())
    }

    /// Runs rounds until every node has halted, up to `budget` rounds.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundBudgetExceeded`] if some node is still
    /// running after `budget` rounds, or any error from
    /// [`Network::run_round`].
    pub fn run_until_halt(&mut self, budget: u32) -> RuntimeResult<()> {
        self.initialize()?;
        let mut executed = 0;
        while !self.all_halted() {
            if executed >= budget {
                return Err(RuntimeError::RoundBudgetExceeded { budget });
            }
            self.run_round()?;
            executed += 1;
        }
        Ok(())
    }

    /// Runs rounds until no messages are in flight and every node has halted,
    /// up to `budget` rounds. Useful for algorithms whose halting decision
    /// depends on silence.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundBudgetExceeded`] if the network is still
    /// active after `budget` rounds.
    pub fn run_until_quiet(&mut self, budget: u32) -> RuntimeResult<()> {
        self.initialize()?;
        let mut executed = 0;
        while !(self.all_halted() && self.pending_messages() == 0) {
            if executed >= budget {
                return Err(RuntimeError::RoundBudgetExceeded { budget });
            }
            self.run_round()?;
            executed += 1;
        }
        Ok(())
    }
}

impl<P: NodeProgram, T: Transport<P::Message>> Network<P, T>
where
    P::Message: WireCodec,
{
    /// Captures a [`NetworkCheckpoint`] of the execution at the current
    /// round boundary (call it between [`Network::run_round`] calls, never
    /// mid-round — the engine offers no mid-round entry point anyway).
    ///
    /// Restoring the checkpoint into a fresh network over the same graph,
    /// plans, and a factory producing the same programs resumes the
    /// execution **bit-identical** to never having stopped: outputs,
    /// metrics, ledger, and remaining trace all match the uninterrupted run
    /// (`tests/recovery_matrix.rs` pins this across shard counts, backends,
    /// and composed fault+churn plans). Programs that carry cross-round
    /// state must implement [`NodeProgram::save_state`] /
    /// [`NodeProgram::load_state`] for the guarantee to hold. See
    /// `docs/RECOVERY.md` for the full contract and the file format.
    ///
    /// On a distributed backend the checkpoint describes this rank: only
    /// the owned range's program and RNG state is meaningful, and a rank
    /// restores its *own* checkpoint (cross-rank restore is out of scope).
    pub fn checkpoint(&self) -> NetworkCheckpoint {
        let fault_totals = self.ledger.fault_totals();
        let mut program_states = Vec::with_capacity(self.programs.len());
        for program in &self.programs {
            let mut state = Vec::new();
            program.save_state(&mut state);
            program_states.push(state);
        }
        let mut pending = Vec::with_capacity(self.pending.len());
        for mailbox in &self.pending {
            let mut envelopes = Vec::with_capacity(mailbox.len());
            for envelope in mailbox {
                let mut payload = Vec::new();
                envelope.payload.encode(&mut payload);
                envelopes.push(PendingEnvelope {
                    edge: envelope.edge.raw(),
                    from: envelope.from.raw(),
                    payload,
                });
            }
            pending.push(envelopes);
        }
        NetworkCheckpoint {
            config: self.config,
            round: self.round,
            initialized: self.initialized,
            in_flight: self.in_flight as u64,
            remote_halted: self.remote_halted as u64,
            node_count: self.programs.len() as u32,
            edge_slots: self.ledger.edge_slots() as u32,
            graph_digest: graph_fingerprint(self.programs.len(), &self.csr.endpoint_table()),
            fault_digest: debug_digest(&self.fault_plan()),
            churn_digest: debug_digest(&self.churn_plan()),
            halted: self.halted.clone(),
            rng_positions: self.rngs.iter().map(|rng| rng.word_pos()).collect(),
            port_silence: self.faults.as_ref().map(|_| self.port_silence.clone()),
            program_states,
            pending,
            churn_events: self.churn_events.clone(),
            metrics_messages_per_round: self.metrics.messages_per_round.clone(),
            metrics_messages_per_node: self.metrics.messages_per_node.clone(),
            ledger_messages_per_edge: self.ledger.messages_per_edge().to_vec(),
            ledger_bytes_per_edge: self.ledger.bytes_per_edge().to_vec(),
            ledger_messages_per_round: self.ledger.messages_per_round().to_vec(),
            ledger_bytes_per_round: self.ledger.bytes_per_round().to_vec(),
            ledger_max_edge_messages_per_round: self.ledger.max_edge_messages_per_round().to_vec(),
            ledger_dropped_per_round: self.ledger.dropped_per_round().to_vec(),
            ledger_duplicated_per_round: self.ledger.duplicated_per_round().to_vec(),
            ledger_dropped_random: fault_totals.dropped_random,
            ledger_dropped_link_cut: fault_totals.dropped_link_cut,
            ledger_dropped_crash: fault_totals.dropped_crash,
            trace_capacity: self.trace.capacity() as u64,
            trace_dropped: self.trace.dropped(),
            trace_events: self.trace.events().to_vec(),
        }
    }

    /// Rebuilds a network from `checkpoint`, resuming the execution at the
    /// captured round boundary — the fully general restore, mirroring
    /// [`Network::with_plans`]: the caller re-supplies the graph, both
    /// plans, the transport, and a factory producing the same programs as
    /// the original run (the factory runs first, then
    /// [`NodeProgram::load_state`] overwrites each program's state).
    ///
    /// The supplied graph and plans are validated against the checkpoint's
    /// fingerprints, and the churn history is *replayed* (rounds `0..=r`)
    /// rather than deserialized — both planes are keyed streams, so the
    /// replay is exact and doubles as an integrity check: the replayed
    /// events of the capture round must equal the recorded ones.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Checkpoint`] if the graph, fault plan, or churn plan
    /// differs from what the checkpoint was taken under, a section has the
    /// wrong shape, a program or pending payload fails to decode, or the
    /// churn replay diverges — plus every error [`Network::with_plans`] can
    /// return.
    pub fn restore_with_plans(
        graph: &MultiGraph,
        plan: FaultPlan,
        churn_plan: ChurnPlan,
        transport: T,
        checkpoint: &NetworkCheckpoint,
        factory: impl FnMut(NodeId, &InitialKnowledge) -> P,
    ) -> RuntimeResult<Self> {
        let mut network = Network::with_plans(
            graph,
            checkpoint.config,
            plan,
            churn_plan,
            transport,
            factory,
        )?;
        let node_count = network.programs.len();
        if checkpoint.node_count as usize != node_count {
            return Err(RuntimeError::checkpoint(format!(
                "checkpoint was taken on a {}-node graph, the supplied graph has {} node(s)",
                checkpoint.node_count, node_count
            )));
        }
        let graph_digest = graph_fingerprint(node_count, &network.csr.endpoint_table());
        if graph_digest != checkpoint.graph_digest {
            return Err(RuntimeError::checkpoint(format!(
                "the supplied graph (fingerprint {graph_digest:#018x}) is not the graph the \
                 checkpoint was taken on (fingerprint {:#018x})",
                checkpoint.graph_digest
            )));
        }
        let fault_digest = debug_digest(&network.fault_plan());
        if fault_digest != checkpoint.fault_digest {
            return Err(RuntimeError::checkpoint(format!(
                "the supplied fault plan (digest {fault_digest:#018x}) is not the plan the \
                 checkpoint was taken under (digest {:#018x})",
                checkpoint.fault_digest
            )));
        }
        let churn_digest = debug_digest(&network.churn_plan());
        if churn_digest != checkpoint.churn_digest {
            return Err(RuntimeError::checkpoint(format!(
                "the supplied churn plan (digest {churn_digest:#018x}) is not the plan the \
                 checkpoint was taken under (digest {:#018x})",
                checkpoint.churn_digest
            )));
        }
        if checkpoint.port_silence.is_some() != network.faults.is_some() {
            return Err(RuntimeError::checkpoint(
                "the checkpoint's port-silence section does not match the supplied fault \
                 plan (present under a plan, absent without one)",
            ));
        }
        let shape = |name: &str, got: usize, want: usize| -> RuntimeResult<()> {
            if got == want {
                Ok(())
            } else {
                Err(RuntimeError::checkpoint(format!(
                    "checkpoint section {name} has {got} entr(ies), expected {want}"
                )))
            }
        };
        shape("halted", checkpoint.halted.len(), node_count)?;
        shape("rng_positions", checkpoint.rng_positions.len(), node_count)?;
        shape(
            "program_states",
            checkpoint.program_states.len(),
            node_count,
        )?;
        shape("pending", checkpoint.pending.len(), node_count)?;
        shape(
            "metrics.messages_per_node",
            checkpoint.metrics_messages_per_node.len(),
            node_count,
        )?;
        if let Some(silence) = &checkpoint.port_silence {
            shape("port_silence", silence.len(), node_count)?;
        }
        if !checkpoint.initialized {
            if checkpoint.round != 0 {
                return Err(RuntimeError::checkpoint(format!(
                    "an uninitialized checkpoint cannot be at round {}",
                    checkpoint.round
                )));
            }
            if !checkpoint.churn_events.is_empty() {
                return Err(RuntimeError::checkpoint(
                    "an uninitialized checkpoint cannot carry churn events",
                ));
            }
        }
        let expected_rounds = checkpoint.round as usize + 1;
        shape(
            "metrics.messages_per_round",
            checkpoint.metrics_messages_per_round.len(),
            expected_rounds,
        )?;
        shape(
            "ledger.messages_per_round",
            checkpoint.ledger_messages_per_round.len(),
            expected_rounds,
        )?;
        shape(
            "ledger.bytes_per_round",
            checkpoint.ledger_bytes_per_round.len(),
            expected_rounds,
        )?;
        shape(
            "ledger.max_edge_messages_per_round",
            checkpoint.ledger_max_edge_messages_per_round.len(),
            expected_rounds,
        )?;
        shape(
            "ledger.dropped_per_round",
            checkpoint.ledger_dropped_per_round.len(),
            expected_rounds,
        )?;
        shape(
            "ledger.duplicated_per_round",
            checkpoint.ledger_duplicated_per_round.len(),
            expected_rounds,
        )?;
        shape(
            "ledger.messages_per_edge",
            checkpoint.ledger_messages_per_edge.len(),
            checkpoint.edge_slots as usize,
        )?;
        shape(
            "ledger.bytes_per_edge",
            checkpoint.ledger_bytes_per_edge.len(),
            checkpoint.edge_slots as usize,
        )?;
        // Replay the churn history: the plan is a keyed stream, so applying
        // rounds 0..=r reproduces the capture-time topology (growing the
        // ledger's edge slots on the way) — and the capture round's events
        // double as a divergence check.
        if checkpoint.initialized {
            for round in 0..=checkpoint.round {
                network.apply_churn(round)?;
            }
            if network.churn_events != checkpoint.churn_events {
                return Err(RuntimeError::checkpoint(format!(
                    "churn replay diverged at round {}: the supplied plan produced {:?}, the \
                     checkpoint recorded {:?}",
                    checkpoint.round, network.churn_events, checkpoint.churn_events
                )));
            }
        }
        if network.ledger.edge_slots() != checkpoint.edge_slots as usize {
            return Err(RuntimeError::checkpoint(format!(
                "after churn replay the ledger has {} edge slot(s), the checkpoint was taken \
                 with {}",
                network.ledger.edge_slots(),
                checkpoint.edge_slots
            )));
        }
        network.round = checkpoint.round;
        network.initialized = checkpoint.initialized;
        network.in_flight = checkpoint.in_flight as usize;
        network.remote_halted = checkpoint.remote_halted as usize;
        network.halted.copy_from_slice(&checkpoint.halted);
        for (rng, &pos) in network.rngs.iter_mut().zip(&checkpoint.rng_positions) {
            rng.set_word_pos(pos);
        }
        for (index, state) in checkpoint.program_states.iter().enumerate() {
            network.programs[index].load_state(state).map_err(|e| {
                RuntimeError::checkpoint(format!(
                    "program state of node {index} failed to load: {e}"
                ))
            })?;
        }
        for (index, mailbox) in checkpoint.pending.iter().enumerate() {
            let target = &mut network.pending[index];
            target.clear();
            target.reserve(mailbox.len());
            for (slot, envelope) in mailbox.iter().enumerate() {
                let payload =
                    <P::Message as WireCodec>::decode(&envelope.payload).map_err(|e| {
                        RuntimeError::checkpoint(format!(
                            "pending message {slot} of node {index} failed to decode: {e}"
                        ))
                    })?;
                target.push(Envelope {
                    edge: EdgeId::new(envelope.edge),
                    from: NodeId::new(envelope.from),
                    payload,
                });
            }
        }
        if let Some(silence) = &checkpoint.port_silence {
            network.port_silence = silence.clone();
        }
        network.metrics = ExecutionMetrics {
            messages_per_round: checkpoint.metrics_messages_per_round.clone(),
            messages_per_node: checkpoint.metrics_messages_per_node.clone(),
        };
        network.ledger = MessageLedger::from_checkpoint_parts(
            checkpoint.ledger_messages_per_edge.clone(),
            checkpoint.ledger_bytes_per_edge.clone(),
            checkpoint.ledger_messages_per_round.clone(),
            checkpoint.ledger_bytes_per_round.clone(),
            checkpoint.ledger_max_edge_messages_per_round.clone(),
            checkpoint.ledger_dropped_per_round.clone(),
            checkpoint.ledger_duplicated_per_round.clone(),
            checkpoint.ledger_dropped_random,
            checkpoint.ledger_dropped_link_cut,
            checkpoint.ledger_dropped_crash,
        );
        network.trace = Trace::from_checkpoint_parts(
            checkpoint.trace_events.clone(),
            checkpoint.trace_capacity as usize,
            checkpoint.trace_dropped,
        );
        Ok(network)
    }
}

impl<P: NodeProgram> Network<P>
where
    P::Message: WireCodec,
{
    /// Rebuilds a plan-free, in-process network from `checkpoint` — the
    /// single-process counterpart of [`Network::restore_with_plans`], for
    /// executions built with [`Network::new`].
    ///
    /// # Errors
    ///
    /// Every error [`Network::restore_with_plans`] can return.
    pub fn restore(
        graph: &MultiGraph,
        checkpoint: &NetworkCheckpoint,
        factory: impl FnMut(NodeId, &InitialKnowledge) -> P,
    ) -> RuntimeResult<Self> {
        Network::restore_with_plans(
            graph,
            FaultPlan::none(),
            ChurnPlan::none(),
            InProcessTransport::new(),
            checkpoint,
            factory,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{cycle_graph, GeneratorConfig};
    use freelunch_graph::EdgeId;

    /// Floods a token: node 0 starts with it, everyone forwards it the round
    /// after first hearing it, then halts.
    struct Flood {
        has_token: bool,
        forwarded: bool,
        heard_in_round: Option<u32>,
    }

    impl Flood {
        fn new(node: NodeId) -> Self {
            Flood {
                has_token: node == NodeId::new(0),
                forwarded: false,
                heard_in_round: None,
            }
        }
    }

    impl NodeProgram for Flood {
        type Message = ();

        fn init(&mut self, ctx: &mut Context<'_, ()>) {
            if self.has_token {
                self.heard_in_round = Some(0);
                ctx.broadcast(());
                self.forwarded = true;
            }
        }

        fn round(&mut self, ctx: &mut Context<'_, ()>, inbox: &[Envelope<()>]) {
            if !inbox.is_empty() && self.heard_in_round.is_none() {
                self.heard_in_round = Some(ctx.round());
                self.has_token = true;
            }
            if self.has_token && !self.forwarded {
                ctx.broadcast(());
                self.forwarded = true;
            }
            if self.has_token {
                ctx.halt();
            }
        }
    }

    fn cycle(n: usize) -> MultiGraph {
        cycle_graph(&GeneratorConfig::new(n, 0)).unwrap()
    }

    #[test]
    fn flooding_reaches_every_node_in_diameter_rounds() {
        let graph = cycle(8);
        let mut network = Network::new(&graph, NetworkConfig::with_seed(1), |node, _| {
            Flood::new(node)
        })
        .unwrap();
        network.run_until_halt(20).unwrap();
        assert!(network.all_halted());
        // On a cycle of 8 the farthest node hears the token in round 4.
        let max_heard = network
            .programs()
            .iter()
            .map(|p| p.heard_in_round.expect("every node heard the token"))
            .max()
            .unwrap();
        assert_eq!(max_heard, 4);
        // Every node broadcasts exactly once: 8 nodes × degree 2.
        assert_eq!(network.cost().messages, 16);
        assert!(network.cost().rounds >= 4);
    }

    #[test]
    fn run_rounds_counts_rounds_exactly() {
        let graph = cycle(5);
        let mut network =
            Network::new(&graph, NetworkConfig::default(), |node, _| Flood::new(node)).unwrap();
        network.run_rounds(3).unwrap();
        assert_eq!(network.current_round(), 3);
        assert_eq!(network.cost().rounds, 3);
    }

    #[test]
    fn budget_exceeded_reported() {
        /// A program that never halts.
        struct Busy;
        impl NodeProgram for Busy {
            type Message = ();
            fn round(&mut self, _ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {}
        }
        let graph = cycle(4);
        let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| Busy).unwrap();
        assert_eq!(
            network.run_until_halt(3),
            Err(RuntimeError::RoundBudgetExceeded { budget: 3 })
        );
    }

    #[test]
    fn sending_over_foreign_edge_is_rejected() {
        /// Sends over an edge that is not incident to it.
        struct Rogue;
        impl NodeProgram for Rogue {
            type Message = ();
            fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {
                if ctx.node() == NodeId::new(0) {
                    // Edge 1 of the cycle connects nodes 1 and 2.
                    ctx.send(EdgeId::new(1), ());
                }
            }
        }
        let graph = cycle(4);
        let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| Rogue).unwrap();
        let err = network.run_round().unwrap_err();
        assert_eq!(
            err,
            RuntimeError::NotIncident {
                node: NodeId::new(0),
                edge: EdgeId::new(1)
            }
        );
    }

    #[test]
    fn sending_over_unknown_edge_is_rejected() {
        struct Rogue;
        impl NodeProgram for Rogue {
            type Message = ();
            fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {
                ctx.send(EdgeId::new(999), ());
            }
        }
        let graph = cycle(4);
        let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| Rogue).unwrap();
        let err = network.run_round().unwrap_err();
        assert_eq!(
            err,
            RuntimeError::UnknownEdge {
                edge: EdgeId::new(999)
            }
        );
    }

    #[test]
    fn invalid_send_aborts_before_any_delivery_and_network_stays_usable() {
        /// Node 0 sends a valid message and then an invalid one — but only
        /// in round 1, so the network can prove it survives the abort.
        struct HalfRogue {
            received: usize,
        }
        impl NodeProgram for HalfRogue {
            type Message = ();
            fn round(&mut self, ctx: &mut Context<'_, ()>, inbox: &[Envelope<()>]) {
                self.received += inbox.len();
                if ctx.round() == 1 && ctx.node() == NodeId::new(0) {
                    ctx.send_port(0, ());
                    ctx.send(EdgeId::new(999), ());
                }
                if ctx.round() == 3 {
                    ctx.broadcast(());
                }
            }
        }
        // Parallel dispatch coverage: PR 4's abort-at-the-barrier fix must
        // hold on the receiver-sharded barrier too, not just serially.
        for shards in [1usize, 2, 8] {
            let graph = cycle(8);
            let config = NetworkConfig::default().sharded(shards);
            let mut network =
                Network::new(&graph, config, |_, _| HalfRogue { received: 0 }).unwrap();
            assert!(network.run_round().is_err(), "at {shards} shards");
            // The round aborted at the barrier: nothing was delivered or
            // counted, not even the valid send that preceded the invalid one.
            assert_eq!(network.pending_messages(), 0, "at {shards} shards");
            assert_eq!(network.cost().messages, 0, "at {shards} shards");
            // The network is reusable: later rounds behave exactly as if
            // round 1 had been silent.
            network.run_rounds(3).unwrap(); // rounds 2-4
            assert_eq!(network.cost().messages, 16, "at {shards} shards");
            assert_eq!(network.pending_messages(), 0, "at {shards} shards");
            let received: usize = network.programs().iter().map(|p| p.received).sum();
            // Exactly the round-3 broadcasts arrived (in round 4).
            assert_eq!(received, 16, "at {shards} shards");
        }
    }

    #[test]
    fn aborted_round_does_not_redeliver_stale_messages() {
        /// Everyone broadcasts in round 1; node 0 additionally sends over an
        /// unknown edge in round 2, aborting that round. A program records
        /// how many messages it saw each round.
        struct FlakyRogue {
            seen: Vec<usize>,
        }
        impl NodeProgram for FlakyRogue {
            type Message = ();
            fn round(&mut self, ctx: &mut Context<'_, ()>, inbox: &[Envelope<()>]) {
                self.seen.push(inbox.len());
                if ctx.round() == 1 {
                    ctx.broadcast(());
                }
                if ctx.round() == 2 && ctx.node() == NodeId::new(0) {
                    ctx.send(EdgeId::new(999), ());
                }
            }
        }
        // Shards 2 and 8 route the back buffer through the parallel
        // barrier, pinning the back-buffer clearing on that path as well.
        for shards in [1, 2, 8] {
            let graph = cycle(12);
            let config = NetworkConfig::default().sharded(shards);
            let mut network =
                Network::new(&graph, config, |_, _| FlakyRogue { seen: Vec::new() }).unwrap();
            network.run_round().unwrap(); // round 1: everyone broadcasts
            assert!(network.run_round().is_err()); // round 2 aborts
            network.run_round().unwrap(); // round 3 continues past the error
            for program in network.programs() {
                // Round 1 empty, round 2 delivers the broadcasts, round 3
                // must NOT re-deliver them (the aborted round's back buffer
                // held them as stale two-round-old envelopes).
                assert_eq!(program.seen, vec![0, 2, 0], "at {shards} shards");
            }
        }
    }

    #[test]
    fn empty_graph_is_rejected() {
        struct Noop;
        impl NodeProgram for Noop {
            type Message = ();
            fn round(&mut self, _ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {}
        }
        let graph = MultiGraph::new(0);
        assert!(Network::new(&graph, NetworkConfig::default(), |_, _| Noop).is_err());
    }

    #[test]
    fn trace_records_message_events() {
        let graph = cycle(4);
        let config = NetworkConfig::with_seed(3).traced(100);
        let mut network = Network::new(&graph, config, |node, _| Flood::new(node)).unwrap();
        network.run_until_halt(10).unwrap();
        assert_eq!(network.trace().total(), network.cost().messages);
        assert!(network.trace().events().iter().any(|e| e.round == 0));
    }

    #[test]
    fn trace_is_off_by_default_but_counts_stay_exact() {
        let graph = cycle(4);
        assert_eq!(NetworkConfig::default().trace_mode, TraceMode::Off);
        let mut network = Network::new(&graph, NetworkConfig::with_seed(3), |node, _| {
            Flood::new(node)
        })
        .unwrap();
        network.run_until_halt(10).unwrap();
        assert_eq!(network.trace().total(), 0);
        assert_eq!(network.cost().messages, 8);
        assert_eq!(network.ledger().total_messages(), 8);
    }

    #[test]
    fn identical_seeds_give_identical_executions() {
        use rand::Rng;

        /// Each node draws a random number and broadcasts it once.
        struct RandomOnce {
            drawn: Option<u64>,
            received: Vec<u64>,
        }
        impl NodeProgram for RandomOnce {
            type Message = u64;
            fn init(&mut self, ctx: &mut Context<'_, u64>) {
                let value = ctx.rng().gen();
                self.drawn = Some(value);
                ctx.broadcast(value);
            }
            fn round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[Envelope<u64>]) {
                self.received.extend(inbox.iter().map(|e| e.payload));
                ctx.halt();
            }
        }

        let graph = cycle(6);
        let run = |seed: u64| {
            let mut network =
                Network::new(&graph, NetworkConfig::with_seed(seed), |_, _| RandomOnce {
                    drawn: None,
                    received: Vec::new(),
                })
                .unwrap();
            network.run_until_halt(5).unwrap();
            network
                .into_programs()
                .into_iter()
                .map(|p| (p.drawn, p.received))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn per_node_streams_are_independent() {
        // Different nodes with the same network seed draw different values.
        assert_ne!(node_seed(7, 0), node_seed(7, 1));
        assert_ne!(node_seed(7, 1), node_seed(8, 1));
    }

    /// Every node draws random values each round and gossips them; the
    /// drawn values, message pattern and halting round all depend on the
    /// per-node RNG streams, making this a sharp determinism probe.
    struct NoisyGossip {
        sum: u64,
    }

    impl NodeProgram for NoisyGossip {
        type Message = u64;
        fn init(&mut self, ctx: &mut Context<'_, u64>) {
            use rand::Rng;
            let value: u64 = ctx.rng().gen();
            self.sum = value;
            ctx.broadcast(value);
        }
        fn round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[Envelope<u64>]) {
            use rand::Rng;
            for envelope in inbox {
                self.sum = self.sum.wrapping_add(envelope.payload);
            }
            if ctx.round() < 3 {
                // A randomized subset of ports each round.
                for port in 0..ctx.degree() {
                    if ctx.rng().gen_bool(0.5) {
                        let value = self.sum.wrapping_add(port as u64);
                        ctx.send_port(port, value);
                    }
                }
            } else {
                ctx.halt();
            }
        }
    }

    fn noisy_run(
        graph: &MultiGraph,
        shards: usize,
        trace_mode: TraceMode,
    ) -> (Vec<u64>, ExecutionMetrics, Trace, MessageLedger) {
        let config = NetworkConfig::with_seed(99)
            .traced(10_000)
            .trace_mode(trace_mode)
            .sharded(shards);
        let mut network = Network::new(graph, config, |_, _| NoisyGossip { sum: 0 }).unwrap();
        network.run_until_halt(10).unwrap();
        let metrics = network.metrics().clone();
        let trace = network.trace().clone();
        let ledger = network.ledger().clone();
        let sums = network.into_programs().into_iter().map(|p| p.sum).collect();
        (sums, metrics, trace, ledger)
    }

    #[test]
    fn sharded_execution_is_bit_identical_to_sequential() {
        use freelunch_graph::generators::sparse_connected_erdos_renyi;
        let graph = sparse_connected_erdos_renyi(&GeneratorConfig::new(61, 2), 5.0).unwrap();
        for trace_mode in [TraceMode::Full, TraceMode::Off] {
            let sequential = noisy_run(&graph, 1, trace_mode);
            for shards in [2, 3, 8, 61, 200] {
                let sharded = noisy_run(&graph, shards, trace_mode);
                assert_eq!(sequential.0, sharded.0, "outputs differ at {shards} shards");
                assert_eq!(sequential.1, sharded.1, "metrics differ at {shards} shards");
                assert_eq!(sequential.2, sharded.2, "traces differ at {shards} shards");
                assert_eq!(sequential.3, sharded.3, "ledgers differ at {shards} shards");
            }
        }
    }

    #[test]
    fn trace_mode_changes_only_the_trace() {
        use freelunch_graph::generators::sparse_connected_erdos_renyi;
        let graph = sparse_connected_erdos_renyi(&GeneratorConfig::new(61, 2), 5.0).unwrap();
        for shards in [1, 4] {
            let full = noisy_run(&graph, shards, TraceMode::Full);
            let off = noisy_run(&graph, shards, TraceMode::Off);
            assert_eq!(full.0, off.0, "outputs differ at {shards} shards");
            assert_eq!(full.1, off.1, "metrics differ at {shards} shards");
            assert_eq!(full.3, off.3, "ledgers differ at {shards} shards");
            assert_eq!(full.2.total(), full.1.total_messages());
            assert_eq!(off.2.total(), 0);
        }
    }

    #[test]
    fn mailboxes_and_outboxes_are_reused_across_rounds() {
        /// Broadcasts every round for 6 rounds.
        struct Chatter;
        impl NodeProgram for Chatter {
            type Message = u64;
            fn init(&mut self, ctx: &mut Context<'_, u64>) {
                ctx.broadcast(1);
            }
            fn round(&mut self, ctx: &mut Context<'_, u64>, _inbox: &[Envelope<u64>]) {
                if ctx.round() < 6 {
                    ctx.broadcast(ctx.round() as u64);
                } else {
                    ctx.halt();
                }
            }
        }
        for shards in [1, 3] {
            let graph = cycle(9);
            let config = NetworkConfig::with_seed(5).sharded(shards);
            let mut network = Network::new(&graph, config, |_, _| Chatter).unwrap();
            network.run_rounds(3).unwrap();
            let capacities: Vec<(usize, usize, usize)> = (0..9)
                .map(|v| {
                    (
                        network.inboxes[v].capacity(),
                        network.pending[v].capacity(),
                        network.outboxes[v].capacity(),
                    )
                })
                .collect();
            network.run_rounds(3).unwrap();
            // Steady state: three more identical rounds grow no buffer.
            for (v, expected) in capacities.iter().enumerate() {
                assert_eq!(network.inboxes[v].capacity(), expected.0, "{shards}");
                assert_eq!(network.pending[v].capacity(), expected.1, "{shards}");
                assert_eq!(network.outboxes[v].capacity(), expected.2, "{shards}");
            }
        }
    }

    #[test]
    fn pending_message_counter_tracks_dispatch_and_delivery() {
        let graph = cycle(6);
        let mut network = Network::new(&graph, NetworkConfig::with_seed(4), |node, _| {
            Flood::new(node)
        })
        .unwrap();
        assert_eq!(network.pending_messages(), 0);
        network.initialize().unwrap();
        // Node 0 broadcast over its 2 incident edges during initialization.
        assert_eq!(network.pending_messages(), 2);
        network.run_until_halt(10).unwrap();
        // The last node to hear the token (node 3, opposite on the cycle)
        // broadcast in the final round; its wave is still in flight.
        assert_eq!(network.pending_messages(), 2);
        network.run_round().unwrap();
        // Delivered, and every node is halted: nothing new was sent.
        assert_eq!(network.pending_messages(), 0);
    }

    #[test]
    fn ledger_matches_metrics_and_sizes_payloads() {
        let graph = cycle(6);
        let mut network = Network::new(&graph, NetworkConfig::with_seed(4), |node, _| {
            Flood::new(node)
        })
        .unwrap();
        network.run_until_halt(10).unwrap();
        let ledger = network.ledger();
        // The ledger and the per-round metrics count the same messages.
        assert_eq!(
            ledger.messages_per_round(),
            &network.metrics().messages_per_round[..]
        );
        assert_eq!(ledger.total_messages(), network.cost().messages);
        // Every node broadcast exactly once over each of its 2 edges, so each
        // of the 6 cycle edges carried exactly 2 messages in total.
        assert_eq!(ledger.messages_per_edge(), &[2u64; 6][..]);
        assert!(ledger.max_congestion() <= 2);
        // `Flood` sends `()` payloads: zero bytes under the default sizing.
        assert_eq!(ledger.total_bytes(), 0);
    }

    /// A program with an overridden wire size: every message is charged as
    /// its little-endian byte length.
    struct SizedBeacon;
    impl NodeProgram for SizedBeacon {
        type Message = u64;
        fn init(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.broadcast(7);
        }
        fn round(&mut self, ctx: &mut Context<'_, u64>, _inbox: &[Envelope<u64>]) {
            ctx.halt();
        }
        fn payload_bytes(message: &u64) -> u64 {
            u64::from(message.count_ones().max(1)) // custom rule: popcount bytes
        }
    }

    #[test]
    fn payload_bytes_override_is_respected() {
        for shards in [1, 2] {
            let graph = cycle(4);
            let config = NetworkConfig::default().sharded(shards);
            let mut network = Network::new(&graph, config, |_, _| SizedBeacon).unwrap();
            network.run_until_halt(3).unwrap();
            // 4 nodes × 2 edges, each message charged popcount(7) = 3 bytes.
            assert_eq!(network.ledger().total_messages(), 8);
            assert_eq!(network.ledger().total_bytes(), 24);
        }
    }

    #[test]
    fn shard_count_is_clamped_and_zero_rejected() {
        let graph = cycle(4);
        let network = Network::new(&graph, NetworkConfig::default().sharded(100), |node, _| {
            Flood::new(node)
        })
        .unwrap();
        assert_eq!(network.shard_count(), 4);
        assert!(
            Network::new(&graph, NetworkConfig::default().sharded(0), |node, _| {
                Flood::new(node)
            })
            .is_err()
        );
    }

    #[test]
    fn sharded_dispatch_errors_match_sequential() {
        /// Sends over an edge that is not incident to it.
        struct Rogue;
        impl NodeProgram for Rogue {
            type Message = ();
            fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {
                if ctx.node() == NodeId::new(2) {
                    ctx.send(EdgeId::new(0), ());
                }
            }
        }
        let graph = cycle(8);
        for shards in [1, 4] {
            let mut network =
                Network::new(&graph, NetworkConfig::default().sharded(shards), |_, _| {
                    Rogue
                })
                .unwrap();
            assert_eq!(
                network.run_round().unwrap_err(),
                RuntimeError::NotIncident {
                    node: NodeId::new(2),
                    edge: EdgeId::new(0)
                },
                "at {shards} shards"
            );
        }
    }

    #[test]
    fn two_bad_senders_report_the_canonically_first_error() {
        /// Two nodes in far-apart chunks both send over a non-incident edge.
        struct TwinRogue;
        impl NodeProgram for TwinRogue {
            type Message = ();
            fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {
                // Node 90's edge 0 is not incident; neither is node 3's
                // edge 50. Under work-stealing a worker may step node 90
                // first, but the reported error must still be node 3's.
                if ctx.node() == NodeId::new(3) {
                    ctx.send(EdgeId::new(50), ());
                }
                if ctx.node() == NodeId::new(90) {
                    ctx.send(EdgeId::new(0), ());
                }
            }
        }
        let graph = cycle(96);
        let first = RuntimeError::NotIncident {
            node: NodeId::new(3),
            edge: EdgeId::new(50),
        };
        for sched in [Scheduling::Dynamic, Scheduling::Static] {
            for shards in [1, 2, 8] {
                // chunk_size(1) maximizes chunk count, so the two rogues
                // land in different chunks and are claimed by racing
                // workers in a nondeterministic order.
                let config = NetworkConfig::default()
                    .sharded(shards)
                    .scheduling(sched)
                    .chunk_size(1);
                let mut network = Network::new(&graph, config, |_, _| TwinRogue).unwrap();
                assert_eq!(
                    network.run_round().unwrap_err(),
                    first,
                    "at {shards} shards under {sched:?}"
                );
            }
        }
    }

    #[test]
    fn run_until_quiet_waits_for_in_flight_messages() {
        /// Node 0 sends one message in round 1 and halts immediately; the
        /// receiver halts when it hears it.
        struct OneShot {
            sent: bool,
        }
        impl NodeProgram for OneShot {
            type Message = ();
            fn round(&mut self, ctx: &mut Context<'_, ()>, inbox: &[Envelope<()>]) {
                if ctx.node() == NodeId::new(0) && !self.sent {
                    ctx.broadcast(());
                    self.sent = true;
                }
                if ctx.node() != NodeId::new(0) && !inbox.is_empty() {
                    ctx.halt();
                }
                if ctx.node() == NodeId::new(0) {
                    ctx.halt();
                }
            }
        }
        let graph = cycle(3);
        let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| OneShot {
            sent: false,
        })
        .unwrap();
        network.run_until_quiet(10).unwrap();
        assert!(network.all_halted());
        assert_eq!(network.pending_messages(), 0);
        assert_eq!(network.halted_count(), 3);
    }

    /// Runs `NoisyGossip` under a fault plan and returns every observable.
    fn noisy_faulty_run(
        graph: &MultiGraph,
        shards: usize,
        trace_mode: TraceMode,
        plan: FaultPlan,
    ) -> (Vec<u64>, ExecutionMetrics, Trace, MessageLedger) {
        let config = NetworkConfig::with_seed(99)
            .traced(10_000)
            .trace_mode(trace_mode)
            .sharded(shards);
        let mut network =
            Network::with_fault_plan(graph, config, plan, |_, _| NoisyGossip { sum: 0 }).unwrap();
        network.run_until_halt(10).unwrap();
        let metrics = network.metrics().clone();
        let trace = network.trace().clone();
        let ledger = network.ledger().clone();
        let sums = network.into_programs().into_iter().map(|p| p.sum).collect();
        (sums, metrics, trace, ledger)
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_plan() {
        use freelunch_graph::generators::sparse_connected_erdos_renyi;
        let graph = sparse_connected_erdos_renyi(&GeneratorConfig::new(61, 2), 5.0).unwrap();
        for shards in [1, 4] {
            let clean = noisy_faulty_run(&graph, shards, TraceMode::Full, FaultPlan::none());
            let none = noisy_run(&graph, shards, TraceMode::Full);
            assert_eq!(clean, none, "at {shards} shards");
        }
        // An empty plan is not even observable through the accessor.
        let network = Network::with_fault_plan(
            &graph,
            NetworkConfig::default(),
            FaultPlan::new(7),
            |_, _| NoisyGossip { sum: 0 },
        )
        .unwrap();
        assert!(network.fault_plan().is_none());
    }

    #[test]
    fn faulty_execution_is_bit_identical_across_shards_and_trace_modes() {
        use freelunch_graph::generators::sparse_connected_erdos_renyi;
        let graph = sparse_connected_erdos_renyi(&GeneratorConfig::new(61, 2), 5.0).unwrap();
        let plan = || {
            FaultPlan::new(31)
                .with_drop_probability(0.2)
                .with_duplicate_probability(0.2)
                .with_link_cut(EdgeId::new(3), 1)
                .with_crash(NodeId::new(17), 2)
                .with_delivery_perturbation()
        };
        let reference = noisy_faulty_run(&graph, 1, TraceMode::Full, plan());
        assert!(reference.3.fault_totals().dropped > 0);
        assert!(reference.3.fault_totals().duplicated > 0);
        for trace_mode in [TraceMode::Full, TraceMode::Off] {
            for shards in [1, 2, 8, 61] {
                let faulty = noisy_faulty_run(&graph, shards, trace_mode, plan());
                let where_ = format!("{shards} shards ({trace_mode:?})");
                assert_eq!(reference.0, faulty.0, "outputs differ at {where_}");
                assert_eq!(reference.1, faulty.1, "metrics differ at {where_}");
                assert_eq!(reference.3, faulty.3, "ledgers differ at {where_}");
                if trace_mode == TraceMode::Full {
                    assert_eq!(reference.2, faulty.2, "traces differ at {where_}");
                }
            }
        }
    }

    #[test]
    fn crashed_node_goes_silent_frozen_and_halted() {
        let graph = cycle(6);
        let plan = FaultPlan::new(1).with_crash(NodeId::new(3), 0);
        let mut network =
            Network::with_fault_plan(&graph, NetworkConfig::with_seed(1), plan, |node, _| {
                Flood::new(node)
            })
            .unwrap();
        network.run_until_halt(20).unwrap();
        assert!(network.is_crashed(NodeId::new(3)));
        assert_eq!(network.crashed_nodes(), vec![NodeId::new(3)]);
        assert_eq!(network.crashed_count(), 1);
        assert!(!network.is_crashed(NodeId::new(0)));
        // The crashed node's program state is frozen at its initial value.
        assert!(network.programs()[3].heard_in_round.is_none());
        // Every live node still hears the token (the cycle minus one node is
        // a path), and the two messages addressed to the crashed node are
        // attributed as crash drops.
        for v in [0usize, 1, 2, 4, 5] {
            assert!(network.programs()[v].heard_in_round.is_some(), "node {v}");
        }
        let totals = network.ledger().fault_totals();
        assert_eq!(totals.dropped_crash, 2);
        assert_eq!(totals.dropped, 2);
        assert_eq!(totals.duplicated, 0);
    }

    #[test]
    fn link_cut_silences_both_directions_from_its_round() {
        /// Broadcasts every round; counts arrivals per round.
        struct Meter {
            seen: Vec<usize>,
        }
        impl NodeProgram for Meter {
            type Message = ();
            fn init(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.broadcast(());
            }
            fn round(&mut self, ctx: &mut Context<'_, ()>, inbox: &[Envelope<()>]) {
                self.seen.push(inbox.len());
                if ctx.round() < 4 {
                    ctx.broadcast(());
                } else {
                    ctx.halt();
                }
            }
        }
        // Cut the cycle edge between nodes 0 and 1 from round 2 on.
        let graph = cycle(4);
        let plan = FaultPlan::new(0).with_link_cut(EdgeId::new(0), 2);
        let mut network =
            Network::with_fault_plan(&graph, NetworkConfig::default(), plan, |_, _| Meter {
                seen: Vec::new(),
            })
            .unwrap();
        network.run_until_halt(5).unwrap();
        // Rounds 0 and 1 are unaffected (arrivals in rounds 1 and 2); the
        // cut eats one message per direction in each of rounds 2 and 3.
        assert_eq!(network.programs()[0].seen, vec![2, 2, 1, 1]);
        assert_eq!(network.programs()[1].seen, vec![2, 2, 1, 1]);
        assert_eq!(network.programs()[2].seen, vec![2, 2, 2, 2]);
        let totals = network.ledger().fault_totals();
        assert_eq!(totals.dropped_link_cut, 4);
        assert_eq!(network.ledger().dropped_per_round(), &[0, 0, 2, 2, 0]);
    }

    #[test]
    fn certain_duplication_doubles_every_delivery() {
        let graph = cycle(4);
        let plan = FaultPlan::new(5).with_duplicate_probability(1.0);
        let mut network =
            Network::with_fault_plan(&graph, NetworkConfig::with_seed(3), plan, |node, _| {
                Flood::new(node)
            })
            .unwrap();
        network.run_until_halt(10).unwrap();
        // Every node broadcast exactly once (8 program sends); each message
        // was duplicated, so 16 crossed the wire and the ledger counts them.
        assert_eq!(network.cost().messages, 16);
        assert_eq!(network.ledger().total_messages(), 16);
        assert_eq!(network.ledger().fault_totals().duplicated, 8);
        assert_eq!(network.ledger().fault_totals().dropped, 0);
    }

    #[test]
    fn certain_drop_loses_everything() {
        let graph = cycle(4);
        let plan = FaultPlan::new(5).with_drop_probability(1.0);
        let mut network =
            Network::with_fault_plan(&graph, NetworkConfig::with_seed(3), plan, |node, _| {
                Flood::new(node)
            })
            .unwrap();
        // Only node 0 ever holds the token: nobody else hears anything, so
        // the flood never completes within the budget.
        assert!(network.run_until_halt(10).is_err());
        assert_eq!(network.cost().messages, 0);
        assert_eq!(network.ledger().total_messages(), 0);
        let totals = network.ledger().fault_totals();
        assert_eq!(totals.dropped, totals.dropped_random);
        assert_eq!(totals.dropped, 2); // node 0's two init broadcasts
        assert_eq!(network.halted_count(), 1); // node 0 halted after forwarding
    }

    #[test]
    fn port_silence_observes_a_crashed_neighbor() {
        /// Broadcasts every round and snapshots its port-silence counters.
        struct SilenceWatcher {
            last: Vec<u32>,
        }
        impl NodeProgram for SilenceWatcher {
            type Message = ();
            fn init(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.broadcast(());
            }
            fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {
                self.last = ctx.port_silence().to_vec();
                if ctx.round() < 4 {
                    ctx.broadcast(());
                } else {
                    ctx.halt();
                }
            }
        }
        let graph = cycle(4);
        let plan = FaultPlan::new(0).with_crash(NodeId::new(2), 0);
        let mut network =
            Network::with_fault_plan(&graph, NetworkConfig::default(), plan, |_, _| {
                SilenceWatcher { last: Vec::new() }
            })
            .unwrap();
        network.run_until_halt(5).unwrap();
        // Node 1's ports: port 0 towards node 0 (chatty), port 1 towards the
        // crashed node 2 — silent since round 1, so by round 4 its counter
        // has aged 4 times without ever resetting.
        assert_eq!(network.programs()[1].last, vec![0, 4]);
        // Node 0 has two live neighbors: all-zero silence.
        assert_eq!(network.programs()[0].last, vec![0, 0]);
        // Without a fault plan the instrumentation is off entirely.
        let mut clean = Network::new(&graph, NetworkConfig::default(), |_, _| SilenceWatcher {
            last: Vec::new(),
        })
        .unwrap();
        clean.run_until_halt(5).unwrap();
        assert!(clean.programs()[1].last.is_empty());
    }

    #[test]
    fn delivery_perturbation_reorders_but_preserves_content() {
        /// Records the sender order of its inbox each round.
        struct OrderProbe {
            orders: Vec<Vec<u32>>,
        }
        impl NodeProgram for OrderProbe {
            type Message = ();
            fn init(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.broadcast(());
            }
            fn round(&mut self, ctx: &mut Context<'_, ()>, inbox: &[Envelope<()>]) {
                self.orders
                    .push(inbox.iter().map(|e| e.from.raw()).collect());
                if ctx.round() < 3 {
                    ctx.broadcast(());
                } else {
                    ctx.halt();
                }
            }
        }
        let graph = complete_like(6);
        let run = |plan: FaultPlan| {
            let mut network =
                Network::with_fault_plan(&graph, NetworkConfig::with_seed(2), plan, |_, _| {
                    OrderProbe { orders: Vec::new() }
                })
                .unwrap();
            network.run_until_halt(5).unwrap();
            let metrics = network.metrics().clone();
            (
                network
                    .into_programs()
                    .into_iter()
                    .map(|p| p.orders)
                    .collect::<Vec<_>>(),
                metrics,
            )
        };
        let clean = run(FaultPlan::none());
        let perturbed = run(FaultPlan::new(9).with_delivery_perturbation());
        let perturbed_again = run(FaultPlan::new(9).with_delivery_perturbation());
        // Same seed, same permutations — and message counts are untouched.
        assert_eq!(perturbed, perturbed_again);
        assert_eq!(clean.1, perturbed.1);
        // Orders differ somewhere, but each inbox holds the same senders.
        assert_ne!(clean.0, perturbed.0);
        for (node, (c, p)) in clean.0.iter().zip(perturbed.0.iter()).enumerate() {
            for (round, (co, po)) in c.iter().zip(p.iter()).enumerate() {
                let mut cs = co.clone();
                let mut ps = po.clone();
                cs.sort_unstable();
                ps.sort_unstable();
                assert_eq!(cs, ps, "node {node} round {round}");
            }
        }
    }

    /// Complete graph on `n` nodes built directly (dense inboxes make the
    /// perturbation test meaningful).
    fn complete_like(n: u32) -> MultiGraph {
        let mut graph = MultiGraph::new(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                graph.add_edge(NodeId::new(u), NodeId::new(v)).unwrap();
            }
        }
        graph
    }

    #[test]
    fn fault_plan_validation_happens_at_construction() {
        let graph = cycle(4);
        let bad_probability = FaultPlan::new(0).with_drop_probability(1.5);
        assert!(Network::with_fault_plan(
            &graph,
            NetworkConfig::default(),
            bad_probability,
            |node, _| { Flood::new(node) }
        )
        .is_err());
        // A negative probability makes `is_empty()` true; validation must
        // still reject it rather than shortcut to the failure-free path
        // (the emulated `*_with_faults` paths reject the same plan).
        let negative = FaultPlan::new(0).with_drop_probability(-0.5);
        assert!(negative.is_empty());
        assert!(
            Network::with_fault_plan(&graph, NetworkConfig::default(), negative, |node, _| {
                Flood::new(node)
            })
            .is_err()
        );
        let unknown_edge = FaultPlan::new(0).with_link_cut(EdgeId::new(99), 0);
        assert!(Network::with_fault_plan(
            &graph,
            NetworkConfig::default(),
            unknown_edge,
            |node, _| { Flood::new(node) }
        )
        .is_err());
        let unknown_node = FaultPlan::new(0).with_crash(NodeId::new(99), 0);
        assert!(Network::with_fault_plan(
            &graph,
            NetworkConfig::default(),
            unknown_node,
            |node, _| { Flood::new(node) }
        )
        .is_err());
    }

    #[test]
    fn sparse_edge_ids_resolve_through_the_endpoint_table() {
        /// Broadcasts once; the cluster-contraction style graph below has a
        /// deliberately sparse edge-ID space.
        struct Ping;
        impl NodeProgram for Ping {
            type Message = ();
            fn init(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.broadcast(());
            }
            fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {
                ctx.halt();
            }
        }
        let mut graph = MultiGraph::new(3);
        graph
            .add_edge_with_id(EdgeId::new(500), NodeId::new(0), NodeId::new(1))
            .unwrap();
        graph
            .add_edge_with_id(EdgeId::new(7), NodeId::new(1), NodeId::new(2))
            .unwrap();
        let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| Ping).unwrap();
        network.run_until_halt(3).unwrap();
        assert_eq!(network.cost().messages, 4);
        assert_eq!(network.ledger().messages_per_edge()[500], 2);
        assert_eq!(network.ledger().messages_per_edge()[7], 2);
    }
}
