//! The synchronous execution engine: runs one [`NodeProgram`] per node of a
//! communication graph, round by round, with exact message accounting.
//!
//! This is the (fully synchronous) LOCAL model of Linial / Peleg as used in
//! the paper: in every round each node may send one message over each
//! incident edge (message size is not bounded), receives the messages sent
//! to it in that round, and performs arbitrary local computation.
//!
//! # Sharded parallel execution
//!
//! Every round has two phases. The *execute* phase steps each node's
//! program against its snapshot of delivered messages — nodes are mutually
//! independent within a round, so the engine partitions them into
//! [`NetworkConfig::shards`] contiguous shards and steps each shard on its
//! own worker thread. The *dispatch* phase then merges the per-node
//! outboxes at a round barrier, always in ascending node order (and, per
//! node, in send order): the exact order the sequential engine produces.
//! Because each node also draws from its own seeded
//! [`ChaCha8Rng`] stream, every observable of an
//! execution — [`ExecutionMetrics`], [`Trace`], program outputs — is
//! **bit-identical for every shard count** at equal seeds. Sharding is a
//! wall-clock knob, never a semantics knob.
//!
//! ```
//! use freelunch_graph::generators::{sparse_connected_erdos_renyi, GeneratorConfig};
//! use freelunch_runtime::{Context, Envelope, Network, NetworkConfig, NodeProgram};
//!
//! /// Two rounds of min-ID flooding.
//! struct MinFlood(u32);
//! impl NodeProgram for MinFlood {
//!     type Message = u32;
//!     fn init(&mut self, ctx: &mut Context<'_, u32>) {
//!         ctx.broadcast(self.0);
//!     }
//!     fn round(&mut self, ctx: &mut Context<'_, u32>, inbox: &[Envelope<u32>]) {
//!         self.0 = inbox.iter().map(|e| e.payload).chain([self.0]).min().unwrap();
//!         if ctx.round() < 2 { ctx.broadcast(self.0); } else { ctx.halt(); }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = sparse_connected_erdos_renyi(&GeneratorConfig::new(64, 3), 4.0)?;
//! let run = |config: NetworkConfig| -> Result<_, Box<dyn std::error::Error>> {
//!     let mut network = Network::new(&graph, config, |v, _| MinFlood(v.raw()))?;
//!     network.run_until_halt(4)?;
//!     Ok((network.cost(), network.metrics().clone()))
//! };
//! let sequential = run(NetworkConfig::with_seed(7))?;
//! let sharded = run(NetworkConfig::with_seed(7).sharded(4))?;
//! assert_eq!(sequential, sharded); // identical CostReport *and* per-round metrics
//! # Ok(())
//! # }
//! ```

use crate::error::{RuntimeError, RuntimeResult};
use crate::knowledge::{initial_knowledge, InitialKnowledge, KnowledgeModel};
use crate::metrics::{edge_slot_count, CostReport, ExecutionMetrics, MessageLedger};
use crate::node::{Context, Envelope, NodeProgram, Outgoing};
use crate::trace::{Trace, TraceEvent};
use freelunch_graph::{CsrGraph, EdgeId, MultiGraph, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a synchronous execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Initial-knowledge model handed to the nodes.
    pub knowledge: KnowledgeModel,
    /// Seed from which every node's private random stream is derived.
    pub seed: u64,
    /// Extra slack added to the `log2 n` upper bound the nodes are given
    /// (models the "O(1)-approximate upper bound" of assumption (i)).
    pub log_n_slack: u32,
    /// Maximum number of message events stored in the trace (0 disables
    /// tracing; message *counts* are always exact regardless).
    pub trace_capacity: usize,
    /// Number of worker shards the execute phase of each round is split
    /// into (1 = sequential). Shard counts above the node count are clamped
    /// down; 0 is rejected by [`Network::new`]. Every observable of the
    /// execution is bit-identical for every shard count — see the
    /// [module docs](self).
    pub shards: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            knowledge: KnowledgeModel::UniqueEdgeIds,
            seed: 0,
            log_n_slack: 1,
            trace_capacity: 0,
            shards: 1,
        }
    }
}

impl NetworkConfig {
    /// Configuration with the paper's knowledge model and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        NetworkConfig {
            seed,
            ..NetworkConfig::default()
        }
    }

    /// Returns a copy using the given knowledge model.
    pub fn knowledge(mut self, model: KnowledgeModel) -> Self {
        self.knowledge = model;
        self
    }

    /// Returns a copy that stores up to `capacity` trace events.
    pub fn traced(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Returns a copy that executes each round's node programs on `shards`
    /// worker threads. The execution stays bit-identical to the sequential
    /// engine (see the [module docs](self)); only wall-clock time changes.
    pub fn sharded(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// Mixes the network seed with a node index into an independent per-node
/// stream seed (splitmix64 finalizer).
fn node_seed(seed: u64, node: usize) -> u64 {
    let mut z = seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A synchronous network executing one program instance per node.
///
/// # Examples
///
/// A two-node network where each node greets its neighbor once:
///
/// ```
/// use freelunch_graph::{MultiGraph, NodeId};
/// use freelunch_runtime::{Context, Envelope, Network, NetworkConfig, NodeProgram};
///
/// struct Greeter { greeted: bool, received: usize }
///
/// impl NodeProgram for Greeter {
///     type Message = String;
///     fn init(&mut self, ctx: &mut Context<'_, String>) {
///         ctx.broadcast(format!("hello from {}", ctx.node()));
///         self.greeted = true;
///     }
///     fn round(&mut self, ctx: &mut Context<'_, String>, inbox: &[Envelope<String>]) {
///         self.received += inbox.len();
///         ctx.halt();
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut graph = MultiGraph::new(2);
/// graph.add_edge(NodeId::new(0), NodeId::new(1))?;
/// let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| Greeter {
///     greeted: false,
///     received: 0,
/// })?;
/// network.run_until_halt(10)?;
/// assert_eq!(network.cost().messages, 2);
/// assert!(network.programs().iter().all(|p| p.received == 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Network<P: NodeProgram> {
    /// Frozen CSR view of the communication graph: packed incidence arrays
    /// for the setup scans and array-indexed edge lookup for the
    /// per-message dispatch validation (the hottest lookup in the engine).
    /// The network never needs the mutable [`MultiGraph`] after
    /// construction, so this is the only copy it keeps.
    csr: CsrGraph,
    config: NetworkConfig,
    knowledge: Vec<InitialKnowledge>,
    port_edges: Vec<Vec<EdgeId>>,
    programs: Vec<P>,
    rngs: Vec<ChaCha8Rng>,
    halted: Vec<bool>,
    pending: Vec<Vec<Envelope<P::Message>>>,
    metrics: ExecutionMetrics,
    ledger: MessageLedger,
    trace: Trace,
    round: u32,
    initialized: bool,
}

/// What one node produced during the execute phase of a round: its halt
/// flag, its outbox, and the payload byte size of each outgoing message.
/// Byte sizing ([`NodeProgram::payload_bytes`]) runs on the shard worker
/// threads — this is the per-shard portion of the ledger accounting — and
/// the outcomes are then merged at the round barrier in ascending node
/// order, so the ledger is bit-identical across shard counts.
struct NodeOutcome<M> {
    halted: bool,
    outbox: Vec<Outgoing<M>>,
    outbox_bytes: Vec<u64>,
}

/// Which program entry point the execute phase calls.
#[derive(Clone, Copy)]
enum Phase {
    Init,
    Round,
}

impl<P: NodeProgram> Network<P> {
    /// Builds a network over `graph`, creating one program per node via
    /// `factory`.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph has no nodes.
    pub fn new(
        graph: &MultiGraph,
        config: NetworkConfig,
        mut factory: impl FnMut(NodeId, &InitialKnowledge) -> P,
    ) -> RuntimeResult<Self> {
        if graph.node_count() == 0 {
            return Err(RuntimeError::invalid_config(
                "the communication graph has no nodes",
            ));
        }
        if config.shards == 0 {
            return Err(RuntimeError::invalid_config(
                "the shard count must be at least 1",
            ));
        }
        let csr = graph.freeze();
        let knowledge = initial_knowledge(&csr, config.knowledge, config.log_n_slack);
        let port_edges: Vec<Vec<EdgeId>> = csr
            .nodes()
            .map(|v| csr.incident_edges(v).iter().map(|ie| ie.edge).collect())
            .collect();
        let programs: Vec<P> = knowledge.iter().map(|k| factory(k.node, k)).collect();
        let rngs = (0..graph.node_count())
            .map(|v| ChaCha8Rng::seed_from_u64(node_seed(config.seed, v)))
            .collect();
        let node_count = graph.node_count();
        let ledger = MessageLedger::new(edge_slot_count(csr.edge_ids()));
        Ok(Network {
            csr,
            config,
            knowledge,
            port_edges,
            programs,
            rngs,
            halted: vec![false; node_count],
            pending: (0..node_count).map(|_| Vec::new()).collect(),
            metrics: ExecutionMetrics::new(node_count),
            ledger,
            trace: Trace::with_capacity(config.trace_capacity),
            round: 0,
            initialized: false,
        })
    }

    /// The communication graph the network runs on, as its frozen
    /// [`CsrGraph`] view (the network keeps no mutable copy).
    pub fn graph(&self) -> &CsrGraph {
        &self.csr
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The current round number (0 before the first round).
    pub fn current_round(&self) -> u32 {
        self.round
    }

    /// Returns `true` once every node has called [`Context::halt`].
    pub fn all_halted(&self) -> bool {
        self.halted.iter().all(|&h| h)
    }

    /// Number of nodes that have halted so far.
    pub fn halted_count(&self) -> usize {
        self.halted.iter().filter(|&&h| h).count()
    }

    /// Immutable access to all node programs (indexed by node).
    pub fn programs(&self) -> &[P] {
        &self.programs
    }

    /// Immutable access to the program of a single node.
    pub fn program(&self, node: NodeId) -> &P {
        &self.programs[node.index()]
    }

    /// Consumes the network and returns the node programs (for extracting
    /// outputs).
    pub fn into_programs(self) -> Vec<P> {
        self.programs
    }

    /// Detailed execution metrics.
    pub fn metrics(&self) -> &ExecutionMetrics {
        &self.metrics
    }

    /// The message-complexity ledger: per-edge and per-round message counts
    /// and payload bytes (see `docs/METRICS.md` for the contract). Like
    /// every other observable, the ledger is bit-identical across shard
    /// counts at equal seeds.
    pub fn ledger(&self) -> &MessageLedger {
        &self.ledger
    }

    /// Round/message summary so far.
    pub fn cost(&self) -> CostReport {
        self.metrics.summary()
    }

    /// The (bounded) message trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of messages currently in flight (sent but not yet delivered).
    pub fn pending_messages(&self) -> usize {
        self.pending.iter().map(Vec::len).sum()
    }

    /// Effective shard count: the configured value clamped to the node
    /// count (a shard with no nodes would be a useless thread).
    pub fn shard_count(&self) -> usize {
        self.config.shards.min(self.programs.len()).max(1)
    }

    /// Execute phase: steps every program once (init or round), returning
    /// the per-node outcomes in node order. With more than one shard the
    /// nodes are split into contiguous chunks stepped on scoped worker
    /// threads; the outcome vector is assembled in shard order, so it is
    /// identical to the sequential one.
    fn execute_phase(
        &mut self,
        round: u32,
        mut inboxes: Vec<Vec<Envelope<P::Message>>>,
        phase: Phase,
    ) -> Vec<NodeOutcome<P::Message>> {
        let shards = self.shard_count();
        let knowledge = &self.knowledge;
        let port_edges = &self.port_edges;

        let step = |index: usize,
                    program: &mut P,
                    rng: &mut ChaCha8Rng,
                    inbox: &[Envelope<P::Message>]| {
            let mut ctx = Context::new(&knowledge[index], &port_edges[index], round, rng);
            match phase {
                Phase::Init => program.init(&mut ctx),
                Phase::Round => program.round(&mut ctx, inbox),
            }
            let outbox = std::mem::take(&mut ctx.outbox);
            // Size the payloads here, on the shard's worker thread: the
            // ledger's per-shard accounting that the barrier then merges.
            let outbox_bytes = outbox
                .iter()
                .map(|outgoing| P::payload_bytes(&outgoing.payload))
                .collect();
            NodeOutcome {
                halted: ctx.halted,
                outbox,
                outbox_bytes,
            }
        };

        if shards == 1 {
            return self
                .programs
                .iter_mut()
                .zip(self.rngs.iter_mut())
                .zip(inboxes.iter())
                .enumerate()
                .map(|(index, ((program, rng), inbox))| step(index, program, rng, inbox))
                .collect();
        }

        let chunk = self.programs.len().div_ceil(shards);
        let mut shard_outcomes: Vec<Vec<NodeOutcome<P::Message>>> = Vec::with_capacity(shards);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .programs
                .chunks_mut(chunk)
                .zip(self.rngs.chunks_mut(chunk))
                .zip(inboxes.chunks_mut(chunk))
                .enumerate()
                .map(|(shard, ((programs, rngs), inboxes))| {
                    let base = shard * chunk;
                    let step = &step;
                    scope.spawn(move || {
                        programs
                            .iter_mut()
                            .zip(rngs.iter_mut())
                            .zip(inboxes.iter())
                            .enumerate()
                            .map(|(offset, ((program, rng), inbox))| {
                                step(base + offset, program, rng, inbox)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(outcomes) => shard_outcomes.push(outcomes),
                    // A panicking program panics the whole execution, just
                    // like in the sequential engine.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        shard_outcomes.into_iter().flatten().collect()
    }

    /// Dispatch phase: applies the execute-phase outcomes at the round
    /// barrier, in ascending node order — the canonical order that makes
    /// metrics, traces and pending queues independent of the shard count.
    fn dispatch_outcomes(
        &mut self,
        outcomes: Vec<NodeOutcome<P::Message>>,
        round: u32,
    ) -> RuntimeResult<()> {
        for (index, outcome) in outcomes.into_iter().enumerate() {
            if outcome.halted {
                self.halted[index] = true;
            }
            self.dispatch(
                NodeId::from_usize(index),
                outcome.outbox,
                outcome.outbox_bytes,
                round,
            )?;
        }
        Ok(())
    }

    fn dispatch(
        &mut self,
        sender: NodeId,
        outbox: Vec<Outgoing<P::Message>>,
        outbox_bytes: Vec<u64>,
        round: u32,
    ) -> RuntimeResult<()> {
        for (outgoing, payload_bytes) in outbox.into_iter().zip(outbox_bytes) {
            let edge = self
                .csr
                .edge(outgoing.edge)
                .map_err(|_| RuntimeError::UnknownEdge {
                    edge: outgoing.edge,
                })?;
            if !edge.touches(sender) {
                return Err(RuntimeError::NotIncident {
                    node: sender,
                    edge: outgoing.edge,
                });
            }
            let receiver = edge.other(sender);
            self.metrics.record_send(sender.index());
            self.ledger.record_edge(edge.id, payload_bytes);
            self.trace.record(TraceEvent {
                round,
                from: sender,
                to: receiver,
                edge: edge.id,
            });
            self.pending[receiver.index()].push(Envelope {
                edge: edge.id,
                from: sender,
                payload: outgoing.payload,
            });
        }
        Ok(())
    }

    /// Runs the initialization phase (safe to call multiple times; only the
    /// first call has an effect). Messages sent during initialization are
    /// delivered in round 1 and counted in the round-0 slot of the metrics.
    ///
    /// # Errors
    ///
    /// Returns an error if a program sends over a non-incident or unknown
    /// edge.
    pub fn initialize(&mut self) -> RuntimeResult<()> {
        if self.initialized {
            return Ok(());
        }
        let empty_inboxes: Vec<Vec<Envelope<P::Message>>> =
            (0..self.programs.len()).map(|_| Vec::new()).collect();
        let outcomes = self.execute_phase(0, empty_inboxes, Phase::Init);
        self.dispatch_outcomes(outcomes, 0)?;
        self.initialized = true;
        Ok(())
    }

    /// Executes one synchronous round: delivers every pending message and
    /// calls each node's [`NodeProgram::round`].
    ///
    /// # Errors
    ///
    /// Returns an error if a program sends over a non-incident or unknown
    /// edge.
    pub fn run_round(&mut self) -> RuntimeResult<()> {
        self.initialize()?;
        self.round += 1;
        self.metrics.start_round();
        self.ledger.start_round();
        let inboxes: Vec<Vec<Envelope<P::Message>>> =
            self.pending.iter_mut().map(std::mem::take).collect();
        let round = self.round;
        let outcomes = self.execute_phase(round, inboxes, Phase::Round);
        self.dispatch_outcomes(outcomes, round)
    }

    /// Runs exactly `rounds` synchronous rounds.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Network::run_round`].
    pub fn run_rounds(&mut self, rounds: u32) -> RuntimeResult<()> {
        for _ in 0..rounds {
            self.run_round()?;
        }
        Ok(())
    }

    /// Runs rounds until every node has halted, up to `budget` rounds.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundBudgetExceeded`] if some node is still
    /// running after `budget` rounds, or any error from
    /// [`Network::run_round`].
    pub fn run_until_halt(&mut self, budget: u32) -> RuntimeResult<()> {
        self.initialize()?;
        let mut executed = 0;
        while !self.all_halted() {
            if executed >= budget {
                return Err(RuntimeError::RoundBudgetExceeded { budget });
            }
            self.run_round()?;
            executed += 1;
        }
        Ok(())
    }

    /// Runs rounds until no messages are in flight and every node has halted,
    /// up to `budget` rounds. Useful for algorithms whose halting decision
    /// depends on silence.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundBudgetExceeded`] if the network is still
    /// active after `budget` rounds.
    pub fn run_until_quiet(&mut self, budget: u32) -> RuntimeResult<()> {
        self.initialize()?;
        let mut executed = 0;
        while !(self.all_halted() && self.pending_messages() == 0) {
            if executed >= budget {
                return Err(RuntimeError::RoundBudgetExceeded { budget });
            }
            self.run_round()?;
            executed += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{cycle_graph, GeneratorConfig};

    /// Floods a token: node 0 starts with it, everyone forwards it the round
    /// after first hearing it, then halts.
    struct Flood {
        has_token: bool,
        forwarded: bool,
        heard_in_round: Option<u32>,
    }

    impl Flood {
        fn new(node: NodeId) -> Self {
            Flood {
                has_token: node == NodeId::new(0),
                forwarded: false,
                heard_in_round: None,
            }
        }
    }

    impl NodeProgram for Flood {
        type Message = ();

        fn init(&mut self, ctx: &mut Context<'_, ()>) {
            if self.has_token {
                self.heard_in_round = Some(0);
                ctx.broadcast(());
                self.forwarded = true;
            }
        }

        fn round(&mut self, ctx: &mut Context<'_, ()>, inbox: &[Envelope<()>]) {
            if !inbox.is_empty() && self.heard_in_round.is_none() {
                self.heard_in_round = Some(ctx.round());
                self.has_token = true;
            }
            if self.has_token && !self.forwarded {
                ctx.broadcast(());
                self.forwarded = true;
            }
            if self.has_token {
                ctx.halt();
            }
        }
    }

    fn cycle(n: usize) -> MultiGraph {
        cycle_graph(&GeneratorConfig::new(n, 0)).unwrap()
    }

    #[test]
    fn flooding_reaches_every_node_in_diameter_rounds() {
        let graph = cycle(8);
        let mut network = Network::new(&graph, NetworkConfig::with_seed(1), |node, _| {
            Flood::new(node)
        })
        .unwrap();
        network.run_until_halt(20).unwrap();
        assert!(network.all_halted());
        // On a cycle of 8 the farthest node hears the token in round 4.
        let max_heard = network
            .programs()
            .iter()
            .map(|p| p.heard_in_round.expect("every node heard the token"))
            .max()
            .unwrap();
        assert_eq!(max_heard, 4);
        // Every node broadcasts exactly once: 8 nodes × degree 2.
        assert_eq!(network.cost().messages, 16);
        assert!(network.cost().rounds >= 4);
    }

    #[test]
    fn run_rounds_counts_rounds_exactly() {
        let graph = cycle(5);
        let mut network =
            Network::new(&graph, NetworkConfig::default(), |node, _| Flood::new(node)).unwrap();
        network.run_rounds(3).unwrap();
        assert_eq!(network.current_round(), 3);
        assert_eq!(network.cost().rounds, 3);
    }

    #[test]
    fn budget_exceeded_reported() {
        /// A program that never halts.
        struct Busy;
        impl NodeProgram for Busy {
            type Message = ();
            fn round(&mut self, _ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {}
        }
        let graph = cycle(4);
        let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| Busy).unwrap();
        assert_eq!(
            network.run_until_halt(3),
            Err(RuntimeError::RoundBudgetExceeded { budget: 3 })
        );
    }

    #[test]
    fn sending_over_foreign_edge_is_rejected() {
        /// Sends over an edge that is not incident to it.
        struct Rogue;
        impl NodeProgram for Rogue {
            type Message = ();
            fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {
                if ctx.node() == NodeId::new(0) {
                    // Edge 1 of the cycle connects nodes 1 and 2.
                    ctx.send(EdgeId::new(1), ());
                }
            }
        }
        let graph = cycle(4);
        let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| Rogue).unwrap();
        let err = network.run_round().unwrap_err();
        assert_eq!(
            err,
            RuntimeError::NotIncident {
                node: NodeId::new(0),
                edge: EdgeId::new(1)
            }
        );
    }

    #[test]
    fn sending_over_unknown_edge_is_rejected() {
        struct Rogue;
        impl NodeProgram for Rogue {
            type Message = ();
            fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {
                ctx.send(EdgeId::new(999), ());
            }
        }
        let graph = cycle(4);
        let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| Rogue).unwrap();
        let err = network.run_round().unwrap_err();
        assert_eq!(
            err,
            RuntimeError::UnknownEdge {
                edge: EdgeId::new(999)
            }
        );
    }

    #[test]
    fn empty_graph_is_rejected() {
        struct Noop;
        impl NodeProgram for Noop {
            type Message = ();
            fn round(&mut self, _ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {}
        }
        let graph = MultiGraph::new(0);
        assert!(Network::new(&graph, NetworkConfig::default(), |_, _| Noop).is_err());
    }

    #[test]
    fn trace_records_message_events() {
        let graph = cycle(4);
        let config = NetworkConfig::with_seed(3).traced(100);
        let mut network = Network::new(&graph, config, |node, _| Flood::new(node)).unwrap();
        network.run_until_halt(10).unwrap();
        assert_eq!(network.trace().total(), network.cost().messages);
        assert!(network.trace().events().iter().any(|e| e.round == 0));
    }

    #[test]
    fn identical_seeds_give_identical_executions() {
        use rand::Rng;

        /// Each node draws a random number and broadcasts it once.
        struct RandomOnce {
            drawn: Option<u64>,
            received: Vec<u64>,
        }
        impl NodeProgram for RandomOnce {
            type Message = u64;
            fn init(&mut self, ctx: &mut Context<'_, u64>) {
                let value = ctx.rng().gen();
                self.drawn = Some(value);
                ctx.broadcast(value);
            }
            fn round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[Envelope<u64>]) {
                self.received.extend(inbox.iter().map(|e| e.payload));
                ctx.halt();
            }
        }

        let graph = cycle(6);
        let run = |seed: u64| {
            let mut network =
                Network::new(&graph, NetworkConfig::with_seed(seed), |_, _| RandomOnce {
                    drawn: None,
                    received: Vec::new(),
                })
                .unwrap();
            network.run_until_halt(5).unwrap();
            network
                .into_programs()
                .into_iter()
                .map(|p| (p.drawn, p.received))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn per_node_streams_are_independent() {
        // Different nodes with the same network seed draw different values.
        assert_ne!(node_seed(7, 0), node_seed(7, 1));
        assert_ne!(node_seed(7, 1), node_seed(8, 1));
    }

    /// Every node draws random values each round and gossips them; the
    /// drawn values, message pattern and halting round all depend on the
    /// per-node RNG streams, making this a sharp determinism probe.
    struct NoisyGossip {
        sum: u64,
    }

    impl NodeProgram for NoisyGossip {
        type Message = u64;
        fn init(&mut self, ctx: &mut Context<'_, u64>) {
            use rand::Rng;
            let value: u64 = ctx.rng().gen();
            self.sum = value;
            ctx.broadcast(value);
        }
        fn round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[Envelope<u64>]) {
            use rand::Rng;
            for envelope in inbox {
                self.sum = self.sum.wrapping_add(envelope.payload);
            }
            if ctx.round() < 3 {
                // A randomized subset of ports each round.
                for port in 0..ctx.degree() {
                    if ctx.rng().gen_bool(0.5) {
                        let value = self.sum.wrapping_add(port as u64);
                        ctx.send_port(port, value);
                    }
                }
            } else {
                ctx.halt();
            }
        }
    }

    fn noisy_run(
        graph: &MultiGraph,
        shards: usize,
    ) -> (Vec<u64>, ExecutionMetrics, Trace, MessageLedger) {
        let config = NetworkConfig::with_seed(99).traced(10_000).sharded(shards);
        let mut network = Network::new(graph, config, |_, _| NoisyGossip { sum: 0 }).unwrap();
        network.run_until_halt(10).unwrap();
        let metrics = network.metrics().clone();
        let trace = network.trace().clone();
        let ledger = network.ledger().clone();
        let sums = network.into_programs().into_iter().map(|p| p.sum).collect();
        (sums, metrics, trace, ledger)
    }

    #[test]
    fn sharded_execution_is_bit_identical_to_sequential() {
        use freelunch_graph::generators::sparse_connected_erdos_renyi;
        let graph = sparse_connected_erdos_renyi(&GeneratorConfig::new(61, 2), 5.0).unwrap();
        let sequential = noisy_run(&graph, 1);
        for shards in [2, 3, 8, 61, 200] {
            let sharded = noisy_run(&graph, shards);
            assert_eq!(sequential.0, sharded.0, "outputs differ at {shards} shards");
            assert_eq!(sequential.1, sharded.1, "metrics differ at {shards} shards");
            assert_eq!(sequential.2, sharded.2, "traces differ at {shards} shards");
            assert_eq!(sequential.3, sharded.3, "ledgers differ at {shards} shards");
        }
    }

    #[test]
    fn ledger_matches_metrics_and_sizes_payloads() {
        let graph = cycle(6);
        let mut network = Network::new(&graph, NetworkConfig::with_seed(4), |node, _| {
            Flood::new(node)
        })
        .unwrap();
        network.run_until_halt(10).unwrap();
        let ledger = network.ledger();
        // The ledger and the per-round metrics count the same messages.
        assert_eq!(
            ledger.messages_per_round(),
            &network.metrics().messages_per_round[..]
        );
        assert_eq!(ledger.total_messages(), network.cost().messages);
        // Every node broadcast exactly once over each of its 2 edges, so each
        // of the 6 cycle edges carried exactly 2 messages in total.
        assert_eq!(ledger.messages_per_edge(), &[2u64; 6][..]);
        assert!(ledger.max_congestion() <= 2);
        // `Flood` sends `()` payloads: zero bytes under the default sizing.
        assert_eq!(ledger.total_bytes(), 0);
    }

    /// A program with an overridden wire size: every message is charged as
    /// its little-endian byte length.
    struct SizedBeacon;
    impl NodeProgram for SizedBeacon {
        type Message = u64;
        fn init(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.broadcast(7);
        }
        fn round(&mut self, ctx: &mut Context<'_, u64>, _inbox: &[Envelope<u64>]) {
            ctx.halt();
        }
        fn payload_bytes(message: &u64) -> u64 {
            u64::from(message.count_ones().max(1)) // custom rule: popcount bytes
        }
    }

    #[test]
    fn payload_bytes_override_is_respected() {
        let graph = cycle(4);
        let mut network =
            Network::new(&graph, NetworkConfig::default(), |_, _| SizedBeacon).unwrap();
        network.run_until_halt(3).unwrap();
        // 4 nodes × 2 edges, each message charged popcount(7) = 3 bytes.
        assert_eq!(network.ledger().total_messages(), 8);
        assert_eq!(network.ledger().total_bytes(), 24);
    }

    #[test]
    fn shard_count_is_clamped_and_zero_rejected() {
        let graph = cycle(4);
        let network = Network::new(&graph, NetworkConfig::default().sharded(100), |node, _| {
            Flood::new(node)
        })
        .unwrap();
        assert_eq!(network.shard_count(), 4);
        assert!(
            Network::new(&graph, NetworkConfig::default().sharded(0), |node, _| {
                Flood::new(node)
            })
            .is_err()
        );
    }

    #[test]
    fn sharded_dispatch_errors_match_sequential() {
        /// Sends over an edge that is not incident to it.
        struct Rogue;
        impl NodeProgram for Rogue {
            type Message = ();
            fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {
                if ctx.node() == NodeId::new(2) {
                    ctx.send(EdgeId::new(0), ());
                }
            }
        }
        let graph = cycle(8);
        for shards in [1, 4] {
            let mut network =
                Network::new(&graph, NetworkConfig::default().sharded(shards), |_, _| {
                    Rogue
                })
                .unwrap();
            assert_eq!(
                network.run_round().unwrap_err(),
                RuntimeError::NotIncident {
                    node: NodeId::new(2),
                    edge: EdgeId::new(0)
                },
                "at {shards} shards"
            );
        }
    }

    #[test]
    fn run_until_quiet_waits_for_in_flight_messages() {
        /// Node 0 sends one message in round 1 and halts immediately; the
        /// receiver halts when it hears it.
        struct OneShot {
            sent: bool,
        }
        impl NodeProgram for OneShot {
            type Message = ();
            fn round(&mut self, ctx: &mut Context<'_, ()>, inbox: &[Envelope<()>]) {
                if ctx.node() == NodeId::new(0) && !self.sent {
                    ctx.broadcast(());
                    self.sent = true;
                }
                if ctx.node() != NodeId::new(0) && !inbox.is_empty() {
                    ctx.halt();
                }
                if ctx.node() == NodeId::new(0) {
                    ctx.halt();
                }
            }
        }
        let graph = cycle(3);
        let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| OneShot {
            sent: false,
        })
        .unwrap();
        network.run_until_quiet(10).unwrap();
        assert!(network.all_halted());
        assert_eq!(network.pending_messages(), 0);
        assert_eq!(network.halted_count(), 3);
    }
}
