//! The synchronous execution engine: runs one [`NodeProgram`] per node of a
//! communication graph, round by round, with exact message accounting.
//!
//! This is the (fully synchronous) LOCAL model of Linial / Peleg as used in
//! the paper: in every round each node may send one message over each
//! incident edge (message size is not bounded), receives the messages sent
//! to it in that round, and performs arbitrary local computation.

use crate::error::{RuntimeError, RuntimeResult};
use crate::knowledge::{initial_knowledge, InitialKnowledge, KnowledgeModel};
use crate::metrics::{CostReport, ExecutionMetrics};
use crate::node::{Context, Envelope, NodeProgram};
use crate::trace::{Trace, TraceEvent};
use freelunch_graph::{EdgeId, MultiGraph, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a synchronous execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Initial-knowledge model handed to the nodes.
    pub knowledge: KnowledgeModel,
    /// Seed from which every node's private random stream is derived.
    pub seed: u64,
    /// Extra slack added to the `log2 n` upper bound the nodes are given
    /// (models the "O(1)-approximate upper bound" of assumption (i)).
    pub log_n_slack: u32,
    /// Maximum number of message events stored in the trace (0 disables
    /// tracing; message *counts* are always exact regardless).
    pub trace_capacity: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            knowledge: KnowledgeModel::UniqueEdgeIds,
            seed: 0,
            log_n_slack: 1,
            trace_capacity: 0,
        }
    }
}

impl NetworkConfig {
    /// Configuration with the paper's knowledge model and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        NetworkConfig {
            seed,
            ..NetworkConfig::default()
        }
    }

    /// Returns a copy using the given knowledge model.
    pub fn knowledge(mut self, model: KnowledgeModel) -> Self {
        self.knowledge = model;
        self
    }

    /// Returns a copy that stores up to `capacity` trace events.
    pub fn traced(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

/// Mixes the network seed with a node index into an independent per-node
/// stream seed (splitmix64 finalizer).
fn node_seed(seed: u64, node: usize) -> u64 {
    let mut z = seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A synchronous network executing one program instance per node.
///
/// # Examples
///
/// A two-node network where each node greets its neighbor once:
///
/// ```
/// use freelunch_graph::{MultiGraph, NodeId};
/// use freelunch_runtime::{Context, Envelope, Network, NetworkConfig, NodeProgram};
///
/// struct Greeter { greeted: bool, received: usize }
///
/// impl NodeProgram for Greeter {
///     type Message = String;
///     fn init(&mut self, ctx: &mut Context<'_, String>) {
///         ctx.broadcast(format!("hello from {}", ctx.node()));
///         self.greeted = true;
///     }
///     fn round(&mut self, ctx: &mut Context<'_, String>, inbox: &[Envelope<String>]) {
///         self.received += inbox.len();
///         ctx.halt();
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut graph = MultiGraph::new(2);
/// graph.add_edge(NodeId::new(0), NodeId::new(1))?;
/// let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| Greeter {
///     greeted: false,
///     received: 0,
/// })?;
/// network.run_until_halt(10)?;
/// assert_eq!(network.cost().messages, 2);
/// assert!(network.programs().iter().all(|p| p.received == 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Network<P: NodeProgram> {
    graph: MultiGraph,
    config: NetworkConfig,
    knowledge: Vec<InitialKnowledge>,
    port_edges: Vec<Vec<EdgeId>>,
    programs: Vec<P>,
    rngs: Vec<ChaCha8Rng>,
    halted: Vec<bool>,
    pending: Vec<Vec<Envelope<P::Message>>>,
    metrics: ExecutionMetrics,
    trace: Trace,
    round: u32,
    initialized: bool,
}

impl<P: NodeProgram> Network<P> {
    /// Builds a network over `graph`, creating one program per node via
    /// `factory`.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph has no nodes.
    pub fn new(
        graph: &MultiGraph,
        config: NetworkConfig,
        mut factory: impl FnMut(NodeId, &InitialKnowledge) -> P,
    ) -> RuntimeResult<Self> {
        if graph.node_count() == 0 {
            return Err(RuntimeError::invalid_config(
                "the communication graph has no nodes",
            ));
        }
        let knowledge = initial_knowledge(graph, config.knowledge, config.log_n_slack);
        let port_edges: Vec<Vec<EdgeId>> = graph
            .nodes()
            .map(|v| graph.incident_edges(v).iter().map(|ie| ie.edge).collect())
            .collect();
        let programs: Vec<P> = knowledge.iter().map(|k| factory(k.node, k)).collect();
        let rngs = (0..graph.node_count())
            .map(|v| ChaCha8Rng::seed_from_u64(node_seed(config.seed, v)))
            .collect();
        let node_count = graph.node_count();
        Ok(Network {
            graph: graph.clone(),
            config,
            knowledge,
            port_edges,
            programs,
            rngs,
            halted: vec![false; node_count],
            pending: (0..node_count).map(|_| Vec::new()).collect(),
            metrics: ExecutionMetrics::new(node_count),
            trace: Trace::with_capacity(config.trace_capacity),
            round: 0,
            initialized: false,
        })
    }

    /// The communication graph the network runs on.
    pub fn graph(&self) -> &MultiGraph {
        &self.graph
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The current round number (0 before the first round).
    pub fn current_round(&self) -> u32 {
        self.round
    }

    /// Returns `true` once every node has called [`Context::halt`].
    pub fn all_halted(&self) -> bool {
        self.halted.iter().all(|&h| h)
    }

    /// Number of nodes that have halted so far.
    pub fn halted_count(&self) -> usize {
        self.halted.iter().filter(|&&h| h).count()
    }

    /// Immutable access to all node programs (indexed by node).
    pub fn programs(&self) -> &[P] {
        &self.programs
    }

    /// Immutable access to the program of a single node.
    pub fn program(&self, node: NodeId) -> &P {
        &self.programs[node.index()]
    }

    /// Consumes the network and returns the node programs (for extracting
    /// outputs).
    pub fn into_programs(self) -> Vec<P> {
        self.programs
    }

    /// Detailed execution metrics.
    pub fn metrics(&self) -> &ExecutionMetrics {
        &self.metrics
    }

    /// Round/message summary so far.
    pub fn cost(&self) -> CostReport {
        self.metrics.summary()
    }

    /// The (bounded) message trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of messages currently in flight (sent but not yet delivered).
    pub fn pending_messages(&self) -> usize {
        self.pending.iter().map(Vec::len).sum()
    }

    fn dispatch(
        &mut self,
        sender: NodeId,
        outbox: Vec<crate::node::Outgoing<P::Message>>,
        round: u32,
    ) -> RuntimeResult<()> {
        for outgoing in outbox {
            let edge = self
                .graph
                .edge(outgoing.edge)
                .map_err(|_| RuntimeError::UnknownEdge {
                    edge: outgoing.edge,
                })?;
            if !edge.touches(sender) {
                return Err(RuntimeError::NotIncident {
                    node: sender,
                    edge: outgoing.edge,
                });
            }
            let receiver = edge.other(sender);
            self.metrics.record_send(sender.index());
            self.trace.record(TraceEvent {
                round,
                from: sender,
                to: receiver,
                edge: edge.id,
            });
            self.pending[receiver.index()].push(Envelope {
                edge: edge.id,
                from: sender,
                payload: outgoing.payload,
            });
        }
        Ok(())
    }

    /// Runs the initialization phase (safe to call multiple times; only the
    /// first call has an effect). Messages sent during initialization are
    /// delivered in round 1 and counted in the round-0 slot of the metrics.
    ///
    /// # Errors
    ///
    /// Returns an error if a program sends over a non-incident or unknown
    /// edge.
    pub fn initialize(&mut self) -> RuntimeResult<()> {
        if self.initialized {
            return Ok(());
        }
        for index in 0..self.programs.len() {
            let node = NodeId::from_usize(index);
            let mut ctx = Context::new(
                &self.knowledge[index],
                &self.port_edges[index],
                0,
                &mut self.rngs[index],
            );
            self.programs[index].init(&mut ctx);
            let halted = ctx.halted;
            let outbox = std::mem::take(&mut ctx.outbox);
            drop(ctx);
            self.halted[index] = halted;
            self.dispatch(node, outbox, 0)?;
        }
        self.initialized = true;
        Ok(())
    }

    /// Executes one synchronous round: delivers every pending message and
    /// calls each node's [`NodeProgram::round`].
    ///
    /// # Errors
    ///
    /// Returns an error if a program sends over a non-incident or unknown
    /// edge.
    pub fn run_round(&mut self) -> RuntimeResult<()> {
        self.initialize()?;
        self.round += 1;
        self.metrics.start_round();
        let inboxes: Vec<Vec<Envelope<P::Message>>> =
            self.pending.iter_mut().map(std::mem::take).collect();
        for (index, inbox) in inboxes.into_iter().enumerate() {
            let node = NodeId::from_usize(index);
            let mut ctx = Context::new(
                &self.knowledge[index],
                &self.port_edges[index],
                self.round,
                &mut self.rngs[index],
            );
            self.programs[index].round(&mut ctx, &inbox);
            let halted = ctx.halted;
            let outbox = std::mem::take(&mut ctx.outbox);
            drop(ctx);
            if halted {
                self.halted[index] = true;
            }
            self.dispatch(node, outbox, self.round)?;
        }
        Ok(())
    }

    /// Runs exactly `rounds` synchronous rounds.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Network::run_round`].
    pub fn run_rounds(&mut self, rounds: u32) -> RuntimeResult<()> {
        for _ in 0..rounds {
            self.run_round()?;
        }
        Ok(())
    }

    /// Runs rounds until every node has halted, up to `budget` rounds.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundBudgetExceeded`] if some node is still
    /// running after `budget` rounds, or any error from
    /// [`Network::run_round`].
    pub fn run_until_halt(&mut self, budget: u32) -> RuntimeResult<()> {
        self.initialize()?;
        let mut executed = 0;
        while !self.all_halted() {
            if executed >= budget {
                return Err(RuntimeError::RoundBudgetExceeded { budget });
            }
            self.run_round()?;
            executed += 1;
        }
        Ok(())
    }

    /// Runs rounds until no messages are in flight and every node has halted,
    /// up to `budget` rounds. Useful for algorithms whose halting decision
    /// depends on silence.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundBudgetExceeded`] if the network is still
    /// active after `budget` rounds.
    pub fn run_until_quiet(&mut self, budget: u32) -> RuntimeResult<()> {
        self.initialize()?;
        let mut executed = 0;
        while !(self.all_halted() && self.pending_messages() == 0) {
            if executed >= budget {
                return Err(RuntimeError::RoundBudgetExceeded { budget });
            }
            self.run_round()?;
            executed += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::generators::{cycle_graph, GeneratorConfig};

    /// Floods a token: node 0 starts with it, everyone forwards it the round
    /// after first hearing it, then halts.
    struct Flood {
        has_token: bool,
        forwarded: bool,
        heard_in_round: Option<u32>,
    }

    impl Flood {
        fn new(node: NodeId) -> Self {
            Flood {
                has_token: node == NodeId::new(0),
                forwarded: false,
                heard_in_round: None,
            }
        }
    }

    impl NodeProgram for Flood {
        type Message = ();

        fn init(&mut self, ctx: &mut Context<'_, ()>) {
            if self.has_token {
                self.heard_in_round = Some(0);
                ctx.broadcast(());
                self.forwarded = true;
            }
        }

        fn round(&mut self, ctx: &mut Context<'_, ()>, inbox: &[Envelope<()>]) {
            if !inbox.is_empty() && self.heard_in_round.is_none() {
                self.heard_in_round = Some(ctx.round());
                self.has_token = true;
            }
            if self.has_token && !self.forwarded {
                ctx.broadcast(());
                self.forwarded = true;
            }
            if self.has_token {
                ctx.halt();
            }
        }
    }

    fn cycle(n: usize) -> MultiGraph {
        cycle_graph(&GeneratorConfig::new(n, 0)).unwrap()
    }

    #[test]
    fn flooding_reaches_every_node_in_diameter_rounds() {
        let graph = cycle(8);
        let mut network = Network::new(&graph, NetworkConfig::with_seed(1), |node, _| {
            Flood::new(node)
        })
        .unwrap();
        network.run_until_halt(20).unwrap();
        assert!(network.all_halted());
        // On a cycle of 8 the farthest node hears the token in round 4.
        let max_heard = network
            .programs()
            .iter()
            .map(|p| p.heard_in_round.expect("every node heard the token"))
            .max()
            .unwrap();
        assert_eq!(max_heard, 4);
        // Every node broadcasts exactly once: 8 nodes × degree 2.
        assert_eq!(network.cost().messages, 16);
        assert!(network.cost().rounds >= 4);
    }

    #[test]
    fn run_rounds_counts_rounds_exactly() {
        let graph = cycle(5);
        let mut network =
            Network::new(&graph, NetworkConfig::default(), |node, _| Flood::new(node)).unwrap();
        network.run_rounds(3).unwrap();
        assert_eq!(network.current_round(), 3);
        assert_eq!(network.cost().rounds, 3);
    }

    #[test]
    fn budget_exceeded_reported() {
        /// A program that never halts.
        struct Busy;
        impl NodeProgram for Busy {
            type Message = ();
            fn round(&mut self, _ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {}
        }
        let graph = cycle(4);
        let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| Busy).unwrap();
        assert_eq!(
            network.run_until_halt(3),
            Err(RuntimeError::RoundBudgetExceeded { budget: 3 })
        );
    }

    #[test]
    fn sending_over_foreign_edge_is_rejected() {
        /// Sends over an edge that is not incident to it.
        struct Rogue;
        impl NodeProgram for Rogue {
            type Message = ();
            fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {
                if ctx.node() == NodeId::new(0) {
                    // Edge 1 of the cycle connects nodes 1 and 2.
                    ctx.send(EdgeId::new(1), ());
                }
            }
        }
        let graph = cycle(4);
        let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| Rogue).unwrap();
        let err = network.run_round().unwrap_err();
        assert_eq!(
            err,
            RuntimeError::NotIncident {
                node: NodeId::new(0),
                edge: EdgeId::new(1)
            }
        );
    }

    #[test]
    fn sending_over_unknown_edge_is_rejected() {
        struct Rogue;
        impl NodeProgram for Rogue {
            type Message = ();
            fn round(&mut self, ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {
                ctx.send(EdgeId::new(999), ());
            }
        }
        let graph = cycle(4);
        let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| Rogue).unwrap();
        let err = network.run_round().unwrap_err();
        assert_eq!(
            err,
            RuntimeError::UnknownEdge {
                edge: EdgeId::new(999)
            }
        );
    }

    #[test]
    fn empty_graph_is_rejected() {
        struct Noop;
        impl NodeProgram for Noop {
            type Message = ();
            fn round(&mut self, _ctx: &mut Context<'_, ()>, _inbox: &[Envelope<()>]) {}
        }
        let graph = MultiGraph::new(0);
        assert!(Network::new(&graph, NetworkConfig::default(), |_, _| Noop).is_err());
    }

    #[test]
    fn trace_records_message_events() {
        let graph = cycle(4);
        let config = NetworkConfig::with_seed(3).traced(100);
        let mut network = Network::new(&graph, config, |node, _| Flood::new(node)).unwrap();
        network.run_until_halt(10).unwrap();
        assert_eq!(network.trace().total(), network.cost().messages);
        assert!(network.trace().events().iter().any(|e| e.round == 0));
    }

    #[test]
    fn identical_seeds_give_identical_executions() {
        use rand::Rng;

        /// Each node draws a random number and broadcasts it once.
        struct RandomOnce {
            drawn: Option<u64>,
            received: Vec<u64>,
        }
        impl NodeProgram for RandomOnce {
            type Message = u64;
            fn init(&mut self, ctx: &mut Context<'_, u64>) {
                let value = ctx.rng().gen();
                self.drawn = Some(value);
                ctx.broadcast(value);
            }
            fn round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[Envelope<u64>]) {
                self.received.extend(inbox.iter().map(|e| e.payload));
                ctx.halt();
            }
        }

        let graph = cycle(6);
        let run = |seed: u64| {
            let mut network =
                Network::new(&graph, NetworkConfig::with_seed(seed), |_, _| RandomOnce {
                    drawn: None,
                    received: Vec::new(),
                })
                .unwrap();
            network.run_until_halt(5).unwrap();
            network
                .into_programs()
                .into_iter()
                .map(|p| (p.drawn, p.received))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn per_node_streams_are_independent() {
        // Different nodes with the same network seed draw different values.
        assert_ne!(node_seed(7, 0), node_seed(7, 1));
        assert_ne!(node_seed(7, 1), node_seed(8, 1));
    }

    #[test]
    fn run_until_quiet_waits_for_in_flight_messages() {
        /// Node 0 sends one message in round 1 and halts immediately; the
        /// receiver halts when it hears it.
        struct OneShot {
            sent: bool,
        }
        impl NodeProgram for OneShot {
            type Message = ();
            fn round(&mut self, ctx: &mut Context<'_, ()>, inbox: &[Envelope<()>]) {
                if ctx.node() == NodeId::new(0) && !self.sent {
                    ctx.broadcast(());
                    self.sent = true;
                }
                if ctx.node() != NodeId::new(0) && !inbox.is_empty() {
                    ctx.halt();
                }
                if ctx.node() == NodeId::new(0) {
                    ctx.halt();
                }
            }
        }
        let graph = cycle(3);
        let mut network = Network::new(&graph, NetworkConfig::default(), |_, _| OneShot {
            sent: false,
        })
        .unwrap();
        network.run_until_quiet(10).unwrap();
        assert!(network.all_halted());
        assert_eq!(network.pending_messages(), 0);
        assert_eq!(network.halted_count(), 3);
    }
}
