//! Error type of the LOCAL-model runtime.

use freelunch_graph::{EdgeId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors raised while constructing or executing a synchronous network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A node tried to send a message over an edge that is not incident to it.
    NotIncident {
        /// The sending node.
        node: NodeId,
        /// The edge it tried to use.
        edge: EdgeId,
    },
    /// A node referenced an edge that does not exist in the communication
    /// graph.
    UnknownEdge {
        /// The unknown edge.
        edge: EdgeId,
    },
    /// The execution exceeded the configured round budget without all nodes
    /// halting.
    RoundBudgetExceeded {
        /// The budget that was exhausted.
        budget: u32,
    },
    /// A configuration parameter is invalid.
    InvalidConfig {
        /// Description of the violated requirement.
        reason: String,
    },
    /// A transport backend failed: connection setup, a read/write timeout,
    /// a desynchronized or malformed frame, or a wire-codec violation (see
    /// `docs/TRANSPORT.md` for the contract each message names).
    Transport {
        /// Description of the failure, naming the peer/frame where known.
        reason: String,
    },
    /// A checkpoint could not be captured, serialized, or restored: a torn
    /// or corrupt file, a version/fingerprint mismatch, or program state
    /// that failed to round-trip (see `docs/RECOVERY.md`).
    Checkpoint {
        /// Description of the failure, naming the offending field/offset
        /// where known.
        reason: String,
    },
    /// An error surfaced from the graph substrate.
    Graph(freelunch_graph::GraphError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NotIncident { node, edge } => {
                write!(
                    f,
                    "node {node} attempted to send over non-incident edge {edge}"
                )
            }
            RuntimeError::UnknownEdge { edge } => write!(f, "edge {edge} does not exist"),
            RuntimeError::RoundBudgetExceeded { budget } => {
                write!(f, "execution did not halt within {budget} rounds")
            }
            RuntimeError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            RuntimeError::Transport { reason } => write!(f, "transport error: {reason}"),
            RuntimeError::Checkpoint { reason } => write!(f, "checkpoint error: {reason}"),
            RuntimeError::Graph(err) => write!(f, "graph error: {err}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Graph(err) => Some(err),
            _ => None,
        }
    }
}

impl From<freelunch_graph::GraphError> for RuntimeError {
    fn from(err: freelunch_graph::GraphError) -> Self {
        RuntimeError::Graph(err)
    }
}

impl RuntimeError {
    /// Convenience constructor for [`RuntimeError::InvalidConfig`].
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        RuntimeError::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`RuntimeError::Transport`].
    pub fn transport(reason: impl Into<String>) -> Self {
        RuntimeError::Transport {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`RuntimeError::Checkpoint`].
    pub fn checkpoint(reason: impl Into<String>) -> Self {
        RuntimeError::Checkpoint {
            reason: reason.into(),
        }
    }
}

/// Result alias used by the runtime.
pub type RuntimeResult<T> = Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offenders() {
        let err = RuntimeError::NotIncident {
            node: NodeId::new(3),
            edge: EdgeId::new(8),
        };
        assert!(err.to_string().contains("v3"));
        assert!(err.to_string().contains("e8"));
        assert!(RuntimeError::RoundBudgetExceeded { budget: 10 }
            .to_string()
            .contains("10"));
    }

    #[test]
    fn graph_errors_convert_and_chain() {
        let graph_err = freelunch_graph::GraphError::UnknownEdge {
            edge: EdgeId::new(1),
        };
        let err: RuntimeError = graph_err.clone().into();
        assert_eq!(err, RuntimeError::Graph(graph_err));
        assert!(err.source().is_some());
        assert!(RuntimeError::invalid_config("x").source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<RuntimeError>();
    }
}
