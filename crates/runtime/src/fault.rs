//! Deterministic fault injection: seeded message drops, duplications, link
//! cuts, node crashes and delivery-order perturbation.
//!
//! The clean engine models the paper's failure-free synchronous LOCAL
//! network. Real overlays — heterogeneous P2P networks most of all — lose,
//! duplicate and reorder messages and lose whole nodes, and message-frugal
//! simulation matters most exactly there. A [`FaultPlan`] describes such an
//! adversity scenario *deterministically*: every per-message outcome is
//! resolved from a ChaCha stream keyed by
//! `(plan seed, round, edge, sender, message index)`, so a faulty execution
//! is a pure function of `(graph, config, plan)` — independent of the shard
//! count, of [`TraceMode`](crate::trace::TraceMode), and of thread
//! scheduling. Robustness experiments therefore inherit the same
//! bit-identical cross-shard guarantee as clean runs, and every scenario is
//! replayable from three seeds.
//!
//! The keying discipline is also what makes the fault plane
//! **checkpoint-restorable** for free: a [`NetworkCheckpoint`] stores no
//! fault state beyond a plan digest and the per-port silence counters —
//! restore re-supplies the plan and simply resumes drawing from the streams
//! at the checkpoint round, since every outcome is keyed by absolute round,
//! not by how many draws preceded it (`docs/RECOVERY.md`;
//! `tests/recovery_matrix.rs` pins mid-plan kill/resume identity).
//!
//! [`NetworkCheckpoint`]: crate::checkpoint::NetworkCheckpoint
//!
//! # Fault kinds
//!
//! * **Message drop** — each message is dropped independently with
//!   [`FaultPlan::drop_probability`].
//! * **Message duplication** — each delivered message is duplicated with
//!   [`FaultPlan::duplicate_probability`] (the copy crosses the same edge in
//!   the same round and is charged by the ledger like any other message).
//! * **Link cut** — a [`LinkCut`] silently discards every message on one
//!   edge from a given round on, in both directions.
//! * **Node crash** — a [`CrashSchedule`] fail-stops one node at a given
//!   round: from that round on the node is never stepped again (its program
//!   state freezes), it sends nothing, and messages addressed to it are
//!   discarded. Crashed nodes count as halted so executions terminate.
//! * **Delivery perturbation** — [`FaultPlan::perturb_delivery`] applies a
//!   seeded permutation to every inbox after delivery, probing (and
//!   regression-testing) algorithms' sensitivity to message arrival order
//!   within a round.
//!
//! Dropped and duplicated messages are attributed in the
//! [`MessageLedger`](crate::metrics::MessageLedger)'s fault-accounting
//! column — see `docs/METRICS.md` §6 for the exact convention (delivered
//! traffic is metered as usual; drops never reach the per-edge counters).
//!
//! The same plan type is accepted by the emulated execution paths
//! (`freelunch-core`'s reduction floods, the flooding and gossip baselines),
//! so scheme-vs-baseline robustness comparisons share one accounting
//! convention end to end.
//!
//! # Examples
//!
//! ```
//! use freelunch_graph::generators::{cycle_graph, GeneratorConfig};
//! use freelunch_graph::NodeId;
//! use freelunch_runtime::{Context, Envelope, FaultPlan, Network, NetworkConfig, NodeProgram};
//!
//! struct Pulse;
//! impl NodeProgram for Pulse {
//!     type Message = u32;
//!     fn init(&mut self, ctx: &mut Context<'_, u32>) {
//!         ctx.broadcast(1);
//!     }
//!     fn round(&mut self, ctx: &mut Context<'_, u32>, _inbox: &[Envelope<u32>]) {
//!         ctx.halt();
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = cycle_graph(&GeneratorConfig::new(8, 0))?;
//! let plan = FaultPlan::new(7).with_drop_probability(0.5).with_crash(NodeId::new(3), 0);
//! let mut network = Network::with_fault_plan(&graph, NetworkConfig::with_seed(1), plan, |_, _| Pulse)?;
//! network.run_until_halt(4)?;
//! let faults = network.ledger().fault_totals();
//! // Node 3 never ran, and roughly half of the remaining messages were lost.
//! assert!(network.is_crashed(NodeId::new(3)));
//! assert!(faults.dropped > 0);
//! # Ok(())
//! # }
//! ```

use freelunch_graph::{EdgeId, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A link cut: every message crossing `edge` in round `from_round` or later
/// (in either direction) is silently discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkCut {
    /// The edge to cut.
    pub edge: EdgeId,
    /// First round (0 = initialization) in which the cut is in force.
    pub from_round: u32,
}

/// A crash schedule: `node` fail-stops at `at_round` — it is not stepped in
/// that round or any later one, sends nothing, and messages addressed to it
/// are discarded (attributed as crash drops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashSchedule {
    /// The node that crashes.
    pub node: NodeId,
    /// First round (0 = initialization) the node no longer participates in.
    pub at_round: u32,
}

/// The per-message outcome drawn from the fault stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// The message is delivered normally.
    Deliver,
    /// The message is silently dropped.
    Drop,
    /// The message is delivered twice (the duplicate crosses the same edge
    /// in the same round).
    Duplicate,
}

/// A deterministic fault-injection scenario (see the [module docs](self)).
///
/// The empty plan ([`FaultPlan::none`], or any plan for which
/// [`FaultPlan::is_empty`] is `true`) is guaranteed to leave an execution
/// byte-identical to one that never installed a plan — the engine does no
/// per-message fault work at all in that case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault stream. Independent from the network seed: the same
    /// algorithmic execution can be subjected to many adversity scenarios
    /// (and vice versa).
    pub seed: u64,
    /// Probability that any given message is dropped (in `[0, 1]`).
    pub drop_probability: f64,
    /// Probability that a non-dropped message is duplicated (in `[0, 1]`).
    pub duplicate_probability: f64,
    /// Edges cut from a given round on.
    pub link_cuts: Vec<LinkCut>,
    /// Nodes that fail-stop at a given round.
    pub crashes: Vec<CrashSchedule>,
    /// Whether to apply a seeded permutation to every inbox after delivery.
    pub perturb_delivery: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults of any kind.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            link_cuts: Vec::new(),
            crashes: Vec::new(),
            perturb_delivery: false,
        }
    }

    /// An empty plan carrying the given fault seed (configure it with the
    /// `with_*` builders).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Returns a copy with the per-message drop probability set.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p;
        self
    }

    /// Returns a copy with the per-message duplication probability set.
    pub fn with_duplicate_probability(mut self, p: f64) -> Self {
        self.duplicate_probability = p;
        self
    }

    /// Returns a copy with one more link cut.
    pub fn with_link_cut(mut self, edge: EdgeId, from_round: u32) -> Self {
        self.link_cuts.push(LinkCut { edge, from_round });
        self
    }

    /// Returns a copy with one more crash schedule.
    pub fn with_crash(mut self, node: NodeId, at_round: u32) -> Self {
        self.crashes.push(CrashSchedule { node, at_round });
        self
    }

    /// Returns a copy with delivery-order perturbation enabled.
    pub fn with_delivery_perturbation(mut self) -> Self {
        self.perturb_delivery = true;
        self
    }

    /// Returns `true` if the plan injects no fault at all (the engine then
    /// skips the fault path entirely).
    pub fn is_empty(&self) -> bool {
        self.drop_probability <= 0.0
            && self.duplicate_probability <= 0.0
            && self.link_cuts.is_empty()
            && self.crashes.is_empty()
            && !self.perturb_delivery
    }

    /// Returns `true` if the plan can make messages disappear or multiply
    /// (drops, duplicates, cuts or crashes — everything except pure
    /// delivery perturbation).
    pub fn affects_messages(&self) -> bool {
        self.drop_probability > 0.0
            || self.duplicate_probability > 0.0
            || !self.link_cuts.is_empty()
            || !self.crashes.is_empty()
    }

    /// Validates the plan's probabilities.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated requirement.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop_probability", self.drop_probability),
            ("duplicate_probability", self.duplicate_probability),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability in [0, 1], got {p}"));
            }
        }
        Ok(())
    }

    /// The round the given node crashes at, if any (the earliest schedule
    /// wins when a node appears more than once).
    pub fn crash_round(&self, node: NodeId) -> Option<u32> {
        self.crashes
            .iter()
            .filter(|c| c.node == node)
            .map(|c| c.at_round)
            .min()
    }

    /// Returns `true` if `node` does not participate in `round` (it crashed
    /// in that round or earlier).
    pub fn crashed_at(&self, node: NodeId, round: u32) -> bool {
        self.crash_round(node).is_some_and(|r| r <= round)
    }

    /// Returns `true` if `edge` is cut in `round`.
    pub fn link_cut_at(&self, edge: EdgeId, round: u32) -> bool {
        self.link_cuts
            .iter()
            .any(|c| c.edge == edge && c.from_round <= round)
    }

    /// Resolves the fate of one message from the keyed ChaCha stream.
    ///
    /// `msg_index` is the message's index within its sender's sends of that
    /// round (0 for processes that send at most one message per edge per
    /// round). The key is `(seed, round, edge, sender, msg_index)`, so the
    /// outcome depends only on *which* message it is — never on the order
    /// faults are applied in, which is what makes faulty executions
    /// independent of the shard count.
    pub fn message_fate(
        &self,
        round: u32,
        edge: EdgeId,
        sender: NodeId,
        msg_index: u32,
    ) -> MessageFate {
        if self.drop_probability <= 0.0 && self.duplicate_probability <= 0.0 {
            return MessageFate::Deliver;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(message_seed(
            self.seed,
            round,
            edge.raw(),
            sender.raw(),
            msg_index,
        ));
        if self.drop_probability > 0.0 && rng.gen_bool(self.drop_probability) {
            return MessageFate::Drop;
        }
        if self.duplicate_probability > 0.0 && rng.gen_bool(self.duplicate_probability) {
            return MessageFate::Duplicate;
        }
        MessageFate::Deliver
    }

    /// Applies the seeded delivery permutation for `(round, receiver)` to a
    /// mailbox (Fisher–Yates over a ChaCha stream keyed independently of the
    /// drop/duplicate stream). No-op unless
    /// [`FaultPlan::perturb_delivery`] is set.
    pub fn perturb_mailbox<T>(&self, round: u32, receiver: NodeId, mailbox: &mut [T]) {
        if !self.perturb_delivery || mailbox.len() < 2 {
            return;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(message_seed(
            self.seed ^ PERTURB_TAG,
            round,
            u64::from(receiver.raw()),
            receiver.raw(),
            0,
        ));
        for i in (1..mailbox.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            mailbox.swap(i, j);
        }
    }
}

/// Domain-separation tag of the delivery-perturbation stream.
const PERTURB_TAG: u64 = 0x5045_5254_5552_4221; // "PERTURB!"

/// splitmix64 finalizer — the single mixer shared by the fault streams here
/// and the engine's per-node RNG seeds (`engine::node_seed`).
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds the fault key `(seed, round, edge, sender, msg_index)` into one
/// 64-bit ChaCha seed. Each word passes through the splitmix64 finalizer so
/// nearby keys land in unrelated streams.
pub(crate) fn message_seed(seed: u64, round: u32, edge: u64, sender: u32, msg_index: u32) -> u64 {
    let mut acc = splitmix64(seed ^ 0x4641_554C_5431_4E4A); // "FAULT1NJ"
    acc = splitmix64(acc ^ u64::from(round));
    acc = splitmix64(acc ^ edge);
    acc = splitmix64(acc ^ u64::from(sender));
    splitmix64(acc ^ u64::from(msg_index))
}

/// The engine-internal resolved form of a plan: dense per-edge cut rounds
/// and per-node crash rounds for O(1) queries on the dispatch path.
#[derive(Debug)]
pub(crate) struct ResolvedFaultPlan {
    plan: FaultPlan,
    /// Per edge slot: first round the edge is cut (`u32::MAX` = never).
    cut_from: Vec<u32>,
    /// Per node: first round the node no longer participates in
    /// (`u32::MAX` = never).
    crash_from: Vec<u32>,
}

impl ResolvedFaultPlan {
    /// Resolves `plan` against a network of `node_count` nodes and
    /// `edge_slots` dense edge slots. Link cuts and crashes referencing
    /// out-of-range IDs are rejected with a description.
    pub(crate) fn resolve(
        plan: FaultPlan,
        edge_slots: usize,
        node_count: usize,
    ) -> Result<Self, String> {
        plan.validate()?;
        let mut cut_from = vec![u32::MAX; edge_slots];
        for cut in &plan.link_cuts {
            let slot = cut_from
                .get_mut(cut.edge.index())
                .ok_or_else(|| format!("link cut references unknown edge {}", cut.edge))?;
            *slot = (*slot).min(cut.from_round);
        }
        let mut crash_from = vec![u32::MAX; node_count];
        for crash in &plan.crashes {
            let slot = crash_from
                .get_mut(crash.node.index())
                .ok_or_else(|| format!("crash schedule references unknown node {}", crash.node))?;
            *slot = (*slot).min(crash.at_round);
        }
        Ok(ResolvedFaultPlan {
            plan,
            cut_from,
            crash_from,
        })
    }

    /// The plan this was resolved from.
    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// See [`FaultPlan::affects_messages`].
    pub(crate) fn affects_messages(&self) -> bool {
        self.plan.affects_messages()
    }

    /// Whether delivery perturbation is enabled.
    pub(crate) fn perturbs(&self) -> bool {
        self.plan.perturb_delivery
    }

    /// Returns `true` if the edge with dense index `edge_index` is cut in
    /// `round`. Edges beyond the resolved range (churn-inserted after the
    /// plan was resolved against the initial graph) can never be scheduled
    /// for a cut, so they are never cut.
    #[inline]
    pub(crate) fn link_cut_at(&self, edge_index: usize, round: u32) -> bool {
        self.cut_from
            .get(edge_index)
            .is_some_and(|&from| from <= round)
    }

    /// Returns `true` if the node with index `node_index` does not
    /// participate in `round`.
    #[inline]
    pub(crate) fn crashed_at(&self, node_index: usize, round: u32) -> bool {
        self.crash_from[node_index] <= round
    }

    /// Classifies one message (already past the link-cut and crash gates)
    /// through the keyed stream.
    #[inline]
    pub(crate) fn fate(
        &self,
        round: u32,
        edge: EdgeId,
        sender: NodeId,
        msg_index: u32,
    ) -> MessageFate {
        self.plan.message_fate(round, edge, sender, msg_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.affects_messages());
        assert!(plan.validate().is_ok());
        assert_eq!(
            plan.message_fate(3, EdgeId::new(1), NodeId::new(0), 0),
            MessageFate::Deliver
        );
    }

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::new(9)
            .with_drop_probability(0.25)
            .with_duplicate_probability(0.5)
            .with_link_cut(EdgeId::new(4), 2)
            .with_crash(NodeId::new(1), 3)
            .with_delivery_perturbation();
        assert!(!plan.is_empty());
        assert!(plan.affects_messages());
        assert_eq!(plan.seed, 9);
        assert!(plan.link_cut_at(EdgeId::new(4), 2));
        assert!(!plan.link_cut_at(EdgeId::new(4), 1));
        assert!(!plan.link_cut_at(EdgeId::new(5), 9));
        assert!(plan.crashed_at(NodeId::new(1), 3));
        assert!(!plan.crashed_at(NodeId::new(1), 2));
        assert_eq!(plan.crash_round(NodeId::new(1)), Some(3));
        assert_eq!(plan.crash_round(NodeId::new(2)), None);
    }

    #[test]
    fn probabilities_are_validated() {
        assert!(FaultPlan::new(0)
            .with_drop_probability(1.5)
            .validate()
            .is_err());
        assert!(FaultPlan::new(0)
            .with_duplicate_probability(-0.1)
            .validate()
            .is_err());
        assert!(FaultPlan::new(0)
            .with_drop_probability(f64::NAN)
            .validate()
            .is_err());
        assert!(FaultPlan::new(0)
            .with_drop_probability(1.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn fate_is_deterministic_and_key_sensitive() {
        let plan = FaultPlan::new(5).with_drop_probability(0.5);
        let fate = |round, edge, sender, index| {
            plan.message_fate(round, EdgeId::new(edge), NodeId::new(sender), index)
        };
        // Same key, same fate — every time.
        for _ in 0..3 {
            assert_eq!(fate(1, 2, 3, 0), fate(1, 2, 3, 0));
        }
        // Different components of the key give independent draws: over many
        // keys, both outcomes occur.
        let mut dropped = 0;
        let mut delivered = 0;
        for edge in 0..64u64 {
            match fate(1, edge, 0, 0) {
                MessageFate::Drop => dropped += 1,
                MessageFate::Deliver => delivered += 1,
                MessageFate::Duplicate => {}
            }
        }
        assert!(dropped > 8, "only {dropped}/64 dropped at p=0.5");
        assert!(delivered > 8, "only {delivered}/64 delivered at p=0.5");
    }

    #[test]
    fn earliest_schedule_wins_on_duplicates() {
        let plan = FaultPlan::new(0)
            .with_crash(NodeId::new(2), 5)
            .with_crash(NodeId::new(2), 3)
            .with_link_cut(EdgeId::new(1), 7)
            .with_link_cut(EdgeId::new(1), 4);
        assert_eq!(plan.crash_round(NodeId::new(2)), Some(3));
        assert!(plan.link_cut_at(EdgeId::new(1), 4));
        let resolved = ResolvedFaultPlan::resolve(plan, 2, 3).unwrap();
        assert!(resolved.crashed_at(2, 3));
        assert!(!resolved.crashed_at(2, 2));
        assert!(resolved.link_cut_at(1, 4));
        assert!(!resolved.link_cut_at(1, 3));
    }

    #[test]
    fn resolve_rejects_out_of_range_references() {
        let plan = FaultPlan::new(0).with_link_cut(EdgeId::new(10), 0);
        assert!(ResolvedFaultPlan::resolve(plan, 3, 3).is_err());
        let plan = FaultPlan::new(0).with_crash(NodeId::new(10), 0);
        assert!(ResolvedFaultPlan::resolve(plan, 3, 3).is_err());
    }

    #[test]
    fn perturbation_is_deterministic_and_a_permutation() {
        let plan = FaultPlan::new(11).with_delivery_perturbation();
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        plan.perturb_mailbox(3, NodeId::new(7), &mut a);
        plan.perturb_mailbox(3, NodeId::new(7), &mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        // A different receiver gets a different permutation (whp for 20!).
        let mut c: Vec<u32> = (0..20).collect();
        plan.perturb_mailbox(3, NodeId::new(8), &mut c);
        assert_ne!(a, c);
        // Disabled perturbation leaves mailboxes untouched.
        let mut d: Vec<u32> = (0..20).collect();
        FaultPlan::none().perturb_mailbox(3, NodeId::new(7), &mut d);
        assert_eq!(d, (0..20).collect::<Vec<_>>());
    }
}
