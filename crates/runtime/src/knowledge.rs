//! Initial-knowledge models of the LOCAL framework (Section 1.2 of the paper).
//!
//! The paper assumes every edge carries a unique ID known to both endpoints —
//! an assumption lying strictly between the classical `KT0` ("a node knows
//! only its own degree") and `KT1` ("a node knows the IDs of its neighbors")
//! variants. The runtime supports all three so that baselines stated for
//! other variants (e.g. gossip schemes, KT1 leader election) can be compared
//! under their own assumptions.
//!
//! Fault injection ([`crate::fault`]) deliberately does **not** extend
//! initial knowledge: a node is never told which neighbors will crash or
//! which links will be cut. Crash state is observable only the way the
//! fault-tolerance literature allows — through silence, surfaced per port by
//! [`Context::port_silence`](crate::node::Context::port_silence) — and
//! post-hoc through the [`Network`](crate::engine::Network) node APIs
//! (`is_crashed`, `crashed_nodes`), which exist for harnesses and invariant
//! checkers rather than for the programs themselves.

use freelunch_graph::{EdgeId, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Which information a node holds about its incident edges before the first
/// round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KnowledgeModel {
    /// `KT0`: a node knows its own degree and can address incident edges only
    /// by local port numbers.
    Kt0,
    /// Unique edge IDs: a node knows the globally unique ID of each incident
    /// edge (the paper's assumption (ii)); it does not know who is at the
    /// other end.
    UniqueEdgeIds,
    /// `KT1`: a node knows, for each incident edge, the ID of the node at the
    /// other end (which subsumes unique edge IDs on simple graphs).
    Kt1,
}

impl KnowledgeModel {
    /// Returns `true` if nodes see globally unique edge identifiers.
    pub fn exposes_edge_ids(self) -> bool {
        matches!(self, KnowledgeModel::UniqueEdgeIds | KnowledgeModel::Kt1)
    }

    /// Returns `true` if nodes see the IDs of their neighbors.
    pub fn exposes_neighbor_ids(self) -> bool {
        matches!(self, KnowledgeModel::Kt1)
    }
}

/// A single port of a node: the local view of one incident edge, filtered
/// through the knowledge model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Port {
    /// Local port number, `0..degree`, always known.
    pub port: usize,
    /// Globally unique edge ID, exposed under [`KnowledgeModel::UniqueEdgeIds`]
    /// and [`KnowledgeModel::Kt1`].
    pub edge_id: Option<EdgeId>,
    /// ID of the node at the other end, exposed under [`KnowledgeModel::Kt1`].
    pub neighbor: Option<NodeId>,
}

/// Everything a node knows when the execution starts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InitialKnowledge {
    /// The node's own ID (nodes always have unique IDs in our executions).
    pub node: NodeId,
    /// The knowledge model in force.
    pub model: KnowledgeModel,
    /// One entry per incident edge (so `ports.len()` is the node's degree,
    /// counting parallel edges).
    pub ports: Vec<Port>,
    /// An upper bound on `log2 n`, correct up to a constant factor — model
    /// assumption (i) of Section 1.1.
    pub log_n_upper_bound: u32,
}

impl InitialKnowledge {
    /// The node's degree (number of incident edges, with multiplicity).
    pub fn degree(&self) -> usize {
        self.ports.len()
    }

    /// The IDs of all incident edges, if the knowledge model exposes them.
    pub fn incident_edge_ids(&self) -> Option<Vec<EdgeId>> {
        self.ports.iter().map(|p| p.edge_id).collect()
    }

    /// The IDs of all neighbors (with multiplicity), if the knowledge model
    /// exposes them.
    pub fn neighbor_ids(&self) -> Option<Vec<NodeId>> {
        self.ports.iter().map(|p| p.neighbor).collect()
    }
}

/// Computes the initial knowledge of every node of `graph` under `model`.
///
/// The `log n` upper bound handed to the nodes is `ceil(log2 n) + slack`,
/// modelling the paper's "O(1)-approximate upper bound on log n".
pub fn initial_knowledge<G: Topology>(
    graph: &G,
    model: KnowledgeModel,
    log_n_slack: u32,
) -> Vec<InitialKnowledge> {
    let n = graph.node_count().max(2) as f64;
    let log_n_upper_bound = n.log2().ceil() as u32 + log_n_slack;
    graph
        .nodes()
        .map(|node| {
            let ports = graph
                .incident_edges(node)
                .iter()
                .enumerate()
                .map(|(port, incident)| Port {
                    port,
                    edge_id: model.exposes_edge_ids().then_some(incident.edge),
                    neighbor: model.exposes_neighbor_ids().then_some(incident.neighbor),
                })
                .collect();
            InitialKnowledge {
                node,
                model,
                ports,
                log_n_upper_bound,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use freelunch_graph::MultiGraph;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn small_graph() -> MultiGraph {
        // 0-1, 0-1 (parallel), 1-2
        let mut g = MultiGraph::new(3);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g
    }

    #[test]
    fn model_capability_flags() {
        assert!(!KnowledgeModel::Kt0.exposes_edge_ids());
        assert!(!KnowledgeModel::Kt0.exposes_neighbor_ids());
        assert!(KnowledgeModel::UniqueEdgeIds.exposes_edge_ids());
        assert!(!KnowledgeModel::UniqueEdgeIds.exposes_neighbor_ids());
        assert!(KnowledgeModel::Kt1.exposes_edge_ids());
        assert!(KnowledgeModel::Kt1.exposes_neighbor_ids());
    }

    #[test]
    fn kt0_reveals_only_degrees() {
        let g = small_graph();
        let knowledge = initial_knowledge(&g, KnowledgeModel::Kt0, 0);
        assert_eq!(knowledge.len(), 3);
        assert_eq!(knowledge[1].degree(), 3);
        assert!(knowledge[1].incident_edge_ids().is_none());
        assert!(knowledge[1].neighbor_ids().is_none());
        assert_eq!(knowledge[1].ports[0].port, 0);
    }

    #[test]
    fn unique_edge_ids_reveal_edges_but_not_neighbors() {
        let g = small_graph();
        let knowledge = initial_knowledge(&g, KnowledgeModel::UniqueEdgeIds, 0);
        let ids = knowledge[0].incident_edge_ids().unwrap();
        assert_eq!(ids, vec![EdgeId::new(0), EdgeId::new(1)]);
        assert!(knowledge[0].neighbor_ids().is_none());
    }

    #[test]
    fn kt1_reveals_neighbors_with_multiplicity() {
        let g = small_graph();
        let knowledge = initial_knowledge(&g, KnowledgeModel::Kt1, 0);
        assert_eq!(knowledge[0].neighbor_ids().unwrap(), vec![n(1), n(1)]);
        assert_eq!(knowledge[2].neighbor_ids().unwrap(), vec![n(1)]);
    }

    #[test]
    fn log_n_bound_is_an_upper_bound_with_slack() {
        let g = small_graph();
        let knowledge = initial_knowledge(&g, KnowledgeModel::Kt0, 2);
        // ceil(log2 3) = 2, slack 2 ⇒ 4.
        assert_eq!(knowledge[0].log_n_upper_bound, 4);
        assert!((1u64 << knowledge[0].log_n_upper_bound) as usize >= g.node_count());
    }

    #[test]
    fn single_node_graph_has_sane_bound() {
        let g = MultiGraph::new(1);
        let knowledge = initial_knowledge(&g, KnowledgeModel::Kt0, 0);
        assert_eq!(knowledge.len(), 1);
        assert_eq!(knowledge[0].degree(), 0);
        assert!(knowledge[0].log_n_upper_bound >= 1);
    }
}
