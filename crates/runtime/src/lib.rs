//! # freelunch-runtime
//!
//! A synchronous LOCAL-model simulator with exact round and message
//! accounting, used to execute and measure every distributed algorithm in
//! the freelunch workspace.
//!
//! The model matches Section 1.1 of *"Message Reduction in the LOCAL Model
//! Is a Free Lunch"*:
//!
//! * fully synchronous rounds; in each round a node may send one (unbounded)
//!   message over each incident edge and receives all messages addressed to
//!   it in that round;
//! * nodes know an `O(1)`-approximate upper bound on `log n`
//!   ([`knowledge::InitialKnowledge::log_n_upper_bound`]);
//! * edges carry globally unique IDs known to both endpoints
//!   ([`KnowledgeModel::UniqueEdgeIds`]); the classical `KT0` and `KT1`
//!   variants are also available for baselines analysed under those models.
//!
//! Algorithms are written as [`NodeProgram`]s and executed by a [`Network`],
//! which reports a [`CostReport`] (rounds + messages), per-round / per-node
//! metrics, optional message traces, and a [`MessageLedger`] — per-edge and
//! per-round message counts with payload byte sizing, the workspace-wide
//! meter specified in `docs/METRICS.md`.
//!
//! Executions can additionally be subjected to a deterministic, seeded
//! [`FaultPlan`] — message drops, duplications, link cuts, node crashes and
//! delivery-order perturbation, all resolved from a ChaCha stream keyed per
//! message so faulty runs keep every bit-identity guarantee of clean ones.
//! See [`fault`] for the model and `docs/METRICS.md` for how dropped and
//! duplicated traffic is accounted.
//!
//! The communication graph itself can evolve under a seeded [`ChurnPlan`]:
//! edge inserts/deletes and node joins/leaves resolved from the same keyed
//! ChaCha stream discipline, applied in canonical order at the round barrier
//! over a mutable [`freelunch_graph::OverlayGraph`] view of the frozen
//! topology. See [`churn`] for the event model and `docs/CHURN.md` for the
//! repair-vs-rebuild contract.
//!
//! Executions are crash-recoverable: [`Network::checkpoint`] captures the
//! full engine state at a round boundary as a [`NetworkCheckpoint`] (a
//! versioned, checksummed, torn-write-safe file format), and restoring it
//! resumes **bit-identical** to an uninterrupted run — on every backend,
//! including a killed TCP rank rejoining its surviving peers under a
//! [`RecoveryPolicy`]. See [`checkpoint`] and `docs/RECOVERY.md`.
//!
//! Messages move through a zero-allocation, double-buffered mailbox plane:
//! sends are resolved (validated, receiver looked up) at send time, every
//! buffer is reused across rounds, and per-message trace recording is
//! gated behind [`TraceMode`] (off by default). The engine can run both
//! phases of a round on multiple worker threads
//! ([`NetworkConfig::sharded`]): programs are stepped node-sharded, and
//! delivery runs receiver-sharded through a bucket exchange whose ledger
//! partials merge at the round barrier in canonical order — so every
//! observable of the execution is **bit-identical for every shard count**.
//! See [`engine`] for the design and `docs/PERF.md` for the costs.
//!
//! # Examples
//!
//! ```
//! use freelunch_graph::generators::{cycle_graph, GeneratorConfig};
//! use freelunch_runtime::{Context, Envelope, Network, NetworkConfig, NodeProgram};
//!
//! /// Every node broadcasts its ID once and counts distinct senders heard.
//! struct Census { heard: usize }
//!
//! impl NodeProgram for Census {
//!     type Message = u32;
//!     fn init(&mut self, ctx: &mut Context<'_, u32>) {
//!         let id = ctx.node().raw();
//!         ctx.broadcast(id);
//!     }
//!     fn round(&mut self, ctx: &mut Context<'_, u32>, inbox: &[Envelope<u32>]) {
//!         self.heard += inbox.len();
//!         ctx.halt();
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = cycle_graph(&GeneratorConfig::new(10, 0))?;
//! let mut network = Network::new(&graph, NetworkConfig::with_seed(7), |_, _| Census { heard: 0 })?;
//! network.run_until_halt(5)?;
//! assert_eq!(network.cost().messages, 20); // 10 nodes × degree 2
//! assert!(network.programs().iter().all(|p| p.heard == 2));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod churn;
pub mod engine;
pub mod error;
pub mod fault;
pub mod knowledge;
pub mod metrics;
pub mod node;
pub mod trace;
pub mod transport;

pub use checkpoint::{CheckpointHeader, NetworkCheckpoint, PendingEnvelope};
pub use churn::{ChurnDriver, ChurnEvent, ChurnEventSpec, ChurnPlan, ScheduledChurn};
pub use engine::{Network, NetworkConfig, Scheduling, DEFAULT_CHUNK_SIZE};
pub use error::{RuntimeError, RuntimeResult};
pub use fault::{CrashSchedule, FaultPlan, LinkCut, MessageFate};
pub use knowledge::{InitialKnowledge, KnowledgeModel, Port};
pub use metrics::{
    edge_slot_count, CongestionSnapshot, CostReport, ExecutionMetrics, FaultCause, FaultTotals,
    MessageLedger,
};
pub use node::{Context, Envelope, NodeProgram, Outgoing};
pub use trace::{Trace, TraceEvent, TraceMode};
pub use transport::{
    BarrierOutcome, CodecError, Disturbance, FrameRecord, InProcessTransport, MockTransport,
    RecoveryPolicy, RejoinHello, RoundBarrier, TcpConfig, TcpTransport, Transport, WireCodec,
};
