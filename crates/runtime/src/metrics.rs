//! Cost accounting: the round and message complexities that the paper's
//! theorems bound.
//!
//! Every execution path in the workspace — the real synchronous runtime, the
//! Sampler cost emulation of Section 5, and every baseline — reports its cost
//! through the same [`CostReport`] type so experiments compare like with
//! like.

use freelunch_graph::EdgeId;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Summary of the cost of one distributed execution (or one phase of it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostReport {
    /// Number of synchronous communication rounds used.
    pub rounds: u64,
    /// Total number of messages sent (each message over one edge in one
    /// direction counts once, as in the paper's message-complexity measure).
    pub messages: u64,
}

impl CostReport {
    /// A zero-cost report.
    pub const fn zero() -> Self {
        CostReport {
            rounds: 0,
            messages: 0,
        }
    }

    /// Creates a report from explicit counts.
    pub const fn new(rounds: u64, messages: u64) -> Self {
        CostReport { rounds, messages }
    }

    /// Sequential composition: rounds add, messages add.
    pub fn then(self, later: CostReport) -> CostReport {
        CostReport {
            rounds: self.rounds + later.rounds,
            messages: self.messages + later.messages,
        }
    }

    /// Parallel composition: rounds take the maximum, messages add.
    pub fn alongside(self, other: CostReport) -> CostReport {
        CostReport {
            rounds: self.rounds.max(other.rounds),
            messages: self.messages + other.messages,
        }
    }

    /// Messages per round (0 if no rounds were used).
    pub fn messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }
}

impl Add for CostReport {
    type Output = CostReport;
    fn add(self, rhs: CostReport) -> CostReport {
        self.then(rhs)
    }
}

impl AddAssign for CostReport {
    fn add_assign(&mut self, rhs: CostReport) {
        *self = self.then(rhs);
    }
}

/// Detailed per-round and per-node accounting produced by the synchronous
/// runtime.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionMetrics {
    /// Messages sent in each executed round (`messages_per_round[r]` is the
    /// count of round `r`, starting at round 1; index 0 holds messages sent
    /// during initialization).
    pub messages_per_round: Vec<u64>,
    /// Messages sent by each node over the whole execution.
    pub messages_per_node: Vec<u64>,
}

impl ExecutionMetrics {
    /// Creates empty metrics for a network of `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        ExecutionMetrics {
            messages_per_round: vec![0],
            messages_per_node: vec![0; node_count],
        }
    }

    /// Records that `node` sent one message during the current round slot.
    pub fn record_send(&mut self, node_index: usize) {
        self.record_sends(node_index, 1);
    }

    /// Records that `node` sent `count` messages during the current round
    /// slot — the bulk form the engine uses at the round barrier, where a
    /// node's send count is just its outbox length.
    pub fn record_sends(&mut self, node_index: usize, count: u64) {
        *self
            .messages_per_round
            .last_mut()
            .expect("at least one round slot exists") += count;
        self.messages_per_node[node_index] += count;
    }

    /// Opens a new round slot.
    pub fn start_round(&mut self) {
        self.messages_per_round.push(0);
    }

    /// Number of rounds executed so far (the initialization slot does not
    /// count as a round).
    pub fn rounds(&self) -> u64 {
        (self.messages_per_round.len() - 1) as u64
    }

    /// Total messages sent so far.
    pub fn total_messages(&self) -> u64 {
        self.messages_per_round.iter().sum()
    }

    /// The busiest node's message count.
    pub fn max_node_messages(&self) -> u64 {
        self.messages_per_node.iter().copied().max().unwrap_or(0)
    }

    /// Collapses the detailed metrics into a [`CostReport`].
    pub fn summary(&self) -> CostReport {
        CostReport {
            rounds: self.rounds(),
            messages: self.total_messages(),
        }
    }
}

/// Number of dense per-edge slots needed to index every edge of `edges` by
/// [`EdgeId::index`] (the largest index plus one).
///
/// Edge IDs are dense (`0..m`) for every generated graph, but IDs inserted
/// via `add_edge_with_id` — e.g. the crossing edges surviving cluster
/// contraction — may be sparse, so per-edge tables are sized by the largest
/// index actually present rather than by the edge count.
pub fn edge_slot_count(edges: impl IntoIterator<Item = EdgeId>) -> usize {
    edges.into_iter().map(|e| e.index() + 1).max().unwrap_or(0)
}

/// Why a message injected with a fault was dropped (the attribution recorded
/// in the [`MessageLedger`]'s fault-accounting column; see `docs/METRICS.md`
/// §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultCause {
    /// Dropped by the per-message drop probability of the fault plan.
    Random,
    /// Dropped because its edge was cut.
    LinkCut,
    /// Dropped because its receiver had crashed.
    Crash,
}

/// Aggregate fault-accounting totals of a [`MessageLedger`] (all zero for a
/// failure-free execution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultTotals {
    /// Messages dropped, over all causes.
    pub dropped: u64,
    /// Messages duplicated (each duplicate also appears in the ordinary
    /// per-edge / per-round counts, because it really crossed the edge).
    pub duplicated: u64,
    /// Drops attributed to the random per-message drop probability.
    pub dropped_random: u64,
    /// Drops attributed to link cuts.
    pub dropped_link_cut: u64,
    /// Drops attributed to receiver crashes.
    pub dropped_crash: u64,
}

/// A frozen per-round congestion summary of a [`MessageLedger`]: the
/// congestion column (per-round maximum edge load) pulled out into a
/// self-contained, serializable value so congestion-aware routing
/// experiments can compare executions without carrying whole ledgers.
///
/// Produced by [`MessageLedger::congestion_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CongestionSnapshot {
    /// The maximum number of messages carried by any single edge in each
    /// round slot (slot 0 = initialization), copied from the ledger's
    /// congestion column.
    pub per_round_max: Vec<u64>,
    /// The worst per-round edge congestion over the whole execution.
    pub peak: u64,
    /// The edge carrying the most messages over the whole execution, as
    /// `(edge_index, message_count)`; `None` if nothing was recorded.
    pub busiest_edge: Option<(usize, u64)>,
    /// Total messages recorded by the ledger the snapshot was taken from
    /// (so "congestion flattened, traffic unchanged" is checkable from the
    /// snapshot alone).
    pub total_messages: u64,
}

impl CongestionSnapshot {
    /// Number of round slots with per-round congestion strictly above
    /// `threshold` — the congestion *tail* that congestion-aware routing
    /// tries to flatten.
    pub fn rounds_above(&self, threshold: u64) -> usize {
        self.per_round_max
            .iter()
            .filter(|&&c| c > threshold)
            .count()
    }

    /// Returns `true` if this snapshot's congestion never exceeds `other`'s
    /// in any round slot (missing slots count as zero). This is the pointwise
    /// guarantee congestion-aware routing makes against canonical routing.
    pub fn never_exceeds(&self, other: &CongestionSnapshot) -> bool {
        let slots = self.per_round_max.len().max(other.per_round_max.len());
        (0..slots).all(|r| {
            let mine = self.per_round_max.get(r).copied().unwrap_or(0);
            let theirs = other.per_round_max.get(r).copied().unwrap_or(0);
            mine <= theirs
        })
    }
}

/// The message-complexity ledger: per-edge and per-round message counts plus
/// payload byte sizing (a CONGEST-style bandwidth view of the execution).
///
/// This is the **single meter** every execution path in the workspace
/// reports through — the synchronous [`Network`](crate::engine::Network)
/// engine (sequential and sharded), the emulated flooding of
/// `freelunch-core`'s `t`-local broadcast, and the baseline constructions —
/// so baseline-vs-scheme comparisons are always measured the same way. The
/// exact semantics (what counts as a message, byte-sizing rules, round-slot
/// conventions) are specified in `docs/METRICS.md`; that document is the
/// stable contract for the recorded `BENCH_message_ledger.json` data.
///
/// Round slots follow the [`ExecutionMetrics`] convention: slot 0 holds
/// initialization traffic, slot `r ≥ 1` holds the messages *sent* during
/// round `r`. Accumulation is canonical — entries are recorded in ascending
/// node order at the engine's round barrier (or in the deterministic
/// iteration order of the emulated process) — so two ledgers of the same
/// seeded execution are bit-identical regardless of shard count or thread
/// scheduling.
///
/// # Examples
///
/// ```
/// use freelunch_runtime::metrics::MessageLedger;
///
/// let mut ledger = MessageLedger::new(2);
/// ledger.record(0, 8); // initialization: one 8-byte message on edge 0
/// ledger.start_round();
/// ledger.record(0, 8);
/// ledger.record(0, 8);
/// ledger.record(1, 4);
/// assert_eq!(ledger.total_messages(), 4);
/// assert_eq!(ledger.total_bytes(), 28);
/// assert_eq!(ledger.messages_per_edge(), &[3, 1]);
/// assert_eq!(ledger.max_edge_messages_per_round(), &[1, 2]);
/// assert_eq!(ledger.max_congestion(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MessageLedger {
    /// Messages carried by each edge over the whole execution, indexed by
    /// [`EdgeId::index`].
    messages_per_edge: Vec<u64>,
    /// Payload bytes carried by each edge over the whole execution.
    bytes_per_edge: Vec<u64>,
    /// Messages sent in each round slot (slot 0 = initialization).
    messages_per_round: Vec<u64>,
    /// Payload bytes sent in each round slot.
    bytes_per_round: Vec<u64>,
    /// Congestion per round slot: the maximum number of messages carried by
    /// any single edge within that slot.
    max_edge_messages_per_round: Vec<u64>,
    /// Fault column: messages dropped by fault injection in each round slot
    /// (all causes). Always all-zero for failure-free executions; the
    /// `serde(default)` keeps ledgers recorded before the column existed
    /// deserializable.
    #[serde(default)]
    dropped_per_round: Vec<u64>,
    /// Fault column: messages duplicated by fault injection in each round
    /// slot.
    #[serde(default)]
    duplicated_per_round: Vec<u64>,
    /// Fault column: total drops attributed to [`FaultCause::Random`].
    #[serde(default)]
    dropped_random: u64,
    /// Fault column: total drops attributed to [`FaultCause::LinkCut`].
    #[serde(default)]
    dropped_link_cut: u64,
    /// Fault column: total drops attributed to [`FaultCause::Crash`].
    #[serde(default)]
    dropped_crash: u64,
    /// Scratch: per-edge counts within the current round slot only. Not part
    /// of the serialized contract.
    #[serde(skip)]
    round_edge_counts: Vec<u64>,
    /// Scratch: edges touched in the current round slot (reset lazily so a
    /// round costs `O(messages)`, never `O(m)`). Not part of the serialized
    /// contract.
    #[serde(skip)]
    touched: Vec<usize>,
}

impl Default for MessageLedger {
    /// An empty ledger with no per-edge slots — unlike the derived default,
    /// this upholds the "at least one round slot exists" invariant.
    fn default() -> Self {
        MessageLedger::new(0)
    }
}

/// Equality covers exactly the serialized contract (per-edge and per-round
/// counts, bytes, congestion, and the fault-accounting column). The
/// `#[serde(skip)]` scratch is excluded: the
/// engine's parallel round barrier discovers the edges touched in a round in
/// worker order, so the scratch's *insertion order* can differ between a
/// serial and a sharded dispatch of the same execution even though every
/// recorded value is bit-identical.
impl PartialEq for MessageLedger {
    fn eq(&self, other: &Self) -> bool {
        self.messages_per_edge == other.messages_per_edge
            && self.bytes_per_edge == other.bytes_per_edge
            && self.messages_per_round == other.messages_per_round
            && self.bytes_per_round == other.bytes_per_round
            && self.max_edge_messages_per_round == other.max_edge_messages_per_round
            && self.dropped_per_round == other.dropped_per_round
            && self.duplicated_per_round == other.duplicated_per_round
            && self.dropped_random == other.dropped_random
            && self.dropped_link_cut == other.dropped_link_cut
            && self.dropped_crash == other.dropped_crash
    }
}

impl Eq for MessageLedger {}

impl MessageLedger {
    /// Creates an empty ledger with `edge_slots` per-edge counters (use
    /// [`edge_slot_count`] to size it from an edge set) and the
    /// initialization round slot open.
    pub fn new(edge_slots: usize) -> Self {
        MessageLedger {
            messages_per_edge: vec![0; edge_slots],
            bytes_per_edge: vec![0; edge_slots],
            messages_per_round: vec![0],
            bytes_per_round: vec![0],
            max_edge_messages_per_round: vec![0],
            dropped_per_round: vec![0],
            duplicated_per_round: vec![0],
            dropped_random: 0,
            dropped_link_cut: 0,
            dropped_crash: 0,
            round_edge_counts: vec![0; edge_slots],
            touched: Vec::new(),
        }
    }

    /// Rebuilds a ledger from its checkpointed serialized-contract columns
    /// (see `docs/RECOVERY.md`). The `#[serde(skip)]` scratch is re-created
    /// zeroed, which is exact at a round boundary: scratch only carries
    /// intra-slot congestion state, and the first thing a resumed engine
    /// does to its ledger is [`MessageLedger::start_round`], which resets
    /// the scratch anyway.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_checkpoint_parts(
        messages_per_edge: Vec<u64>,
        bytes_per_edge: Vec<u64>,
        messages_per_round: Vec<u64>,
        bytes_per_round: Vec<u64>,
        max_edge_messages_per_round: Vec<u64>,
        dropped_per_round: Vec<u64>,
        duplicated_per_round: Vec<u64>,
        dropped_random: u64,
        dropped_link_cut: u64,
        dropped_crash: u64,
    ) -> Self {
        let edge_slots = messages_per_edge.len();
        MessageLedger {
            messages_per_edge,
            bytes_per_edge,
            messages_per_round,
            bytes_per_round,
            max_edge_messages_per_round,
            dropped_per_round,
            duplicated_per_round,
            dropped_random,
            dropped_link_cut,
            dropped_crash,
            round_edge_counts: vec![0; edge_slots],
            touched: Vec::new(),
        }
    }

    /// Closes the current round slot and opens the next one.
    pub fn start_round(&mut self) {
        for &edge in &self.touched {
            self.round_edge_counts[edge] = 0;
        }
        self.touched.clear();
        self.messages_per_round.push(0);
        self.bytes_per_round.push(0);
        self.max_edge_messages_per_round.push(0);
        self.dropped_per_round.push(0);
        self.duplicated_per_round.push(0);
    }

    /// Records one message of `payload_bytes` bytes crossing the edge with
    /// dense index `edge_index` in the current round slot.
    ///
    /// # Panics
    ///
    /// Panics if `edge_index` is outside the `edge_slots` the ledger was
    /// created with.
    #[inline]
    pub fn record(&mut self, edge_index: usize, payload_bytes: u64) {
        self.record_bulk(edge_index, 1, payload_bytes);
    }

    /// Records `count` messages totalling `payload_bytes` bytes on the edge
    /// with dense index `edge_index` in the current round slot — the bulk
    /// form used by the engine's parallel round barrier, which accumulates
    /// per-edge counts on its dispatch workers and merges each edge's
    /// round total with a single call. Recording `(e, k, b)` leaves the
    /// ledger in exactly the state `k` single [`MessageLedger::record`]
    /// calls of `b/k` bytes each would (sums and per-round maxima are
    /// order-independent), which is why a sharded and a serial barrier
    /// produce bit-identical ledgers.
    ///
    /// # Panics
    ///
    /// Panics if `edge_index` is outside the `edge_slots` the ledger was
    /// created with.
    #[inline]
    pub fn record_bulk(&mut self, edge_index: usize, count: u64, payload_bytes: u64) {
        if count == 0 {
            return;
        }
        self.messages_per_edge[edge_index] += count;
        self.bytes_per_edge[edge_index] += payload_bytes;
        *self
            .messages_per_round
            .last_mut()
            .expect("at least one round slot exists") += count;
        *self
            .bytes_per_round
            .last_mut()
            .expect("at least one round slot exists") += payload_bytes;
        if self.round_edge_counts[edge_index] == 0 {
            self.touched.push(edge_index);
        }
        self.round_edge_counts[edge_index] += count;
        let congestion = self
            .max_edge_messages_per_round
            .last_mut()
            .expect("at least one round slot exists");
        *congestion = (*congestion).max(self.round_edge_counts[edge_index]);
    }

    /// Records one message on `edge`, the [`EdgeId`]-typed convenience form
    /// of [`MessageLedger::record`].
    pub fn record_edge(&mut self, edge: EdgeId, payload_bytes: u64) {
        self.record(edge.index(), payload_bytes);
    }

    /// Grows the per-edge counters to at least `edge_slots` slots, filling
    /// new slots with zeros. Used by the engine when a churn plan inserts an
    /// edge whose ID lies beyond the frozen topology's slot range; shrinking
    /// never happens (deleted edges keep their historical counters).
    pub fn ensure_edge_slots(&mut self, edge_slots: usize) {
        if edge_slots > self.messages_per_edge.len() {
            self.messages_per_edge.resize(edge_slots, 0);
            self.bytes_per_edge.resize(edge_slots, 0);
            self.round_edge_counts.resize(edge_slots, 0);
        }
    }

    /// Records that fault injection dropped one message in the current round
    /// slot, attributed to `cause`. Dropped messages appear *only* here —
    /// they never reach the per-edge or per-round delivery counters.
    pub fn record_dropped(&mut self, cause: FaultCause) {
        self.record_dropped_bulk(cause, 1);
    }

    /// Records `count` fault-injected drops attributed to `cause` in the
    /// current round slot — the bulk form a distributed transport uses to
    /// merge a peer rank's fault column (sums, so merging is
    /// order-independent like [`MessageLedger::record_bulk`]).
    pub fn record_dropped_bulk(&mut self, cause: FaultCause, count: u64) {
        if count == 0 {
            return;
        }
        *self
            .dropped_per_round
            .last_mut()
            .expect("at least one round slot exists") += count;
        match cause {
            FaultCause::Random => self.dropped_random += count,
            FaultCause::LinkCut => self.dropped_link_cut += count,
            FaultCause::Crash => self.dropped_crash += count,
        }
    }

    /// Records that fault injection duplicated one message in the current
    /// round slot. The duplicate itself is additionally recorded through the
    /// ordinary [`MessageLedger::record`] path by whoever delivers it, since
    /// it really crosses the edge.
    pub fn record_duplicated(&mut self) {
        self.record_duplicated_bulk(1);
    }

    /// Records `count` fault-injected duplications in the current round slot
    /// (bulk form of [`MessageLedger::record_duplicated`], for merging a
    /// peer rank's fault column).
    pub fn record_duplicated_bulk(&mut self, count: u64) {
        if count == 0 {
            return;
        }
        *self
            .duplicated_per_round
            .last_mut()
            .expect("at least one round slot exists") += count;
    }

    /// Fault column: messages dropped by fault injection in each round slot.
    pub fn dropped_per_round(&self) -> &[u64] {
        &self.dropped_per_round
    }

    /// Fault column: messages duplicated by fault injection in each round
    /// slot.
    pub fn duplicated_per_round(&self) -> &[u64] {
        &self.duplicated_per_round
    }

    /// Aggregate fault totals (all zero for a failure-free execution).
    pub fn fault_totals(&self) -> FaultTotals {
        FaultTotals {
            dropped: self.dropped_per_round.iter().sum(),
            duplicated: self.duplicated_per_round.iter().sum(),
            dropped_random: self.dropped_random,
            dropped_link_cut: self.dropped_link_cut,
            dropped_crash: self.dropped_crash,
        }
    }

    /// Number of per-edge counter slots.
    pub fn edge_slots(&self) -> usize {
        self.messages_per_edge.len()
    }

    /// Number of rounds executed so far (the initialization slot does not
    /// count as a round).
    pub fn rounds(&self) -> u64 {
        (self.messages_per_round.len() - 1) as u64
    }

    /// Total messages recorded.
    pub fn total_messages(&self) -> u64 {
        self.messages_per_round.iter().sum()
    }

    /// Total payload bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_round.iter().sum()
    }

    /// Messages carried by each edge over the whole execution, indexed by
    /// [`EdgeId::index`].
    pub fn messages_per_edge(&self) -> &[u64] {
        &self.messages_per_edge
    }

    /// Payload bytes carried by each edge over the whole execution.
    pub fn bytes_per_edge(&self) -> &[u64] {
        &self.bytes_per_edge
    }

    /// Messages sent in each round slot (slot 0 = initialization).
    pub fn messages_per_round(&self) -> &[u64] {
        &self.messages_per_round
    }

    /// Payload bytes sent in each round slot.
    pub fn bytes_per_round(&self) -> &[u64] {
        &self.bytes_per_round
    }

    /// Per-round congestion: for each round slot, the maximum number of
    /// messages carried by any single edge within that slot.
    pub fn max_edge_messages_per_round(&self) -> &[u64] {
        &self.max_edge_messages_per_round
    }

    /// The worst per-round edge congestion over the whole execution.
    pub fn max_congestion(&self) -> u64 {
        self.max_edge_messages_per_round
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// The edge carrying the most messages over the whole execution, as
    /// `(edge_index, message_count)`; `None` if nothing was recorded.
    pub fn busiest_edge(&self) -> Option<(usize, u64)> {
        self.messages_per_edge
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, count)| count > 0)
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// Collapses the ledger into a [`CostReport`].
    pub fn summary(&self) -> CostReport {
        CostReport {
            rounds: self.rounds(),
            messages: self.total_messages(),
        }
    }

    /// Freezes the ledger's congestion column into a self-contained
    /// [`CongestionSnapshot`] (per-round maximum edge load, overall peak,
    /// busiest edge, and the total message count for a
    /// traffic-unchanged cross-check).
    pub fn congestion_snapshot(&self) -> CongestionSnapshot {
        CongestionSnapshot {
            per_round_max: self.max_edge_messages_per_round.clone(),
            peak: self.max_congestion(),
            busiest_edge: self.busiest_edge(),
            total_messages: self.total_messages(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_report_compositions() {
        let a = CostReport::new(3, 10);
        let b = CostReport::new(5, 7);
        assert_eq!(a.then(b), CostReport::new(8, 17));
        assert_eq!(a.alongside(b), CostReport::new(5, 17));
        assert_eq!(a + b, CostReport::new(8, 17));
        let mut c = CostReport::zero();
        c += a;
        c += b;
        assert_eq!(c, CostReport::new(8, 17));
    }

    #[test]
    fn messages_per_round_handles_zero_rounds() {
        assert_eq!(CostReport::zero().messages_per_round(), 0.0);
        assert_eq!(CostReport::new(4, 8).messages_per_round(), 2.0);
    }

    #[test]
    fn execution_metrics_accumulate() {
        let mut metrics = ExecutionMetrics::new(3);
        // Initialization sends 2 messages from node 0.
        metrics.record_send(0);
        metrics.record_send(0);
        metrics.start_round();
        metrics.record_send(1);
        metrics.start_round();
        metrics.record_send(2);
        metrics.record_send(1);

        assert_eq!(metrics.rounds(), 2);
        assert_eq!(metrics.total_messages(), 5);
        assert_eq!(metrics.messages_per_round, vec![2, 1, 2]);
        assert_eq!(metrics.messages_per_node, vec![2, 2, 1]);
        assert_eq!(metrics.max_node_messages(), 2);
        assert_eq!(metrics.summary(), CostReport::new(2, 5));
    }

    #[test]
    fn empty_metrics_are_zero() {
        let metrics = ExecutionMetrics::new(0);
        assert_eq!(metrics.rounds(), 0);
        assert_eq!(metrics.total_messages(), 0);
        assert_eq!(metrics.max_node_messages(), 0);
        assert_eq!(metrics.summary(), CostReport::zero());
    }

    #[test]
    fn edge_slot_count_spans_sparse_ids() {
        assert_eq!(edge_slot_count(std::iter::empty()), 0);
        assert_eq!(
            edge_slot_count([EdgeId::new(0), EdgeId::new(7), EdgeId::new(3)]),
            8
        );
    }

    #[test]
    fn ledger_accumulates_per_edge_and_per_round() {
        let mut ledger = MessageLedger::new(3);
        // Initialization: two messages on edge 0, one on edge 2.
        ledger.record(0, 10);
        ledger.record(0, 10);
        ledger.record_edge(EdgeId::new(2), 4);
        ledger.start_round();
        ledger.record(1, 6);
        ledger.record(1, 6);
        ledger.record(1, 6);

        assert_eq!(ledger.rounds(), 1);
        assert_eq!(ledger.edge_slots(), 3);
        assert_eq!(ledger.total_messages(), 6);
        assert_eq!(ledger.total_bytes(), 42);
        assert_eq!(ledger.messages_per_edge(), &[2, 3, 1]);
        assert_eq!(ledger.bytes_per_edge(), &[20, 18, 4]);
        assert_eq!(ledger.messages_per_round(), &[3, 3]);
        assert_eq!(ledger.bytes_per_round(), &[24, 18]);
        assert_eq!(ledger.max_edge_messages_per_round(), &[2, 3]);
        assert_eq!(ledger.max_congestion(), 3);
        assert_eq!(ledger.busiest_edge(), Some((1, 3)));
        assert_eq!(ledger.summary(), CostReport::new(1, 6));
    }

    #[test]
    fn ledger_congestion_resets_each_round() {
        let mut ledger = MessageLedger::new(1);
        ledger.start_round();
        ledger.record(0, 1);
        ledger.record(0, 1);
        ledger.start_round();
        ledger.record(0, 1);
        assert_eq!(ledger.max_edge_messages_per_round(), &[0, 2, 1]);
        assert_eq!(ledger.messages_per_edge(), &[3]);
    }

    #[test]
    fn busiest_edge_prefers_the_lowest_index_on_ties() {
        let mut ledger = MessageLedger::new(4);
        ledger.record(3, 1);
        ledger.record(1, 1);
        assert_eq!(ledger.busiest_edge(), Some((1, 1)));
        assert_eq!(MessageLedger::new(2).busiest_edge(), None);
    }

    #[test]
    fn empty_ledger_is_zero() {
        let ledger = MessageLedger::new(0);
        assert_eq!(ledger.rounds(), 0);
        assert_eq!(ledger.total_messages(), 0);
        assert_eq!(ledger.total_bytes(), 0);
        assert_eq!(ledger.max_congestion(), 0);
        assert_eq!(ledger.summary(), CostReport::zero());
    }

    #[test]
    fn fault_column_accumulates_and_distinguishes_causes() {
        let mut ledger = MessageLedger::new(2);
        assert_eq!(ledger.fault_totals(), FaultTotals::default());
        ledger.record_dropped(FaultCause::Random);
        ledger.start_round();
        ledger.record_dropped(FaultCause::LinkCut);
        ledger.record_dropped(FaultCause::Crash);
        ledger.record_dropped(FaultCause::Crash);
        ledger.record_duplicated();
        ledger.record(0, 4); // delivered traffic is independent of the column
        ledger.record(0, 4);

        assert_eq!(ledger.dropped_per_round(), &[1, 3]);
        assert_eq!(ledger.duplicated_per_round(), &[0, 1]);
        let totals = ledger.fault_totals();
        assert_eq!(totals.dropped, 4);
        assert_eq!(totals.duplicated, 1);
        assert_eq!(totals.dropped_random, 1);
        assert_eq!(totals.dropped_link_cut, 1);
        assert_eq!(totals.dropped_crash, 2);
        // Drops never reach the delivery counters.
        assert_eq!(ledger.total_messages(), 2);
        assert_eq!(ledger.messages_per_edge(), &[2, 0]);
        // The column participates in the serialized-contract equality.
        let mut other = MessageLedger::new(2);
        other.start_round();
        other.record(0, 4);
        other.record(0, 4);
        assert_ne!(ledger, other);
    }

    #[test]
    fn ensure_edge_slots_grows_but_never_shrinks() {
        let mut ledger = MessageLedger::new(2);
        ledger.record(1, 4);
        ledger.ensure_edge_slots(4);
        assert_eq!(ledger.edge_slots(), 4);
        assert_eq!(ledger.messages_per_edge(), &[0, 1, 0, 0]);
        assert_eq!(ledger.bytes_per_edge(), &[0, 4, 0, 0]);
        ledger.record(3, 8); // the new slot is immediately recordable
        assert_eq!(ledger.messages_per_edge(), &[0, 1, 0, 1]);
        ledger.ensure_edge_slots(1); // shrink requests are no-ops
        assert_eq!(ledger.edge_slots(), 4);
    }

    #[test]
    fn congestion_snapshot_freezes_the_congestion_column() {
        let mut ledger = MessageLedger::new(2);
        ledger.start_round();
        ledger.record(0, 1);
        ledger.record(0, 1);
        ledger.record(1, 1);
        ledger.start_round();
        ledger.record(1, 1);
        let snap = ledger.congestion_snapshot();
        assert_eq!(snap.per_round_max, vec![0, 2, 1]);
        assert_eq!(snap.peak, 2);
        assert_eq!(snap.busiest_edge, Some((0, 2)));
        assert_eq!(snap.total_messages, 4);
        assert_eq!(snap.rounds_above(1), 1);
        assert_eq!(snap.rounds_above(0), 2);
        assert_eq!(snap.rounds_above(2), 0);
    }

    #[test]
    fn congestion_snapshot_pointwise_comparison() {
        let flat = CongestionSnapshot {
            per_round_max: vec![0, 1, 1],
            peak: 1,
            busiest_edge: Some((0, 2)),
            total_messages: 4,
        };
        let spiky = CongestionSnapshot {
            per_round_max: vec![0, 2, 1],
            peak: 2,
            busiest_edge: Some((0, 3)),
            total_messages: 4,
        };
        assert!(flat.never_exceeds(&spiky));
        assert!(!spiky.never_exceeds(&flat));
        assert!(flat.never_exceeds(&flat));
        // Missing trailing slots count as zero on either side.
        let short = CongestionSnapshot {
            per_round_max: vec![0, 1],
            peak: 1,
            busiest_edge: None,
            total_messages: 1,
        };
        assert!(short.never_exceeds(&flat));
        assert!(!flat.never_exceeds(&short));
    }

    #[test]
    fn default_ledger_upholds_the_round_slot_invariant() {
        let mut ledger = MessageLedger::default();
        assert_eq!(ledger, MessageLedger::new(0));
        assert_eq!(ledger.rounds(), 0);
        ledger.start_round();
        assert_eq!(ledger.rounds(), 1);
    }
}
